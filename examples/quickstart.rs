//! Quickstart: recover the relative pose between two simulated vehicles.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds one synthetic V2V frame pair (two cars driving a
//! suburban road, each with its own LiDAR and detector), exchanges the
//! BB-Align payload (BV image + boxes) and recovers the relative pose —
//! then compares it with ground truth and with what a corrupted GPS would
//! have reported.

use bb_align::{BbAlign, BbAlignConfig};
use bba_dataset::{Dataset, DatasetConfig, PoseNoise};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Simulate one synchronized frame pair.
    let mut dataset = Dataset::new(DatasetConfig::standard(), 42);
    let pair = dataset.next_pair().expect("dataset streams frames");
    println!(
        "simulated frame pair: {} m apart, {} commonly observed cars",
        pair.distance.round(),
        pair.common_vehicles.len()
    );
    println!(
        "ego scan: {} points; other scan: {} points",
        pair.ego.scan.len(),
        pair.other.scan.len()
    );

    // 2. Each car assembles its transmissible perception frame.
    let aligner = BbAlign::new(BbAlignConfig::default());
    let ego = aligner.frame_from_parts(
        pair.ego.scan.points().iter().map(|p| p.position),
        pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    println!(
        "payload transmitted by the other car: {:.1} KiB (raw cloud would be {:.1} KiB)",
        other.wire_size_bytes() as f64 / 1024.0,
        (pair.other.scan.wire_size_bytes()) as f64 / 1024.0,
    );

    // 3. Recover the relative pose — no prior pose information used.
    let mut rng = StdRng::seed_from_u64(7);
    match aligner.recover(&ego, &other, &mut rng) {
        Ok(recovery) => {
            let (dt, dr) = recovery.transform.error_to(&pair.true_relative);
            println!("\nground truth : {}", pair.true_relative);
            println!("recovered    : {}", recovery.transform);
            println!("error        : {:.2} m translation, {:.2}° rotation", dt, dr.to_degrees());
            println!(
                "diagnostics  : Inliers_bv = {}, Inliers_box = {}, success = {}",
                recovery.inliers_bv(),
                recovery.inliers_box(),
                recovery.is_success()
            );

            // 4. For contrast: what a corrupted GPS pose looks like.
            let corrupted = PoseNoise::table1().corrupt(&pair.true_relative, &mut rng);
            let (gdt, gdr) = corrupted.error_to(&pair.true_relative);
            println!(
                "\nGPS with σ_t = 2 m, σ_θ = 2° noise would be off by {:.2} m / {:.2}° —\n\
                 BB-Align replaces it using only the shared BV image and boxes.",
                gdt,
                gdr.to_degrees()
            );
        }
        Err(e) => println!("recovery failed: {e}"),
    }
}

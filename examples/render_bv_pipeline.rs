//! Renders the stage-1 pipeline images — the repository's equivalent of
//! the paper's Fig. 4 (point cloud → BV image → MIM → match).
//!
//! ```bash
//! cargo run --release --example render_bv_pipeline
//! # → writes PGM images under ./bv_pipeline_out/
//! ```
//!
//! Outputs, for each car: the BV height map, the MIM amplitude map and the
//! MIM orientation-index map; plus the other car's BV image warped by the
//! recovered transform into the ego frame, overlaid on the ego image —
//! after a correct recovery the structures coincide.

use bb_align::{BbAlign, BbAlignConfig};
use bba_dataset::{Dataset, DatasetConfig};
use bba_signal::{write_pgm, Grid, LogGaborBank, MaxIndexMap};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let out = Path::new("bv_pipeline_out");
    std::fs::create_dir_all(out)?;

    let mut dataset = Dataset::new(DatasetConfig::standard(), 42);
    let pair = dataset.next_pair().unwrap();
    let engine = BbAlignConfig::default();
    let aligner = BbAlign::new(engine.clone());

    let ego = aligner.frame_from_parts(
        pair.ego.scan.points().iter().map(|p| p.position),
        pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );

    // Panels (a)/(d): BV height maps.
    write_pgm(ego.bev().grid(), out.join("ego_bv.pgm"))?;
    write_pgm(other.bev().grid(), out.join("other_bv.pgm"))?;

    // Panels (c)/(f): MIM maps.
    let h = engine.bev.image_size();
    let bank = LogGaborBank::new(h, h, engine.log_gabor.clone());
    for (name, frame) in [("ego", &ego), ("other", &other)] {
        let mim = MaxIndexMap::compute_with_bank(frame.bev().grid(), &bank);
        write_pgm(&mim.amplitude, out.join(format!("{name}_mim_amplitude.pgm")))?;
        write_pgm(&mim.index.map(|&i| i as f64), out.join(format!("{name}_mim_index.pgm")))?;
    }

    // Panel (g): recovery + overlay.
    let mut rng = StdRng::seed_from_u64(7);
    match aligner.recover(&ego, &other, &mut rng) {
        Ok(recovery) => {
            let (dt, dr) = recovery.transform.error_to(&pair.true_relative);
            println!(
                "recovered {} (error {:.2} m / {:.2}°, Inliers_bv={}, Inliers_box={})",
                recovery.transform,
                dt,
                dr.to_degrees(),
                recovery.inliers_bv(),
                recovery.inliers_box()
            );
            // Warp the other image into the ego frame: ego structure at
            // intensity 1, warped other structure at 2, coincidence at 3.
            let bev = engine.bev;
            let mut overlay = Grid::new(h, h, 0.0f64);
            for (u, v, &x) in ego.bev().grid().iter_cells() {
                if x > 1e-9 {
                    overlay[(u, v)] = 1.0;
                }
            }
            for (u, v, &x) in other.bev().grid().iter_cells() {
                if x > 1e-9 {
                    let world = recovery.transform.apply(bev.pixel_center(u, v));
                    if let Some((eu, ev)) = bev.world_to_pixel(world) {
                        overlay[(eu, ev)] += 2.0;
                    }
                }
            }
            write_pgm(&overlay, out.join("overlay_recovered.pgm"))?;
            println!(
                "wrote {} — bright pixels are structure both cars agree on",
                out.join("overlay_recovered.pgm").display()
            );
        }
        Err(e) => println!("recovery failed: {e}"),
    }
    println!("all panels written to {}", out.display());
    Ok(())
}

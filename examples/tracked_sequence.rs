//! Tracked pose recovery over a driving sequence on a curved road.
//!
//! ```bash
//! cargo run --release --example tracked_sequence
//! ```
//!
//! The paper recovers the pose per frame and names time efficiency as
//! future work. This demo shows the deployment pattern this repository
//! adds: per-frame recoveries feed a constant-velocity [`PoseTracker`]
//! which (a) smooths measurement noise, (b) gates out the occasional
//! aliased match, and (c) extrapolates between recoveries so fusion can
//! run at sensor rate while recovery runs at half rate. The curved road
//! makes the relative yaw drift continuously — the tracker must follow.

use bb_align::{BbAlign, BbAlignConfig, PoseTracker, TrackerConfig};
use bba_dataset::{Dataset, DatasetConfig};
use bba_scene::{ScenarioConfig, ScenarioPreset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    const FRAMES: usize = 10;
    // A gentle 350 m-radius bend.
    let mut cfg = DatasetConfig::standard();
    cfg.scenario = ScenarioConfig::preset(ScenarioPreset::Suburban).with_curvature(1.0 / 350.0);
    cfg.frame_interval = 0.5;

    let aligner = BbAlign::new(BbAlignConfig::default());
    let mut tracker = PoseTracker::new(TrackerConfig::default());
    let mut dataset = Dataset::new(cfg, 321);
    let mut rng = StdRng::seed_from_u64(9);

    println!(
        "{:<6} {:>10} {:>16} {:>16} {:>14}",
        "t (s)", "true yaw°", "raw err (m/°)", "tracked (m/°)", "note"
    );
    for k in 0..FRAMES {
        let pair = dataset.next_pair().unwrap();
        let t = pair.time;

        // Run the full recovery only on every other frame (half duty
        // cycle); on skipped frames the tracker extrapolates.
        let note;
        if k % 2 == 0 {
            let ego = aligner.frame_from_parts(
                pair.ego.scan.points().iter().map(|p| p.position),
                pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
            );
            let other = aligner.frame_from_parts(
                pair.other.scan.points().iter().map(|p| p.position),
                pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
            );
            match aligner.recover(&ego, &other, &mut rng) {
                Ok(recovery) => {
                    let verdict = tracker.update(t, &recovery);
                    let (rdt, rdr) = recovery.transform.error_to(&pair.true_relative);
                    let tracked = tracker.predict(t).unwrap();
                    let (tdt, tdr) = tracked.error_to(&pair.true_relative);
                    println!(
                        "{t:<6.1} {:>10.2} {:>9.2}/{:>5.2} {:>9.2}/{:>5.2} {:>14}",
                        pair.true_relative.yaw().to_degrees(),
                        rdt,
                        rdr.to_degrees(),
                        tdt,
                        tdr.to_degrees(),
                        format!("{verdict:?}"),
                    );
                    continue;
                }
                Err(_) => note = "recovery failed",
            }
        } else {
            note = "skipped (coast)";
        }
        match tracker.predict(t) {
            Some(tracked) => {
                let (tdt, tdr) = tracked.error_to(&pair.true_relative);
                println!(
                    "{t:<6.1} {:>10.2} {:>15} {:>9.2}/{:>5.2} {:>14}",
                    pair.true_relative.yaw().to_degrees(),
                    "-",
                    tdt,
                    tdr.to_degrees(),
                    note
                );
            }
            None => println!("{t:<6.1} (tracker not initialised)"),
        }
    }
    if let Some(v) = tracker.relative_velocity() {
        println!(
            "\nestimated relative velocity: ({:.2}, {:.2}) m/s — the other car pulls ahead.",
            v.x, v.y
        );
    }
}

//! Heterogeneous sensor pairing: BB-Align vs raw-point registration when
//! the two cars carry *different* LiDARs.
//!
//! ```bash
//! cargo run --release --example heterogeneous_sensors
//! ```
//!
//! The paper argues (§II) that point-set registration (ICP) "typically
//! requires similar sensor configurations" while image-level matching does
//! not. This demo pairs a 64-channel sensor with a 16-channel one and runs
//! both approaches on the same frames — BB-Align from scratch, ICP from an
//! already good initial guess (its favourable setup), and ICP from the
//! corrupted GPS pose (its realistic setup).

use bb_align::{BbAlign, BbAlignConfig};
use bba_baselines::icp::{icp_2d, IcpConfig};
use bba_dataset::{Dataset, DatasetConfig, PoseNoise};
use bba_geometry::{Iso2, Vec2};
use bba_lidar::LidarConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    const FRAMES: usize = 4;
    let mut cfg = DatasetConfig::standard();
    cfg.ego_lidar = LidarConfig::high_res_64();
    cfg.other_lidar = LidarConfig::low_res_16();
    println!(
        "ego: {} channels / {:.0} m range; other: {} channels / {:.0} m range\n",
        cfg.ego_lidar.channels,
        cfg.ego_lidar.max_range,
        cfg.other_lidar.channels,
        cfg.other_lidar.max_range
    );

    let aligner = BbAlign::new(BbAlignConfig::default());
    let noise = PoseNoise::table1();
    let mut rng = StdRng::seed_from_u64(3);
    let mut dataset = Dataset::new(cfg, 77);

    println!(
        "{:<8} {:>16} {:>16} {:>18}",
        "frame", "BB-Align (m/°)", "ICP warm (m/°)", "ICP from GPS (m/°)"
    );
    for k in 0..FRAMES {
        let pair = dataset.next_pair().unwrap();
        // BB-Align: no prior pose at all.
        let ego = aligner.frame_from_parts(
            pair.ego.scan.points().iter().map(|p| p.position),
            pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
        );
        let other = aligner.frame_from_parts(
            pair.other.scan.points().iter().map(|p| p.position),
            pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
        );
        let bb = aligner
            .recover(&ego, &other, &mut rng)
            .map(|r| r.transform.error_to(&pair.true_relative))
            .ok();

        // ICP on downsampled ground-plane points.
        let down = |scan: &bba_lidar::Scan| -> Vec<Vec2> {
            scan.points().iter().step_by(10).map(|p| p.position.xy()).collect()
        };
        let src = down(&pair.other.scan);
        let dst = down(&pair.ego.scan);
        let icp_err = |init: Iso2| {
            icp_2d(&src, &dst, init, &IcpConfig::default())
                .map(|r| r.transform.error_to(&pair.true_relative))
        };
        // Warm start: truth + 0.5 m — ICP's best case.
        let warm = icp_err(Iso2::new(
            pair.true_relative.yaw(),
            pair.true_relative.translation() + Vec2::new(0.5, 0.2),
        ));
        // Realistic start: the corrupted GPS pose.
        let cold = icp_err(noise.corrupt(&pair.true_relative, &mut rng));

        let fmt = |e: Option<(f64, f64)>| match e {
            Some((dt, dr)) => format!("{dt:.2}/{:.2}", dr.to_degrees()),
            None => "failed".to_string(),
        };
        println!("{k:<8} {:>16} {:>16} {:>18}", fmt(bb), fmt(warm), fmt(cold));
    }
    println!(
        "\nBB-Align needs no initial guess and tolerates the sensor mismatch; ICP only\n\
         competes when it is handed a nearly correct pose to start from."
    );
}

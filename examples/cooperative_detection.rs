//! Cooperative object detection under pose error — the Table I scenario as
//! a runnable demo.
//!
//! ```bash
//! cargo run --release --example cooperative_detection
//! ```
//!
//! Two cars fuse perception over several frames. The demo evaluates
//! detection AP three times per fusion method: with the ground-truth pose,
//! with a corrupted GPS pose (σ_t = 2 m, σ_θ = 2°), and with the pose
//! recovered by BB-Align.

use bb_align::{BbAlign, BbAlignConfig};
use bba_dataset::{Dataset, DatasetConfig, PoseNoise};
use bba_detect::{average_precision, Detection, GroundTruthBox};
use bba_fusion::{FusionExperiment, FusionMethod};
use bba_geometry::Iso2;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    const FRAMES: usize = 6;
    let aligner = BbAlign::new(BbAlignConfig::default());
    let noise = PoseNoise::table1();
    let mut rng = StdRng::seed_from_u64(11);

    // Prepare the frame pool with all three pose variants.
    println!("simulating {FRAMES} frame pairs and recovering poses...");
    let mut pool = Vec::new();
    let mut dataset = Dataset::new(DatasetConfig::standard(), 2025);
    for _ in 0..FRAMES {
        let pair = dataset.next_pair().unwrap();
        let corrupted = noise.corrupt(&pair.true_relative, &mut rng);
        let ego = aligner.frame_from_parts(
            pair.ego.scan.points().iter().map(|p| p.position),
            pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
        );
        let other = aligner.frame_from_parts(
            pair.other.scan.points().iter().map(|p| p.position),
            pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
        );
        let recovered =
            aligner.recover(&ego, &other, &mut rng).map(|r| r.transform).unwrap_or(corrupted);
        pool.push((pair, corrupted, recovered));
    }

    println!("\n{:<14} {:>12} {:>12} {:>12}", "method", "true pose", "corrupted", "recovered");
    for method in FusionMethod::ALL {
        let exp = FusionExperiment::new(method);
        let mut aps = Vec::new();
        for variant in 0..3usize {
            let mut eval_rng = StdRng::seed_from_u64(99);
            let frames: Vec<(Vec<Detection>, Vec<GroundTruthBox>)> = pool
                .iter()
                .map(|(pair, corrupted, recovered)| {
                    let pose: &Iso2 = match variant {
                        0 => &pair.true_relative,
                        1 => corrupted,
                        _ => recovered,
                    };
                    exp.run_frame(pair, pose, &mut eval_rng)
                })
                .collect();
            aps.push(average_precision(&frames, 0.5).ap * 100.0);
        }
        println!("{:<14} {:>11.1}  {:>11.1}  {:>11.1}", method.name(), aps[0], aps[1], aps[2]);
    }
    println!(
        "\n(AP@IoU=0.5, higher is better — recovery should sit close to the true-pose column)"
    );
}

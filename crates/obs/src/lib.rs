//! **bba-obs**: a zero-dependency structured-observability substrate for
//! the BB-Align pipeline.
//!
//! The paper sells BB-Align as *lightweight and dependable* under degraded
//! conditions; dependability in a deployed stack means the per-stage
//! latencies, inlier health, and link behaviour are visible at runtime,
//! not only in offline bench binaries. This crate provides that layer as
//! three primitives behind one [`Recorder`] handle:
//!
//! * **hierarchical timed spans** ([`Recorder::span`]) — RAII guards that
//!   time a region and file it under a `/`-separated path built from the
//!   spans enclosing it on the same thread (`recover/stage1/mim`).
//!   Pre-measured durations slot into the same hierarchy via
//!   [`Recorder::record_span_ms`];
//! * **monotonic counters** ([`Recorder::incr`] / [`Recorder::add`]) and
//!   **gauges** ([`Recorder::gauge`], last-value-wins);
//! * **fixed-bucket histograms** ([`Recorder::observe`]) for value
//!   distributions (inlier counts, reassembly latencies). Span durations
//!   land in the same histogram shape.
//!
//! # Zero cost when disabled
//!
//! A [`Recorder`] is either *enabled* (backed by shared state) or
//! *disabled* (a `None`). Every recording method on a disabled recorder
//! returns before touching a lock, a clock, or the heap — the hot paths of
//! the recovery pipeline carry a disabled recorder by default and the
//! counting-allocator test in `tests/alloc_free.rs` pins that the whole
//! API surface performs **zero allocations** in that state.
//!
//! # Export
//!
//! [`Recorder::snapshot`] freezes everything into a [`MetricsSnapshot`];
//! [`MetricsSnapshot::to_json`] renders it as JSON (hand-rolled — this
//! crate stays dependency-free) and [`MetricsSnapshot::write_json`] puts
//! it on disk, which is how the bench binaries produce the
//! `results/metrics_*.json` health artifacts CI uploads.
//!
//! # Example
//!
//! ```
//! let obs = bba_obs::Recorder::enabled();
//! {
//!     let _outer = obs.span("recover");
//!     let _inner = obs.span("stage1");
//!     obs.incr("recover.calls");
//!     obs.gauge("stage1.inliers_bv", 31.0);
//!     obs.observe("link.reassembly_ms", 2.4);
//! }
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("recover.calls"), Some(1));
//! assert!(snap.span("recover/stage1").is_some());
//! assert!(snap.to_json().contains("\"recover/stage1\""));
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::marker::PhantomData;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default histogram bucket upper bounds, shared by spans (milliseconds)
/// and value observations. Log-spaced from 50 µs to 2.5 s; an implicit
/// final bucket catches everything above the last bound.
pub const DEFAULT_BUCKET_BOUNDS: [f64; 15] =
    [0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0];

thread_local! {
    /// The calling thread's current span path ("a/b/c"). Guards append on
    /// entry and truncate back on drop, so the string is only ever grown
    /// and shrunk at the tail.
    static SPAN_PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// A fixed-bucket histogram with running count/sum/min/max.
#[derive(Debug, Clone)]
struct Hist {
    counts: [u64; DEFAULT_BUCKET_BOUNDS.len() + 1],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Hist {
    fn new(first: f64) -> Self {
        let mut h = Hist {
            counts: [0; DEFAULT_BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        };
        h.record(first);
        h
    }

    fn record(&mut self, v: f64) {
        let idx = DEFAULT_BUCKET_BOUNDS.iter().position(|&b| v <= b);
        self.counts[idx.unwrap_or(DEFAULT_BUCKET_BOUNDS.len())] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// The recorder's shared state. All maps are `BTreeMap` so snapshots and
/// JSON output come out in a stable, diff-friendly order.
#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    values: Mutex<BTreeMap<String, Hist>>,
    spans: Mutex<BTreeMap<String, Hist>>,
}

impl Inner {
    fn record_span(&self, path: &str, ms: f64) {
        let mut spans = self.spans.lock().expect("span map lock");
        match spans.get_mut(path) {
            Some(h) => h.record(ms),
            None => {
                spans.insert(path.to_string(), Hist::new(ms));
            }
        }
    }
}

/// A cloneable handle onto shared metric state — or a no-op.
///
/// Cloning is cheap (an `Arc` bump) and every clone feeds the same state,
/// so one enabled recorder can be handed to the aligner, both link
/// endpoints, and the parallel substrate, then snapshotted once at the
/// end. [`Recorder::default`] is the disabled recorder.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder backed by fresh shared state.
    pub fn enabled() -> Self {
        Recorder { inner: Some(Arc::new(Inner::default())) }
    }

    /// The no-op recorder: every recording method returns immediately
    /// without locking, timing, or allocating.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments the counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increments the counter `name` by `n`.
    pub fn add(&self, name: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        let mut counters = inner.counters.lock().expect("counter map lock");
        match counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                counters.insert(name.to_string(), n);
            }
        }
    }

    /// Sets the gauge `name` (last value wins).
    pub fn gauge(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut gauges = inner.gauges.lock().expect("gauge map lock");
        match gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records `value` into the value histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut values = inner.values.lock().expect("value map lock");
        match values.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                values.insert(name.to_string(), Hist::new(value));
            }
        }
    }

    /// Opens a timed span. The returned guard times until drop and files
    /// the elapsed milliseconds under the `/`-joined path of every span
    /// currently open on this thread — `span("a")` inside `span("b")`
    /// records as `"b/a"`. On a disabled recorder this is a no-op guard
    /// (no clock read, no allocation).
    ///
    /// The guard is thread-local by construction (`!Send`): spans opened
    /// on one thread cannot close another thread's path.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None, _not_send: PhantomData };
        };
        let prev_len = SPAN_PATH.with(|p| {
            let mut p = p.borrow_mut();
            let prev = p.len();
            if !p.is_empty() {
                p.push('/');
            }
            p.push_str(name);
            prev
        });
        Span {
            state: Some(SpanState { inner: Arc::clone(inner), prev_len, start: Instant::now() }),
            _not_send: PhantomData,
        }
    }

    /// Files a pre-measured duration (milliseconds) as a span named `name`
    /// under the thread's current span path, without opening a guard. This
    /// is how phases that already self-time (e.g. the stage-1 per-phase
    /// breakdown) join the hierarchy.
    pub fn record_span_ms(&self, name: &str, ms: f64) {
        let Some(inner) = &self.inner else { return };
        SPAN_PATH.with(|p| {
            let p = p.borrow();
            if p.is_empty() {
                inner.record_span(name, ms);
            } else {
                let mut full = String::with_capacity(p.len() + 1 + name.len());
                full.push_str(&p);
                full.push('/');
                full.push_str(name);
                inner.record_span(&full, ms);
            }
        });
    }

    /// Freezes the current state into an immutable snapshot. A disabled
    /// recorder yields an empty snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot {
                counters: Vec::new(),
                gauges: Vec::new(),
                spans: Vec::new(),
                values: Vec::new(),
            };
        };
        let summarise = |m: &Mutex<BTreeMap<String, Hist>>| -> Vec<HistSummary> {
            m.lock()
                .expect("histogram map lock")
                .iter()
                .map(|(name, h)| HistSummary {
                    name: name.clone(),
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    buckets: DEFAULT_BUCKET_BOUNDS
                        .iter()
                        .copied()
                        .chain(std::iter::once(f64::INFINITY))
                        .zip(h.counts.iter().copied())
                        .collect(),
                })
                .collect()
        };
        MetricsSnapshot {
            counters: inner
                .counters
                .lock()
                .expect("counter map lock")
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: inner
                .gauges
                .lock()
                .expect("gauge map lock")
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            spans: summarise(&inner.spans),
            values: summarise(&inner.values),
        }
    }
}

struct SpanState {
    inner: Arc<Inner>,
    prev_len: usize,
    start: Instant,
}

/// RAII guard for a timed span (see [`Recorder::span`]).
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    state: Option<SpanState>,
    /// Spans manipulate a thread-local path stack; moving the guard to
    /// another thread would corrupt both threads' hierarchies.
    _not_send: PhantomData<*const ()>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else { return };
        let ms = state.start.elapsed().as_secs_f64() * 1e3;
        SPAN_PATH.with(|p| {
            let mut p = p.borrow_mut();
            state.inner.record_span(&p, ms);
            p.truncate(state.prev_len);
        });
    }
}

/// Frozen statistics of one histogram (a span path or a value series).
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Metric name (for spans: the full `/`-joined path).
    pub name: String,
    /// Number of recordings.
    pub count: u64,
    /// Sum of all recorded values (for spans: total milliseconds).
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// `(upper_bound, count)` per bucket; the final bound is
    /// `f64::INFINITY` (rendered as `null` in JSON).
    pub buckets: Vec<(f64, u64)>,
}

impl HistSummary {
    /// Mean of the recorded values (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Approximate `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket that holds the target rank.
    ///
    /// Each bucket's mass is assumed uniformly spread between its lower
    /// and upper bound; the overflow bucket and any bound beyond the
    /// observed range are clamped to `[min, max]`, so the result always
    /// lies inside the recorded range. With the log-spaced
    /// [`DEFAULT_BUCKET_BOUNDS`] the relative error is bounded by the
    /// bucket width (≤ 2.5× between adjacent bounds). Returns `None` when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        // Accumulate the rank as an integer: summing bucket counts in
        // floating point drifts for count-heavy histograms, and a `cum`
        // that lands below `target` in the final occupied bucket used to
        // fall through to `max` — making quantiles non-monotonic near
        // q = 1. Integer `cum` reaches exactly `self.count`, and
        // `target <= count as f64` by construction, so the last occupied
        // bucket always satisfies the comparison.
        let mut cum: u64 = 0;
        let mut lower = self.min;
        for &(bound, n) in &self.buckets {
            let upper = if bound.is_finite() { bound.min(self.max) } else { self.max };
            if n > 0 {
                let next = cum + n;
                if next as f64 >= target {
                    let frac = ((target - cum as f64) / n as f64).clamp(0.0, 1.0);
                    let lo = lower.clamp(self.min, self.max);
                    let hi = upper.max(lo);
                    return Some(lo + (hi - lo) * frac);
                }
                cum = next;
            }
            lower = upper.max(lower);
        }
        Some(self.max)
    }

    /// Approximate median — `quantile(0.5)`.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Approximate 90th percentile — `quantile(0.9)`.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.9)
    }

    /// Approximate 99th percentile — `quantile(0.99)`.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// An immutable, exportable freeze of a [`Recorder`]'s state.
///
/// All collections are sorted by name, so two snapshots of the same run
/// compare and diff cleanly.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Span statistics, sorted by path; all durations in milliseconds.
    pub spans: Vec<HistSummary>,
    /// Value-histogram statistics, sorted by name.
    pub values: Vec<HistSummary>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.spans.is_empty()
            && self.values.is_empty()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Looks up a span by full path (e.g. `"recover/stage1/mim"`).
    pub fn span(&self, path: &str) -> Option<&HistSummary> {
        self.spans.iter().find(|h| h.name == path)
    }

    /// Looks up a value histogram by name.
    pub fn value(&self, name: &str) -> Option<&HistSummary> {
        self.values.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a JSON object with `counters`, `gauges`,
    /// `spans`, and `values` members. Spans and values serialise as
    /// `{count, total, mean, min, max, buckets: [[bound, n], ...]}` where
    /// span units are milliseconds and the final (overflow) bucket bound
    /// is `null`. Non-finite floats render as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_str_json(&mut out, k);
            let _ = write!(out, ": {v}");
        }
        push_close(&mut out, self.counters.is_empty(), "  ");
        out.push_str(",\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_str_json(&mut out, k);
            out.push_str(": ");
            push_f64(&mut out, *v);
        }
        push_close(&mut out, self.gauges.is_empty(), "  ");
        for (member, series) in [("spans", &self.spans), ("values", &self.values)] {
            let _ = write!(out, ",\n  \"{member}\": {{");
            for (i, h) in series.iter().enumerate() {
                push_sep(&mut out, i, "    ");
                push_str_json(&mut out, &h.name);
                let _ = write!(out, ": {{\"count\": {}, \"total\": ", h.count);
                push_f64(&mut out, h.sum);
                out.push_str(", \"mean\": ");
                push_f64(&mut out, h.mean());
                out.push_str(", \"min\": ");
                push_f64(&mut out, h.min);
                out.push_str(", \"max\": ");
                push_f64(&mut out, h.max);
                out.push_str(", \"buckets\": [");
                for (j, &(bound, n)) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push('[');
                    push_f64(&mut out, bound);
                    let _ = write!(out, ", {n}]");
                }
                out.push_str("]}");
            }
            push_close(&mut out, series.is_empty(), "  ");
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes [`MetricsSnapshot::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Opens the `i`-th entry of a JSON object: `,` between entries, then a
/// newline and indentation.
fn push_sep(out: &mut String, i: usize, indent: &str) {
    if i > 0 {
        out.push(',');
    }
    out.push('\n');
    out.push_str(indent);
}

/// Closes a JSON object opened with `{`: empty objects close inline.
fn push_close(out: &mut String, empty: bool, indent: &str) {
    if !empty {
        out.push('\n');
        out.push_str(indent);
    }
    out.push('}');
}

/// Appends `v` as a JSON number (`null` for non-finite values, which JSON
/// cannot represent).
fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{v}");
    // `{}` prints integral floats without a decimal point; keep the value
    // unambiguously a float for downstream parsers.
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Appends `s` as a JSON string literal.
fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let obs = Recorder::disabled();
        assert!(!obs.is_enabled());
        obs.incr("a");
        obs.add("a", 5);
        obs.gauge("g", 1.0);
        obs.observe("v", 2.0);
        obs.record_span_ms("s", 3.0);
        drop(obs.span("t"));
        let snap = obs.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.counter("a"), None);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let obs = Recorder::enabled();
        obs.incr("calls");
        obs.add("calls", 2);
        obs.gauge("inliers", 10.0);
        obs.gauge("inliers", 31.0); // last value wins
        let snap = obs.snapshot();
        assert_eq!(snap.counter("calls"), Some(3));
        assert_eq!(snap.gauge("inliers"), Some(31.0));
    }

    #[test]
    fn clones_share_state() {
        let obs = Recorder::enabled();
        let clone = obs.clone();
        clone.incr("shared");
        assert_eq!(obs.snapshot().counter("shared"), Some(1));
    }

    #[test]
    fn histograms_track_count_sum_min_max_and_buckets() {
        let obs = Recorder::enabled();
        for v in [0.04, 0.2, 7.0, 9999.0] {
            obs.observe("lat", v);
        }
        let snap = obs.snapshot();
        let h = snap.value("lat").expect("histogram exists");
        assert_eq!(h.count, 4);
        assert!((h.sum - 10_006.24).abs() < 1e-9);
        assert_eq!(h.min, 0.04);
        assert_eq!(h.max, 9999.0);
        assert!((h.mean() - 10_006.24 / 4.0).abs() < 1e-9);
        // 0.04 ≤ 0.05 (bucket 0), 0.2 ≤ 0.25 (bucket 2), 7.0 ≤ 10 (bucket
        // 7), 9999 overflows into the final (infinite) bucket.
        assert_eq!(h.buckets[0], (0.05, 1));
        assert_eq!(h.buckets[2], (0.25, 1));
        assert_eq!(h.buckets[7], (10.0, 1));
        let (bound, n) = *h.buckets.last().unwrap();
        assert!(bound.is_infinite());
        assert_eq!(n, 1);
        assert_eq!(h.buckets.iter().map(|&(_, n)| n).sum::<u64>(), h.count);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let obs = Recorder::enabled();
        // 100 values uniformly 1..=100 ms: p50 ≈ 50, p99 ≈ 99.
        for v in 1..=100 {
            obs.observe("lat", v as f64);
        }
        let snap = obs.snapshot();
        let h = snap.value("lat").expect("histogram exists");
        let p50 = h.p50().expect("non-empty");
        let p90 = h.p90().expect("non-empty");
        let p99 = h.p99().expect("non-empty");
        // Bucket interpolation over log-spaced bounds is coarse; accept
        // the bucket-width error but require the right neighbourhood and
        // monotonic ordering.
        assert!((25.0..=75.0).contains(&p50), "p50={p50}");
        assert!((75.0..=100.0).contains(&p90), "p90={p90}");
        assert!((90.0..=100.0).contains(&p99), "p99={p99}");
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotonic");
        // Extremes pin to the observed range.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn quantiles_of_single_value_collapse_to_it() {
        let obs = Recorder::enabled();
        obs.observe("one", 3.2);
        let snap = obs.snapshot();
        let h = snap.value("one").unwrap();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).expect("non-empty");
            assert!((v - 3.2).abs() < 1e-12, "q={q} gave {v}");
        }
    }

    #[test]
    fn quantiles_stay_inside_observed_range_with_overflow_bucket() {
        let obs = Recorder::enabled();
        // Everything lands in the overflow bucket (bound = inf); quantiles
        // must still be finite and clamped to [min, max].
        for v in [3000.0, 4000.0, 5000.0] {
            obs.observe("big", v);
        }
        let snap = obs.snapshot();
        let h = snap.value("big").unwrap();
        for q in [0.1, 0.5, 0.99] {
            let v = h.quantile(q).expect("non-empty");
            assert!(v.is_finite());
            assert!((3000.0..=5000.0).contains(&v), "q={q} gave {v}");
        }
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = HistSummary {
            name: "empty".into(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Vec::new(),
        };
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        let obs = Recorder::enabled();
        {
            let _a = obs.span("recover");
            obs.record_span_ms("stage1/mim", 4.5);
            {
                let _b = obs.span("stage2");
            }
        }
        {
            let _c = obs.span("fusion");
        }
        let snap = obs.snapshot();
        assert!(snap.span("recover").is_some());
        assert!(snap.span("recover/stage2").is_some());
        assert!(snap.span("fusion").is_some());
        let mim = snap.span("recover/stage1/mim").expect("pre-measured span nested");
        assert_eq!(mim.count, 1);
        assert_eq!(mim.sum, 4.5);
        // The path stack fully unwound: a fresh top-level span is flat.
        {
            let _d = obs.span("after");
        }
        assert!(obs.snapshot().span("after").is_some());
    }

    #[test]
    fn record_span_ms_at_top_level_is_flat() {
        let obs = Recorder::enabled();
        obs.record_span_ms("solo", 1.25);
        let snap = obs.snapshot();
        assert_eq!(snap.span("solo").map(|h| h.sum), Some(1.25));
    }

    #[test]
    fn json_renders_all_sections() {
        let obs = Recorder::enabled();
        obs.incr("n");
        obs.gauge("g", 2.5);
        obs.observe("v", 1.0);
        obs.record_span_ms("s", 3.0);
        let json = obs.snapshot().to_json();
        for needle in
            ["\"counters\"", "\"gauges\"", "\"spans\"", "\"values\"", "\"n\": 1", "\"g\": 2.5"]
        {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // The overflow bucket bound must be null, not Infinity.
        assert!(json.contains("[null, 0]"), "overflow bound should render as null:\n{json}");
        assert!(!json.contains("inf"), "JSON cannot carry Infinity:\n{json}");
    }

    #[test]
    fn json_parses_with_the_workspace_parser() {
        let obs = Recorder::enabled();
        obs.incr("link.messages_delivered");
        obs.gauge("stage1.inliers_bv", 25.0);
        obs.observe("link.reassembly_ms", 0.8);
        {
            let _s = obs.span("recover");
        }
        let json = obs.snapshot().to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("snapshot JSON must parse");
        let serde_json::Value::Map(members) = v else { panic!("top level must be an object") };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["counters", "gauges", "spans", "values"]);
    }

    #[test]
    fn empty_snapshot_renders_empty_objects() {
        let json = Recorder::enabled().snapshot().to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("empty snapshot parses");
        let serde_json::Value::Map(members) = v else { panic!("top level must be an object") };
        assert_eq!(members.len(), 4);
        for (k, m) in members {
            assert_eq!(m, serde_json::Value::Map(Vec::new()), "member {k} should be empty");
        }
    }

    #[test]
    fn string_escaping_survives_hostile_names() {
        let obs = Recorder::enabled();
        obs.incr("weird\"name\\with\nnewline");
        let json = obs.snapshot().to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("escaped JSON parses");
        let serde_json::Value::Map(members) = v else { panic!("object") };
        let serde_json::Value::Map(counters) = &members[0].1 else { panic!("counters object") };
        assert_eq!(counters[0].0, "weird\"name\\with\nnewline");
    }
}

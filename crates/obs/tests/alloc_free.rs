//! Proof that the disabled recorder is free on the hot path.
//!
//! The recovery pipeline carries a [`bba_obs::Recorder`] through its
//! innermost loops (stage-1 phases, session pumps, the parallel
//! substrate); the contract that makes that acceptable is that a
//! *disabled* recorder never touches the heap — same counting-global-
//! allocator pattern as `crates/signal/tests/alloc_free.rs`, in its own
//! integration binary so no other test's allocations pollute the counter.

use bba_obs::Recorder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_recorder_hot_path_allocates_nothing() {
    let obs = Recorder::disabled();
    let clone = obs.clone(); // handles are passed around by clone

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for k in 0..1000u64 {
        obs.incr("recover.calls");
        obs.add("link.datagrams_sent", k);
        obs.gauge("stage1.inliers_bv", k as f64);
        obs.observe("link.reassembly_ms", k as f64 * 0.1);
        obs.record_span_ms("stage1/mim", 1.0);
        let outer = clone.span("recover");
        let inner = clone.span("stage1");
        drop(inner);
        drop(outer);
        assert!(!obs.is_enabled());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "a disabled recorder must never allocate");
}

//! Exactness and monotonicity of [`HistSummary::quantile`] on
//! count-heavy histograms.
//!
//! The cumulative rank used to be accumulated in floating point; above
//! ~2⁵³ recordings the per-bucket additions stop being exact, the
//! accumulated rank drifts below the target, and a near-1 quantile slid
//! past its true bucket — in the worst case falling through to `max`
//! even though the target rank lay many buckets earlier. The fix keeps
//! the rank as an integer, which makes the bucket walk exact for any
//! `u64` count.

use bba_obs::HistSummary;
use proptest::prelude::*;

/// Builds a consistent histogram over unit-width buckets `(i, i+1]` with
/// the given counts, plus an empty overflow bucket.
fn histogram(counts: &[u64], min: f64, max: f64) -> HistSummary {
    let mut buckets: Vec<(f64, u64)> =
        counts.iter().enumerate().map(|(i, &n)| ((i + 1) as f64, n)).collect();
    buckets.push((f64::INFINITY, 0));
    let count: u64 = counts.iter().sum();
    HistSummary { name: "q".into(), count, sum: 0.0, min, max, buckets }
}

#[test]
fn huge_counts_do_not_slide_quantiles_past_their_bucket() {
    // Regression: 2^53 recordings in the first eight buckets, then ten
    // single recordings. Float accumulation gets stuck at 2^53 (adding 1
    // rounds back down), so any rank beyond it used to fall through to
    // `max` (17.5) — even for a target rank just 2.5 past the pile,
    // whose true home is the tenth bucket.
    let mut counts = vec![1u64 << 50; 8];
    counts.extend([1u64; 10]);
    let h = histogram(&counts, 0.5, 17.5);
    assert_eq!(h.count, (1u64 << 53) + 10);

    let q = ((1u64 << 53) as f64 + 2.5) / h.count as f64;
    let v = h.quantile(q).expect("non-empty");
    assert!(v <= 10.0, "rank 2^53+2.5 lies in the tenth bucket, got {v}");

    // The extreme tail still reaches the top of the recorded range…
    assert_eq!(h.quantile(1.0), Some(17.5));
    // …and quantiles stay monotonic on the approach.
    let grid = [0.0, 0.5, 0.9, q, 1.0 - 1e-16, 1.0 - f64::EPSILON, 1.0];
    let vals: Vec<f64> = grid.iter().map(|&g| h.quantile(g).unwrap()).collect();
    for w in vals.windows(2) {
        assert!(w[0] <= w[1], "non-monotonic quantiles: {vals:?}");
    }
}

proptest! {
    /// For arbitrary (including astronomically count-heavy) histograms:
    /// quantiles exist, stay inside `[min, max]`, are monotonic in `q`
    /// up to and including `q = 1 − ε`, and land in exactly the bucket
    /// that holds the target rank.
    #[test]
    fn quantile_is_monotonic_and_bucket_exact(
        counts in prop::collection::vec(0u64..(1u64 << 53), 1..12),
        eps in 1e-18f64..1e-9,
        q in 0.0f64..1.0,
    ) {
        let occupied: Vec<usize> =
            (0..counts.len()).filter(|&i| counts[i] > 0).collect();
        prop_assume!(!occupied.is_empty());
        let last = *occupied.last().unwrap();
        let max = (last + 1) as f64 - 0.25;
        let h = histogram(&counts, 0.5, max);

        let grid = [0.0, q * 0.5, q, 1.0 - eps, 1.0];
        let vals: Vec<f64> = grid
            .iter()
            .map(|&g| h.quantile(g).expect("non-empty histogram"))
            .collect();
        for v in &vals {
            prop_assert!(*v >= h.min && *v <= h.max, "{v} outside [{}, {}]", h.min, h.max);
        }
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1], "non-monotonic: {vals:?}");
        }

        // Bucket exactness: the result must not exceed the clamped upper
        // bound of the bucket that holds the target rank (integer walk).
        let target = q * h.count as f64;
        let mut cum = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            cum += n;
            if n > 0 && cum as f64 >= target {
                let upper = ((i + 1) as f64).min(max);
                let v = h.quantile(q).unwrap();
                prop_assert!(
                    v <= upper + 1e-9,
                    "quantile({q}) = {v} escaped bucket {i} (upper {upper})"
                );
                break;
            }
        }
    }
}

//! Property-based tests for the VIPS and ICP baselines.

use bba_baselines::icp::{icp_2d, IcpConfig};
use bba_baselines::vips::{vips_match, VipsConfig};
use bba_geometry::{Iso2, Vec2};
use proptest::prelude::*;

fn any_iso2() -> impl Strategy<Value = Iso2> {
    (-3.0..3.0f64, -30.0..30.0f64, -30.0..30.0f64)
        .prop_map(|(a, x, y)| Iso2::new(a, Vec2::new(x, y)))
}

/// Object layouts with pairwise separations of at least 3 m (distance
/// consistency needs distinct distances).
fn object_layout() -> impl Strategy<Value = Vec<Vec2>> {
    proptest::collection::vec(
        (-60.0..60.0f64, -60.0..60.0f64).prop_map(|(x, y)| Vec2::new(x, y)),
        4..10,
    )
    .prop_filter("min pairwise separation", |pts| {
        pts.iter().enumerate().all(|(i, a)| pts.iter().skip(i + 1).all(|b| a.distance(*b) > 3.0))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn vips_recovers_clean_layouts(t in any_iso2(), dst in object_layout()) {
        let src: Vec<Vec2> = dst.iter().map(|&p| t.inverse().apply(p)).collect();
        // Rotationally ambiguous layouts may legitimately fail (Err); they
        // must not produce a confidently wrong answer silently.
        if let Ok(r) = vips_match(&src, &dst, &VipsConfig::default()) {
            let (dt, dr) = r.transform.error_to(&t);
            prop_assert!(dt < 0.2 && dr < 0.02, "error {dt} m / {dr} rad");
            // Matches are one-to-one.
            let mut ss: Vec<usize> = r.matches.iter().map(|&(i, _)| i).collect();
            ss.sort_unstable();
            ss.dedup();
            prop_assert_eq!(ss.len(), r.matches.len());
        }
    }

    #[test]
    fn vips_never_matches_more_than_min_side(t in any_iso2(), dst in object_layout(),
                                             extra in object_layout()) {
        let mut src: Vec<Vec2> = dst.iter().map(|&p| t.inverse().apply(p)).collect();
        src.extend(extra.iter().map(|&p| p + Vec2::new(500.0, 500.0)));
        if let Ok(r) = vips_match(&src, &dst, &VipsConfig::default()) {
            prop_assert!(r.matches.len() <= src.len().min(dst.len()));
            for &(i, a) in &r.matches {
                prop_assert!(i < src.len() && a < dst.len());
            }
        }
    }

    #[test]
    fn icp_identity_for_identical_clouds(pts in object_layout()) {
        let r = icp_2d(&pts, &pts, Iso2::IDENTITY, &IcpConfig::default()).unwrap();
        prop_assert!(r.transform.approx_eq(&Iso2::IDENTITY, 1e-6, 1e-6));
        prop_assert!(r.rmse < 1e-9);
    }

    #[test]
    fn icp_never_increases_rmse_vs_warm_start(
        pts in object_layout(), dx in -0.5..0.5f64, dy in -0.5..0.5f64,
    ) {
        // Truth: small translation. Start from identity.
        let t = Iso2::from_translation(Vec2::new(dx, dy));
        let dst: Vec<Vec2> = pts.iter().map(|&p| t.apply(p)).collect();
        let r = icp_2d(&pts, &dst, Iso2::IDENTITY, &IcpConfig::default()).unwrap();
        // Final rmse must be no worse than doing nothing.
        let naive_rmse = (dx * dx + dy * dy).sqrt();
        prop_assert!(r.rmse <= naive_rmse + 1e-9, "rmse {} vs naive {}", r.rmse, naive_rmse);
    }
}

//! Classic 2-D point-to-point Iterative Closest Point.
//!
//! Included as the rigid-registration baseline of the paper's related work
//! (§II: ICP "requires similar sensor configurations" and a decent initial
//! guess). The benchmark harness uses it to illustrate why raw point
//! registration is a poor fit for heterogeneous V2V pairs.

use bba_geometry::{fit_rigid_2d, Iso2, Vec2};
use serde::{Deserialize, Serialize};

/// ICP parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IcpConfig {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Pairs farther apart than this (m) are excluded from each fit.
    pub max_pair_distance: f64,
    /// Convergence threshold on the per-iteration transform update
    /// (translation metres; rotation uses the same number in radians).
    pub tolerance: f64,
}

impl Default for IcpConfig {
    fn default() -> Self {
        IcpConfig { max_iterations: 50, max_pair_distance: 5.0, tolerance: 1e-4 }
    }
}

/// ICP output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IcpResult {
    /// Estimated transform mapping `src` onto `dst` (includes the initial
    /// guess).
    pub transform: Iso2,
    /// Iterations executed.
    pub iterations: usize,
    /// Root-mean-square distance of the final matched pairs (m).
    pub rmse: f64,
    /// Number of pairs used in the final fit.
    pub pairs: usize,
    /// True when the update fell below tolerance before the iteration cap.
    pub converged: bool,
}

/// Runs point-to-point ICP from an initial guess.
///
/// Returns `None` when fewer than two usable pairs ever form (e.g. empty
/// inputs or no overlap within `max_pair_distance`).
pub fn icp_2d(src: &[Vec2], dst: &[Vec2], initial: Iso2, config: &IcpConfig) -> Option<IcpResult> {
    if src.len() < 2 || dst.len() < 2 {
        return None;
    }
    // Uniform grid over dst for nearest-neighbour queries.
    let grid = NnGrid::build(dst, config.max_pair_distance.max(0.5));

    let mut transform = initial;
    let mut iterations = 0;
    let mut converged = false;
    let mut last_rmse = f64::INFINITY;
    let mut last_pairs = 0usize;

    for it in 0..config.max_iterations {
        iterations = it + 1;
        let mut pairs_src = Vec::new();
        let mut pairs_dst = Vec::new();
        let mut sq_sum = 0.0;
        for &p in src {
            let q = transform.apply(p);
            if let Some((nn, d_sq)) = grid.nearest(q, config.max_pair_distance) {
                pairs_src.push(p);
                pairs_dst.push(nn);
                sq_sum += d_sq;
            }
        }
        if pairs_src.len() < 2 {
            return None;
        }
        last_pairs = pairs_src.len();
        last_rmse = (sq_sum / pairs_src.len() as f64).sqrt();
        let Ok(update) = fit_rigid_2d(&pairs_src, &pairs_dst) else {
            break;
        };
        let (dt, dr) = update.error_to(&transform);
        transform = update;
        if dt < config.tolerance && dr < config.tolerance {
            converged = true;
            break;
        }
    }

    Some(IcpResult { transform, iterations, rmse: last_rmse, pairs: last_pairs, converged })
}

/// A uniform-grid nearest-neighbour index over 2-D points.
struct NnGrid {
    cell: f64,
    map: std::collections::HashMap<(i64, i64), Vec<Vec2>>,
}

impl NnGrid {
    fn build(points: &[Vec2], cell: f64) -> Self {
        let mut map: std::collections::HashMap<(i64, i64), Vec<Vec2>> =
            std::collections::HashMap::new();
        for &p in points {
            map.entry(Self::key(p, cell)).or_default().push(p);
        }
        NnGrid { cell, map }
    }

    fn key(p: Vec2, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Nearest point within `radius`, with its squared distance.
    fn nearest(&self, q: Vec2, radius: f64) -> Option<(Vec2, f64)> {
        let reach = (radius / self.cell).ceil() as i64;
        let (kx, ky) = Self::key(q, self.cell);
        let mut best: Option<(Vec2, f64)> = None;
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                if let Some(bucket) = self.map.get(&(kx + dx, ky + dy)) {
                    for &p in bucket {
                        let d = (p - q).norm_sq();
                        if d <= radius * radius && best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((p, d));
                        }
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Vec<Vec2> {
        // A pseudo-random scatter with ≥ ~2 m point separation: nearest
        // neighbours are unambiguous for sub-metre displacements.
        (0..60)
            .map(|i| Vec2::new(((i * 37) % 97) as f64 * 0.7, ((i * 53) % 89) as f64 * 0.55))
            .collect()
    }

    #[test]
    fn converges_from_good_initial_guess() {
        let truth = Iso2::new(0.01, Vec2::new(0.5, -0.3));
        let dst: Vec<Vec2> = cloud().iter().map(|&p| truth.apply(p)).collect();
        let r = icp_2d(&cloud(), &dst, Iso2::IDENTITY, &IcpConfig::default()).unwrap();
        assert!(r.converged);
        assert!(r.transform.approx_eq(&truth, 1e-3, 1e-3), "got {}", r.transform);
        assert!(r.rmse < 1e-3);
    }

    #[test]
    fn diverges_or_stalls_from_bad_initial_guess() {
        // A gross initial error (far beyond the pairing radius) leaves ICP
        // without pairs — the documented failure mode for V2V-scale errors.
        let truth = Iso2::new(1.2, Vec2::new(40.0, 25.0));
        let dst: Vec<Vec2> = cloud().iter().map(|&p| truth.apply(p)).collect();
        let r = icp_2d(&cloud(), &dst, Iso2::IDENTITY, &IcpConfig::default());
        match r {
            None => {}
            Some(r) => {
                let (dt, _) = r.transform.error_to(&truth);
                assert!(dt > 1.0, "ICP should not recover a 47 m error, got {dt}");
            }
        }
    }

    #[test]
    fn partial_overlap_still_converges() {
        let truth = Iso2::new(-0.005, Vec2::new(0.4, 0.3));
        let full = cloud();
        let dst: Vec<Vec2> = full.iter().map(|&p| truth.apply(p)).collect();
        // Source only sees 60 % of the structure.
        let src: Vec<Vec2> = full.iter().take(36).copied().collect();
        let r = icp_2d(&src, &dst, Iso2::IDENTITY, &IcpConfig::default()).unwrap();
        assert!(r.transform.approx_eq(&truth, 0.05, 0.02), "got {}", r.transform);
    }

    #[test]
    fn empty_inputs_return_none() {
        assert!(icp_2d(&[], &cloud(), Iso2::IDENTITY, &IcpConfig::default()).is_none());
        assert!(icp_2d(&cloud(), &[], Iso2::IDENTITY, &IcpConfig::default()).is_none());
    }

    #[test]
    fn identity_on_identical_clouds() {
        let pts = cloud();
        let r = icp_2d(&pts, &pts, Iso2::IDENTITY, &IcpConfig::default()).unwrap();
        assert!(r.transform.approx_eq(&Iso2::IDENTITY, 1e-9, 1e-9));
        assert_eq!(r.pairs, pts.len());
    }

    #[test]
    fn nn_grid_finds_nearest() {
        let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(5.0, 5.0), Vec2::new(-3.0, 2.0)];
        let grid = NnGrid::build(&pts, 1.0);
        let (nn, d) = grid.nearest(Vec2::new(4.6, 5.2), 2.0).unwrap();
        assert_eq!(nn, Vec2::new(5.0, 5.0));
        assert!(d < 0.25);
        assert!(grid.nearest(Vec2::new(100.0, 100.0), 2.0).is_none());
    }
}

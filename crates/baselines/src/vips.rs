//! VIPS-style spectral graph matching for relative pose estimation.

use bba_geometry::{fit_rigid_2d, Iso2, Vec2};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Parameters of the spectral matcher.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VipsConfig {
    /// Distance-consistency kernel width σ (m): affinity between candidate
    /// correspondences `(i,a)` and `(j,b)` is
    /// `exp(−(d_ij − d_ab)² / σ²)` when the discrepancy is below the gate.
    pub sigma: f64,
    /// Hard gate on `|d_ij − d_ab|` (m); beyond it the affinity is 0.
    pub distance_gate: f64,
    /// Power-iteration steps for the leading eigenvector.
    pub power_iterations: usize,
    /// Minimum matched pairs required to fit a pose.
    pub min_matches: usize,
    /// Keep only matches whose eigenvector weight is at least this fraction
    /// of the strongest match's weight.
    pub weight_floor: f64,
}

impl Default for VipsConfig {
    fn default() -> Self {
        VipsConfig {
            sigma: 1.2,
            distance_gate: 3.0,
            power_iterations: 60,
            min_matches: 2,
            weight_floor: 0.1,
        }
    }
}

/// Output of the spectral matcher.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VipsResult {
    /// Estimated rigid transform mapping `src` (other car) centres onto
    /// `dst` (ego) centres.
    pub transform: Iso2,
    /// Matched index pairs `(src, dst)`.
    pub matches: Vec<(usize, usize)>,
    /// Eigenvector confidence of the accepted matches (descending).
    pub weights: Vec<f64>,
}

/// Failure modes of the spectral matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VipsError {
    /// One of the inputs has no objects.
    EmptyInput,
    /// Fewer consistent matches than [`VipsConfig::min_matches`].
    TooFewMatches {
        /// Matches found.
        got: usize,
        /// Matches required.
        required: usize,
    },
    /// The matched set was geometrically degenerate (coincident points).
    Degenerate,
}

impl fmt::Display for VipsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VipsError::EmptyInput => write!(f, "graph matching requires objects on both sides"),
            VipsError::TooFewMatches { got, required } => {
                write!(f, "only {got} consistent matches, {required} required")
            }
            VipsError::Degenerate => write!(f, "matched points are degenerate"),
        }
    }
}

impl Error for VipsError {}

/// Matches the object centres detected by the other car (`src`) to those
/// detected by the ego car (`dst`) and estimates the relative pose.
///
/// # Errors
///
/// Returns [`VipsError`] when either side is empty, the affinity graph
/// yields too few one-to-one matches, or the matched set is degenerate.
pub fn vips_match(
    src: &[Vec2],
    dst: &[Vec2],
    config: &VipsConfig,
) -> Result<VipsResult, VipsError> {
    let n = src.len();
    let m = dst.len();
    if n == 0 || m == 0 {
        return Err(VipsError::EmptyInput);
    }

    // Candidate correspondences: the full bipartite set (n·m). For V2V
    // object counts (≤ ~30 per side) this stays small.
    let num_c = n * m;
    let cand = |c: usize| (c / m, c % m); // -> (src index, dst index)

    // Affinity matrix (dense, symmetric, zero diagonal).
    let sigma_sq = config.sigma * config.sigma;
    let mut w = vec![0.0f64; num_c * num_c];
    for c1 in 0..num_c {
        let (i, a) = cand(c1);
        for c2 in (c1 + 1)..num_c {
            let (j, b) = cand(c2);
            if i == j || a == b {
                continue; // conflicting assignments reinforce nothing
            }
            let d_src = src[i].distance(src[j]);
            let d_dst = dst[a].distance(dst[b]);
            let diff = (d_src - d_dst).abs();
            if diff < config.distance_gate {
                let aff = (-(diff * diff) / sigma_sq).exp();
                w[c1 * num_c + c2] = aff;
                w[c2 * num_c + c1] = aff;
            }
        }
    }

    // Leading eigenvector by power iteration.
    let mut x = vec![1.0 / (num_c as f64).sqrt(); num_c];
    let mut y = vec![0.0f64; num_c];
    for _ in 0..config.power_iterations {
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &w[r * num_c..(r + 1) * num_c];
            *yr = row.iter().zip(&x).map(|(wij, xj)| wij * xj).sum();
        }
        let norm: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            break; // no consistent structure at all
        }
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }

    // A candidate with zero affinity row support never received evidence;
    // an all-zero affinity matrix leaves the eigenvector at its uniform
    // initialisation, which must not be mistaken for consensus.
    let support: Vec<f64> =
        (0..num_c).map(|r| w[r * num_c..(r + 1) * num_c].iter().sum()).collect();

    // Candidate shortlist: the strongest eigenvector entries (conflicts
    // allowed at this point).
    let mut order: Vec<usize> = (0..num_c).filter(|&c| support[c] > 0.0 && x[c] > 0.0).collect();
    order.sort_by(|&a, &b| x[b].total_cmp(&x[a]));
    let shortlist_len = order.len().min((4 * n.max(m)).max(16));
    let shortlist = &order[..shortlist_len];
    if shortlist.len() < 2 {
        return Err(VipsError::TooFewMatches { got: shortlist.len(), required: 2 });
    }

    // Geometric verification: the eigenvector proposes correspondences, a
    // rigid-consistency sweep disposes. Every non-conflicting candidate
    // pair defines a transform hypothesis; the hypothesis with the largest
    // one-to-one consistent support wins (ties broken by residual). This
    // is the verification stage real VIPS deployments add on top of
    // spectral matching — without it, the eigenvector is easily dominated
    // by spurious consistency among objects only one car observes.
    let verify_threshold = config.sigma.max(0.5) * 1.2;
    let consistent_set = |t: &Iso2| -> (Vec<(usize, usize)>, f64) {
        // Greedy 1-1 matching of transformed src to dst under the gate.
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        for (i, sp) in src.iter().enumerate() {
            let p = t.apply(*sp);
            for (a, q) in dst.iter().enumerate() {
                let d = p.distance(*q);
                if d <= verify_threshold {
                    pairs.push((i, a, d));
                }
            }
        }
        pairs.sort_by(|a, b| a.2.total_cmp(&b.2));
        let mut used_s = vec![false; n];
        let mut used_d = vec![false; m];
        let mut set = Vec::new();
        let mut residual = 0.0;
        for (i, a, d) in pairs {
            if !used_s[i] && !used_d[a] {
                used_s[i] = true;
                used_d[a] = true;
                set.push((i, a));
                residual += d;
            }
        }
        (set, residual)
    };

    let mut best: Option<(Vec<(usize, usize)>, f64)> = None;
    for (k1, &c1) in shortlist.iter().enumerate() {
        let (i1, a1) = cand(c1);
        for &c2 in &shortlist[k1 + 1..] {
            let (i2, a2) = cand(c2);
            if i1 == i2 || a1 == a2 {
                continue;
            }
            if (src[i1] - src[i2]).norm_sq() < 1e-9 {
                continue;
            }
            let Ok(model) = fit_rigid_2d(&[src[i1], src[i2]], &[dst[a1], dst[a2]]) else {
                continue;
            };
            let (set, residual) = consistent_set(&model);
            let better = match &best {
                None => true,
                Some((bset, bres)) => {
                    set.len() > bset.len() || (set.len() == bset.len() && residual < *bres)
                }
            };
            if better {
                best = Some((set, residual));
            }
        }
    }

    let Some((matches, _)) = best else {
        return Err(VipsError::TooFewMatches { got: 0, required: config.min_matches.max(2) });
    };
    if matches.len() < config.min_matches.max(2) {
        return Err(VipsError::TooFewMatches {
            got: matches.len(),
            required: config.min_matches.max(2),
        });
    }

    let s: Vec<Vec2> = matches.iter().map(|&(i, _)| src[i]).collect();
    let d: Vec<Vec2> = matches.iter().map(|&(_, a)| dst[a]).collect();
    let transform = fit_rigid_2d(&s, &d).map_err(|_| VipsError::Degenerate)?;
    let weights = matches.iter().map(|&(i, a)| x[i * m + a]).collect();
    Ok(VipsResult { transform, matches, weights })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<Vec2> {
        // Irregular, non-collinear layout.
        (0..n)
            .map(|i| {
                let i = i as f64;
                Vec2::new(7.0 * i + (i * i * 3.7) % 11.0, ((i * i * i) % 17.0) - 8.0 + 2.0 * i)
            })
            .collect()
    }

    #[test]
    fn recovers_pose_from_clean_objects() {
        let truth = Iso2::new(-0.7, Vec2::new(15.0, 4.0));
        let dst = scatter(6);
        let src: Vec<Vec2> = dst.iter().map(|&p| truth.inverse().apply(p)).collect();
        let r = vips_match(&src, &dst, &VipsConfig::default()).unwrap();
        assert!(r.transform.approx_eq(&truth, 1e-6, 1e-6));
        assert_eq!(r.matches.len(), 6);
        // One-to-one.
        let mut srcs: Vec<usize> = r.matches.iter().map(|&(i, _)| i).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 6);
    }

    #[test]
    fn tolerates_partial_overlap() {
        // The other car sees 5 of the ego's 8 objects plus 2 of its own.
        let truth = Iso2::new(0.4, Vec2::new(-6.0, 9.0));
        let dst = scatter(8);
        let mut src: Vec<Vec2> = dst[..5].iter().map(|&p| truth.inverse().apply(p)).collect();
        src.push(Vec2::new(200.0, 0.0));
        src.push(Vec2::new(0.0, 300.0));
        let r = vips_match(&src, &dst, &VipsConfig::default()).unwrap();
        assert!(r.transform.approx_eq(&truth, 1e-6, 1e-6), "got {}", r.transform);
    }

    #[test]
    fn noisy_centres_degrade_gracefully() {
        let truth = Iso2::new(0.2, Vec2::new(10.0, -3.0));
        let dst = scatter(7);
        let src: Vec<Vec2> = dst
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                truth.inverse().apply(p)
                    + Vec2::new(0.2 * ((i % 3) as f64 - 1.0), 0.2 * ((i % 2) as f64 - 0.5))
            })
            .collect();
        let r = vips_match(&src, &dst, &VipsConfig::default()).unwrap();
        let (dt, dr) = r.transform.error_to(&truth);
        assert!(dt < 0.6, "translation error {dt}");
        assert!(dr < 0.08, "rotation error {dr}");
    }

    #[test]
    fn single_object_fails() {
        let e =
            vips_match(&[Vec2::ZERO], &[Vec2::new(1.0, 1.0)], &VipsConfig::default()).unwrap_err();
        assert!(matches!(e, VipsError::TooFewMatches { .. }));
    }

    #[test]
    fn empty_input_fails() {
        assert_eq!(
            vips_match(&[], &[Vec2::ZERO], &VipsConfig::default()).unwrap_err(),
            VipsError::EmptyInput
        );
    }

    #[test]
    fn inconsistent_geometry_yields_few_matches() {
        // Completely unrelated scatters: pairwise distances rarely agree.
        let src = vec![Vec2::new(0.0, 0.0), Vec2::new(50.0, 0.0), Vec2::new(0.0, 70.0)];
        let dst = vec![Vec2::new(0.0, 0.0), Vec2::new(11.0, 0.0), Vec2::new(0.0, 23.0)];
        let cfg = VipsConfig { min_matches: 3, ..Default::default() };
        assert!(vips_match(&src, &dst, &cfg).is_err());
    }

    #[test]
    fn symmetric_layout_is_ambiguous() {
        // A perfect square is rotationally symmetric: distance consistency
        // cannot distinguish the four rotations, so the transform may be
        // wrong — but the matcher must still return *a* one-to-one matching
        // or an error, never panic.
        let dst = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 10.0),
            Vec2::new(0.0, 10.0),
        ];
        let truth = Iso2::new(0.0, Vec2::new(5.0, 5.0));
        let src: Vec<Vec2> = dst.iter().map(|&p| truth.inverse().apply(p)).collect();
        match vips_match(&src, &dst, &VipsConfig::default()) {
            Ok(r) => assert_eq!(r.matches.len(), 4),
            Err(e) => assert!(matches!(e, VipsError::TooFewMatches { .. })),
        }
    }

    #[test]
    fn errors_are_displayable() {
        for e in [
            VipsError::EmptyInput,
            VipsError::TooFewMatches { got: 1, required: 2 },
            VipsError::Degenerate,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Baseline pose-recovery methods the paper compares against.
//!
//! * [`vips`] — a re-implementation of the VIPS-style **spectral graph
//!   matching** comparator (\[28\] in the paper): detected objects form graph
//!   nodes; pairwise-distance consistency forms a correspondence affinity
//!   matrix whose leading eigenvector (power iteration) is greedily
//!   discretised into one-to-one matches; a rigid transform is then fit on
//!   the matched centres. Its dependence on "dense spatial patterns formed
//!   by surrounding traffic" (paper §II) emerges directly from the
//!   algorithm: with < 3 common objects there are too few pairwise
//!   distances to disambiguate.
//! * [`icp`] — classic 2-D point-to-point ICP (paper reference \[17\]), the
//!   registration baseline that needs a good initial guess and homogeneous
//!   sensors.
//!
//! # Example
//!
//! ```
//! use bba_baselines::vips::{vips_match, VipsConfig};
//! use bba_geometry::{Iso2, Vec2};
//!
//! let truth = Iso2::new(0.3, Vec2::new(8.0, -2.0));
//! let ego: Vec<Vec2> = vec![
//!     Vec2::new(0.0, 0.0), Vec2::new(12.0, 3.0), Vec2::new(5.0, -7.0), Vec2::new(-6.0, 4.0),
//! ];
//! let other: Vec<Vec2> = ego.iter().map(|&p| truth.inverse().apply(p)).collect();
//! let result = vips_match(&other, &ego, &VipsConfig::default()).unwrap();
//! assert!(result.transform.approx_eq(&truth, 1e-6, 1e-6));
//! ```

#![warn(missing_docs)]

pub mod icp;
pub mod vips;

pub use icp::{icp_2d, IcpConfig, IcpResult};
pub use vips::{vips_match, VipsConfig, VipsError, VipsResult};

//! Correctness anchors for the frequency-domain fast path.
//!
//! The planned FFT, the real-input 2-D transform and the packed inverse
//! pairs are all verified against mathematics rather than against the old
//! implementation: a naive `O(N²)` reference DFT, the defining scaling
//! identities, and the pair-packing algebra.

use bba_signal::{
    fft2d, fft2d_inverse, fft_inplace, ifft_inplace, pad_to_pow2, rfft2d, shared_plan, Complex,
    FftPlan, FftWorkspace, Grid, LogGaborBank, LogGaborConfig, MaxIndexMap,
};
use proptest::prelude::*;
use std::f64::consts::PI;

/// Naive `O(N²)` reference DFT: `X[k] = Σ_n x[n]·e^{-2πi·kn/N}` evaluated
/// term by term — slow, obviously correct, and implementation-independent.
fn reference_dft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut sum = Complex::ZERO;
            for (j, &z) in x.iter().enumerate() {
                sum += z * Complex::cis(-2.0 * PI * (k * j % n) as f64 / n as f64);
            }
            sum
        })
        .collect()
}

/// Naive 2-D reference: row DFTs then column DFTs.
fn reference_dft2d(img: &Grid<f64>) -> Grid<Complex> {
    let (w, h) = (img.width(), img.height());
    let mut rows = Grid::new(w, h, Complex::ZERO);
    for v in 0..h {
        let row: Vec<Complex> = img.row(v).iter().map(|&x| Complex::from_real(x)).collect();
        for (u, z) in reference_dft(&row).into_iter().enumerate() {
            rows[(u, v)] = z;
        }
    }
    let mut out = Grid::new(w, h, Complex::ZERO);
    for u in 0..w {
        let col: Vec<Complex> = (0..h).map(|v| rows[(u, v)]).collect();
        for (v, z) in reference_dft(&col).into_iter().enumerate() {
            out[(u, v)] = z;
        }
    }
    out
}

fn rel_close(a: Complex, b: Complex, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The planned FFT matches the reference DFT at ≤1e-9 relative
    /// tolerance for every power-of-two length and arbitrary input.
    #[test]
    fn planned_fft_matches_reference_dft(
        log_n in 0usize..8,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = (seed.wrapping_mul(i as u64 + 1) % 1000) as f64 / 500.0 - 1.0;
                Complex::new(t, (t * 3.7).sin())
            })
            .collect();
        let expected = reference_dft(&x);
        let mut got = x.clone();
        fft_inplace(&mut got).unwrap();
        for (k, (&e, &g)) in expected.iter().zip(&got).enumerate() {
            prop_assert!(rel_close(e, g, 1e-9), "bin {k}: {e:?} vs {g:?}");
        }
    }

    /// `ifft` undoes the reference DFT (checks the 1/N convention against
    /// mathematics, not against `fft_inplace`).
    #[test]
    fn inverse_undoes_reference_dft(
        log_n in 0usize..7,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((seed >> (i % 48)) & 0xff) as f64 / 64.0, (i as f64).cos()))
            .collect();
        let mut back = reference_dft(&x);
        ifft_inplace(&mut back).unwrap();
        for (i, (&orig, &b)) in x.iter().zip(&back).enumerate() {
            prop_assert!(rel_close(orig, b, 1e-9), "sample {i}: {orig:?} vs {b:?}");
        }
    }

    /// `fft2d` and `rfft2d` both match the 2-D reference DFT, including on
    /// non-square grids.
    #[test]
    fn fft2d_and_rfft2d_match_reference(
        log_w in 0usize..5,
        log_h in 0usize..5,
        seed in any::<u64>(),
    ) {
        let (w, h) = (1usize << log_w, 1usize << log_h);
        let img = Grid::from_fn(w, h, |u, v| {
            (seed.wrapping_mul((u * h + v + 1) as u64) % 2000) as f64 / 1000.0 - 1.0
        });
        let expected = reference_dft2d(&img);
        let full = fft2d(&img).unwrap();
        let real = rfft2d(&img).unwrap();
        for i in 0..expected.len() {
            let e = expected.as_slice()[i];
            prop_assert!(rel_close(e, full.as_slice()[i], 1e-9), "fft2d bin {i}");
            prop_assert!(rel_close(e, real.as_slice()[i], 1e-9), "rfft2d bin {i}");
        }
    }

    /// Packing two real signals as `a + i·b` through one FFT recovers both
    /// spectra: the core identity behind the packed inverse pairs. Run
    /// forward here (the inverse direction is the same algebra conjugated):
    /// one transform of the packed signal must agree with two transforms of
    /// the singles.
    #[test]
    fn packed_pair_equals_two_single_transforms(
        log_n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let a: Vec<f64> = (0..n).map(|i| ((seed ^ i as u64) % 100) as f64 / 50.0 - 1.0).collect();
        let b: Vec<f64> = (0..n).map(|i| ((seed >> 7) ^ (3 * i) as u64) as f64 % 10.0).collect();
        // Two single transforms.
        let fa = reference_dft(&a.iter().map(|&x| Complex::from_real(x)).collect::<Vec<_>>());
        let fb = reference_dft(&b.iter().map(|&x| Complex::from_real(x)).collect::<Vec<_>>());
        // One packed transform, split by Hermitian symmetry.
        let mut packed: Vec<Complex> =
            a.iter().zip(&b).map(|(&x, &y)| Complex::new(x, y)).collect();
        fft_inplace(&mut packed).unwrap();
        for k in 0..n {
            let z = packed[k];
            let zc = packed[(n - k) % n].conj();
            let got_a = (z + zc).scale(0.5);
            let d = (z - zc).scale(0.5);
            let got_b = Complex::new(d.im, -d.re);
            prop_assert!(rel_close(fa[k], got_a, 1e-9), "A bin {k}: {:?} vs {got_a:?}", fa[k]);
            prop_assert!(rel_close(fb[k], got_b, 1e-9), "B bin {k}: {:?} vs {got_b:?}", fb[k]);
        }
    }
}

/// The packed-pair trick as actually deployed: the Log-Gabor amplitudes of
/// the fast path (24 packed inverse transforms) must match running each of
/// the 48 filters through its own single inverse transform.
#[test]
fn packed_inverse_pairs_match_single_inverses() {
    let cfg = LogGaborConfig::default();
    let bank = LogGaborBank::new(32, 32, cfg.clone());
    let img =
        Grid::from_fn(32, 32, |u, v| if (u * 7 + v * 3) % 11 < 2 { (u + v) as f64 } else { 0.0 });
    // Fast path.
    let fast = bank.orientation_amplitudes(&img).unwrap();
    // Reference path: per-filter single inverse transforms.
    let spectrum = fft2d(&img).unwrap();
    let scale_fix = 1.0; // fft2d_inverse already applies 1/(W·H)
    for (o, fast_amp) in fast.iter().enumerate() {
        let mut acc = Grid::new(32, 32, 0.0);
        for s in 0..cfg.num_scales {
            let filt = bank.filter(s, o);
            let mut filtered = Grid::new(32, 32, Complex::ZERO);
            for (i, z) in filtered.as_mut_slice().iter_mut().enumerate() {
                *z = spectrum.as_slice()[i].scale(filt.as_slice()[i]);
            }
            let spatial = fft2d_inverse(&filtered).unwrap();
            for (i, a) in acc.as_mut_slice().iter_mut().enumerate() {
                // The response is mathematically real; its amplitude is the
                // magnitude of the (real) spatial sample.
                *a += spatial.as_slice()[i].abs() * scale_fix;
            }
        }
        for i in 0..acc.len() {
            let (e, g) = (acc.as_slice()[i], fast_amp.as_slice()[i]);
            assert!(
                (e - g).abs() <= 1e-9 * (1.0 + e.abs()),
                "orientation {o} pixel {i}: {e} vs {g}"
            );
        }
    }
}

/// A workspace reused across different images (and sizes) produces the same
/// results as a fresh one — buffer recycling carries no state between
/// frames.
#[test]
fn workspace_reuse_matches_fresh_workspace() {
    let cfg = LogGaborConfig::default();
    let mut ws = FftWorkspace::new();
    for size in [16usize, 32, 16] {
        let bank = LogGaborBank::new(size, size, cfg.clone());
        for seed in 0..3u64 {
            let img = Grid::from_fn(size, size, |u, v| {
                ((u as u64 * 31 + v as u64 * 17 + seed * 7) % 13) as f64
            });
            let reused = MaxIndexMap::compute_with_workspace(&img, &bank, &mut ws);
            let fresh = MaxIndexMap::compute_with_workspace(&img, &bank, &mut FftWorkspace::new());
            assert_eq!(reused, fresh, "size {size} seed {seed}");
        }
    }
}

/// `pad_to_pow2` feeding the full MIM pipeline: the documented recipe for
/// non-power-of-two BV sizes must actually work end to end.
#[test]
fn pad_to_pow2_feeds_full_mim_path() {
    // 48×20 — neither dimension a power of two.
    let img = Grid::from_fn(48, 20, |u, v| if (u + 2 * v) % 9 == 0 { 3.0 } else { 0.0 });
    let padded = pad_to_pow2(&img);
    assert_eq!((padded.width(), padded.height()), (64, 32));
    let mim = MaxIndexMap::compute(&padded, &LogGaborConfig::default());
    assert_eq!((mim.width(), mim.height()), (64, 32));
    // The padded region is empty, so peak amplitude must sit inside the
    // original extent.
    let mut best = (0usize, 0usize);
    let mut best_a = f64::NEG_INFINITY;
    for (u, v, &a) in mim.amplitude.iter_cells() {
        if a > best_a {
            best_a = a;
            best = (u, v);
        }
    }
    assert!(best_a > 0.0);
    assert!(best.0 < 48 && best.1 < 20, "peak amplitude leaked into padding: {best:?}");
}

/// Plan reuse across lengths: transforms through a cached plan equal
/// transforms through a freshly built plan.
#[test]
fn shared_plan_matches_fresh_plan() {
    for n in [2usize, 16, 128] {
        let x: Vec<Complex> =
            (0..n).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos())).collect();
        let mut via_cache = x.clone();
        shared_plan(n).unwrap().forward(&mut via_cache);
        let mut via_fresh = x.clone();
        FftPlan::new(n).unwrap().forward(&mut via_fresh);
        assert_eq!(via_cache, via_fresh, "n = {n}");
    }
}

//! Property-based tests for FFT and MIM invariants.

use bba_signal::{fft2d, fft2d_inverse, fft_inplace, ifft_inplace, Complex, Grid};
use proptest::prelude::*;

fn complex_buf(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    proptest::collection::vec(
        (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(re, im)| Complex::new(re, im)),
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_identity(x in complex_buf(64)) {
        let mut y = x.clone();
        fft_inplace(&mut y).unwrap();
        ifft_inplace(&mut y).unwrap();
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_is_linear(a in complex_buf(32), b in complex_buf(32), s in -5.0..5.0f64) {
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fc: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y.scale(s)).collect();
        fft_inplace(&mut fa).unwrap();
        fft_inplace(&mut fb).unwrap();
        fft_inplace(&mut fc).unwrap();
        for i in 0..32 {
            let expect = fa[i] + fb[i].scale(s);
            prop_assert!((fc[i] - expect).abs() < 1e-6 * (1.0 + expect.abs()));
        }
    }

    #[test]
    fn parseval_holds(x in complex_buf(128)) {
        let time: f64 = x.iter().map(|z| z.norm_sq()).sum();
        let mut f = x;
        fft_inplace(&mut f).unwrap();
        let freq: f64 = f.iter().map(|z| z.norm_sq()).sum::<f64>() / 128.0;
        prop_assert!((time - freq).abs() < 1e-6 * (1.0 + time));
    }

    #[test]
    fn fft2d_roundtrip(vals in proptest::collection::vec(-50.0..50.0f64, 16 * 16)) {
        let img = Grid::from_vec(16, 16, vals);
        let back = fft2d_inverse(&fft2d(&img).unwrap()).unwrap();
        for (u, v, &x) in img.iter_cells() {
            let z = back[(u, v)];
            prop_assert!((z.re - x).abs() < 1e-8);
            prop_assert!(z.im.abs() < 1e-8);
        }
    }

    #[test]
    fn fft2d_shift_preserves_magnitude(vals in proptest::collection::vec(0.0..10.0f64, 16 * 16), du in 0usize..16, dv in 0usize..16) {
        // A circular shift changes only the phase of the spectrum.
        let img = Grid::from_vec(16, 16, vals);
        let shifted = Grid::from_fn(16, 16, |u, v| img[((u + du) % 16, (v + dv) % 16)]);
        let s1 = fft2d(&img).unwrap();
        let s2 = fft2d(&shifted).unwrap();
        for i in 0..s1.len() {
            let m1 = s1.as_slice()[i].abs();
            let m2 = s2.as_slice()[i].abs();
            prop_assert!((m1 - m2).abs() < 1e-6 * (1.0 + m1));
        }
    }
}

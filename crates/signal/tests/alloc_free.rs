//! Proof that the steady-state MIM fast path never touches the heap.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! frame has sized the [`FftWorkspace`], further
//! `orientation_amplitudes_into` / `mim_fused_into` calls must perform
//! **zero** allocations. This is its own integration binary (single-threaded
//! pool, tests serialised on a mutex) so no other allocations pollute the
//! counter.

use bba_signal::{FftWorkspace, Grid, LogGaborBank, LogGaborConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serialises the counting windows: the test harness runs `#[test]`s on
/// worker threads, and a concurrent test's allocations would land in this
/// one's counter.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_mim_fft_path_allocates_nothing() {
    let _guard = SERIAL.lock().unwrap();
    // Serial pool: with worker threads the pool's task handoff machinery
    // would allocate; the claim under test is about the FFT path itself.
    bba_par::with_threads(1, || {
        let size = 64;
        let bank = LogGaborBank::new(size, size, LogGaborConfig::default());
        let images: Vec<Grid<f64>> = (0..3)
            .map(|k| Grid::from_fn(size, size, |u, v| ((u * 5 + v * 3 + k * 11) % 7) as f64))
            .collect();
        let mut ws = FftWorkspace::new();
        // Warm-up: sizes the workspace and populates the plan cache.
        bank.orientation_amplitudes_into(&images[0], &mut ws).unwrap();

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for img in &images {
            bank.orientation_amplitudes_into(img, &mut ws).unwrap();
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(after - before, 0, "steady-state orientation_amplitudes_into must not allocate");

        // Sanity: the warm runs actually computed something.
        assert!(ws.amplitude(0).max_value() > 0.0);
    });
}

#[test]
fn steady_state_fused_mim_allocates_nothing() {
    let _guard = SERIAL.lock().unwrap();
    // The fused streaming reduction with caller-provided output grids must
    // be end-to-end heap-free once the (slimmer, per-worker) lanes are
    // sized: spectrum → filter product → inverse FFT → amplitude →
    // running argmax, with no per-orientation amplitude grids at all.
    bba_par::with_threads(1, || {
        let size = 64;
        let bank = LogGaborBank::new(size, size, LogGaborConfig::default());
        let images: Vec<Grid<f64>> = (0..3)
            .map(|k| Grid::from_fn(size, size, |u, v| ((u * 3 + v * 7 + k * 13) % 5) as f64))
            .collect();
        let mut ws = FftWorkspace::new();
        let mut index = Grid::new(size, size, 0u8);
        let mut amplitude = Grid::new(size, size, 0.0f64);
        // Warm-up: sizes the fused lanes and populates the plan cache.
        bank.mim_fused_into(&images[0], &mut ws, &mut index, &mut amplitude).unwrap();

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for img in &images {
            bank.mim_fused_into(img, &mut ws, &mut index, &mut amplitude).unwrap();
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(after - before, 0, "steady-state mim_fused_into must not allocate");

        // Sanity: the warm runs actually computed something.
        assert!(amplitude.max_value() > 0.0);
    });
}

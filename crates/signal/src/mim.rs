//! The Maximum Index Map (MIM) of the paper's Eq. (10).
//!
//! `MIM(u, v) = argmax_o A(u, v, o)`: per pixel, the index of the
//! orientation with the strongest summed Log-Gabor amplitude. The MIM turns
//! a sparse BV image into a dense orientation field in which "disconnected
//! lines" (building edges) and "isolated blobs" (tree tops) become stable,
//! matchable texture.

use crate::grid::Grid;
use crate::loggabor::{LogGaborBank, LogGaborConfig};
use crate::workspace::FftWorkspace;
use serde::{Deserialize, Serialize};

/// A computed Maximum Index Map plus the amplitude evidence behind it.
///
/// `index[(u,v)]` is the winning orientation (`0..N_o`);
/// `amplitude[(u,v)]` is the winning amplitude, used to mask out pixels with
/// no signal (in an all-zero region every orientation ties at amplitude 0 and
/// the argmax is meaningless).
///
/// # Example
///
/// ```
/// use bba_signal::{Grid, LogGaborConfig, MaxIndexMap};
/// let mut img = Grid::new(32, 32, 0.0);
/// img[(10, 10)] = 4.0;
/// let mim = MaxIndexMap::compute(&img, &LogGaborConfig::default());
/// assert!(mim.amplitude[(10, 10)] > mim.amplitude[(31, 31)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxIndexMap {
    /// Winning orientation index per pixel, in `0..num_orientations`.
    pub index: Grid<u8>,
    /// Amplitude of the winning orientation per pixel.
    pub amplitude: Grid<f64>,
    /// Number of orientations `N_o` the map was computed with.
    pub num_orientations: usize,
}

impl MaxIndexMap {
    /// Computes the MIM of `img` with a freshly built filter bank.
    ///
    /// Build the bank once with [`LogGaborBank::new`] and use
    /// [`MaxIndexMap::compute_with_bank`] when processing many images of the
    /// same size.
    ///
    /// # Panics
    ///
    /// Panics if the image dimensions are not powers of two (the BV
    /// rasteriser always produces power-of-two images).
    pub fn compute(img: &Grid<f64>, config: &LogGaborConfig) -> MaxIndexMap {
        let bank = LogGaborBank::new(img.width(), img.height(), config.clone());
        Self::compute_with_bank(img, &bank)
    }

    /// Computes the MIM using a pre-built filter bank.
    ///
    /// Allocates a fresh [`FftWorkspace`] per call; hot loops should hold
    /// one and use [`MaxIndexMap::compute_with_workspace`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the image shape differs from the bank's, or the dimensions
    /// are not powers of two.
    pub fn compute_with_bank(img: &Grid<f64>, bank: &LogGaborBank) -> MaxIndexMap {
        let mut ws = FftWorkspace::new();
        Self::compute_with_workspace(img, bank, &mut ws)
    }

    /// Computes the MIM using a pre-built filter bank and a reusable
    /// [`FftWorkspace`] — the steady-state fast path: once the workspace has
    /// seen this image size, the Log-Gabor filtering performs zero heap
    /// allocation per frame (only the output grids are allocated). Results
    /// are identical to [`MaxIndexMap::compute_with_bank`] at every thread
    /// count.
    ///
    /// This is the **fused streaming reduction**: per-orientation amplitude
    /// grids are never materialised — each filtered scale pair streams from
    /// the packed inverse FFT through amplitude into a running per-lane
    /// `(max_amp, max_idx)` fold (see
    /// [`LogGaborBank::orientation_amplitudes_into`] for the full-amplitude
    /// sibling). Bit-identical to [`MaxIndexMap::compute_via_amplitudes`]
    /// at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if the image shape differs from the bank's, or the dimensions
    /// are not powers of two.
    pub fn compute_with_workspace(
        img: &Grid<f64>,
        bank: &LogGaborBank,
        ws: &mut FftWorkspace,
    ) -> MaxIndexMap {
        let w = img.width();
        let h = img.height();
        let mut index = Grid::new(w, h, 0u8);
        let mut amplitude = Grid::new(w, h, 0.0f64);
        bank.mim_fused_into(img, ws, &mut index, &mut amplitude)
            .expect("BV images are power-of-two sized");
        MaxIndexMap { index, amplitude, num_orientations: bank.config().num_orientations }
    }

    /// Reference two-pass MIM: materialises every per-orientation amplitude
    /// grid via [`LogGaborBank::orientation_amplitudes_into`], then scans
    /// the per-pixel argmax. Kept in-tree as the readable specification the
    /// fused path ([`MaxIndexMap::compute_with_workspace`]) is
    /// equivalence-tested against; callers that also need the full
    /// amplitude grids (workspace [`FftWorkspace::amplitudes`]) use it too.
    ///
    /// # Panics
    ///
    /// Panics if the image shape differs from the bank's, or the dimensions
    /// are not powers of two.
    pub fn compute_via_amplitudes(
        img: &Grid<f64>,
        bank: &LogGaborBank,
        ws: &mut FftWorkspace,
    ) -> MaxIndexMap {
        bank.orientation_amplitudes_into(img, ws).expect("BV images are power-of-two sized");
        let amps: Vec<&Grid<f64>> = ws.amplitudes().collect();
        let w = img.width();
        let h = img.height();
        let mut index = Grid::new(w, h, 0u8);
        let mut amplitude = Grid::new(w, h, 0.0f64);
        // The per-pixel argmax is independent per row; the amplitude rows
        // are filled afterwards from the same winners, keeping both grids
        // bit-identical to the serial scan at any thread count.
        bba_par::par_for_rows(index.as_mut_slice(), w, |v, row| {
            for (u, cell) in row.iter_mut().enumerate() {
                let i = v * w + u;
                let mut best_o = 0u8;
                let mut best_a = f64::NEG_INFINITY;
                for (o, amp) in amps.iter().enumerate() {
                    let a = amp.as_slice()[i];
                    if a > best_a {
                        best_a = a;
                        best_o = o as u8;
                    }
                }
                *cell = best_o;
            }
        });
        bba_par::par_for_rows(amplitude.as_mut_slice(), w, |v, row| {
            for (u, cell) in row.iter_mut().enumerate() {
                let i = v * w + u;
                *cell = amps[usize::from(index.as_slice()[i])].as_slice()[i];
            }
        });
        MaxIndexMap { index, amplitude, num_orientations: bank.config().num_orientations }
    }

    /// Width of the map.
    pub fn width(&self) -> usize {
        self.index.width()
    }

    /// Height of the map.
    pub fn height(&self) -> usize {
        self.index.height()
    }

    /// An amplitude threshold separating "signal" from "empty" pixels:
    /// a fraction of the maximum amplitude.
    pub fn significance_threshold(&self, fraction: f64) -> f64 {
        self.amplitude.max_value() * fraction.clamp(0.0, 1.0)
    }

    /// Ring-binned orientation energy — the descriptor-extraction hook
    /// global place descriptors (`bba-place`) are built on.
    ///
    /// Partitions the map into `rings` concentric annuli of equal radial
    /// width around the image centre and, within each ring, sums the
    /// winning amplitude of every significant pixel (amplitude above
    /// [`MaxIndexMap::significance_threshold`] of
    /// `significance_fraction`) into its winning-orientation bin.
    /// Returns a `rings × num_orientations` row-major vector.
    ///
    /// Rotating the underlying scene about the image centre permutes
    /// each ring's orientation bins circularly (orientations are
    /// π-periodic) but moves no energy between rings — the invariance
    /// place descriptors exploit. Pixels outside the inscribed circle
    /// (the image corners) land in the outermost ring.
    pub fn ring_orientation_energy(&self, rings: usize, significance_fraction: f64) -> Vec<f64> {
        let rings = rings.max(1);
        let n_o = self.num_orientations.max(1);
        let mut out = vec![0.0f64; rings * n_o];
        let w = self.width();
        let h = self.height();
        // Pixel-centre rotation axis: exact 90°-grid rotations preserve
        // the distance to ((w-1)/2, (h-1)/2), so ring membership is
        // exactly rotation-stable.
        let cx = (w as f64 - 1.0) / 2.0;
        let cy = (h as f64 - 1.0) / 2.0;
        let r_max = (w.min(h) as f64) / 2.0;
        let threshold = self.significance_threshold(significance_fraction);
        let idx = self.index.as_slice();
        let amp = self.amplitude.as_slice();
        for v in 0..h {
            for u in 0..w {
                let i = v * w + u;
                let a = amp[i];
                if a <= 0.0 || a < threshold {
                    continue;
                }
                let du = u as f64 - cx;
                let dv = v as f64 - cy;
                let r = (du * du + dv * dv).sqrt() / r_max;
                let ring = ((r * rings as f64) as usize).min(rings - 1);
                out[ring * n_o + usize::from(idx[i])] += a;
            }
        }
        out
    }

    /// Ring-binned *azimuthal* energy — the layout half of the place
    /// descriptor.
    ///
    /// Same annuli as [`MaxIndexMap::ring_orientation_energy`], but
    /// within each ring the winning amplitude of every significant pixel
    /// is binned by the pixel's azimuth around the image centre
    /// (`atan2`, 2π-periodic, `azimuth_bins` bins) instead of by its
    /// winning orientation. Returns a `rings × azimuth_bins` row-major
    /// vector.
    ///
    /// Where the orientation histogram answers "what edge directions
    /// does this ring contain?", the azimuth histogram answers "*where
    /// around the sensor* does this ring's structure sit?" — far more
    /// location-specific. Rotating the scene about the centre shifts
    /// each ring's azimuth bins circularly (exactly for 90° multiples
    /// when `azimuth_bins` is divisible by 4), so DFT magnitudes over
    /// the bins are rotation-tolerant.
    pub fn ring_azimuth_energy(
        &self,
        rings: usize,
        azimuth_bins: usize,
        significance_fraction: f64,
    ) -> Vec<f64> {
        let rings = rings.max(1);
        let bins = azimuth_bins.max(1);
        let mut out = vec![0.0f64; rings * bins];
        let w = self.width();
        let h = self.height();
        let cx = (w as f64 - 1.0) / 2.0;
        let cy = (h as f64 - 1.0) / 2.0;
        let r_max = (w.min(h) as f64) / 2.0;
        let threshold = self.significance_threshold(significance_fraction);
        let amp = self.amplitude.as_slice();
        for v in 0..h {
            for u in 0..w {
                let i = v * w + u;
                let a = amp[i];
                if a <= 0.0 || a < threshold {
                    continue;
                }
                let du = u as f64 - cx;
                let dv = v as f64 - cy;
                let r = (du * du + dv * dv).sqrt() / r_max;
                let ring = ((r * rings as f64) as usize).min(rings - 1);
                let azimuth = dv.atan2(du).rem_euclid(std::f64::consts::TAU);
                let bin = ((azimuth / std::f64::consts::TAU * bins as f64) as usize).min(bins - 1);
                out[ring * bins + bin] += a;
            }
        }
        out
    }

    /// The circular difference between two orientation indices, in index
    /// units, accounting for the π-periodicity of orientations
    /// (`N_o` indices cover half a turn).
    pub fn index_distance(&self, a: u8, b: u8) -> u8 {
        let n = self.num_orientations as i32;
        let d = (a as i32 - b as i32).rem_euclid(n);
        d.min(n - d) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loggabor::LogGaborConfig;

    fn line_image(size: usize, angle_deg: f64) -> Grid<f64> {
        // A bright line through the centre at the given angle.
        let mut img = Grid::new(size, size, 0.0);
        let c = size as f64 / 2.0;
        let (s, co) = angle_deg.to_radians().sin_cos();
        let half = size as f64 * 0.35;
        let steps = (half * 4.0) as i32;
        for k in -steps..=steps {
            let t = k as f64 / steps as f64 * half;
            let u = (c + t * co).round() as isize;
            let v = (c + t * s).round() as isize;
            if u >= 0 && v >= 0 && (u as usize) < size && (v as usize) < size {
                img[(u as usize, v as usize)] = 8.0;
            }
        }
        img
    }

    #[test]
    fn empty_image_has_zero_amplitude() {
        let mim = MaxIndexMap::compute(&Grid::new(16, 16, 0.0), &LogGaborConfig::default());
        assert!(mim.amplitude.max_value() < 1e-12);
        assert_eq!(mim.num_orientations, 12);
    }

    #[test]
    fn rotating_line_rotates_mim_value() {
        // The dominant orientation on the line should track the line angle.
        let cfg = LogGaborConfig::default();
        let mim0 = MaxIndexMap::compute(&line_image(64, 0.0), &cfg);
        let mim60 = MaxIndexMap::compute(&line_image(64, 60.0), &cfg);
        let center = (32usize, 32usize);
        let i0 = mim0.index[center];
        let i60 = mim60.index[center];
        // 60° = 4 orientation steps of 15°; allow ±1 step of slack.
        let d = mim0.index_distance(i0, i60);
        assert!(
            (3..=5).contains(&d),
            "expected ~4 index steps between 0° and 60° lines, got {d} (i0={i0}, i60={i60})"
        );
    }

    #[test]
    fn index_distance_is_circular() {
        let mim = MaxIndexMap::compute(&Grid::new(16, 16, 0.0), &LogGaborConfig::default());
        assert_eq!(mim.index_distance(0, 11), 1);
        assert_eq!(mim.index_distance(0, 6), 6);
        assert_eq!(mim.index_distance(3, 3), 0);
    }

    #[test]
    fn significance_threshold_scales_with_amplitude() {
        let mut img = Grid::new(32, 32, 0.0);
        img[(16, 16)] = 10.0;
        let mim = MaxIndexMap::compute(&img, &LogGaborConfig::default());
        let t = mim.significance_threshold(0.1);
        assert!(t > 0.0);
        assert!(t <= mim.amplitude.max_value());
        assert_eq!(mim.significance_threshold(2.0), mim.amplitude.max_value());
    }

    #[test]
    fn fused_matches_reference_bitwise_at_thread_widths_1_to_8() {
        // The fused streaming reduction must reproduce the two-pass
        // reference bit-for-bit: same winning index, same winning amplitude
        // bits, at every thread width and scale-pair parity (odd scale
        // counts exercise the half-packed final pair; num_scales=1 and 2
        // exercise the no-partial fold).
        let img = line_image(32, 40.0);
        for num_scales in [1, 2, 3, 4] {
            let cfg = LogGaborConfig { num_scales, ..LogGaborConfig::default() };
            let bank = crate::loggabor::LogGaborBank::new(32, 32, cfg);
            let mut ws_ref = FftWorkspace::new();
            let reference = bba_par::with_threads(1, || {
                MaxIndexMap::compute_via_amplitudes(&img, &bank, &mut ws_ref)
            });
            for threads in 1..=8 {
                let mut ws = FftWorkspace::new();
                let fused = bba_par::with_threads(threads, || {
                    MaxIndexMap::compute_with_workspace(&img, &bank, &mut ws)
                });
                assert_eq!(
                    fused.index, reference.index,
                    "index diverged (scales={num_scales}, threads={threads})"
                );
                for (i, (a, b)) in fused
                    .amplitude
                    .as_slice()
                    .iter()
                    .zip(reference.amplitude.as_slice())
                    .enumerate()
                {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "amplitude bits diverged at pixel {i} (scales={num_scales}, threads={threads})"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_energy_rotation_moves_bins_not_rings() {
        // A 90° grid rotation of the image permutes each ring's
        // orientation bins but must not move energy between rings: the
        // per-ring totals of the rotated image match the original's.
        let img = line_image(64, 0.0);
        let mut rot = Grid::new(64, 64, 0.0);
        for v in 0..64 {
            for u in 0..64 {
                rot[(63 - v, u)] = img[(u, v)];
            }
        }
        let cfg = LogGaborConfig::default();
        let e0 = MaxIndexMap::compute(&img, &cfg).ring_orientation_energy(6, 0.05);
        let e90 = MaxIndexMap::compute(&rot, &cfg).ring_orientation_energy(6, 0.05);
        assert_eq!(e0.len(), 6 * 12);
        let ring_total = |e: &[f64], r: usize| e[r * 12..(r + 1) * 12].iter().sum::<f64>();
        let total: f64 = e0.iter().sum();
        assert!(total > 0.0, "line image must produce significant energy");
        for r in 0..6 {
            let (a, b) = (ring_total(&e0, r), ring_total(&e90, r));
            assert!(
                (a - b).abs() <= 0.02 * total.max(1e-9),
                "ring {r} energy moved under rotation: {a} vs {b}"
            );
        }
        // The dominant orientation bin in the most energetic ring shifts
        // by ~90° = N_o/2 positions.
        let busiest = (0..6).max_by(|&x, &y| ring_total(&e0, x).total_cmp(&ring_total(&e0, y)));
        let r = busiest.unwrap();
        let argmax = |e: &[f64]| {
            (0..12).max_by(|&i, &j| e[r * 12 + i].total_cmp(&e[r * 12 + j])).unwrap() as i32
        };
        let (i0, i90) = (argmax(&e0), argmax(&e90));
        let d = (i0 - i90).rem_euclid(12).min((i90 - i0).rem_euclid(12));
        assert!((5..=6).contains(&d) || d == 6, "expected ~6-bin shift, got {d}");
    }

    #[test]
    fn reusing_bank_matches_fresh_computation() {
        let cfg = LogGaborConfig::default();
        let img = line_image(32, 30.0);
        let fresh = MaxIndexMap::compute(&img, &cfg);
        let bank = crate::loggabor::LogGaborBank::new(32, 32, cfg);
        let reused = MaxIndexMap::compute_with_bank(&img, &bank);
        assert_eq!(fresh, reused);
    }
}

//! Minimal PGM (portable graymap) export for [`Grid`]s.
//!
//! BV images, MIM amplitude maps and fusion grids are all `Grid<f64>`;
//! dumping them as binary PGM (readable by any image viewer, no external
//! crates) is the repository's visual-debugging channel — the equivalent
//! of the paper's Fig. 4 panels.

use crate::grid::Grid;
use std::io::Write;
use std::path::Path;

/// Encodes a grid as a binary (P5) PGM image, normalising values to 0–255.
///
/// An all-equal grid encodes as all-zero. Non-finite values clamp to the
/// observed finite range.
///
/// # Example
///
/// ```
/// use bba_signal::{encode_pgm, Grid};
/// let mut g = Grid::new(4, 2, 0.0);
/// g[(3, 1)] = 2.0;
/// let pgm = encode_pgm(&g);
/// assert!(pgm.starts_with(b"P5\n4 2\n255\n"));
/// assert_eq!(pgm.len(), 11 + 8); // header + one byte per pixel
/// ```
pub fn encode_pgm(grid: &Grid<f64>) -> Vec<u8> {
    let (lo, hi) = grid
        .as_slice()
        .iter()
        .filter(|v| v.is_finite())
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = if hi > lo { hi - lo } else { 1.0 };

    let mut out = Vec::with_capacity(32 + grid.len());
    out.extend_from_slice(format!("P5\n{} {}\n255\n", grid.width(), grid.height()).as_bytes());
    for &v in grid.as_slice() {
        let v = if v.is_finite() { v } else { lo };
        let byte = (((v - lo) / span) * 255.0).round().clamp(0.0, 255.0) as u8;
        out.push(byte);
    }
    out
}

/// Writes a grid to `path` as binary PGM (see [`encode_pgm`]).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_pgm(grid: &Grid<f64>, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(&encode_pgm(grid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_payload_sizes() {
        let g = Grid::from_fn(16, 9, |u, v| (u * v) as f64);
        let pgm = encode_pgm(&g);
        let header = b"P5\n16 9\n255\n";
        assert!(pgm.starts_with(header));
        assert_eq!(pgm.len(), header.len() + 16 * 9);
    }

    #[test]
    fn normalisation_spans_full_range() {
        let g = Grid::from_vec(2, 1, vec![-5.0, 15.0]);
        let pgm = encode_pgm(&g);
        let pixels = &pgm[pgm.len() - 2..];
        assert_eq!(pixels, &[0u8, 255]);
    }

    #[test]
    fn constant_grid_is_black() {
        let g = Grid::new(3, 3, 7.5);
        let pgm = encode_pgm(&g);
        assert!(pgm[pgm.len() - 9..].iter().all(|&b| b == 0));
    }

    #[test]
    fn non_finite_values_clamp() {
        let g = Grid::from_vec(3, 1, vec![0.0, f64::NAN, 1.0]);
        let pgm = encode_pgm(&g);
        let pixels = &pgm[pgm.len() - 3..];
        assert_eq!(pixels[0], 0);
        assert_eq!(pixels[1], 0); // NaN clamps to the low end
        assert_eq!(pixels[2], 255);
    }

    #[test]
    fn write_roundtrip_via_tempfile() {
        let dir = std::env::temp_dir().join("bba_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.pgm");
        let g = Grid::from_fn(8, 8, |u, v| (u + v) as f64);
        write_pgm(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes, encode_pgm(&g));
        std::fs::remove_file(path).ok();
    }
}

//! Reusable scratch memory for the frequency-domain hot path.
//!
//! The seed implementation allocated fresh buffers for every MIM
//! computation: one complex grid per filtered spectrum, one per inverse
//! transform, a `Vec<Vec<Complex>>` column gather inside every 2-D pass and
//! one amplitude grid per filter — roughly a hundred heap allocations and
//! ~50 MB of traffic per 256² frame. An [`FftWorkspace`] owns all of that
//! memory instead: the forward spectrum, the row-pack and column buffers of
//! the real 2-D transform, and a set of *lanes* — one per Log-Gabor
//! orientation on the full-amplitude path, one per worker on the fused MIM
//! path — each holding the packed filtered spectrum, a column buffer, the
//! amplitude accumulator and (fused only) the running argmax grids.
//!
//! Buffers are sized on first use (the crate-private `ensure`) and reused
//! verbatim afterwards, so the steady-state MIM computation performs **zero
//! heap allocation on the FFT path** (proved by the counting-allocator test
//! `crates/signal/tests/alloc_free.rs`). Lanes double as the unit of
//! parallelism: `bba-par` hands each worker a disjoint `&mut` lane, and the
//! per-orientation accumulation order is fixed (ascending scale), so results
//! stay bit-identical at every thread count.

use crate::complex::Complex;
use crate::fft::FftError;
use crate::grid::Grid;
use crate::plan::{shared_plan, FftPlan};
use std::sync::Arc;

/// Per-worker scratch: the filtered spectrum being inverse-transformed and
/// the amplitude accumulator it feeds.
///
/// On the full-amplitude path there is one lane per orientation and `acc`
/// is that orientation's output grid. On the fused MIM path there is one
/// lane per worker; each lane streams a contiguous chunk of orientations
/// through `acc` (reused as the running scale sum) and folds them into its
/// `max_amp`/`max_idx` running argmax, which a serial ascending merge then
/// combines — so the per-orientation amplitude grids are never
/// materialised.
#[derive(Debug, Clone)]
pub(crate) struct OrientationLane {
    /// Packed filtered spectrum / spatial response, `width × height`.
    pub(crate) filtered: Vec<Complex>,
    /// Column buffer for the inverse transform's second pass (`2·height`,
    /// sized for the paired-column transform).
    pub(crate) col: Vec<Complex>,
    /// Amplitude summed over scales — the per-orientation output grid on
    /// the full path, the per-orientation running sum on the fused path.
    pub(crate) acc: Grid<f64>,
    /// Fused path only: running maximum amplitude per pixel over the lane's
    /// orientation chunk. Empty on the full-amplitude path.
    pub(crate) max_amp: Vec<f64>,
    /// Fused path only: orientation index attaining `max_amp`. Empty on the
    /// full-amplitude path.
    pub(crate) max_idx: Vec<u8>,
}

/// Reusable scratch buffers for [`LogGaborBank`](crate::LogGaborBank)
/// filtering and [`MaxIndexMap`](crate::MaxIndexMap) computation.
///
/// Create one per concurrent image stream and thread it through
/// [`MaxIndexMap::compute_with_workspace`](crate::MaxIndexMap::compute_with_workspace)
/// (or [`LogGaborBank::orientation_amplitudes_into`](crate::LogGaborBank::orientation_amplitudes_into)).
/// The workspace grows to fit the first image it sees and afterwards recycles
/// every buffer; contents carry no state between frames, so reuse never
/// changes results.
///
/// # Example
///
/// ```
/// use bba_signal::{FftWorkspace, Grid, LogGaborBank, LogGaborConfig, MaxIndexMap};
/// let bank = LogGaborBank::new(32, 32, LogGaborConfig::default());
/// let mut ws = FftWorkspace::new();
/// let img = Grid::new(32, 32, 0.0);
/// let a = MaxIndexMap::compute_with_workspace(&img, &bank, &mut ws);
/// let b = MaxIndexMap::compute_with_workspace(&img, &bank, &mut ws); // reuses all buffers
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct FftWorkspace {
    pub(crate) width: usize,
    pub(crate) height: usize,
    /// Row/column plans for the current size (`None` until first `ensure`).
    pub(crate) plans: Option<(Arc<FftPlan>, Arc<FftPlan>)>,
    /// Forward spectrum of the current image.
    pub(crate) spectrum: Grid<Complex>,
    /// Row-pair packing buffer of the real forward transform (`width`).
    pub(crate) pack: Vec<Complex>,
    /// Column buffer of the forward transform (`2·height`, sized for the
    /// paired-column transform).
    pub(crate) col: Vec<Complex>,
    /// One lane per Log-Gabor orientation (full-amplitude path) or per
    /// worker (fused MIM path).
    pub(crate) lanes: Vec<OrientationLane>,
}

impl Default for FftWorkspace {
    fn default() -> Self {
        FftWorkspace {
            width: 0,
            height: 0,
            plans: None,
            spectrum: Grid::new(0, 0, Complex::ZERO),
            pack: Vec::new(),
            col: Vec::new(),
            lanes: Vec::new(),
        }
    }
}

impl FftWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        FftWorkspace::default()
    }

    /// Sizes every buffer for `width × height` images filtered by a bank
    /// with `num_orientations` orientations. A no-op (and allocation-free)
    /// when the workspace already matches.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] if either dimension is not a
    /// power of two.
    pub(crate) fn ensure(
        &mut self,
        width: usize,
        height: usize,
        num_orientations: usize,
    ) -> Result<(), FftError> {
        self.ensure_lanes(width, height, num_orientations, false)
    }

    /// Sizes the workspace for the fused MIM reduction: `n_lanes` worker
    /// lanes, each carrying the running `max_amp`/`max_idx` grids in
    /// addition to the shared scratch. A no-op when already matching.
    ///
    /// Alternating a single workspace between the fused and full-amplitude
    /// paths reallocates the lanes on every switch — keep one workspace per
    /// path if both are hot.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] if either dimension is not a
    /// power of two.
    pub(crate) fn ensure_fused(
        &mut self,
        width: usize,
        height: usize,
        n_lanes: usize,
    ) -> Result<(), FftError> {
        self.ensure_lanes(width, height, n_lanes, true)
    }

    fn ensure_lanes(
        &mut self,
        width: usize,
        height: usize,
        n_lanes: usize,
        fused: bool,
    ) -> Result<(), FftError> {
        if self.width != width || self.height != height || self.plans.is_none() {
            let plan_w = shared_plan(width)?;
            let plan_h = shared_plan(height)?;
            self.plans = Some((plan_w, plan_h));
            self.width = width;
            self.height = height;
            self.spectrum = Grid::new(width, height, Complex::ZERO);
            self.pack = vec![Complex::ZERO; width];
            self.col = vec![Complex::ZERO; 4 * height];
            self.lanes.clear();
        }
        let len = width * height;
        let max_len = if fused { len } else { 0 };
        if self.lanes.len() != n_lanes
            || self
                .lanes
                .first()
                .is_some_and(|l| l.filtered.len() != len || l.max_amp.len() != max_len)
        {
            self.lanes = (0..n_lanes)
                .map(|_| OrientationLane {
                    filtered: vec![Complex::ZERO; len],
                    col: vec![Complex::ZERO; 4 * height],
                    acc: Grid::new(width, height, 0.0),
                    max_amp: vec![0.0; max_len],
                    max_idx: vec![0; max_len],
                })
                .collect();
        }
        Ok(())
    }

    /// Number of per-orientation amplitude grids currently held. Only
    /// meaningful after
    /// [`LogGaborBank::orientation_amplitudes_into`](crate::LogGaborBank::orientation_amplitudes_into);
    /// the fused MIM path sizes lanes per worker instead.
    pub fn num_orientations(&self) -> usize {
        self.lanes.len()
    }

    /// The amplitude grid of orientation `o` from the most recent
    /// [`LogGaborBank::orientation_amplitudes_into`](crate::LogGaborBank::orientation_amplitudes_into)
    /// call.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    pub fn amplitude(&self, o: usize) -> &Grid<f64> {
        &self.lanes[o].acc
    }

    /// Iterates over the per-orientation amplitude grids in orientation
    /// order.
    pub fn amplitudes(&self) -> impl Iterator<Item = &Grid<f64>> {
        self.lanes.iter().map(|l| &l.acc)
    }

    /// Moves the per-orientation amplitude grids out of the workspace
    /// (leaving empty grids behind) — the allocation-compatible path used by
    /// [`LogGaborBank::orientation_amplitudes`](crate::LogGaborBank::orientation_amplitudes).
    pub(crate) fn take_amplitudes(&mut self) -> Vec<Grid<f64>> {
        self.lanes.iter_mut().map(|l| std::mem::replace(&mut l.acc, Grid::new(0, 0, 0.0))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_is_idempotent_and_resizes() {
        let mut ws = FftWorkspace::new();
        ws.ensure(16, 8, 4).unwrap();
        assert_eq!(ws.num_orientations(), 4);
        assert_eq!(ws.spectrum.width(), 16);
        let spectrum_ptr = ws.spectrum.as_slice().as_ptr();
        ws.ensure(16, 8, 4).unwrap();
        assert_eq!(ws.spectrum.as_slice().as_ptr(), spectrum_ptr, "matching ensure must not move");
        ws.ensure(32, 32, 6).unwrap();
        assert_eq!(ws.num_orientations(), 6);
        assert_eq!(ws.amplitude(5).len(), 32 * 32);
    }

    #[test]
    fn ensure_rejects_non_pow2() {
        let mut ws = FftWorkspace::new();
        assert_eq!(ws.ensure(12, 8, 4).unwrap_err(), FftError::NotPowerOfTwo { len: 12 });
        assert_eq!(ws.ensure(8, 12, 4).unwrap_err(), FftError::NotPowerOfTwo { len: 12 });
    }
}

//! Planned FFTs: precomputed bit-reversal and twiddle tables per length.
//!
//! The seed implementation recomputed its twiddle factors inside every
//! butterfly pass with the recurrence `w *= w_step` — one extra complex
//! multiply per butterfly *and* a serial dependency chain that both costs
//! instruction-level parallelism and accumulates rounding drift across a
//! pass. An [`FftPlan`] instead tabulates, once per transform length:
//!
//! * the bit-reversal permutation, and
//! * the unit-circle twiddles `e^{∓2πi·j/N}`, each evaluated directly with
//!   [`Complex::cis`] at its own index (no recurrence, so every twiddle is
//!   correctly rounded).
//!
//! Plans depend only on the length, so one plan serves every row of a 2-D
//! transform and every filter of the Log-Gabor bank; [`shared_plan`] caches
//! them process-wide behind an `Arc`. Stage 1 of BB-Align runs hundreds of
//! same-length 1-D transforms per frame, which is exactly the workload
//! planning (FFTW-style) exists for.

use crate::complex::Complex;
use crate::fft::FftError;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::{Arc, Mutex, OnceLock};

/// A reusable plan for power-of-two FFTs of one fixed length.
///
/// Construction is `O(N)`; every transform through the plan is the classic
/// iterative Cooley–Tukey `O(N log N)` with all trigonometry precomputed.
///
/// # Example
///
/// ```
/// use bba_signal::{Complex, FftPlan};
/// let plan = FftPlan::new(8)?;
/// let mut x = vec![Complex::ZERO; 8];
/// x[0] = Complex::ONE;
/// plan.forward(&mut x);
/// assert!(x.iter().all(|z| (z.re - 1.0).abs() < 1e-12));
/// plan.inverse(&mut x);
/// assert!((x[0].re - 1.0).abs() < 1e-12 && x[1].abs() < 1e-12);
/// # Ok::<(), bba_signal::FftError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// `bitrev[i]` is the bit-reversed index of `i` (swap partner).
    bitrev: Vec<u32>,
    /// Forward twiddles `e^{-2πi·j/N}` for `j` in `0..N/2`.
    fwd: Vec<Complex>,
    /// Inverse twiddles `e^{+2πi·j/N}` for `j` in `0..N/2`.
    inv: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] unless `n` is a power of two.
    pub fn new(n: usize) -> Result<Self, FftError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo { len: n });
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n)
            .map(|i| {
                if n == 1 {
                    0
                } else {
                    ((i.reverse_bits() >> (usize::BITS - bits)) & (n - 1)) as u32
                }
            })
            .collect();
        // Each twiddle is evaluated directly at its own angle — no
        // recurrence, so the table is correctly rounded entry by entry.
        let fwd: Vec<Complex> =
            (0..n / 2).map(|j| Complex::cis(-2.0 * PI * j as f64 / n as f64)).collect();
        let inv = fwd.iter().map(|w| w.conj()).collect();
        Ok(FftPlan { n, bitrev, fwd, inv })
    }

    /// The transform length this plan was built for.
    pub fn size(&self) -> usize {
        self.n
    }

    /// In-place forward FFT (unnormalised: `X[k] = Σ_n x[n]·e^{-2πi·kn/N}`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan's length.
    pub fn forward(&self, x: &mut [Complex]) {
        self.butterflies(x, &self.fwd);
    }

    /// In-place inverse FFT, normalised by `1/N` so that
    /// `plan.inverse` undoes `plan.forward` up to floating-point error.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan's length.
    pub fn inverse(&self, x: &mut [Complex]) {
        self.butterflies(x, &self.inv);
        let scale = 1.0 / self.n as f64;
        for z in x.iter_mut() {
            *z = z.scale(scale);
        }
    }

    /// In-place inverse FFT *without* the `1/N` normalisation.
    ///
    /// Multi-dimensional transforms use this to defer all scaling to one
    /// fused final pass (`1/(W·H)` for 2-D) instead of scaling after every
    /// 1-D pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan's length.
    pub fn inverse_unscaled(&self, x: &mut [Complex]) {
        self.butterflies(x, &self.inv);
    }

    /// Shared butterfly kernel over a precomputed twiddle table.
    fn butterflies(&self, x: &mut [Complex], twiddles: &[Complex]) {
        let n = self.n;
        assert_eq!(x.len(), n, "buffer length does not match plan length");
        if n <= 1 {
            return;
        }
        for (i, &j) in self.bitrev.iter().enumerate() {
            let j = j as usize;
            if i < j {
                x.swap(i, j);
            }
        }
        let mut half = 1usize;
        while half < n {
            let stride = n / (2 * half);
            for block in x.chunks_exact_mut(2 * half) {
                let (lo, hi) = block.split_at_mut(half);
                for k in 0..half {
                    let w = twiddles[k * stride];
                    let b = hi[k] * w;
                    let a = lo[k];
                    lo[k] = a + b;
                    hi[k] = a - b;
                }
            }
            half *= 2;
        }
    }
}

/// The process-wide plan cache: one [`FftPlan`] per length, built on first
/// request and shared by every caller (rows, columns, all 48 Log-Gabor
/// filter applications, and every thread — [`FftPlan`] is immutable after
/// construction, so sharing is free).
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] unless `n` is a power of two.
pub fn shared_plan(n: usize) -> Result<Arc<FftPlan>, FftError> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("plan cache lock is never poisoned");
    if let Some(plan) = map.get(&n) {
        return Ok(plan.clone());
    }
    let plan = Arc::new(FftPlan::new(n)?);
    map.insert(n, plan.clone());
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_lengths() {
        assert_eq!(FftPlan::new(0).unwrap_err(), FftError::NotPowerOfTwo { len: 0 });
        assert_eq!(FftPlan::new(12).unwrap_err(), FftError::NotPowerOfTwo { len: 12 });
        assert!(shared_plan(7).is_err());
    }

    #[test]
    fn unit_length_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut x = [Complex::new(3.0, -2.0)];
        plan.forward(&mut x);
        assert_eq!(x[0], Complex::new(3.0, -2.0));
        plan.inverse(&mut x);
        assert_eq!(x[0], Complex::new(3.0, -2.0));
    }

    #[test]
    fn forward_matches_single_tone() {
        let n = 16;
        let k0 = 3;
        let plan = FftPlan::new(n).unwrap();
        let mut x: Vec<Complex> =
            (0..n).map(|i| Complex::cis(2.0 * PI * k0 as f64 * i as f64 / n as f64)).collect();
        plan.forward(&mut x);
        for (k, z) in x.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-9 && z.im.abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leak at bin {k}: {z:?}");
            }
        }
    }

    #[test]
    fn inverse_scales_and_roundtrips() {
        let plan = FftPlan::new(32).unwrap();
        let x: Vec<Complex> =
            (0..32).map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos())).collect();
        let mut y = x.clone();
        plan.forward(&mut y);
        let mut unscaled = y.clone();
        plan.inverse(&mut y);
        plan.inverse_unscaled(&mut unscaled);
        for i in 0..32 {
            assert!((y[i] - x[i]).abs() < 1e-10);
            assert!((unscaled[i] - x[i].scale(32.0)).abs() < 1e-8, "unscaled differs by N");
        }
    }

    #[test]
    #[should_panic(expected = "does not match plan length")]
    fn wrong_buffer_length_panics() {
        let plan = FftPlan::new(8).unwrap();
        let mut x = vec![Complex::ZERO; 4];
        plan.forward(&mut x);
    }

    #[test]
    fn shared_plan_is_cached() {
        let a = shared_plan(64).unwrap();
        let b = shared_plan(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same length must hit the cache");
        assert_eq!(a.size(), 64);
    }
}

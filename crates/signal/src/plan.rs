//! Planned FFTs: precomputed bit-reversal and twiddle tables per length.
//!
//! The seed implementation recomputed its twiddle factors inside every
//! butterfly pass with the recurrence `w *= w_step` — one extra complex
//! multiply per butterfly *and* a serial dependency chain that both costs
//! instruction-level parallelism and accumulates rounding drift across a
//! pass. An [`FftPlan`] instead tabulates, once per transform length:
//!
//! * the bit-reversal permutation, and
//! * the unit-circle twiddles `e^{∓2πi·j/N}`, each evaluated directly with
//!   [`Complex::cis`] at its own index (no recurrence, so every twiddle is
//!   correctly rounded).
//!
//! Plans depend only on the length, so one plan serves every row of a 2-D
//! transform and every filter of the Log-Gabor bank; [`shared_plan`] caches
//! them process-wide behind an `Arc`. Stage 1 of BB-Align runs hundreds of
//! same-length 1-D transforms per frame, which is exactly the workload
//! planning (FFTW-style) exists for.

use crate::complex::Complex;
use crate::fft::FftError;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::{Arc, Mutex, OnceLock};

/// A reusable plan for power-of-two FFTs of one fixed length.
///
/// Construction is `O(N)`; every transform through the plan is the classic
/// iterative Cooley–Tukey `O(N log N)` with all trigonometry precomputed.
///
/// # Example
///
/// ```
/// use bba_signal::{Complex, FftPlan};
/// let plan = FftPlan::new(8)?;
/// let mut x = vec![Complex::ZERO; 8];
/// x[0] = Complex::ONE;
/// plan.forward(&mut x);
/// assert!(x.iter().all(|z| (z.re - 1.0).abs() < 1e-12));
/// plan.inverse(&mut x);
/// assert!((x[0].re - 1.0).abs() < 1e-12 && x[1].abs() < 1e-12);
/// # Ok::<(), bba_signal::FftError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// `bitrev[i]` is the bit-reversed index of `i` (swap partner).
    bitrev: Vec<u32>,
    /// Forward twiddles, laid out per butterfly level: the level with half
    /// size `h` occupies `fwd[h-1..2h-1]` and holds `e^{-2πi·j/(2h)}` for
    /// `j` in `0..h` — the stride-`N/(2h)` subsample of the classic
    /// `e^{-2πi·j/N}` table, stored contiguously so the butterfly kernels
    /// load twiddles with unit stride at every level.
    fwd: Vec<Complex>,
    /// Inverse twiddles, same per-level layout, conjugated.
    inv: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] unless `n` is a power of two.
    pub fn new(n: usize) -> Result<Self, FftError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo { len: n });
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n)
            .map(|i| {
                if n == 1 {
                    0
                } else {
                    ((i.reverse_bits() >> (usize::BITS - bits)) & (n - 1)) as u32
                }
            })
            .collect();
        // Each twiddle is evaluated directly at its own angle — no
        // recurrence, so the table is correctly rounded entry by entry.
        let dense: Vec<Complex> =
            (0..n / 2).map(|j| Complex::cis(-2.0 * PI * j as f64 / n as f64)).collect();
        // Re-lay the dense table out per butterfly level (copies, so every
        // entry is bit-identical to the classic strided access).
        let mut fwd = Vec::with_capacity(n.saturating_sub(1));
        let mut half = 1usize;
        while half < n {
            let stride = n / (2 * half);
            fwd.extend((0..half).map(|j| dense[j * stride]));
            half *= 2;
        }
        let inv = fwd.iter().map(|w| w.conj()).collect();
        Ok(FftPlan { n, bitrev, fwd, inv })
    }

    /// The transform length this plan was built for.
    pub fn size(&self) -> usize {
        self.n
    }

    /// In-place forward FFT (unnormalised: `X[k] = Σ_n x[n]·e^{-2πi·kn/N}`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan's length.
    pub fn forward(&self, x: &mut [Complex]) {
        self.butterflies(x, &self.fwd);
    }

    /// In-place inverse FFT, normalised by `1/N` so that
    /// `plan.inverse` undoes `plan.forward` up to floating-point error.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan's length.
    pub fn inverse(&self, x: &mut [Complex]) {
        self.butterflies(x, &self.inv);
        let scale = 1.0 / self.n as f64;
        for z in x.iter_mut() {
            *z = z.scale(scale);
        }
    }

    /// In-place inverse FFT *without* the `1/N` normalisation.
    ///
    /// Multi-dimensional transforms use this to defer all scaling to one
    /// fused final pass (`1/(W·H)` for 2-D) instead of scaling after every
    /// 1-D pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan's length.
    pub fn inverse_unscaled(&self, x: &mut [Complex]) {
        self.butterflies(x, &self.inv);
    }

    /// Shared butterfly kernel over a precomputed twiddle table: one
    /// [`bba_simd::fft_pass`] call per level (the block loop lives inside
    /// the dispatched kernel — AVX2 or the portable scalar twin,
    /// bit-identical either way; the portable path *is* the original scalar
    /// loop).
    fn butterflies(&self, x: &mut [Complex], twiddles: &[Complex]) {
        assert_eq!(x.len(), self.n, "buffer length does not match plan length");
        self.butterflies_many(x, twiddles);
    }

    /// [`FftPlan::butterflies`] over any whole number of contiguous
    /// length-`N` chunks. Chunks are processed in cache-sized groups: per
    /// group, bit-reversal runs per chunk, then each butterfly level sweeps
    /// the group in a single kernel call (blocks of `2·half` elements tile
    /// every chunk exactly, so per chunk the op sequence is identical to
    /// transforming it alone — grouping changes neither the arithmetic nor
    /// its order, only call overhead and cache residency).
    fn butterflies_many(&self, x: &mut [Complex], twiddles: &[Complex]) {
        let n = self.n;
        assert_eq!(x.len() % n, 0, "buffer length must be a multiple of the plan length");
        if n <= 1 {
            return;
        }
        // ~32 KiB of complexes per group: big enough to amortise the
        // per-level kernel call, small enough that a group stays L1/L2-hot
        // across all log₂ N levels.
        let group = (2048 / n).max(1) * n;
        let tw = crate::complex::as_floats(twiddles);
        for slab in x.chunks_mut(group) {
            for chunk in slab.chunks_exact_mut(n) {
                for (i, &j) in self.bitrev.iter().enumerate() {
                    let j = j as usize;
                    if i < j {
                        chunk.swap(i, j);
                    }
                }
            }
            let xf = crate::complex::as_floats_mut(slab);
            let mut half = 1usize;
            while half < n {
                bba_simd::fft_pass(xf, &tw[2 * (half - 1)..2 * (2 * half - 1)], half, 1);
                half *= 2;
            }
        }
    }

    /// Forward FFT of every contiguous length-`N` chunk of `data` (e.g. all
    /// rows of a row-major 2-D pass), batched: each butterfly level is one
    /// kernel call over the whole buffer, bit-identical per chunk to
    /// [`FftPlan::forward`] on that chunk alone.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of the plan's length.
    pub fn forward_many(&self, data: &mut [Complex]) {
        self.butterflies_many(data, &self.fwd);
    }

    /// Batched unnormalised inverse, the multi-chunk twin of
    /// [`FftPlan::inverse_unscaled`]; see [`FftPlan::forward_many`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of the plan's length.
    pub fn inverse_unscaled_many(&self, data: &mut [Complex]) {
        self.butterflies_many(data, &self.inv);
    }

    /// In-place forward FFT of **two interleaved signals**: `x` holds `2N`
    /// complexes laid out as `[a_0, b_0, a_1, b_1, …]`, and both streams
    /// are transformed as if [`FftPlan::forward`] ran on each separately —
    /// bit-identically so (the paired butterfly applies the identical
    /// scalar op sequence per stream; pinned by the `butterfly_x2`
    /// equivalence proptests).
    ///
    /// This is the paired-column kernel of the 2-D transforms: gathering
    /// two adjacent columns keeps every access contiguous (one cache line
    /// serves both streams) and lets AVX2 run one full butterfly per
    /// 256-bit op, with no scalar remainder at any pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from twice the plan's length.
    pub fn forward_pair(&self, x: &mut [Complex]) {
        self.butterflies_pair(x, &self.fwd);
    }

    /// Paired-stream inverse FFT *without* the `1/N` normalisation; see
    /// [`FftPlan::forward_pair`] for the layout and
    /// [`FftPlan::inverse_unscaled`] for the scaling convention.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from twice the plan's length.
    pub fn inverse_unscaled_pair(&self, x: &mut [Complex]) {
        self.butterflies_pair(x, &self.inv);
    }

    /// Butterfly passes over interleaved stream pairs: element `i` of the
    /// logical transform is the complex *pair* `x[2i..2i+2]`. One
    /// [`bba_simd::fft_pass_x2`] call per level.
    fn butterflies_pair(&self, x: &mut [Complex], twiddles: &[Complex]) {
        let n = self.n;
        assert_eq!(x.len(), 2 * n, "buffer length does not match paired plan length");
        if n <= 1 {
            return;
        }
        for (i, &j) in self.bitrev.iter().enumerate() {
            let j = j as usize;
            if i < j {
                x.swap(2 * i, 2 * j);
                x.swap(2 * i + 1, 2 * j + 1);
            }
        }
        let tw = crate::complex::as_floats(twiddles);
        let xf = crate::complex::as_floats_mut(x);
        let mut half = 1usize;
        while half < n {
            bba_simd::fft_pass_x2(xf, &tw[2 * (half - 1)..2 * (2 * half - 1)], half, 1);
            half *= 2;
        }
    }
}

/// The process-wide plan cache: one [`FftPlan`] per length, built on first
/// request and shared by every caller (rows, columns, all 48 Log-Gabor
/// filter applications, and every thread — [`FftPlan`] is immutable after
/// construction, so sharing is free).
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] unless `n` is a power of two.
pub fn shared_plan(n: usize) -> Result<Arc<FftPlan>, FftError> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("plan cache lock is never poisoned");
    if let Some(plan) = map.get(&n) {
        return Ok(plan.clone());
    }
    let plan = Arc::new(FftPlan::new(n)?);
    map.insert(n, plan.clone());
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_lengths() {
        assert_eq!(FftPlan::new(0).unwrap_err(), FftError::NotPowerOfTwo { len: 0 });
        assert_eq!(FftPlan::new(12).unwrap_err(), FftError::NotPowerOfTwo { len: 12 });
        assert!(shared_plan(7).is_err());
    }

    #[test]
    fn unit_length_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut x = [Complex::new(3.0, -2.0)];
        plan.forward(&mut x);
        assert_eq!(x[0], Complex::new(3.0, -2.0));
        plan.inverse(&mut x);
        assert_eq!(x[0], Complex::new(3.0, -2.0));
    }

    #[test]
    fn forward_matches_single_tone() {
        let n = 16;
        let k0 = 3;
        let plan = FftPlan::new(n).unwrap();
        let mut x: Vec<Complex> =
            (0..n).map(|i| Complex::cis(2.0 * PI * k0 as f64 * i as f64 / n as f64)).collect();
        plan.forward(&mut x);
        for (k, z) in x.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-9 && z.im.abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leak at bin {k}: {z:?}");
            }
        }
    }

    #[test]
    fn inverse_scales_and_roundtrips() {
        let plan = FftPlan::new(32).unwrap();
        let x: Vec<Complex> =
            (0..32).map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos())).collect();
        let mut y = x.clone();
        plan.forward(&mut y);
        let mut unscaled = y.clone();
        plan.inverse(&mut y);
        plan.inverse_unscaled(&mut unscaled);
        for i in 0..32 {
            assert!((y[i] - x[i]).abs() < 1e-10);
            assert!((unscaled[i] - x[i].scale(32.0)).abs() < 1e-8, "unscaled differs by N");
        }
    }

    #[test]
    #[should_panic(expected = "does not match plan length")]
    fn wrong_buffer_length_panics() {
        let plan = FftPlan::new(8).unwrap();
        let mut x = vec![Complex::ZERO; 4];
        plan.forward(&mut x);
    }

    #[test]
    fn paired_transforms_match_single_streams_bitwise() {
        for n in [1usize, 2, 8, 32, 64] {
            let plan = FftPlan::new(n).unwrap();
            let a: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let b: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.2).cos(), -(i as f64 * 0.9).sin()))
                .collect();
            let mut pair: Vec<Complex> = (0..n).flat_map(|i| [a[i], b[i]]).collect();
            let (mut fa, mut fb) = (a.clone(), b.clone());
            plan.forward_pair(&mut pair);
            plan.forward(&mut fa);
            plan.forward(&mut fb);
            let assert_bits = |x: Complex, y: Complex| {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "n={n}");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "n={n}");
            };
            for i in 0..n {
                assert_bits(pair[2 * i], fa[i]);
                assert_bits(pair[2 * i + 1], fb[i]);
            }
            plan.inverse_unscaled_pair(&mut pair);
            plan.inverse_unscaled(&mut fa);
            plan.inverse_unscaled(&mut fb);
            for i in 0..n {
                assert_bits(pair[2 * i], fa[i]);
                assert_bits(pair[2 * i + 1], fb[i]);
            }
        }
    }

    #[test]
    fn many_matches_per_chunk_transforms_bitwise() {
        for n in [1usize, 2, 8, 32] {
            let plan = FftPlan::new(n).unwrap();
            let chunks = 5;
            let data: Vec<Complex> = (0..n * chunks)
                .map(|i| Complex::new((i as f64 * 0.31).sin(), (i as f64 * 0.17).cos()))
                .collect();
            let mut fwd = data.clone();
            plan.forward_many(&mut fwd);
            let mut inv = data.clone();
            plan.inverse_unscaled_many(&mut inv);
            for c in 0..chunks {
                let mut one_f = data[c * n..(c + 1) * n].to_vec();
                plan.forward(&mut one_f);
                let mut one_i = data[c * n..(c + 1) * n].to_vec();
                plan.inverse_unscaled(&mut one_i);
                for k in 0..n {
                    let (a, b) = (fwd[c * n + k], one_f[k]);
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "n={n} chunk={c}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n} chunk={c}");
                    let (a, b) = (inv[c * n + k], one_i[k]);
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "n={n} chunk={c}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n} chunk={c}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of the plan length")]
    fn many_rejects_partial_chunks() {
        let plan = FftPlan::new(8).unwrap();
        let mut x = vec![Complex::ZERO; 12];
        plan.forward_many(&mut x);
    }

    #[test]
    fn shared_plan_is_cached() {
        let a = shared_plan(64).unwrap();
        let b = shared_plan(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same length must hit the cache");
        assert_eq!(a.size(), 64);
    }
}

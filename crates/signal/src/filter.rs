//! Spatial-domain filters: separable Gaussian blur.
//!
//! Used to soften rasterisation aliasing in BV images before Log-Gabor
//! filtering and to build smooth evidence maps in the fusion pipeline.

use crate::grid::Grid;

/// A normalised 1-D Gaussian kernel with radius `⌈3σ⌉`.
///
/// # Panics
///
/// Panics if `sigma` is not strictly positive and finite.
///
/// ```
/// use bba_signal::gaussian_kernel;
/// let k = gaussian_kernel(1.0);
/// let sum: f64 = k.iter().sum();
/// assert!((sum - 1.0).abs() < 1e-12);
/// assert_eq!(k.len(), 7); // radius 3
/// ```
pub fn gaussian_kernel(sigma: f64) -> Vec<f64> {
    assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive, got {sigma}");
    let radius = (3.0 * sigma).ceil() as isize;
    let mut k: Vec<f64> =
        (-radius..=radius).map(|i| (-(i as f64).powi(2) / (2.0 * sigma * sigma)).exp()).collect();
    let total: f64 = k.iter().sum();
    for x in &mut k {
        *x /= total;
    }
    k
}

/// Separable Gaussian blur with clamped (replicate) borders.
///
/// ```
/// use bba_signal::{gaussian_blur, Grid};
/// let mut img = Grid::new(9, 9, 0.0);
/// img[(4, 4)] = 1.0;
/// let out = gaussian_blur(&img, 1.0);
/// // Energy is preserved away from the borders.
/// let total: f64 = out.as_slice().iter().sum();
/// assert!((total - 1.0).abs() < 1e-6);
/// // The peak stays at the centre but is reduced.
/// assert!(out[(4, 4)] < 1.0 && out[(4, 4)] > out[(4, 5)]);
/// ```
pub fn gaussian_blur(img: &Grid<f64>, sigma: f64) -> Grid<f64> {
    let kernel = gaussian_kernel(sigma);
    let radius = (kernel.len() / 2) as isize;
    let w = img.width();
    let h = img.height();
    if w == 0 || h == 0 {
        return img.clone();
    }

    // Horizontal pass.
    let mut tmp = Grid::new(w, h, 0.0);
    for v in 0..h {
        for u in 0..w {
            let mut acc = 0.0;
            for (ki, &kw) in kernel.iter().enumerate() {
                let uu = (u as isize + ki as isize - radius).clamp(0, w as isize - 1) as usize;
                acc += kw * img[(uu, v)];
            }
            tmp[(u, v)] = acc;
        }
    }
    // Vertical pass.
    let mut out = Grid::new(w, h, 0.0);
    for v in 0..h {
        for u in 0..w {
            let mut acc = 0.0;
            for (ki, &kw) in kernel.iter().enumerate() {
                let vv = (v as isize + ki as isize - radius).clamp(0, h as isize - 1) as usize;
                acc += kw * tmp[(u, vv)];
            }
            out[(u, v)] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_symmetric_and_normalised() {
        let k = gaussian_kernel(2.0);
        let n = k.len();
        for i in 0..n / 2 {
            assert!((k[i] - k[n - 1 - i]).abs() < 1e-15);
        }
        assert!((k.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Peak in the middle.
        assert!(k[n / 2] >= k[0]);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_panics() {
        let _ = gaussian_kernel(0.0);
    }

    #[test]
    fn blur_preserves_constant_image() {
        let img = Grid::new(8, 8, 3.5);
        let out = gaussian_blur(&img, 1.5);
        for &x in out.as_slice() {
            assert!((x - 3.5).abs() < 1e-9);
        }
    }

    #[test]
    fn blur_spreads_impulse_monotonically() {
        let mut img = Grid::new(11, 11, 0.0);
        img[(5, 5)] = 1.0;
        let out = gaussian_blur(&img, 1.0);
        assert!(out[(5, 5)] > out[(6, 5)]);
        assert!(out[(6, 5)] > out[(7, 5)]);
        assert!(out[(5, 5)] > out[(5, 6)]);
    }

    #[test]
    fn blur_is_separable_isotropic() {
        let mut img = Grid::new(15, 15, 0.0);
        img[(7, 7)] = 1.0;
        let out = gaussian_blur(&img, 1.2);
        // Symmetric in u and v.
        assert!((out[(9, 7)] - out[(7, 9)]).abs() < 1e-12);
        assert!((out[(5, 7)] - out[(7, 5)]).abs() < 1e-12);
    }
}

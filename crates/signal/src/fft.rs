//! Iterative radix-2 fast Fourier transform, 1-D and 2-D.
//!
//! The Log-Gabor filtering of BB-Align's stage 1 applies 48 filters
//! (`N_s = 4` scales × `N_o = 12` orientations) to every BV image. Doing
//! that as spatial convolution would be `O(H²·K²)` per filter; in the
//! frequency domain it is one forward 2-D FFT of the image, a per-filter
//! complex multiply, and one inverse 2-D FFT per filter. This module
//! provides exactly that machinery, hand-rolled (no external FFT crates are
//! available offline).

use crate::complex::Complex;
use crate::grid::Grid;
use std::error::Error;
use std::fmt;

/// Error returned for invalid FFT input sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftError {
    /// The length is not a power of two.
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::NotPowerOfTwo { len } => {
                write!(f, "FFT length must be a power of two, got {len}")
            }
        }
    }
}

impl Error for FftError {}

fn check_pow2(len: usize) -> Result<(), FftError> {
    if len == 0 || !len.is_power_of_two() {
        Err(FftError::NotPowerOfTwo { len })
    } else {
        Ok(())
    }
}

/// In-place forward FFT of a power-of-two-length buffer.
///
/// Uses the unnormalised convention: `X[k] = Σ_n x[n]·e^{-2πi·kn/N}`.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] for invalid lengths.
///
/// # Example
///
/// ```
/// use bba_signal::{fft_inplace, Complex};
/// // The FFT of an impulse is flat.
/// let mut x = vec![Complex::ZERO; 8];
/// x[0] = Complex::ONE;
/// fft_inplace(&mut x)?;
/// assert!(x.iter().all(|z| (z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12));
/// # Ok::<(), bba_signal::FftError>(())
/// ```
pub fn fft_inplace(x: &mut [Complex]) -> Result<(), FftError> {
    check_pow2(x.len())?;
    fft_unchecked(x, false);
    Ok(())
}

/// In-place inverse FFT (normalised by `1/N`), so
/// `ifft(fft(x)) == x` up to floating-point error.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] for invalid lengths.
pub fn ifft_inplace(x: &mut [Complex]) -> Result<(), FftError> {
    check_pow2(x.len())?;
    fft_unchecked(x, true);
    let scale = 1.0 / x.len() as f64;
    for z in x.iter_mut() {
        *z = z.scale(scale);
    }
    Ok(())
}

/// Core iterative Cooley–Tukey butterfly; `len` must be a power of two.
fn fft_unchecked(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            x.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut half = 1usize;
    while half < n {
        let step = std::f64::consts::PI / half as f64 * sign;
        let w_step = Complex::cis(step);
        for start in (0..n).step_by(2 * half) {
            let mut w = Complex::ONE;
            for k in 0..half {
                let a = x[start + k];
                let b = x[start + k + half] * w;
                x[start + k] = a + b;
                x[start + k + half] = a - b;
                w *= w_step;
            }
        }
        half *= 2;
    }
}

/// Forward 2-D FFT of a real-valued grid, returning the complex spectrum.
///
/// Both dimensions must be powers of two (BB-Align BV images are generated
/// at power-of-two resolutions, e.g. 256² or 512²; use
/// [`pad_to_pow2`] otherwise).
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if either dimension is invalid.
pub fn fft2d(img: &Grid<f64>) -> Result<Grid<Complex>, FftError> {
    check_pow2(img.width())?;
    check_pow2(img.height())?;
    let mut spec = img.map(|&x| Complex::from_real(x));
    fft2d_passes(&mut spec, false);
    Ok(spec)
}

/// Row pass then column pass of a 2-D FFT, both parallelised: rows are
/// disjoint `&mut` slices ([`bba_par::par_for_rows`]); columns are gathered
/// into per-column scratch buffers ([`bba_par::par_map_indices`], ordered by
/// column index) and scattered back row by row. Each 1-D transform sees
/// exactly the serial loop's data, so the result is bit-identical at every
/// thread count.
fn fft2d_passes(spec: &mut Grid<Complex>, inverse: bool) {
    let w = spec.width();
    let h = spec.height();
    bba_par::par_for_rows(spec.as_mut_slice(), w, |_, row| fft_unchecked(row, inverse));
    let cols: Vec<Vec<Complex>> = {
        let spec = &*spec;
        bba_par::par_map_indices(w, |u| {
            let mut col: Vec<Complex> = (0..h).map(|v| spec[(u, v)]).collect();
            fft_unchecked(&mut col, inverse);
            col
        })
    };
    bba_par::par_for_rows(spec.as_mut_slice(), w, |v, row| {
        for (u, z) in row.iter_mut().enumerate() {
            *z = cols[u][v];
        }
    });
}

/// Inverse 2-D FFT, returning the complex spatial-domain result.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if either dimension is invalid.
pub fn fft2d_inverse(spec: &Grid<Complex>) -> Result<Grid<Complex>, FftError> {
    check_pow2(spec.width())?;
    check_pow2(spec.height())?;
    let w = spec.width();
    let h = spec.height();
    let mut out = spec.clone();
    fft2d_passes(&mut out, true);
    let scale = 1.0 / (w * h) as f64;
    for z in out.as_mut_slice() {
        *z = z.scale(scale);
    }
    Ok(out)
}

/// Zero-pads a grid up to the next power-of-two dimensions.
///
/// Returns the original grid unchanged when it is already power-of-two
/// sized.
pub fn pad_to_pow2(img: &Grid<f64>) -> Grid<f64> {
    let w = img.width().next_power_of_two();
    let h = img.height().next_power_of_two();
    if w == img.width() && h == img.height() {
        return img.clone();
    }
    let mut out = Grid::new(w, h, 0.0);
    for (u, v, &x) in img.iter_cells() {
        out[(u, v)] = x;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!((a - b).abs() < tol, "{a:?} vs {b:?}");
    }

    #[test]
    fn rejects_non_pow2() {
        let mut x = vec![Complex::ZERO; 6];
        assert_eq!(fft_inplace(&mut x).unwrap_err(), FftError::NotPowerOfTwo { len: 6 });
        assert!(!FftError::NotPowerOfTwo { len: 6 }.to_string().is_empty());
    }

    #[test]
    fn dc_signal_concentrates_at_zero() {
        let mut x = vec![Complex::ONE; 8];
        fft_inplace(&mut x).unwrap();
        assert_close(x[0], Complex::from_real(8.0), 1e-12);
        for &z in &x[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_on_its_bin() {
        let n = 32;
        let k0 = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|n_i| Complex::cis(2.0 * std::f64::consts::PI * k0 as f64 * n_i as f64 / n as f64))
            .collect();
        fft_inplace(&mut x).unwrap();
        for (k, &z) in x.iter().enumerate() {
            if k == k0 {
                assert_close(z, Complex::from_real(n as f64), 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leak at bin {k}: {z:?}");
            }
        }
    }

    #[test]
    fn roundtrip_1d() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut y = x.clone();
        fft_inplace(&mut y).unwrap();
        ifft_inplace(&mut y).unwrap();
        for (a, b) in x.iter().zip(y.iter()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..16).map(|i| Complex::from_real(i as f64)).collect();
        let b: Vec<Complex> = (0..16).map(|i| Complex::from_real((i * i % 7) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        fft_inplace(&mut fa).unwrap();
        fft_inplace(&mut fb).unwrap();
        fft_inplace(&mut fs).unwrap();
        for i in 0..16 {
            assert_close(fs[i], fa[i] + fb[i], 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<Complex> = (0..128).map(|i| Complex::new((i as f64).sin(), 0.0)).collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sq()).sum();
        let mut f = x.clone();
        fft_inplace(&mut f).unwrap();
        let freq_energy: f64 = f.iter().map(|z| z.norm_sq()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn roundtrip_2d() {
        let img = Grid::from_fn(16, 8, |u, v| ((u * 3 + v * 7) % 11) as f64);
        let spec = fft2d(&img).unwrap();
        let back = fft2d_inverse(&spec).unwrap();
        for (u, v, &x) in img.iter_cells() {
            let z = back[(u, v)];
            assert!((z.re - x).abs() < 1e-9 && z.im.abs() < 1e-9);
        }
    }

    #[test]
    fn dc_2d_is_image_sum() {
        let img = Grid::from_fn(8, 8, |u, v| (u + v) as f64);
        let spec = fft2d(&img).unwrap();
        let total: f64 = img.as_slice().iter().sum();
        assert_close(spec[(0, 0)], Complex::from_real(total), 1e-9);
    }

    #[test]
    fn real_input_has_hermitian_spectrum() {
        let img = Grid::from_fn(8, 8, |u, v| ((u * 5 + v * 3) % 4) as f64);
        let spec = fft2d(&img).unwrap();
        for v in 0..8 {
            for u in 0..8 {
                let conj_u = (8 - u) % 8;
                let conj_v = (8 - v) % 8;
                assert_close(spec[(u, v)], spec[(conj_u, conj_v)].conj(), 1e-9);
            }
        }
    }

    #[test]
    fn pad_to_pow2_extends_with_zeros() {
        let img = Grid::from_fn(5, 3, |u, v| (u + v) as f64 + 1.0);
        let padded = pad_to_pow2(&img);
        assert_eq!(padded.width(), 8);
        assert_eq!(padded.height(), 4);
        assert_eq!(padded[(2, 1)], img[(2, 1)]);
        assert_eq!(padded[(7, 3)], 0.0);
        // Already a power of two: unchanged.
        let sq = Grid::new(4, 4, 1.0);
        assert_eq!(pad_to_pow2(&sq), sq);
    }
}

//! Fast Fourier transforms, 1-D and 2-D, over planned radix-2 kernels.
//!
//! The Log-Gabor filtering of BB-Align's stage 1 applies 48 filters
//! (`N_s = 4` scales × `N_o = 12` orientations) to every BV image. Doing
//! that as spatial convolution would be `O(H²·K²)` per filter; in the
//! frequency domain it is one forward 2-D FFT of the image, a per-filter
//! complex multiply, and one inverse 2-D FFT per filter. This module
//! provides exactly that machinery, hand-rolled (no external FFT crates are
//! available offline), on top of the precomputed tables in [`crate::plan`].
//!
//! Two structural facts of the pipeline are exploited (see DESIGN.md,
//! "Frequency-domain fast path"): the BV image is **real**, so the forward
//! transform packs two rows per complex FFT and mirrors the Hermitian half
//! of the column spectrum ([`rfft2d`]); and every folded Log-Gabor transfer
//! function is even-symmetric, so each filter response is real and two
//! responses ride one inverse transform (see
//! [`crate::LogGaborBank::orientation_amplitudes_into`]).

use crate::complex::Complex;
use crate::grid::Grid;
use crate::plan::{shared_plan, FftPlan};
use std::error::Error;
use std::fmt;

/// Error returned for invalid FFT input sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftError {
    /// The length is not a power of two.
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::NotPowerOfTwo { len } => {
                write!(f, "FFT length must be a power of two, got {len}")
            }
        }
    }
}

impl Error for FftError {}

/// In-place forward FFT of a power-of-two-length buffer.
///
/// Uses the unnormalised convention: `X[k] = Σ_n x[n]·e^{-2πi·kn/N}`.
/// Fetches the length's plan from the process-wide cache; hot loops that
/// already hold an [`FftPlan`] should call it directly.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] for invalid lengths.
///
/// # Example
///
/// ```
/// use bba_signal::{fft_inplace, Complex};
/// // The FFT of an impulse is flat.
/// let mut x = vec![Complex::ZERO; 8];
/// x[0] = Complex::ONE;
/// fft_inplace(&mut x)?;
/// assert!(x.iter().all(|z| (z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12));
/// # Ok::<(), bba_signal::FftError>(())
/// ```
pub fn fft_inplace(x: &mut [Complex]) -> Result<(), FftError> {
    shared_plan(x.len())?.forward(x);
    Ok(())
}

/// In-place inverse FFT (normalised by `1/N`), so
/// `ifft(fft(x)) == x` up to floating-point error.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] for invalid lengths.
pub fn ifft_inplace(x: &mut [Complex]) -> Result<(), FftError> {
    shared_plan(x.len())?.inverse(x);
    Ok(())
}

/// Forward 2-D FFT of a real-valued grid, returning the complex spectrum.
///
/// Both dimensions must be powers of two (BB-Align BV images are generated
/// at power-of-two resolutions, e.g. 256² or 512²; use
/// [`pad_to_pow2`] otherwise). For real input, [`rfft2d`] computes the same
/// spectrum in roughly half the work.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if either dimension is invalid.
pub fn fft2d(img: &Grid<f64>) -> Result<Grid<Complex>, FftError> {
    let mut spec = img.map(|&x| Complex::from_real(x));
    fft2d_passes(&mut spec, false)?;
    Ok(spec)
}

/// Row pass then column pass of a 2-D FFT, both parallelised: rows are
/// disjoint `&mut` slices ([`bba_par::par_for_rows`]); columns are
/// transposed into a scratch grid whose rows are again disjoint, transformed
/// there, and scattered back row by row. Each 1-D transform sees exactly the
/// serial loop's data, so the result is bit-identical at every thread count.
fn fft2d_passes(spec: &mut Grid<Complex>, inverse: bool) -> Result<(), FftError> {
    let w = spec.width();
    let h = spec.height();
    let plan_w = shared_plan(w)?;
    let plan_h = shared_plan(h)?;
    let run = |plan: &FftPlan, buf: &mut [Complex]| {
        if inverse {
            plan.inverse_unscaled(buf);
        } else {
            plan.forward(buf);
        }
    };
    bba_par::par_for_rows(spec.as_mut_slice(), w, |_, row| run(&plan_w, row));
    // Transposed scratch: row `u` of `t` is column `u` of `spec`.
    let mut t = Grid::new(h, w, Complex::ZERO);
    {
        let spec = &*spec;
        bba_par::par_for_rows(t.as_mut_slice(), h, |u, trow| {
            for (v, z) in trow.iter_mut().enumerate() {
                *z = spec[(u, v)];
            }
            run(&plan_h, trow);
        });
    }
    bba_par::par_for_rows(spec.as_mut_slice(), w, |v, row| {
        for (u, z) in row.iter_mut().enumerate() {
            *z = t[(v, u)];
        }
    });
    Ok(())
}

/// Inverse 2-D FFT, returning the complex spatial-domain result.
///
/// Normalised by `1/(W·H)`, so `fft2d_inverse(fft2d(img))` recovers `img`
/// up to floating-point error.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if either dimension is invalid.
pub fn fft2d_inverse(spec: &Grid<Complex>) -> Result<Grid<Complex>, FftError> {
    let w = spec.width();
    let h = spec.height();
    let mut out = spec.clone();
    fft2d_passes(&mut out, true)?;
    let scale = 1.0 / (w * h) as f64;
    for z in out.as_mut_slice() {
        *z = z.scale(scale);
    }
    Ok(out)
}

/// Forward 2-D FFT of a real-valued grid via the real-input fast path:
/// identical spectrum to [`fft2d`] (up to rounding) in roughly half the
/// work.
///
/// Two real rows are packed into one complex FFT and unpacked through the
/// Hermitian symmetry of real-signal spectra, halving the row pass; the
/// column pass transforms only bins `0..=W/2` and mirrors the rest from
/// `F(u,v) = conj(F(W−u, H−v))`, halving the column pass.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] if either dimension is invalid.
pub fn rfft2d(img: &Grid<f64>) -> Result<Grid<Complex>, FftError> {
    let w = img.width();
    let h = img.height();
    let plan_w = shared_plan(w)?;
    let plan_h = shared_plan(h)?;
    let mut spec = Grid::new(w, h, Complex::ZERO);
    let mut pack = vec![Complex::ZERO; w];
    let mut col = vec![Complex::ZERO; 4 * h];
    rfft2d_into(img, &plan_w, &plan_h, &mut spec, &mut pack, &mut col);
    Ok(spec)
}

/// Allocation-free core of [`rfft2d`]: writes the full complex spectrum of
/// `img` into `spec` using caller-provided scratch (`pack` of length `W`,
/// `col` of length at least `H`; `2·H` unlocks the paired-column fast
/// path). Serial by design — the MIM hot path calls this once per frame and
/// spends its thread budget on the 24 filter lanes instead.
///
/// # Panics
///
/// Panics (in the underlying plan) if the plans or buffers do not match the
/// image dimensions.
pub(crate) fn rfft2d_into(
    img: &Grid<f64>,
    plan_w: &FftPlan,
    plan_h: &FftPlan,
    spec: &mut Grid<Complex>,
    pack: &mut [Complex],
    col: &mut [Complex],
) {
    let w = img.width();
    let h = img.height();
    debug_assert_eq!((spec.width(), spec.height()), (w, h));
    // Row pass: two real rows per complex transform. With Z the transform
    // of `row_a + i·row_b`, Hermitian symmetry separates the pair:
    // `F_a[k] = (Z[k] + conj(Z[W−k]))/2`, `F_b[k] = (Z[k] − conj(Z[W−k]))/(2i)`.
    if h == 1 {
        for (z, &x) in spec.as_mut_slice().iter_mut().zip(img.as_slice()) {
            *z = Complex::from_real(x);
        }
        plan_w.forward(spec.as_mut_slice());
        return;
    }
    for vp in 0..h / 2 {
        let (v0, v1) = (2 * vp, 2 * vp + 1);
        let row0 = img.row(v0);
        let row1 = img.row(v1);
        for (u, z) in pack.iter_mut().enumerate() {
            *z = Complex::new(row0[u], row1[u]);
        }
        plan_w.forward(pack);
        for k in 0..w {
            let z = pack[k];
            let zc = pack[(w - k) & (w - 1)].conj();
            spec[(k, v0)] = (z + zc).scale(0.5);
            let d = (z - zc).scale(0.5); // = i·F_b[k]
            spec[(k, v1)] = Complex::new(d.im, -d.re);
        }
    }
    // Column pass on bins 0..=W/2; the upper half follows from the
    // Hermitian symmetry of the full real-input 2-D spectrum. When the
    // scratch has room for two interleaved columns, adjacent bins ride one
    // two-stream transform ([`FftPlan::forward_pair`]) so the butterflies
    // see contiguous vector lanes; each stream is bit-identical to its
    // single-column transform.
    let top = w / 2;
    let mut u = 0;
    if col.len() >= 2 * h {
        let pair = &mut col[..2 * h];
        while u < top {
            for v in 0..h {
                pair[2 * v] = spec[(u, v)];
                pair[2 * v + 1] = spec[(u + 1, v)];
            }
            plan_h.forward_pair(pair);
            for v in 0..h {
                spec[(u, v)] = pair[2 * v];
                spec[(u + 1, v)] = pair[2 * v + 1];
            }
            u += 2;
        }
    }
    while u <= top {
        let single = &mut col[..h];
        for (v, z) in single.iter_mut().enumerate() {
            *z = spec[(u, v)];
        }
        plan_h.forward(single);
        for (v, &z) in single.iter().enumerate() {
            spec[(u, v)] = z;
        }
        u += 1;
    }
    for u in w / 2 + 1..w {
        for v in 0..h {
            spec[(u, v)] = spec[(w - u, (h - v) & (h - 1))].conj();
        }
    }
}

/// Serial in-place unnormalised inverse 2-D FFT over a row-major buffer,
/// using caller-provided column scratch (`col` of length at least `H`;
/// `2·H` unlocks the paired-column fast path, `4·H` the quad-column gather). The caller applies the
/// `1/(W·H)` normalisation, typically fused into whatever pass consumes
/// the result.
pub(crate) fn ifft2d_unscaled_into(
    data: &mut [Complex],
    w: usize,
    h: usize,
    plan_w: &FftPlan,
    plan_h: &FftPlan,
    col: &mut [Complex],
) {
    debug_assert_eq!(data.len(), w * h);
    // Row pass, all rows in one batched transform: each butterfly level is
    // a single kernel call over the whole buffer (bit-identical per row to
    // transforming it alone).
    plan_w.inverse_unscaled_many(data);
    // Column pass: four columns per sweep when the scratch allows (one
    // 64-byte line holds four complexes, so the strided gather/scatter
    // touches each line once for all four), as two independent paired
    // transforms — bit-identical per column to transforming it alone.
    let mut u = 0;
    if col.len() >= 4 * h {
        let quad = &mut col[..4 * h];
        while u + 4 <= w {
            for v in 0..h {
                let base = v * w + u;
                quad[2 * v] = data[base];
                quad[2 * v + 1] = data[base + 1];
                quad[2 * h + 2 * v] = data[base + 2];
                quad[2 * h + 2 * v + 1] = data[base + 3];
            }
            let (p0, p1) = quad.split_at_mut(2 * h);
            plan_h.inverse_unscaled_pair(p0);
            plan_h.inverse_unscaled_pair(p1);
            for v in 0..h {
                let base = v * w + u;
                data[base] = p0[2 * v];
                data[base + 1] = p0[2 * v + 1];
                data[base + 2] = p1[2 * v];
                data[base + 3] = p1[2 * v + 1];
            }
            u += 4;
        }
    }
    if col.len() >= 2 * h {
        let pair = &mut col[..2 * h];
        while u + 2 <= w {
            for v in 0..h {
                pair[2 * v] = data[v * w + u];
                pair[2 * v + 1] = data[v * w + u + 1];
            }
            plan_h.inverse_unscaled_pair(pair);
            for v in 0..h {
                data[v * w + u] = pair[2 * v];
                data[v * w + u + 1] = pair[2 * v + 1];
            }
            u += 2;
        }
    }
    while u < w {
        let single = &mut col[..h];
        for (v, z) in single.iter_mut().enumerate() {
            *z = data[v * w + u];
        }
        plan_h.inverse_unscaled(single);
        for (v, &z) in single.iter().enumerate() {
            data[v * w + u] = z;
        }
        u += 1;
    }
}

/// Zero-pads a grid up to the next power-of-two dimensions.
///
/// Returns the original grid unchanged when it is already power-of-two
/// sized.
pub fn pad_to_pow2(img: &Grid<f64>) -> Grid<f64> {
    let w = img.width().next_power_of_two();
    let h = img.height().next_power_of_two();
    if w == img.width() && h == img.height() {
        return img.clone();
    }
    let mut out = Grid::new(w, h, 0.0);
    for (u, v, &x) in img.iter_cells() {
        out[(u, v)] = x;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!((a - b).abs() < tol, "{a:?} vs {b:?}");
    }

    #[test]
    fn rejects_non_pow2() {
        let mut x = vec![Complex::ZERO; 6];
        assert_eq!(fft_inplace(&mut x).unwrap_err(), FftError::NotPowerOfTwo { len: 6 });
        assert!(!FftError::NotPowerOfTwo { len: 6 }.to_string().is_empty());
        assert!(rfft2d(&Grid::new(6, 4, 0.0)).is_err());
    }

    #[test]
    fn dc_signal_concentrates_at_zero() {
        let mut x = vec![Complex::ONE; 8];
        fft_inplace(&mut x).unwrap();
        assert_close(x[0], Complex::from_real(8.0), 1e-12);
        for &z in &x[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_on_its_bin() {
        let n = 32;
        let k0 = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|n_i| Complex::cis(2.0 * std::f64::consts::PI * k0 as f64 * n_i as f64 / n as f64))
            .collect();
        fft_inplace(&mut x).unwrap();
        for (k, &z) in x.iter().enumerate() {
            if k == k0 {
                assert_close(z, Complex::from_real(n as f64), 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leak at bin {k}: {z:?}");
            }
        }
    }

    #[test]
    fn roundtrip_1d() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut y = x.clone();
        fft_inplace(&mut y).unwrap();
        ifft_inplace(&mut y).unwrap();
        for (a, b) in x.iter().zip(y.iter()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn ifft_applies_1_over_n_scaling() {
        // A flat spectrum of ones is the transform of a unit impulse: the
        // inverse must produce exactly δ[0] = 1 (not N).
        let mut x = vec![Complex::ONE; 16];
        ifft_inplace(&mut x).unwrap();
        assert_close(x[0], Complex::ONE, 1e-12);
        for &z in &x[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..16).map(|i| Complex::from_real(i as f64)).collect();
        let b: Vec<Complex> = (0..16).map(|i| Complex::from_real((i * i % 7) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        fft_inplace(&mut fa).unwrap();
        fft_inplace(&mut fb).unwrap();
        fft_inplace(&mut fs).unwrap();
        for i in 0..16 {
            assert_close(fs[i], fa[i] + fb[i], 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<Complex> = (0..128).map(|i| Complex::new((i as f64).sin(), 0.0)).collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sq()).sum();
        let mut f = x.clone();
        fft_inplace(&mut f).unwrap();
        let freq_energy: f64 = f.iter().map(|z| z.norm_sq()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn roundtrip_2d() {
        let img = Grid::from_fn(16, 8, |u, v| ((u * 3 + v * 7) % 11) as f64);
        let spec = fft2d(&img).unwrap();
        let back = fft2d_inverse(&spec).unwrap();
        for (u, v, &x) in img.iter_cells() {
            let z = back[(u, v)];
            assert!((z.re - x).abs() < 1e-9 && z.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft2d_inverse_applies_1_over_wh_scaling() {
        // Flat 2-D spectrum ⇒ unit impulse at the origin, amplitude exactly
        // 1 only when the inverse divides by W·H once (not per pass).
        let spec = Grid::new(8, 4, Complex::ONE);
        let back = fft2d_inverse(&spec).unwrap();
        assert_close(back[(0, 0)], Complex::ONE, 1e-12);
        for (u, v, &z) in back.iter_cells() {
            if (u, v) != (0, 0) {
                assert!(z.abs() < 1e-12, "nonzero at ({u},{v}): {z:?}");
            }
        }
    }

    #[test]
    fn dc_2d_is_image_sum() {
        let img = Grid::from_fn(8, 8, |u, v| (u + v) as f64);
        let spec = fft2d(&img).unwrap();
        let total: f64 = img.as_slice().iter().sum();
        assert_close(spec[(0, 0)], Complex::from_real(total), 1e-9);
    }

    #[test]
    fn real_input_has_hermitian_spectrum() {
        let img = Grid::from_fn(8, 8, |u, v| ((u * 5 + v * 3) % 4) as f64);
        let spec = fft2d(&img).unwrap();
        for v in 0..8 {
            for u in 0..8 {
                let conj_u = (8 - u) % 8;
                let conj_v = (8 - v) % 8;
                assert_close(spec[(u, v)], spec[(conj_u, conj_v)].conj(), 1e-9);
            }
        }
    }

    #[test]
    fn rfft2d_matches_fft2d() {
        for (w, h) in [(16, 16), (8, 32), (32, 1), (1, 8), (2, 2)] {
            let img = Grid::from_fn(w, h, |u, v| ((u * 13 + v * 7) % 9) as f64 - 3.0);
            let full = fft2d(&img).unwrap();
            let real = rfft2d(&img).unwrap();
            for i in 0..full.len() {
                let (a, b) = (full.as_slice()[i], real.as_slice()[i]);
                assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{w}x{h} bin {i}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn pad_to_pow2_extends_with_zeros() {
        let img = Grid::from_fn(5, 3, |u, v| (u + v) as f64 + 1.0);
        let padded = pad_to_pow2(&img);
        assert_eq!(padded.width(), 8);
        assert_eq!(padded.height(), 4);
        assert_eq!(padded[(2, 1)], img[(2, 1)]);
        assert_eq!(padded[(7, 3)], 0.0);
        // Already a power of two: unchanged.
        let sq = Grid::new(4, 4, 1.0);
        assert_eq!(pad_to_pow2(&sq), sq);
    }
}

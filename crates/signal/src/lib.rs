//! Signal-processing substrate for BB-Align: FFT, Log-Gabor filter bank and
//! the Maximum Index Map (MIM) feature image.
//!
//! BB-Align's stage 1 matches bird's-eye-view (BV) images that are far too
//! sparse for classical detectors (SIFT/ORB "fail to detect meaningful
//! features", paper §II). Following the paper's Eq. (5)–(10) (and its
//! references RIFT \[25\] / BVMatch \[27\] / Fischer et al. \[6\]), a bank of 2-D
//! Log-Gabor filters with `N_s` scales and `N_o` orientations is applied to
//! the BV image; amplitudes are summed over scales per orientation, and the
//! **MIM** records, per pixel, the orientation index with maximal amplitude.
//!
//! Everything here is built from scratch on a planned iterative radix-2 FFT
//! ([`plan`], [`fft`]): the Log-Gabor bank is constructed directly in the
//! frequency domain ([`LogGaborBank`]), where each filter is the product of
//! a radial log-Gaussian (scale selectivity, the `ρ` factor of Eq. (6)) and
//! an angular Gaussian (orientation selectivity, the `θ` factor). The hot
//! path exploits real input ([`rfft2d`]) and even-symmetric filters (packed
//! inverse pairs), and reuses scratch memory through an [`FftWorkspace`] so
//! the steady-state MIM computation allocates nothing per frame.
//!
//! # Example
//!
//! ```
//! use bba_signal::{Grid, LogGaborConfig, MaxIndexMap};
//!
//! // A sparse synthetic "BV image" with a vertical edge.
//! let mut img = Grid::new(64, 64, 0.0f64);
//! for v in 10..54 {
//!     img[(32, v)] = 5.0;
//! }
//! let mim = MaxIndexMap::compute(&img, &LogGaborConfig::default());
//! assert_eq!(mim.index.width(), 64);
//! ```

#![warn(missing_docs)]

pub mod complex;
pub mod fft;
pub mod filter;
pub mod grid;
pub mod loggabor;
pub mod mim;
pub mod pgm;
pub mod plan;
pub mod workspace;

pub use complex::Complex;
pub use fft::{fft2d, fft2d_inverse, fft_inplace, ifft_inplace, pad_to_pow2, rfft2d, FftError};
pub use filter::{gaussian_blur, gaussian_kernel};
pub use grid::Grid;
pub use loggabor::{LogGaborBank, LogGaborConfig};
pub use mim::MaxIndexMap;
pub use pgm::{encode_pgm, write_pgm};
pub use plan::{shared_plan, FftPlan};
pub use workspace::FftWorkspace;

//! The 2-D Log-Gabor filter bank of the paper's Eq. (6)–(7).
//!
//! A Log-Gabor filter is defined in the *frequency* domain on polar
//! coordinates `(ρ, θ)` (the paper's Eq. (5) conversion): a log-Gaussian
//! radial profile selecting a scale, multiplied by a Gaussian angular
//! profile selecting an orientation:
//!
//! ```text
//! L(ρ, θ; s, o) = exp(−(log(ρ/ρ_s))² / (2·σ_ρ²)) · exp(−(θ − θ_o)² / (2·σ_θ²))
//! ```
//!
//! Scales follow the geometric progression of Kovesi's reference
//! implementation (paper footnote 2 / reference \[32\]): the centre wavelength
//! of scale `s` is `min_wavelength · mult^(s−1)` pixels, i.e. centre
//! frequency `ρ_s = 1 / wavelength_s` cycles/pixel. The radial bandwidth is
//! expressed through `sigma_on_f` (σ/f ratio, ~0.55 ≈ two octaves) and the
//! angular bandwidth through `d_theta_on_sigma`.
//!
//! Applying the bank (Eq. (8)) is a frequency-domain product followed by an
//! inverse FFT; the complex magnitude of the result is the amplitude
//! `A(ρ, θ, s, o)` used in Eq. (9)–(10).

use crate::complex::{as_floats, as_floats_mut, Complex};
use crate::fft::{ifft2d_unscaled_into, rfft2d_into, FftError};
use crate::grid::Grid;
use crate::workspace::FftWorkspace;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Configuration of the Log-Gabor filter bank.
///
/// Defaults mirror the paper's evaluation setup (`N_s = 4`, `N_o = 12`) with
/// Kovesi-style bandwidth constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogGaborConfig {
    /// Number of scales `N_s`.
    pub num_scales: usize,
    /// Number of orientations `N_o`.
    pub num_orientations: usize,
    /// Wavelength (pixels) of the smallest-scale filter.
    pub min_wavelength: f64,
    /// Scale multiplier between successive filters.
    pub mult: f64,
    /// Ratio σ_ρ/ρ_0 of the radial log-Gaussian (≈0.55 → ~2 octaves).
    pub sigma_on_f: f64,
    /// Ratio of angular interval to angular σ (≈1.2).
    pub d_theta_on_sigma: f64,
}

impl Default for LogGaborConfig {
    fn default() -> Self {
        LogGaborConfig {
            num_scales: 4,
            num_orientations: 12,
            min_wavelength: 3.0,
            mult: 2.1,
            sigma_on_f: 0.55,
            d_theta_on_sigma: 1.2,
        }
    }
}

impl LogGaborConfig {
    /// Orientation angle `θ_o = (o−1)·π/N_o` of orientation index `o`
    /// (0-based here), per the paper's definition of the array `O`.
    pub fn orientation_angle(&self, o: usize) -> f64 {
        o as f64 * PI / self.num_orientations as f64
    }

    /// Centre frequency (cycles/pixel) of scale index `s` (0-based).
    pub fn center_frequency(&self, s: usize) -> f64 {
        1.0 / (self.min_wavelength * self.mult.powi(s as i32))
    }

    /// Validates the configuration, panicking with a descriptive message on
    /// nonsensical values. Called by [`LogGaborBank::new`].
    fn validate(&self) {
        assert!(self.num_scales >= 1, "need at least one scale");
        assert!(self.num_orientations >= 2, "need at least two orientations");
        assert!(self.min_wavelength >= 2.0, "min wavelength below Nyquist (2 px)");
        assert!(self.mult > 1.0, "scale multiplier must exceed 1");
        assert!(self.sigma_on_f > 0.0 && self.sigma_on_f < 1.0, "sigma_on_f must be in (0, 1)");
        assert!(self.d_theta_on_sigma > 0.0, "d_theta_on_sigma must be positive");
    }
}

/// A pre-computed Log-Gabor filter bank for one image size.
///
/// Construction is `O(N_s · N_o · H · W)`; the bank can be reused across
/// every image of the same size (the ego car filters two BV images per
/// recovery, so reuse matters).
///
/// # Example
///
/// ```
/// use bba_signal::{Grid, LogGaborBank, LogGaborConfig};
/// let bank = LogGaborBank::new(64, 64, LogGaborConfig::default());
/// let img = Grid::new(64, 64, 0.0);
/// let amplitudes = bank.orientation_amplitudes(&img)?;
/// assert_eq!(amplitudes.len(), 12);
/// # Ok::<(), bba_signal::FftError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LogGaborBank {
    config: LogGaborConfig,
    width: usize,
    height: usize,
    /// `filters[o][s]` — frequency-domain transfer function (real-valued).
    filters: Vec<Vec<Grid<f64>>>,
    /// `packed[o][p]` — scales `2p` and `2p+1` of orientation `o` packed as
    /// `L_{2p} + i·L_{2p+1}` (imaginary part zero for a trailing odd scale).
    /// Because both transfer functions are real and even-symmetric, one
    /// inverse FFT of `F·packed` yields both spatial responses at once:
    /// scale `2p` in the real part, `2p+1` in the imaginary part.
    packed: Vec<Vec<Grid<Complex>>>,
}

impl LogGaborBank {
    /// Builds the bank for `width × height` images.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`LogGaborConfig`]) or if
    /// either dimension is zero.
    pub fn new(width: usize, height: usize, config: LogGaborConfig) -> Self {
        config.validate();
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        let theta_sigma = PI / config.num_orientations as f64 / config.d_theta_on_sigma;
        let log_sigma = config.sigma_on_f.ln().abs();

        // Frequency coordinates: FFT bin k maps to frequency k/N for
        // k < N/2, (k-N)/N above.
        let freq_axis = |n: usize, k: usize| -> f64 {
            let k = k as isize;
            let n = n as isize;
            let signed = if k <= n / 2 { k } else { k - n };
            signed as f64 / n as f64
        };

        // Every (orientation, scale) transfer function is independent:
        // build the flattened pair list in parallel (ordered by pair
        // index), then regroup per orientation.
        let pairs: Vec<(usize, usize)> = (0..config.num_orientations)
            .flat_map(|o| (0..config.num_scales).map(move |s| (o, s)))
            .collect();
        let built: Vec<Grid<f64>> = bba_par::par_map(&pairs, |&(o, s)| {
            let theta0 = config.orientation_angle(o);
            let (sin0, cos0) = theta0.sin_cos();
            let f0 = config.center_frequency(s);
            let mut filt = Grid::new(width, height, 0.0);
            for v in 0..height {
                let fy = freq_axis(height, v);
                for u in 0..width {
                    let fx = freq_axis(width, u);
                    let radius = (fx * fx + fy * fy).sqrt();
                    if radius < 1e-12 {
                        continue; // zero DC response
                    }
                    // Radial log-Gaussian.
                    let lr = (radius / f0).ln();
                    let radial = (-lr * lr / (2.0 * log_sigma * log_sigma)).exp();
                    // Angular Gaussian on the folded orientation
                    // difference (filters are π-periodic for real
                    // images; cover both half-planes).
                    let theta = fy.atan2(fx);
                    let ds = theta.sin() * cos0 - theta.cos() * sin0;
                    let dc = theta.cos() * cos0 + theta.sin() * sin0;
                    let dtheta = ds.atan2(dc).abs();
                    let dtheta = dtheta.min(PI - dtheta); // fold to [0, π/2]
                    let angular = (-dtheta * dtheta / (2.0 * theta_sigma * theta_sigma)).exp();
                    filt[(u, v)] = radial * angular;
                }
            }
            // Even-symmetrise: the Nyquist row/column are their own
            // conjugate mirrors, but the +0.5 frequency convention assigns
            // them a single alias angle, leaving `L[k] ≠ L[−k]` there.
            // Averaging each bin with its mirror (exact for already-equal
            // bins: 0.5·(a+a) = a) restores `L[k] = L[−k]` everywhere, so
            // every spatial response is exactly real — the property the
            // packed-inverse-pair fast path rests on. It is also the more
            // faithful filter: a Nyquist bin represents both ±0.5 aliases.
            Grid::from_fn(width, height, |u, v| {
                let m = filt[((width - u) % width, (height - v) % height)];
                0.5 * (filt[(u, v)] + m)
            })
        });
        let mut built = built.into_iter();
        let filters: Vec<Vec<Grid<f64>>> = (0..config.num_orientations)
            .map(|_| (0..config.num_scales).map(|_| built.next().expect("one per pair")).collect())
            .collect();
        let packed = filters
            .iter()
            .map(|per_scale| {
                per_scale
                    .chunks(2)
                    .map(|pair| {
                        Grid::from_vec(
                            width,
                            height,
                            (0..width * height)
                                .map(|i| {
                                    let re = pair[0].as_slice()[i];
                                    let im = pair.get(1).map_or(0.0, |f| f.as_slice()[i]);
                                    Complex::new(re, im)
                                })
                                .collect(),
                        )
                    })
                    .collect()
            })
            .collect();
        LogGaborBank { config, width, height, filters, packed }
    }

    /// The configuration used to build the bank.
    pub fn config(&self) -> &LogGaborConfig {
        &self.config
    }

    /// Image width the bank was built for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height the bank was built for.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The frequency-domain transfer function of filter `(s, o)`.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `o` is out of range.
    pub fn filter(&self, s: usize, o: usize) -> &Grid<f64> {
        &self.filters[o][s]
    }

    /// Amplitude response per orientation, summed over scales — the paper's
    /// Eq. (8)–(9): `A(ρ,θ,o) = Σ_s ‖B * L(·,·,s,o)‖`.
    ///
    /// Returns `N_o` grids of per-pixel amplitudes. Allocates a fresh
    /// [`FftWorkspace`] per call; hot loops should hold one and use
    /// [`LogGaborBank::orientation_amplitudes_into`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] if the image dimensions are not powers of two.
    ///
    /// # Panics
    ///
    /// Panics if the image shape differs from the bank's.
    pub fn orientation_amplitudes(&self, img: &Grid<f64>) -> Result<Vec<Grid<f64>>, FftError> {
        let mut ws = FftWorkspace::new();
        self.orientation_amplitudes_into(img, &mut ws)?;
        Ok(ws.take_amplitudes())
    }

    /// Allocation-free amplitude computation: fills the workspace's
    /// per-orientation accumulators (read them back via
    /// [`FftWorkspace::amplitude`] / [`FftWorkspace::amplitudes`]) without
    /// touching the heap once `ws` has seen this image size.
    ///
    /// This is the frequency-domain fast path: one real forward transform
    /// ([`rfft2d`](crate::rfft2d) packing), then per orientation `⌈N_s/2⌉`
    /// packed inverse transforms — scales `2p` and `2p+1` share one inverse
    /// FFT because their filter responses are real (even-symmetric transfer
    /// functions), landing in the real and imaginary parts respectively.
    /// Orientations are the unit of parallelism: each `bba-par` worker owns
    /// a disjoint workspace lane, scales accumulate in ascending order, and
    /// the `1/(W·H)` inverse normalisation is fused into the accumulation,
    /// so results are bit-identical at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] if the image dimensions are not powers of two.
    ///
    /// # Panics
    ///
    /// Panics if the image shape differs from the bank's.
    pub fn orientation_amplitudes_into(
        &self,
        img: &Grid<f64>,
        ws: &mut FftWorkspace,
    ) -> Result<(), FftError> {
        assert_eq!(
            (img.width(), img.height()),
            (self.width, self.height),
            "image shape does not match filter bank"
        );
        ws.ensure(self.width, self.height, self.config.num_orientations)?;
        let FftWorkspace { plans, spectrum, pack, col, lanes, .. } = ws;
        let (plan_w, plan_h) = plans.as_ref().expect("ensure always sets plans");
        // The forward transform is a small fraction of the work (1 image
        // transform vs ⌈N_s/2⌉·N_o inverse ones); run it serially and spend
        // the thread budget on the orientation lanes below.
        rfft2d_into(img, plan_w, plan_h, spectrum, pack, col);
        let spectrum = &*spectrum;
        let num_scales = self.config.num_scales;
        let scale = 1.0 / (self.width * self.height) as f64;
        bba_par::par_for_rows(lanes, 1, |o, lane| {
            let lane = &mut lane[0];
            for (p, pair) in self.packed[o].iter().enumerate() {
                // Frequency-domain product F·(L_a + i·L_b) = F_a + i·F_b,
                // vectorised with scalar-identical rounding.
                bba_simd::cmul(
                    as_floats_mut(&mut lane.filtered),
                    as_floats(spectrum.as_slice()),
                    as_floats(pair.as_slice()),
                );
                ifft2d_unscaled_into(
                    &mut lane.filtered,
                    self.width,
                    self.height,
                    plan_w,
                    plan_h,
                    &mut lane.col,
                );
                // Split the packed pair and accumulate, fusing the 1/(W·H)
                // normalisation. The responses are mathematically real, so
                // amplitude ‖·‖ reduces to |re| (and |im| for the partner).
                let both = 2 * p + 1 < num_scales;
                bba_simd::amp_accumulate(
                    lane.acc.as_mut_slice(),
                    as_floats(&lane.filtered),
                    scale,
                    both,
                    p == 0,
                );
            }
        });
        Ok(())
    }

    /// Fused streaming MIM reduction — the Eq. (9)–(10) argmax without ever
    /// materialising the per-orientation amplitude grids.
    ///
    /// Each worker lane owns a contiguous chunk of orientations. Per
    /// orientation, the non-final packed scale pairs accumulate into the
    /// lane's running sum exactly as on the full path; the final pair folds
    /// the completed amplitude straight into the lane's `(max_amp, max_idx)`
    /// running argmax with strict `>` (first orientation wins ties). A
    /// serial ascending merge across lanes — lane 0 seeds the output, later
    /// lanes fold in with the same strict `>` — reproduces one serial pass
    /// over all orientations, so results are bit-identical to
    /// [`MaxIndexMap::compute_via_amplitudes`](crate::MaxIndexMap::compute_via_amplitudes)
    /// at every thread count.
    ///
    /// With caller-provided output grids this is the fully allocation-free
    /// MIM entry point: once `ws` has seen the image size, steady-state
    /// calls never touch the heap (proved by
    /// `crates/signal/tests/alloc_free.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] if the image dimensions are not powers of two.
    ///
    /// # Panics
    ///
    /// Panics if the image or output shapes differ from the bank's.
    pub fn mim_fused_into(
        &self,
        img: &Grid<f64>,
        ws: &mut FftWorkspace,
        index: &mut Grid<u8>,
        amplitude: &mut Grid<f64>,
    ) -> Result<(), FftError> {
        assert_eq!(
            (img.width(), img.height()),
            (self.width, self.height),
            "image shape does not match filter bank"
        );
        assert_eq!((index.width(), index.height()), (self.width, self.height));
        assert_eq!((amplitude.width(), amplitude.height()), (self.width, self.height));
        let n_o = self.config.num_orientations;
        let workers = bba_par::current_threads().clamp(1, n_o);
        let chunk = n_o.div_ceil(workers);
        let n_lanes = n_o.div_ceil(chunk);
        ws.ensure_fused(self.width, self.height, n_lanes)?;
        let FftWorkspace { plans, spectrum, pack, col, lanes, .. } = ws;
        let (plan_w, plan_h) = plans.as_ref().expect("ensure always sets plans");
        rfft2d_into(img, plan_w, plan_h, spectrum, pack, col);
        let spectrum = &*spectrum;
        let num_scales = self.config.num_scales;
        let n_pairs = num_scales.div_ceil(2);
        let scale = 1.0 / (self.width * self.height) as f64;
        bba_par::par_for_rows(lanes, 1, |lane_i, lane| {
            let lane = &mut lane[0];
            lane.max_amp.fill(f64::NEG_INFINITY);
            lane.max_idx.fill(0);
            let lo = lane_i * chunk;
            let hi = ((lane_i + 1) * chunk).min(n_o);
            for o in lo..hi {
                for (p, pair) in self.packed[o].iter().enumerate() {
                    bba_simd::cmul(
                        as_floats_mut(&mut lane.filtered),
                        as_floats(spectrum.as_slice()),
                        as_floats(pair.as_slice()),
                    );
                    ifft2d_unscaled_into(
                        &mut lane.filtered,
                        self.width,
                        self.height,
                        plan_w,
                        plan_h,
                        &mut lane.col,
                    );
                    let both = 2 * p + 1 < num_scales;
                    if p + 1 < n_pairs {
                        bba_simd::amp_accumulate(
                            lane.acc.as_mut_slice(),
                            as_floats(&lane.filtered),
                            scale,
                            both,
                            p == 0,
                        );
                    } else {
                        // Final pair: complete the amplitude in-register and
                        // fold it into the running argmax.
                        let partial = (p > 0).then_some(lane.acc.as_slice());
                        bba_simd::amp_max_fold(
                            &mut lane.max_amp,
                            &mut lane.max_idx,
                            as_floats(&lane.filtered),
                            scale,
                            both,
                            partial,
                            o as u8,
                        );
                    }
                }
            }
        });
        let amp_out = amplitude.as_mut_slice();
        let idx_out = index.as_mut_slice();
        amp_out.copy_from_slice(&lanes[0].max_amp);
        idx_out.copy_from_slice(&lanes[0].max_idx);
        for lane in &lanes[1..] {
            bba_simd::max_merge(amp_out, idx_out, &lane.max_amp, &lane.max_idx);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = LogGaborConfig::default();
        assert_eq!(c.num_scales, 4);
        assert_eq!(c.num_orientations, 12);
    }

    #[test]
    fn orientation_angles_span_half_circle() {
        let c = LogGaborConfig::default();
        assert_eq!(c.orientation_angle(0), 0.0);
        let last = c.orientation_angle(c.num_orientations - 1);
        assert!(last < PI);
        assert!((c.orientation_angle(6) - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn center_frequencies_decrease_geometrically() {
        let c = LogGaborConfig::default();
        let f0 = c.center_frequency(0);
        let f1 = c.center_frequency(1);
        assert!((f0 / f1 - c.mult).abs() < 1e-12);
        assert!(f0 <= 0.5, "centre frequency above Nyquist");
    }

    #[test]
    fn filters_have_zero_dc() {
        let bank = LogGaborBank::new(32, 32, LogGaborConfig::default());
        for o in 0..12 {
            for s in 0..4 {
                assert_eq!(bank.filter(s, o)[(0, 0)], 0.0);
            }
        }
    }

    #[test]
    fn filters_are_bounded_unit() {
        let bank = LogGaborBank::new(32, 32, LogGaborConfig::default());
        for o in 0..12 {
            for s in 0..4 {
                for &x in bank.filter(s, o).as_slice() {
                    assert!((0.0..=1.0 + 1e-12).contains(&x));
                }
            }
        }
    }

    #[test]
    fn zero_image_gives_zero_amplitude() {
        let bank = LogGaborBank::new(16, 16, LogGaborConfig::default());
        let img = Grid::new(16, 16, 0.0);
        let amps = bank.orientation_amplitudes(&img).unwrap();
        assert_eq!(amps.len(), 12);
        for a in amps {
            assert!(a.max_value() < 1e-12);
        }
    }

    #[test]
    fn oriented_edge_excites_matching_orientation() {
        // A strong vertical line (edge along the y / v direction).
        let mut img = Grid::new(64, 64, 0.0);
        for v in 0..64 {
            img[(32, v)] = 10.0;
        }
        let cfg = LogGaborConfig::default();
        let bank = LogGaborBank::new(64, 64, cfg.clone());
        let amps = bank.orientation_amplitudes(&img).unwrap();
        // Response at the line centre, per orientation.
        let responses: Vec<f64> = amps.iter().map(|a| a[(32, 32)]).collect();
        let best = responses.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        // A line along v varies along u (the x direction): its frequency
        // content lies on the horizontal frequency axis, i.e. θ≈0.
        let angle = cfg.orientation_angle(best);
        let folded = angle.min(PI - angle);
        assert!(
            folded < PI / 6.0,
            "expected near-0 orientation, got {}° (responses {responses:?})",
            angle.to_degrees()
        );
    }

    #[test]
    fn amplitude_scales_linearly_with_contrast() {
        let mut img = Grid::new(32, 32, 0.0);
        for v in 8..24 {
            img[(16, v)] = 2.0;
        }
        let img2 = img.map(|&x| x * 3.0);
        let bank = LogGaborBank::new(32, 32, LogGaborConfig::default());
        let a1 = bank.orientation_amplitudes(&img).unwrap();
        let a2 = bank.orientation_amplitudes(&img2).unwrap();
        for (g1, g2) in a1.iter().zip(&a2) {
            for (x, y) in g1.as_slice().iter().zip(g2.as_slice()) {
                assert!((y - 3.0 * x).abs() < 1e-9 * (1.0 + x.abs()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match filter bank")]
    fn shape_mismatch_panics() {
        let bank = LogGaborBank::new(16, 16, LogGaborConfig::default());
        let img = Grid::new(32, 32, 0.0);
        let _ = bank.orientation_amplitudes(&img);
    }

    #[test]
    #[should_panic(expected = "at least two orientations")]
    fn invalid_config_panics() {
        let cfg = LogGaborConfig { num_orientations: 1, ..Default::default() };
        let _ = LogGaborBank::new(16, 16, cfg);
    }
}

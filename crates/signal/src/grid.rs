//! A dense row-major 2-D array used for BV images, feature maps and fusion
//! grids across the workspace.

use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense 2-D grid of values, indexed as `(u, v)` = (column, row).
///
/// The convention matches the paper's BV image `B_{uv}`: `u` indexes along
/// the x (image-column) direction and `v` along the y (image-row) direction.
/// Storage is row-major (`v` rows of `width` values).
///
/// # Example
///
/// ```
/// use bba_signal::Grid;
/// let mut g = Grid::new(4, 3, 0i32);
/// g[(2, 1)] = 7;
/// assert_eq!(g[(2, 1)], 7);
/// assert_eq!(g.get(9, 9), None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// Creates a grid filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` overflows.
    pub fn new(width: usize, height: usize, fill: T) -> Self {
        let len = width.checked_mul(height).expect("grid dimensions overflow");
        Grid { width, height, data: vec![fill; len] }
    }

    /// Builds a grid from a closure of `(u, v)`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for v in 0..height {
            for u in 0..width {
                data.push(f(u, v));
            }
        }
        Grid { width, height, data }
    }

    /// Resets every cell to `fill`.
    pub fn fill(&mut self, fill: T) {
        for cell in &mut self.data {
            *cell = fill.clone();
        }
    }
}

impl<T> Grid<T> {
    /// Creates a grid from an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), width * height, "buffer length must match dimensions");
        Grid { width, height, data }
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the grid has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bounds-checked access.
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> Option<&T> {
        if u < self.width && v < self.height {
            Some(&self.data[v * self.width + u])
        } else {
            None
        }
    }

    /// Bounds-checked mutable access.
    #[inline]
    pub fn get_mut(&mut self, u: usize, v: usize) -> Option<&mut T> {
        if u < self.width && v < self.height {
            Some(&mut self.data[v * self.width + u])
        } else {
            None
        }
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The raw row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid, returning the buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `v >= height`.
    #[inline]
    pub fn row(&self, v: usize) -> &[T] {
        assert!(v < self.height, "row {v} out of bounds (height {})", self.height);
        &self.data[v * self.width..(v + 1) * self.width]
    }

    /// Iterates over `(u, v, &value)` in row-major order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let w = self.width;
        self.data.iter().enumerate().map(move |(i, t)| (i % w, i / w, t))
    }

    /// Maps every cell through `f`, producing a new grid of the same shape.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Grid<U> {
        Grid { width: self.width, height: self.height, data: self.data.iter().map(f).collect() }
    }
}

impl Grid<f64> {
    /// Maximum value (0.0 for an empty grid).
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max).max(0.0)
    }

    /// Mean value (0.0 for an empty grid).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Fraction of cells with a value strictly above `threshold`.
    pub fn occupancy(&self, threshold: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|&&x| x > threshold).count() as f64 / self.data.len() as f64
    }
}

impl<T> Index<(usize, usize)> for Grid<T> {
    type Output = T;
    #[inline]
    fn index(&self, (u, v): (usize, usize)) -> &T {
        assert!(u < self.width && v < self.height, "index ({u},{v}) out of bounds");
        &self.data[v * self.width + u]
    }
}

impl<T> IndexMut<(usize, usize)> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, (u, v): (usize, usize)) -> &mut T {
        assert!(u < self.width && v < self.height, "index ({u},{v}) out of bounds");
        &mut self.data[v * self.width + u]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let mut g = Grid::new(3, 2, 0u8);
        g[(0, 0)] = 1;
        g[(2, 1)] = 9;
        assert_eq!(g[(0, 0)], 1);
        assert_eq!(g[(2, 1)], 9);
        assert_eq!(g.len(), 6);
        assert!(!g.is_empty());
    }

    #[test]
    fn from_fn_layout() {
        let g = Grid::from_fn(3, 2, |u, v| (u, v));
        assert_eq!(g[(1, 0)], (1, 0));
        assert_eq!(g[(2, 1)], (2, 1));
        // Row-major: row 1 starts at index 3.
        assert_eq!(g.as_slice()[3], (0, 1));
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let g = Grid::new(2, 2, 0.0f64);
        assert!(g.get(2, 0).is_none());
        assert!(g.get(0, 2).is_none());
        assert!(g.get(1, 1).is_some());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let g = Grid::new(2, 2, 0u8);
        let _ = g[(2, 0)];
    }

    #[test]
    fn row_and_iter() {
        let g = Grid::from_fn(3, 2, |u, v| (10 * v + u) as i32);
        assert_eq!(g.row(1), &[10, 11, 12]);
        let cells: Vec<_> = g.iter_cells().map(|(u, v, &x)| (u, v, x)).collect();
        assert_eq!(cells[0], (0, 0, 0));
        assert_eq!(cells[5], (2, 1, 12));
    }

    #[test]
    fn map_preserves_shape() {
        let g = Grid::from_fn(4, 3, |u, v| u + v);
        let h = g.map(|&x| x as f64 * 0.5);
        assert_eq!(h.width(), 4);
        assert_eq!(h.height(), 3);
        assert_eq!(h[(2, 2)], 2.0);
    }

    #[test]
    fn f64_statistics() {
        let g = Grid::from_vec(2, 2, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(g.max_value(), 3.0);
        assert_eq!(g.mean(), 1.5);
        assert_eq!(g.occupancy(0.5), 0.75);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Grid::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn fill_resets() {
        let mut g = Grid::new(2, 2, 5i32);
        g.fill(0);
        assert!(g.as_slice().iter().all(|&x| x == 0));
    }
}

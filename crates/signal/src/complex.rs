//! A minimal complex-number type for the FFT and frequency-domain filtering.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
///
/// `repr(C)` so a `[Complex]` slice is layout-compatible with interleaved
/// `[re, im, re, im, …]` `f64` data — the view the `bba-simd` kernels
/// operate on (see the crate-private `as_floats` / `as_floats_mut`).
///
/// # Example
///
/// ```
/// use bba_signal::Complex;
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Views a complex slice as interleaved `f64` data for the SIMD kernels.
pub(crate) fn as_floats(x: &[Complex]) -> &[f64] {
    // SAFETY: `Complex` is `repr(C)` with exactly two `f64` fields, so its
    // layout is two consecutive `f64`s with no padding; the produced slice
    // covers the same allocation with the same lifetime.
    unsafe { std::slice::from_raw_parts(x.as_ptr() as *const f64, x.len() * 2) }
}

/// Mutable interleaved-`f64` view of a complex slice.
pub(crate) fn as_floats_mut(x: &mut [Complex]) -> &mut [f64] {
    // SAFETY: as in `as_floats`; exclusivity carries over from `&mut`.
    unsafe { std::slice::from_raw_parts_mut(x.as_mut_ptr() as *mut f64, x.len() * 2) }
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}` — the unit complex number at angle `theta`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`Complex::abs`]).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn multiplication_rotates() {
        let z = Complex::cis(0.3) * Complex::cis(0.4);
        assert!((z.arg() - 0.7).abs() < 1e-12);
        assert!((z.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conjugate_negates_argument() {
        let z = Complex::new(1.0, 2.0);
        assert!((z.conj().arg() + z.arg()).abs() < 1e-12);
        assert!(((z * z.conj()).re - z.norm_sq()).abs() < 1e-12);
    }

    #[test]
    fn cis_pi_is_minus_one() {
        let z = Complex::cis(PI);
        assert!((z - Complex::new(-1.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b - b, a);
        assert_eq!((a * Complex::ONE), a);
        assert_eq!(a + (-a), Complex::ZERO);
        assert_eq!(a * 2.0, Complex::new(3.0, -4.0));
    }

    #[test]
    fn from_real_has_no_imaginary() {
        let z: Complex = 3.25.into();
        assert_eq!(z, Complex::new(3.25, 0.0));
    }
}

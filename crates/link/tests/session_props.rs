//! Property tests for the session layer: reassembly must survive
//! *arbitrary* datagrams — including structurally invalid ones the codec
//! would never produce — and whatever it does deliver must be
//! byte-identical to what was sent.

use bba_link::{ChannelConfig, Datagram, DatagramKind, LinkEndpoint, SessionConfig, SimChannel};
use proptest::prelude::*;

fn ideal(seed: u64) -> SimChannel {
    SimChannel::new(ChannelConfig::ideal(), seed)
}

proptest! {
    /// Feeding hand-constructed datagrams with arbitrary header fields into
    /// reassembly never panics (the `chunk_index >= chunk_count` and
    /// `chunk_count == 0` cases used to), and every structurally invalid
    /// one is counted instead of silently swallowed.
    #[test]
    fn arbitrary_datagrams_never_panic_reassembly(
        datagrams in prop::collection::vec(
            (any::<bool>(), 0u32..8, any::<u16>(), any::<u16>(),
             prop::collection::vec(any::<u8>(), 0..64)),
            1..40,
        ),
    ) {
        let mut b = LinkEndpoint::new(SessionConfig::default());
        let mut ba = ideal(97);
        let mut malformed_expected = 0usize;
        for (i, (is_data, msg_id, chunk_index, chunk_count, payload)) in
            datagrams.into_iter().enumerate()
        {
            let kind = if is_data { DatagramKind::Data } else { DatagramKind::Ack };
            if kind != DatagramKind::Data || chunk_count == 0 || chunk_index >= chunk_count {
                malformed_expected += 1;
            }
            let d = Datagram { kind, msg_id, chunk_index, chunk_count, payload };
            // Must return (not panic) whatever the fields say...
            let _ = b.handle_data(0.001 * i as f64, d, &mut ba);
        }
        // ...and the invalid ones are all accounted for.
        prop_assert_eq!(b.stats().malformed_datagrams, malformed_expected);
    }

    /// End-to-end integrity over an impaired channel: every message the
    /// session *does* deliver carries exactly the bytes that were sent for
    /// its sequence number — loss and duplication may drop messages, but
    /// can never corrupt or cross-wire one.
    #[test]
    fn delivered_messages_are_byte_identical_to_sends(
        seed in any::<u64>(),
        loss in 0.0..0.6f64,
        duplicate in 0.0..0.3f64,
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..3000),
            1..6,
        ),
    ) {
        let cfg = SessionConfig::default();
        let mut a = LinkEndpoint::new(cfg);
        let mut b = LinkEndpoint::new(cfg);
        let mut ab = SimChannel::new(
            ChannelConfig { loss, duplicate, ..ChannelConfig::ideal() },
            seed,
        );
        let mut ba = SimChannel::new(ChannelConfig::ideal(), seed ^ 1);

        let mut sent: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut delivered: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut now = 0.0;
        for p in &payloads {
            let id = a.send_message(now, p, &mut ab).expect("payload within wire limits");
            sent.push((id, p.clone()));
            // Pump well past the retry budget so retransmissions get every
            // chance; whatever still fails to land is legitimately lost.
            for _ in 0..12 {
                now += 0.05;
                for msg in b.pump(now, &mut ab, &mut ba) {
                    delivered.push((msg.msg_id, msg.payload));
                }
                a.pump(now, &mut ba, &mut ab);
            }
        }

        for (id, payload) in &delivered {
            let original = sent.iter().find(|(sid, _)| sid == id);
            prop_assert!(original.is_some(), "delivered unknown msg_id {}", id);
            prop_assert_eq!(
                &original.unwrap().1, payload,
                "msg {} delivered with different bytes", id
            );
        }
        // Each message is delivered at most once.
        let mut ids: Vec<u32> = delivered.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), delivered.len(), "a message was delivered twice");
    }
}

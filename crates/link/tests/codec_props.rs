//! Property tests for the datagram codec: clean round-trips are the
//! identity, and single-byte corruption is always *detected* (decode
//! returns an error — it never panics and never yields wrong bytes).

use bba_link::codec::{decode_datagram, encode_ack, encode_message, DatagramKind};
use proptest::prelude::*;

/// Decodes a full set of datagrams and reassembles the message payload.
fn reassemble(datagrams: &[Vec<u8>]) -> Vec<u8> {
    let mut chunks: Vec<_> =
        datagrams.iter().map(|d| decode_datagram(d).expect("clean datagram decodes")).collect();
    let count = chunks[0].chunk_count;
    let msg_id = chunks[0].msg_id;
    for c in &chunks {
        assert_eq!(c.kind, DatagramKind::Data);
        assert_eq!(c.msg_id, msg_id);
        assert_eq!(c.chunk_count, count);
        assert!(c.chunk_index < count);
    }
    assert_eq!(chunks.len(), count as usize);
    chunks.sort_by_key(|c| c.chunk_index);
    chunks.into_iter().flat_map(|c| c.payload).collect()
}

proptest! {
    #[test]
    fn roundtrip_is_identity(
        payload in prop::collection::vec(any::<u8>(), 0..2000),
        mtu in 19usize..300,
        msg_id in any::<u32>(),
    ) {
        let datagrams = encode_message(msg_id, &payload, mtu).expect("within wire limits");
        prop_assert!(!datagrams.is_empty());
        for d in &datagrams {
            prop_assert!(d.len() <= mtu, "datagram {} exceeds mtu {}", d.len(), mtu);
        }
        prop_assert_eq!(reassemble(&datagrams), payload);
    }

    #[test]
    fn single_byte_corruption_is_detected(
        payload in prop::collection::vec(any::<u8>(), 0..600),
        mtu in 19usize..200,
        which in 0.0..1.0f64,
        pos in 0.0..1.0f64,
        flip in 1u32..256,
    ) {
        let datagrams = encode_message(7, &payload, mtu).expect("within wire limits");
        let victim_idx = ((which * datagrams.len() as f64) as usize).min(datagrams.len() - 1);
        let mut victim = datagrams[victim_idx].clone();
        let idx = ((pos * victim.len() as f64) as usize).min(victim.len() - 1);
        victim[idx] ^= flip as u8;
        // Every byte of the datagram is covered either by the checksum or
        // by structural validation, so a flipped byte must surface as an
        // error — never a panic, never a silently wrong chunk.
        prop_assert!(decode_datagram(&victim).is_err(), "flip at byte {} went undetected", idx);
    }

    #[test]
    fn truncation_never_panics(
        payload in prop::collection::vec(any::<u8>(), 0..400),
        mtu in 19usize..200,
        cut in 0.0..1.0f64,
    ) {
        let datagrams = encode_message(3, &payload, mtu).expect("within wire limits");
        let d = &datagrams[0];
        let keep = (cut * d.len() as f64) as usize;
        if keep < d.len() {
            prop_assert!(decode_datagram(&d[..keep]).is_err());
        }
    }

    #[test]
    fn ack_roundtrip(msg_id in any::<u32>()) {
        let ack = decode_datagram(&encode_ack(msg_id)).expect("ack decodes");
        prop_assert_eq!(ack.kind, DatagramKind::Ack);
        prop_assert_eq!(ack.msg_id, msg_id);
        prop_assert!(ack.payload.is_empty());
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        junk in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        // Result in, Result out — whatever the bytes.
        let _ = decode_datagram(&junk);
    }
}

//! The per-peer session layer: sequencing, reassembly, ack/retransmit,
//! staleness, and the peer-health state machine.
//!
//! A [`LinkEndpoint`] sits between the application (perception frames)
//! and a pair of unidirectional [`SimChannel`]s. Outgoing messages get a
//! sequence number, a sender timestamp, and are chunked into datagrams
//! ([`crate::codec`]); incoming datagrams are verified, reassembled, and
//! acknowledged once the whole message is in (an ack means "I have the
//! complete message", so a lone surviving chunk of a large frame cannot
//! silence the sender's retransmits). Unacknowledged messages are
//! retransmitted with
//! exponential backoff until a retry budget runs out; reassembled frames
//! older than the staleness window are discarded rather than delivered —
//! a perception frame from half a second ago is worse than no frame,
//! because the tracker's extrapolation is already better.
//!
//! Peer health ([`PeerState`]) is derived from received-frame recency:
//! `Discovering` until the first complete frame, then `Synced` /
//! `Degraded` / `Lost` as the age of the last complete frame grows.

use crate::channel::SimChannel;
use crate::codec::{
    decode_datagram, encode_ack, encode_message, Datagram, DatagramKind, EncodeError,
};
use bba_obs::Recorder;
use std::collections::HashMap;

/// Session tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Datagram size cap handed to the codec.
    pub mtu: usize,
    /// First retransmit fires this long after a send with no ack (s).
    pub ack_timeout: f64,
    /// Backoff multiplier between consecutive retransmits.
    pub backoff: f64,
    /// Total transmission attempts per message (1 initial + retries).
    pub max_attempts: u32,
    /// A frame completing more than this long after it was sent is
    /// discarded as stale (s).
    pub stale_after: f64,
    /// Peer drops from `Synced` to `Degraded` when no frame has completed
    /// for this long (s).
    pub degraded_after: f64,
    /// Peer drops to `Lost` when no frame has completed for this long (s).
    pub lost_after: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            mtu: 1200,
            ack_timeout: 0.06,
            backoff: 2.0,
            max_attempts: 4,
            stale_after: 0.45,
            degraded_after: 1.0,
            lost_after: 3.0,
        }
    }
}

/// Peer link health, derived from received-frame recency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// No frame has ever completed.
    Discovering,
    /// Frames are arriving at the expected cadence.
    Synced,
    /// The last frame is older than the degraded threshold; the receiver
    /// should be falling back to tracking/ego-only operation.
    Degraded,
    /// The peer has effectively disappeared.
    Lost,
}

/// A fully reassembled, fresh message handed up to the application.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedMessage {
    /// Sender's sequence number.
    pub msg_id: u32,
    /// Sender's virtual send time (carried in-band).
    pub sent_at: f64,
    /// Virtual time the final chunk arrived.
    pub completed_at: f64,
    /// End-to-end message latency (s).
    pub latency: f64,
    /// The reassembled application payload.
    pub payload: Vec<u8>,
}

/// Session lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Messages offered for transmission.
    pub messages_sent: usize,
    /// Messages fully reassembled and delivered upward.
    pub messages_delivered: usize,
    /// Messages reassembled too late and discarded.
    pub messages_stale: usize,
    /// Outgoing messages abandoned after the retry budget.
    pub messages_abandoned: usize,
    /// Whole-message retransmissions performed.
    pub retransmits: usize,
    /// Acks sent for fully reassembled messages (including re-acks when
    /// duplicates of a completed message arrive).
    pub acks_sent: usize,
    /// Datagrams that failed codec validation.
    pub corrupt_datagrams: usize,
    /// Data datagrams ignored as duplicates of completed messages.
    pub duplicate_datagrams: usize,
    /// Structurally invalid data datagrams dropped by the session layer
    /// (zero chunk count, out-of-range chunk index, or a non-data kind
    /// handed to [`LinkEndpoint::handle_data`]).
    pub malformed_datagrams: usize,
}

#[derive(Debug)]
struct PendingMessage {
    msg_id: u32,
    datagrams: Vec<Vec<u8>>,
    attempts: u32,
    next_retry: f64,
}

#[derive(Debug)]
struct Reassembly {
    chunks: Vec<Option<Vec<u8>>>,
    received: usize,
    started_at: f64,
}

/// One side of a V2V session (see the [module docs](self)).
#[derive(Debug)]
pub struct LinkEndpoint {
    config: SessionConfig,
    next_msg_id: u32,
    pending: Vec<PendingMessage>,
    reassembly: HashMap<u32, Reassembly>,
    /// Recently completed incoming msg_ids with their completion times
    /// (ring-buffered *and* time-evicted) so duplicate or retransmitted
    /// chunks of an already-delivered message are ignored — but a fresh
    /// message reusing the id after `next_msg_id` wraps `u32` is not
    /// misclassified as a duplicate.
    completed: Vec<(u32, f64)>,
    last_complete_at: Option<f64>,
    stats: SessionStats,
    /// Observability sink (disabled by default — and then free).
    obs: Recorder,
}

/// How many completed msg_ids the duplicate filter remembers.
const COMPLETED_MEMORY: usize = 64;

/// How long (s) a completed msg_id stays in the duplicate filter. A
/// retransmit of a completed message cannot arrive after the sender's
/// retry budget is exhausted, so anything older is not a duplicate — it
/// is a fresh message whose id collided after the `u32` sequence space
/// wrapped, and suppressing it would drop live frames forever.
const COMPLETED_TTL: f64 = 3.0;

impl LinkEndpoint {
    /// Creates an endpoint.
    pub fn new(config: SessionConfig) -> Self {
        LinkEndpoint {
            config,
            next_msg_id: 0,
            pending: Vec::new(),
            reassembly: HashMap::new(),
            completed: Vec::new(),
            last_complete_at: None,
            stats: SessionStats::default(),
            obs: Recorder::disabled(),
        }
    }

    /// Installs an observability recorder: session counters
    /// (`link.retransmits`, `link.duplicate_datagrams`,
    /// `link.malformed_datagrams`, …) and the reassembly/end-to-end
    /// latency histograms are recorded into it from then on.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
    }

    /// The session parameters.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Peer health as of virtual time `now`.
    pub fn peer_state(&self, now: f64) -> PeerState {
        match self.last_complete_at {
            None => PeerState::Discovering,
            Some(t) => {
                let age = now - t;
                if age > self.config.lost_after {
                    PeerState::Lost
                } else if age > self.config.degraded_after {
                    PeerState::Degraded
                } else {
                    PeerState::Synced
                }
            }
        }
    }

    /// Sends an application payload: stamps it with `now`, chunks it, and
    /// offers every datagram to `tx`. Returns the assigned sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when the payload cannot be represented on
    /// the wire at the configured MTU (too many chunks for the `u16`
    /// header field). Nothing is transmitted and no sequence number is
    /// consumed in that case.
    pub fn send_message(
        &mut self,
        now: f64,
        payload: &[u8],
        tx: &mut SimChannel,
    ) -> Result<u32, EncodeError> {
        let msg_id = self.next_msg_id;
        // In-band sender timestamp: staleness must survive reassembly on
        // the far side without a side channel.
        let mut stamped = Vec::with_capacity(8 + payload.len());
        stamped.extend_from_slice(&now.to_le_bytes());
        stamped.extend_from_slice(payload);
        let datagrams = encode_message(msg_id, &stamped, self.config.mtu)?;
        self.next_msg_id = self.next_msg_id.wrapping_add(1);
        for d in &datagrams {
            tx.send(now, d.clone());
        }
        self.stats.messages_sent += 1;
        self.obs.incr("link.messages_sent");
        self.obs.add("link.datagrams_sent", datagrams.len() as u64);
        self.pending.push(PendingMessage {
            msg_id,
            datagrams,
            attempts: 1,
            next_retry: now + self.config.ack_timeout,
        });
        Ok(msg_id)
    }

    /// Drives the session at virtual time `now`: drains `rx` (acks clear
    /// pending messages; data chunks are acked into `tx` and reassembled),
    /// fires due retransmissions into `tx`, and expires dead reassembly
    /// buffers. Returns every fresh message that completed.
    pub fn pump(
        &mut self,
        now: f64,
        rx: &mut SimChannel,
        tx: &mut SimChannel,
    ) -> Vec<ReceivedMessage> {
        let mut delivered = Vec::new();
        for (at, bytes) in rx.poll(now) {
            match decode_datagram(&bytes) {
                Err(_) => {
                    self.stats.corrupt_datagrams += 1;
                    self.obs.incr("link.corrupt_datagrams");
                }
                Ok(d) => match d.kind {
                    DatagramKind::Ack => {
                        self.pending.retain(|p| p.msg_id != d.msg_id);
                    }
                    DatagramKind::Data => {
                        if let Some(msg) = self.handle_data(at, d, tx) {
                            delivered.push(msg);
                        }
                    }
                },
            }
        }
        self.retransmit_due(now, tx);
        self.expire_buffers(now);
        delivered
    }

    /// Feeds one data datagram into reassembly at virtual time `at`,
    /// sending any ack into `tx`. Returns the reassembled message when `d`
    /// completed one. Normally called from [`LinkEndpoint::pump`] with
    /// codec-validated datagrams, but safe against arbitrary input:
    /// structurally invalid datagrams (a non-data kind, `chunk_count` of
    /// zero, `chunk_index` out of range) are dropped and counted in
    /// [`SessionStats::malformed_datagrams`] instead of corrupting or
    /// crashing reassembly.
    pub fn handle_data(
        &mut self,
        at: f64,
        d: Datagram,
        tx: &mut SimChannel,
    ) -> Option<ReceivedMessage> {
        // Structural validation before any indexing. The codec rejects
        // these on the wire path, but `Datagram` fields are public and a
        // hand-constructed (or hostile) datagram used to panic here: a
        // `chunk_count` of zero allocates an empty buffer that *any*
        // chunk index then indexes out of bounds.
        if d.kind != DatagramKind::Data || d.chunk_count == 0 || d.chunk_index >= d.chunk_count {
            self.stats.malformed_datagrams += 1;
            self.obs.incr("link.malformed_datagrams");
            return None;
        }
        // Evict dedup entries past their TTL before consulting the
        // window: after `next_msg_id` wraps the `u32` space, a fresh
        // message can legitimately reuse an old id, and only *recent*
        // completions can still produce genuine duplicates.
        self.completed.retain(|&(_, t)| at - t <= COMPLETED_TTL);
        // Acks mean "I have the whole message" — they are only sent once
        // reassembly completes. Acking individual chunks would let the
        // sender clear its pending entry after one of many chunks landed
        // and never retransmit the rest.
        if self.completed.iter().any(|&(id, _)| id == d.msg_id) {
            // Re-ack duplicates of completed messages: the original ack
            // may have been the datagram the channel dropped.
            tx.send(at, encode_ack(d.msg_id));
            self.stats.acks_sent += 1;
            self.stats.duplicate_datagrams += 1;
            self.obs.incr("link.acks_sent");
            self.obs.incr("link.duplicate_datagrams");
            return None;
        }
        let count = d.chunk_count as usize;
        let entry = self.reassembly.entry(d.msg_id).or_insert_with(|| Reassembly {
            chunks: vec![None; count],
            received: 0,
            started_at: at,
        });
        if entry.chunks.len() != count || at - entry.started_at > self.config.stale_after {
            // Chunk count disagrees with the buffer, or the buffer has
            // been incomplete for longer than any frame stays fresh:
            // either way this is a stale collision on a wrapped msg_id.
            // Start over rather than merging chunks of two different
            // messages into one corrupt payload (the geometry can match
            // by coincidence; per-datagram checksums cannot catch a
            // cross-message merge).
            *entry = Reassembly { chunks: vec![None; count], received: 0, started_at: at };
        }
        let slot = &mut entry.chunks[d.chunk_index as usize];
        if slot.is_none() {
            *slot = Some(d.payload);
            entry.received += 1;
        } else {
            self.stats.duplicate_datagrams += 1;
            self.obs.incr("link.duplicate_datagrams");
        }
        if entry.received < count {
            return None;
        }

        let entry = self.reassembly.remove(&d.msg_id).expect("buffer exists");
        self.remember_completed(d.msg_id, at);
        tx.send(at, encode_ack(d.msg_id));
        self.stats.acks_sent += 1;
        self.obs.incr("link.acks_sent");
        // First-chunk-to-last-chunk reassembly time for this message.
        self.obs.observe("link.reassembly_ms", (at - entry.started_at) * 1e3);
        let mut stamped = Vec::new();
        for chunk in entry.chunks {
            stamped.extend_from_slice(&chunk.expect("all chunks received"));
        }
        if stamped.len() < 8 {
            self.stats.corrupt_datagrams += 1;
            self.obs.incr("link.corrupt_datagrams");
            return None;
        }
        let sent_at = f64::from_le_bytes(stamped[..8].try_into().expect("8 bytes"));
        let latency = at - sent_at;
        if latency > self.config.stale_after {
            self.stats.messages_stale += 1;
            self.obs.incr("link.messages_stale");
            return None;
        }
        self.stats.messages_delivered += 1;
        self.obs.incr("link.messages_delivered");
        self.obs.observe("link.e2e_latency_ms", latency * 1e3);
        self.last_complete_at = Some(at);
        Some(ReceivedMessage {
            msg_id: d.msg_id,
            sent_at,
            completed_at: at,
            latency,
            payload: stamped[8..].to_vec(),
        })
    }

    fn remember_completed(&mut self, msg_id: u32, at: f64) {
        if self.completed.len() >= COMPLETED_MEMORY {
            self.completed.remove(0);
        }
        self.completed.push((msg_id, at));
    }

    /// Test hook: forces the outgoing sequence counter, so wraparound
    /// behaviour is exercisable without sending 2³² messages.
    #[cfg(test)]
    fn set_next_msg_id(&mut self, id: u32) {
        self.next_msg_id = id;
    }

    fn retransmit_due(&mut self, now: f64, tx: &mut SimChannel) {
        let cfg = self.config;
        let stats = &mut self.stats;
        let obs = &self.obs;
        self.pending.retain_mut(|p| {
            if p.next_retry > now {
                return true;
            }
            if p.attempts >= cfg.max_attempts {
                stats.messages_abandoned += 1;
                obs.incr("link.messages_abandoned");
                return false;
            }
            for d in &p.datagrams {
                tx.send(now, d.clone());
            }
            stats.retransmits += 1;
            obs.incr("link.retransmits");
            p.attempts += 1;
            p.next_retry = now + cfg.ack_timeout * cfg.backoff.powi(p.attempts as i32 - 1);
            true
        });
    }

    fn expire_buffers(&mut self, now: f64) {
        // A buffer that has been incomplete for longer than the staleness
        // window can never deliver a fresh frame; reclaim it.
        let stale_after = self.config.stale_after;
        let obs = &self.obs;
        self.reassembly.retain(|_, r| {
            let keep = now - r.started_at <= stale_after;
            if !keep {
                obs.incr("link.reassembly_expired");
            }
            keep
        });
        // The dedup window ages out too (see `COMPLETED_TTL`): entries
        // older than any possible retransmit must not suppress fresh
        // messages that reuse the id after the sequence space wraps.
        self.completed.retain(|&(_, t)| now - t <= COMPLETED_TTL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelConfig;

    fn ideal_pair(seed: u64) -> (SimChannel, SimChannel) {
        (
            SimChannel::new(ChannelConfig::ideal(), seed),
            SimChannel::new(ChannelConfig::ideal(), seed ^ 1),
        )
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn message_roundtrip_over_ideal_channels() {
        let mut a = LinkEndpoint::new(SessionConfig::default());
        let mut b = LinkEndpoint::new(SessionConfig::default());
        let (mut ab, mut ba) = ideal_pair(1);
        let p = payload(5000);
        let id = a.send_message(0.0, &p, &mut ab).unwrap();
        let got = b.pump(0.01, &mut ab, &mut ba);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].msg_id, id);
        assert_eq!(got[0].payload, p);
        assert_eq!(got[0].sent_at, 0.0);
        // The ack comes back and clears the pending entry.
        assert!(a.pump(0.02, &mut ba, &mut ab).is_empty());
        assert_eq!(a.pending.len(), 0);
        assert_eq!(b.stats().messages_delivered, 1);
    }

    #[test]
    fn lost_chunk_is_recovered_by_retransmission() {
        // Forward channel drops everything at first, then heals.
        let cfg = SessionConfig::default();
        let mut a = LinkEndpoint::new(cfg);
        let mut b = LinkEndpoint::new(cfg);
        let mut ab = SimChannel::new(ChannelConfig { loss: 1.0, ..ChannelConfig::ideal() }, 2);
        let mut ba = SimChannel::new(ChannelConfig::ideal(), 3);
        let p = payload(300);
        a.send_message(0.0, &p, &mut ab).unwrap();
        assert!(b.pump(0.02, &mut ab, &mut ba).is_empty());
        // Heal the channel before the first retransmit timer fires.
        ab.config_mut().loss = 0.0;
        a.pump(cfg.ack_timeout + 0.001, &mut ba, &mut ab); // fires retransmit
        assert_eq!(a.stats().retransmits, 1);
        let got = b.pump(cfg.ack_timeout + 0.01, &mut ab, &mut ba);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, p);
    }

    #[test]
    fn retry_budget_abandons_unreachable_peer() {
        let cfg = SessionConfig::default();
        let mut a = LinkEndpoint::new(cfg);
        let mut ab = SimChannel::new(ChannelConfig { loss: 1.0, ..ChannelConfig::ideal() }, 4);
        let mut ba = SimChannel::new(ChannelConfig::ideal(), 5);
        a.send_message(0.0, &payload(100), &mut ab).unwrap();
        for k in 1..100 {
            a.pump(k as f64 * 0.1, &mut ba, &mut ab);
        }
        assert_eq!(a.pending.len(), 0);
        assert_eq!(a.stats().messages_abandoned, 1);
        assert_eq!(a.stats().retransmits as u32, cfg.max_attempts - 1);
    }

    #[test]
    fn stale_message_is_discarded_not_delivered() {
        let cfg = SessionConfig::default();
        let mut a = LinkEndpoint::new(cfg);
        let mut b = LinkEndpoint::new(cfg);
        // One-second latency: far beyond the staleness window.
        let mut ab =
            SimChannel::new(ChannelConfig { latency_mean: 1.0, ..ChannelConfig::ideal() }, 6);
        let mut ba = SimChannel::new(ChannelConfig::ideal(), 7);
        a.send_message(0.0, &payload(100), &mut ab).unwrap();
        let got = b.pump(1.5, &mut ab, &mut ba);
        assert!(got.is_empty());
        assert_eq!(b.stats().messages_stale, 1);
        // Stale messages do not refresh peer health.
        assert_eq!(b.peer_state(1.5), PeerState::Discovering);
    }

    #[test]
    fn duplicate_datagrams_deliver_once() {
        let cfg = SessionConfig::default();
        let mut a = LinkEndpoint::new(cfg);
        let mut b = LinkEndpoint::new(cfg);
        let mut ab = SimChannel::new(ChannelConfig { duplicate: 1.0, ..ChannelConfig::ideal() }, 8);
        let mut ba = SimChannel::new(ChannelConfig::ideal(), 9);
        a.send_message(0.0, &payload(4000), &mut ab).unwrap();
        let got = b.pump(0.1, &mut ab, &mut ba);
        assert_eq!(got.len(), 1);
        assert!(b.stats().duplicate_datagrams > 0);
    }

    #[test]
    fn peer_state_follows_frame_recency() {
        let cfg = SessionConfig::default();
        let mut a = LinkEndpoint::new(cfg);
        let mut b = LinkEndpoint::new(cfg);
        let (mut ab, mut ba) = ideal_pair(10);
        assert_eq!(b.peer_state(0.0), PeerState::Discovering);
        a.send_message(0.0, &payload(10), &mut ab).unwrap();
        b.pump(0.01, &mut ab, &mut ba);
        assert_eq!(b.peer_state(0.01), PeerState::Synced);
        assert_eq!(b.peer_state(0.01 + cfg.degraded_after + 0.1), PeerState::Degraded);
        assert_eq!(b.peer_state(0.01 + cfg.lost_after + 0.1), PeerState::Lost);
        // A new frame resynchronises.
        a.send_message(5.0, &payload(10), &mut ab).unwrap();
        b.pump(5.01, &mut ab, &mut ba);
        assert_eq!(b.peer_state(5.01), PeerState::Synced);
    }

    #[test]
    fn malformed_datagrams_are_dropped_not_panicking() {
        // Regression: a hand-constructed datagram with `chunk_index >=
        // chunk_count` (or `chunk_count == 0`, which allocates an empty
        // buffer that any index overruns) used to panic in reassembly.
        let mut b = LinkEndpoint::new(SessionConfig::default());
        let (_, mut ba) = ideal_pair(12);
        let out_of_range = Datagram {
            kind: DatagramKind::Data,
            msg_id: 7,
            chunk_index: 3,
            chunk_count: 2,
            payload: vec![1, 2, 3],
        };
        assert!(b.handle_data(0.0, out_of_range, &mut ba).is_none());
        let zero_chunks = Datagram {
            kind: DatagramKind::Data,
            msg_id: 8,
            chunk_index: 0,
            chunk_count: 0,
            payload: vec![],
        };
        assert!(b.handle_data(0.0, zero_chunks, &mut ba).is_none());
        let wrong_kind = Datagram {
            kind: DatagramKind::Ack,
            msg_id: 9,
            chunk_index: 0,
            chunk_count: 1,
            payload: vec![],
        };
        assert!(b.handle_data(0.0, wrong_kind, &mut ba).is_none());
        assert_eq!(b.stats().malformed_datagrams, 3);
        // Nothing was buffered and no acks were provoked.
        assert!(b.reassembly.is_empty());
        assert_eq!(b.stats().acks_sent, 0);
    }

    #[test]
    fn sequence_numbers_increment_per_message() {
        let mut a = LinkEndpoint::new(SessionConfig::default());
        let (mut ab, _) = ideal_pair(11);
        let ids: Vec<u32> =
            (0..5).map(|k| a.send_message(k as f64, &payload(10), &mut ab).unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn oversized_payload_is_rejected_without_consuming_sequence() {
        let mut a = LinkEndpoint::new(SessionConfig { mtu: 19, ..SessionConfig::default() });
        let (mut ab, _) = ideal_pair(14);
        // One payload byte per datagram at MTU 19; the 8-byte timestamp
        // stamp pushes this over the 65535-chunk wire limit.
        let err = a.send_message(0.0, &payload(u16::MAX as usize), &mut ab);
        assert!(err.is_err());
        assert_eq!(a.stats().messages_sent, 0);
        assert!(a.pending.is_empty());
        // The sequence number was not consumed by the failed send.
        assert_eq!(a.send_message(0.0, &payload(10), &mut ab).unwrap(), 0);
    }

    #[test]
    fn wrapped_msg_id_is_fresh_after_dedup_ttl() {
        // Regression: the duplicate filter kept completed msg_ids until
        // 64 newer completions pushed them out. On a sparse link that is
        // forever — so when `next_msg_id` wraps the u32 space and a fresh
        // message legitimately reuses an id, it was re-acked as a
        // duplicate and never delivered.
        let cfg = SessionConfig::default();
        let mut a = LinkEndpoint::new(cfg);
        let mut b = LinkEndpoint::new(cfg);
        let (mut ab, mut ba) = ideal_pair(15);
        // The sender is one message away from wrapping.
        a.set_next_msg_id(u32::MAX);
        let first = payload(100);
        assert_eq!(a.send_message(0.0, &first, &mut ab).unwrap(), u32::MAX);
        assert_eq!(b.pump(0.01, &mut ab, &mut ba).len(), 1);
        a.pump(0.02, &mut ba, &mut ab);
        assert_eq!(a.send_message(0.03, &payload(7), &mut ab).unwrap(), 0);
        assert_eq!(b.pump(0.04, &mut ab, &mut ba).len(), 1);
        a.pump(0.05, &mut ba, &mut ab);
        // A wrapped sender reuses id u32::MAX long after the dedup TTL.
        a.set_next_msg_id(u32::MAX);
        let reused = payload(60);
        let t = 10.0;
        assert_eq!(a.send_message(t, &reused, &mut ab).unwrap(), u32::MAX);
        let got = b.pump(t + 0.01, &mut ab, &mut ba);
        assert_eq!(got.len(), 1, "fresh message on a wrapped id must deliver");
        assert_eq!(got[0].payload, reused);
        assert_eq!(b.stats().messages_delivered, 3);
    }

    #[test]
    fn stale_reassembly_restarts_instead_of_merging_messages() {
        // Regression: a wrapped msg_id colliding with a stale half-built
        // buffer of the *same* chunk geometry used to merge chunks of two
        // different messages into one corrupt payload. The stale buffer
        // must be restarted, not appended to.
        let cfg = SessionConfig::default();
        let mut b = LinkEndpoint::new(cfg);
        let (_, mut ba) = ideal_pair(16);
        let chunk = |index: u16, payload: Vec<u8>| Datagram {
            kind: DatagramKind::Data,
            msg_id: 5,
            chunk_index: index,
            chunk_count: 2,
            payload,
        };
        // Chunk 0 of the old message arrives; chunk 1 never does.
        assert!(b.handle_data(0.0, chunk(0, 0.0f64.to_le_bytes().to_vec()), &mut ba).is_none());
        // Long past `stale_after`, a fresh message reuses the id with the
        // same geometry. Both of its chunks arrive.
        let t = 10.0;
        let fresh_body = vec![42u8; 16];
        assert!(b.handle_data(t, chunk(0, t.to_le_bytes().to_vec()), &mut ba).is_none());
        let got = b.handle_data(t + 0.001, chunk(1, fresh_body.clone()), &mut ba);
        let msg = got.expect("fresh message must deliver");
        assert_eq!(msg.payload, fresh_body);
        assert_eq!(msg.sent_at, t);
    }
}

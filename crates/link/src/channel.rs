//! The lossy link model: a seeded, virtual-clock simulation of a V2V
//! radio channel.
//!
//! Datagrams pushed in with [`SimChannel::send`] come back out of
//! [`SimChannel::poll`] after a configurable latency, subject to loss,
//! jitter, reordering, duplication, and a serialisation-rate (bandwidth)
//! cap. Everything runs on the caller's virtual clock and a dedicated
//! seeded RNG, so a run's delivery trace is a pure function of
//! `(config, seed, send pattern)` — the reproducibility the degradation
//! experiments depend on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Channel impairment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Independent per-datagram drop probability.
    pub loss: f64,
    /// Mean one-way propagation latency (s).
    pub latency_mean: f64,
    /// Uniform latency jitter half-width (s): each datagram draws
    /// `latency_mean ± jitter`.
    pub latency_jitter: f64,
    /// Probability a datagram is held back an extra [`Self::reorder_extra`]
    /// seconds, letting later datagrams overtake it.
    pub reorder: f64,
    /// Extra delay applied to reordered datagrams (s).
    pub reorder_extra: f64,
    /// Probability a datagram is delivered twice.
    pub duplicate: f64,
    /// Serialisation rate in bytes/s (`f64::INFINITY` = uncapped). Each
    /// datagram occupies the air for `len / bandwidth` seconds; queued
    /// datagrams wait their turn.
    pub bandwidth: f64,
}

impl ChannelConfig {
    /// A perfect link: no loss, no delay, no cap. The cooperative loop
    /// over this channel must reproduce the direct-call pipeline exactly.
    pub fn ideal() -> Self {
        ChannelConfig {
            loss: 0.0,
            latency_mean: 0.0,
            latency_jitter: 0.0,
            reorder: 0.0,
            reorder_extra: 0.0,
            duplicate: 0.0,
            bandwidth: f64::INFINITY,
        }
    }

    /// A plausible urban DSRC-class link: ~20 ms latency, mild loss and
    /// reordering, 750 kB/s (6 Mbit/s) serialisation rate.
    pub fn urban() -> Self {
        ChannelConfig {
            loss: 0.05,
            latency_mean: 0.02,
            latency_jitter: 0.01,
            reorder: 0.05,
            reorder_extra: 0.03,
            duplicate: 0.02,
            bandwidth: 750_000.0,
        }
    }

    /// This config with a different loss rate (sweep helper).
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// This config with a different mean latency (sweep helper).
    pub fn with_latency(mut self, latency_mean: f64) -> Self {
        self.latency_mean = latency_mean;
        self
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig::urban()
    }
}

/// Counters accumulated over a channel's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Datagrams offered to the channel.
    pub sent: usize,
    /// Datagrams dropped by the loss process.
    pub dropped: usize,
    /// Extra copies created by the duplication process.
    pub duplicated: usize,
    /// Datagrams handed back out of `poll`.
    pub delivered: usize,
    /// Payload bytes offered (before loss).
    pub bytes_sent: usize,
}

/// One simulated unidirectional link.
#[derive(Debug, Clone)]
pub struct SimChannel {
    config: ChannelConfig,
    rng: StdRng,
    /// Air occupied until this virtual time (bandwidth cap).
    busy_until: f64,
    /// In-flight datagrams: `(deliver_at, admission order, bytes)`.
    in_flight: Vec<(f64, u64, Vec<u8>)>,
    next_seq: u64,
    stats: ChannelStats,
}

impl SimChannel {
    /// Creates a channel with its own deterministic RNG.
    pub fn new(config: ChannelConfig, seed: u64) -> Self {
        SimChannel {
            config,
            rng: StdRng::seed_from_u64(seed),
            busy_until: 0.0,
            in_flight: Vec::new(),
            next_seq: 0,
            stats: ChannelStats::default(),
        }
    }

    /// The impairment parameters.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// Mutable impairment parameters: lets an experiment change link
    /// conditions mid-run (e.g. a loss burst) without resetting the
    /// channel's RNG or in-flight queue.
    pub fn config_mut(&mut self) -> &mut ChannelConfig {
        &mut self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Datagrams currently in flight.
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }

    /// Offers one datagram to the channel at virtual time `now`.
    ///
    /// The RNG draw order per datagram is fixed — loss, latency, reorder,
    /// duplicate — so traces are reproducible for a given seed no matter
    /// which impairments are enabled.
    pub fn send(&mut self, now: f64, datagram: Vec<u8>) {
        let cfg = self.config;
        self.stats.sent += 1;
        self.stats.bytes_sent += datagram.len();

        let lost = self.rng.random::<f64>() < cfg.loss;
        let jitter = if cfg.latency_jitter > 0.0 {
            self.rng.random_range(-cfg.latency_jitter..cfg.latency_jitter)
        } else {
            0.0
        };
        let reordered = cfg.reorder > 0.0 && self.rng.random::<f64>() < cfg.reorder;
        let duplicated = cfg.duplicate > 0.0 && self.rng.random::<f64>() < cfg.duplicate;

        // The air time is consumed even by datagrams the receiver never
        // sees: loss here models corruption at the receiver, not a sender
        // that stayed quiet.
        let tx_time =
            if cfg.bandwidth.is_finite() { datagram.len() as f64 / cfg.bandwidth } else { 0.0 };
        let start = self.busy_until.max(now);
        self.busy_until = start + tx_time;

        if lost {
            self.stats.dropped += 1;
            return;
        }
        let latency =
            (cfg.latency_mean + jitter).max(0.0) + if reordered { cfg.reorder_extra } else { 0.0 };
        let deliver_at = self.busy_until + latency;
        if duplicated {
            self.stats.duplicated += 1;
            self.enqueue(deliver_at + cfg.latency_mean.max(1e-4), datagram.clone());
        }
        self.enqueue(deliver_at, datagram);
    }

    fn enqueue(&mut self, deliver_at: f64, bytes: Vec<u8>) {
        self.in_flight.push((deliver_at, self.next_seq, bytes));
        self.next_seq += 1;
    }

    /// Takes every datagram whose delivery time has passed, ordered by
    /// `(delivery time, admission order)`. Returns `(deliver_at, bytes)`
    /// pairs so receivers can timestamp arrivals more finely than their
    /// polling cadence.
    pub fn poll(&mut self, now: f64) -> Vec<(f64, Vec<u8>)> {
        let mut due: Vec<(f64, u64, Vec<u8>)> = Vec::new();
        self.in_flight.retain_mut(|item| {
            if item.0 <= now {
                due.push((item.0, item.1, std::mem::take(&mut item.2)));
                false
            } else {
                true
            }
        });
        due.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        self.stats.delivered += due.len();
        due.into_iter().map(|(t, _, b)| (t, b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn datagram(tag: u8, len: usize) -> Vec<u8> {
        vec![tag; len]
    }

    #[test]
    fn ideal_channel_delivers_everything_in_order() {
        let mut ch = SimChannel::new(ChannelConfig::ideal(), 1);
        for k in 0..10 {
            ch.send(k as f64 * 0.1, datagram(k, 50));
        }
        let out = ch.poll(1.0);
        assert_eq!(out.len(), 10);
        for (k, (at, bytes)) in out.iter().enumerate() {
            assert_eq!(bytes[0], k as u8);
            assert!((at - k as f64 * 0.1).abs() < 1e-12);
        }
        assert_eq!(ch.stats().dropped, 0);
    }

    #[test]
    fn poll_respects_the_virtual_clock() {
        let cfg = ChannelConfig { latency_mean: 0.5, ..ChannelConfig::ideal() };
        let mut ch = SimChannel::new(cfg, 2);
        ch.send(0.0, datagram(1, 10));
        assert!(ch.poll(0.4).is_empty());
        assert_eq!(ch.pending(), 1);
        assert_eq!(ch.poll(0.6).len(), 1);
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn full_loss_drops_everything() {
        let cfg = ChannelConfig { loss: 1.0, ..ChannelConfig::urban() };
        let mut ch = SimChannel::new(cfg, 3);
        for _ in 0..20 {
            ch.send(0.0, datagram(0, 100));
        }
        assert!(ch.poll(100.0).is_empty());
        assert_eq!(ch.stats().dropped, 20);
    }

    #[test]
    fn partial_loss_rate_is_roughly_honoured() {
        let cfg = ChannelConfig { loss: 0.3, ..ChannelConfig::urban() };
        let mut ch = SimChannel::new(cfg, 4);
        for k in 0..2000 {
            ch.send(k as f64 * 1e-3, datagram(0, 20));
        }
        let delivered = ch.poll(1e9).len() as f64;
        // Duplication adds ~2%; loss removes 30%.
        let expect = 2000.0 * (1.0 - 0.3) * 1.02;
        assert!((delivered - expect).abs() < 100.0, "delivered {delivered}, expect ~{expect}");
    }

    #[test]
    fn bandwidth_cap_serialises_backlog() {
        let cfg = ChannelConfig {
            bandwidth: 1000.0, // 1 kB/s: a 100-byte datagram takes 0.1 s
            ..ChannelConfig::ideal()
        };
        let mut ch = SimChannel::new(cfg, 5);
        for _ in 0..5 {
            ch.send(0.0, datagram(0, 100));
        }
        // After 0.25 s only the first two datagrams have cleared the air.
        assert_eq!(ch.poll(0.25).len(), 2);
        assert_eq!(ch.poll(0.55).len(), 3);
    }

    #[test]
    fn reordering_can_invert_delivery_order() {
        let cfg = ChannelConfig {
            reorder: 0.5,
            reorder_extra: 0.2,
            latency_mean: 0.01,
            ..ChannelConfig::ideal()
        };
        let mut ch = SimChannel::new(cfg, 6);
        for k in 0..50 {
            ch.send(k as f64 * 0.01, datagram(k, 10));
        }
        let tags: Vec<u8> = ch.poll(10.0).into_iter().map(|(_, b)| b[0]).collect();
        assert_eq!(tags.len(), 50);
        assert!(tags.windows(2).any(|w| w[0] > w[1]), "no inversion observed: {tags:?}");
    }

    #[test]
    fn same_seed_yields_identical_trace() {
        let run = |seed: u64| -> Vec<(u64, Vec<u8>)> {
            let mut ch = SimChannel::new(ChannelConfig::urban().with_loss(0.2), seed);
            let mut trace = Vec::new();
            for k in 0..200u32 {
                let now = k as f64 * 0.01;
                ch.send(now, k.to_le_bytes().to_vec());
                for (at, bytes) in ch.poll(now) {
                    trace.push((at.to_bits(), bytes));
                }
            }
            for (at, bytes) in ch.poll(1e9) {
                trace.push((at.to_bits(), bytes));
            }
            trace
        };
        // Byte-identical traces (delivery times compared bitwise).
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }
}

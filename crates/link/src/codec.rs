//! Datagram framing: the bottom layer of the simulated V2V transport.
//!
//! A message (one serialised [`bb_align::PerceptionFrame`] payload, or an
//! ack) is split into MTU-sized *datagrams*, each carrying an 18-byte
//! header:
//!
//! ```text
//! magic "BL" u16 | version u8 | kind u8 | msg_id u32 | chunk_index u16
//! chunk_count u16 | payload_len u16 | checksum u32 | payload bytes
//! ```
//!
//! All integers little-endian. The checksum is FNV-1a over the first
//! 14 header bytes plus the payload, so a corrupted datagram — any field
//! or payload byte — is rejected at decode instead of poisoning frame
//! reassembly upstream.

use std::error::Error;
use std::fmt;

/// Leading magic bytes of every datagram.
pub const MAGIC: [u8; 2] = *b"BL";
/// Wire protocol version this implementation speaks.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_BYTES: usize = 18;
/// Smallest MTU that leaves room for at least one payload byte.
pub const MIN_MTU: usize = HEADER_BYTES + 1;

/// What a datagram carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatagramKind {
    /// One chunk of a message.
    Data,
    /// Acknowledgement of a fully received message (`msg_id` names it).
    Ack,
}

/// A decoded datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Data chunk or ack.
    pub kind: DatagramKind,
    /// Sender-assigned message sequence number.
    pub msg_id: u32,
    /// Index of this chunk within the message (0 for acks).
    pub chunk_index: u16,
    /// Total chunks in the message (0 for acks).
    pub chunk_count: u16,
    /// The chunk payload (empty for acks).
    pub payload: Vec<u8>,
}

/// Why a datagram failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Shorter than the fixed header.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion,
    /// Unknown kind byte.
    BadKind,
    /// Declared payload length disagrees with the buffer size.
    LengthMismatch,
    /// Chunk index/count inconsistent with the kind.
    BadChunk,
    /// Checksum mismatch: the datagram was corrupted in flight.
    BadChecksum,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "datagram shorter than header"),
            CodecError::BadMagic => write!(f, "bad magic bytes"),
            CodecError::BadVersion => write!(f, "unsupported protocol version"),
            CodecError::BadKind => write!(f, "unknown datagram kind"),
            CodecError::LengthMismatch => write!(f, "declared payload length mismatch"),
            CodecError::BadChunk => write!(f, "inconsistent chunk index/count"),
            CodecError::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

impl Error for CodecError {}

/// Why a message could not be encoded.
///
/// Encoding rejects payloads the wire format cannot represent instead of
/// silently truncating header fields: `chunk_count` and `payload_len` are
/// `u16` on the wire, so a payload needing more than `u16::MAX` chunks
/// would previously wrap the count and produce datagrams whose headers
/// lie about the message geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The payload needs more chunks than the `u16` wire field can
    /// address at this MTU.
    TooManyChunks {
        /// Chunks the payload would need.
        needed: usize,
        /// Largest payload (bytes) encodable at this MTU.
        max_payload: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooManyChunks { needed, max_payload } => write!(
                f,
                "message needs {needed} chunks (wire max {}); \
                 at most {max_payload} payload bytes fit at this MTU",
                u16::MAX
            ),
        }
    }
}

impl Error for EncodeError {}

/// FNV-1a over the header prefix and payload.
fn checksum(header_prefix: &[u8], payload: &[u8]) -> u32 {
    let mut h = 0x811C_9DC5u32;
    for &b in header_prefix.iter().chain(payload) {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Payload bytes that fit in one datagram at the given MTU.
///
/// # Panics
///
/// Panics if `mtu < MIN_MTU`.
pub fn max_chunk_payload(mtu: usize) -> usize {
    assert!(mtu >= MIN_MTU, "mtu {mtu} below minimum {MIN_MTU}");
    (mtu - HEADER_BYTES).min(u16::MAX as usize)
}

fn encode_raw(
    kind: DatagramKind,
    msg_id: u32,
    chunk_index: u16,
    chunk_count: u16,
    payload: &[u8],
) -> Vec<u8> {
    // Upheld by `max_chunk_payload`'s clamp; a hard assert (one branch per
    // datagram) so a silently truncated `payload_len` is impossible even
    // in release builds.
    assert!(payload.len() <= u16::MAX as usize, "chunk payload exceeds u16 length field");
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(match kind {
        DatagramKind::Data => 0,
        DatagramKind::Ack => 1,
    });
    out.extend_from_slice(&msg_id.to_le_bytes());
    out.extend_from_slice(&chunk_index.to_le_bytes());
    out.extend_from_slice(&chunk_count.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    let sum = checksum(&out, payload);
    out.extend_from_slice(&sum.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits a message payload into MTU-sized datagrams.
///
/// An empty payload still produces one (empty) datagram so the message
/// exists on the wire.
///
/// # Errors
///
/// Returns [`EncodeError::TooManyChunks`] when the payload needs more
/// chunks than the `u16` wire field can address at this MTU (previously
/// this wrapped the count and produced lying headers).
///
/// # Panics
///
/// Panics if `mtu < MIN_MTU`.
pub fn encode_message(
    msg_id: u32,
    payload: &[u8],
    mtu: usize,
) -> Result<Vec<Vec<u8>>, EncodeError> {
    let chunk_size = max_chunk_payload(mtu);
    let chunk_count = payload.len().div_ceil(chunk_size).max(1);
    if chunk_count > u16::MAX as usize {
        return Err(EncodeError::TooManyChunks {
            needed: chunk_count,
            max_payload: chunk_size * u16::MAX as usize,
        });
    }
    Ok((0..chunk_count)
        .map(|i| {
            let chunk = &payload[i * chunk_size..((i + 1) * chunk_size).min(payload.len())];
            encode_raw(DatagramKind::Data, msg_id, i as u16, chunk_count as u16, chunk)
        })
        .collect())
}

/// Encodes an acknowledgement for `msg_id`.
pub fn encode_ack(msg_id: u32) -> Vec<u8> {
    encode_raw(DatagramKind::Ack, msg_id, 0, 0, &[])
}

/// Decodes and validates one datagram.
///
/// # Errors
///
/// Returns [`CodecError`] for any structural or checksum violation; never
/// panics on arbitrary input.
pub fn decode_datagram(bytes: &[u8]) -> Result<Datagram, CodecError> {
    if bytes.len() < HEADER_BYTES {
        return Err(CodecError::Truncated);
    }
    if bytes[0..2] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if bytes[2] != VERSION {
        return Err(CodecError::BadVersion);
    }
    let kind = match bytes[3] {
        0 => DatagramKind::Data,
        1 => DatagramKind::Ack,
        _ => return Err(CodecError::BadKind),
    };
    let u16_at = |i: usize| u16::from_le_bytes(bytes[i..i + 2].try_into().expect("2 bytes"));
    let msg_id = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let chunk_index = u16_at(8);
    let chunk_count = u16_at(10);
    let payload_len = u16_at(12) as usize;
    if bytes.len() != HEADER_BYTES + payload_len {
        return Err(if bytes.len() < HEADER_BYTES + payload_len {
            CodecError::Truncated
        } else {
            CodecError::LengthMismatch
        });
    }
    let declared = u32::from_le_bytes(bytes[14..18].try_into().expect("4 bytes"));
    let payload = &bytes[HEADER_BYTES..];
    if checksum(&bytes[0..14], payload) != declared {
        return Err(CodecError::BadChecksum);
    }
    match kind {
        DatagramKind::Data if chunk_index >= chunk_count => return Err(CodecError::BadChunk),
        DatagramKind::Ack if chunk_count != 0 || chunk_index != 0 || payload_len != 0 => {
            return Err(CodecError::BadChunk)
        }
        _ => {}
    }
    Ok(Datagram { kind, msg_id, chunk_index, chunk_count, payload: payload.to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn roundtrip_single_datagram() {
        let p = payload(100);
        let grams = encode_message(7, &p, 1200).unwrap();
        assert_eq!(grams.len(), 1);
        let d = decode_datagram(&grams[0]).unwrap();
        assert_eq!(d.kind, DatagramKind::Data);
        assert_eq!(d.msg_id, 7);
        assert_eq!((d.chunk_index, d.chunk_count), (0, 1));
        assert_eq!(d.payload, p);
    }

    #[test]
    fn roundtrip_chunked_message_reassembles() {
        let p = payload(5000);
        let mtu = 200;
        let grams = encode_message(42, &p, mtu).unwrap();
        assert_eq!(grams.len(), 5000usize.div_ceil(mtu - HEADER_BYTES));
        let mut back = Vec::new();
        for (i, g) in grams.iter().enumerate() {
            assert!(g.len() <= mtu, "datagram {} exceeds mtu: {}", i, g.len());
            let d = decode_datagram(g).unwrap();
            assert_eq!(d.chunk_index as usize, i);
            assert_eq!(d.chunk_count as usize, grams.len());
            back.extend_from_slice(&d.payload);
        }
        assert_eq!(back, p);
    }

    #[test]
    fn empty_message_still_produces_one_datagram() {
        let grams = encode_message(1, &[], 64).unwrap();
        assert_eq!(grams.len(), 1);
        let d = decode_datagram(&grams[0]).unwrap();
        assert!(d.payload.is_empty());
        assert_eq!(d.chunk_count, 1);
    }

    #[test]
    fn ack_roundtrip() {
        let d = decode_datagram(&encode_ack(99)).unwrap();
        assert_eq!(d.kind, DatagramKind::Ack);
        assert_eq!(d.msg_id, 99);
        assert!(d.payload.is_empty());
    }

    #[test]
    fn corrupt_payload_byte_is_rejected() {
        let mut g = encode_message(3, &payload(300), 400).unwrap().remove(0);
        g[HEADER_BYTES + 57] ^= 0x40;
        assert_eq!(decode_datagram(&g).unwrap_err(), CodecError::BadChecksum);
    }

    #[test]
    fn corrupt_header_fields_are_rejected() {
        let good = encode_message(3, &payload(40), 400).unwrap().remove(0);
        let mutate = |i: usize, x: u8| {
            let mut g = good.clone();
            g[i] ^= x;
            decode_datagram(&g).unwrap_err()
        };
        assert_eq!(mutate(0, 0xFF), CodecError::BadMagic);
        assert_eq!(mutate(2, 0x01), CodecError::BadVersion);
        assert_eq!(mutate(3, 0x08), CodecError::BadKind);
        // msg_id flip only trips the checksum.
        assert_eq!(mutate(5, 0x01), CodecError::BadChecksum);
        // payload_len flip changes the structural size first.
        assert!(matches!(mutate(12, 0x01), CodecError::Truncated | CodecError::LengthMismatch));
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        assert_eq!(decode_datagram(&[]).unwrap_err(), CodecError::Truncated);
        assert_eq!(decode_datagram(&[0u8; 5]).unwrap_err(), CodecError::Truncated);
        let g = encode_message(3, &payload(40), 400).unwrap().remove(0);
        assert_eq!(decode_datagram(&g[..g.len() - 1]).unwrap_err(), CodecError::Truncated);
        let mut long = g.clone();
        long.push(0);
        assert_eq!(decode_datagram(&long).unwrap_err(), CodecError::LengthMismatch);
    }

    #[test]
    fn oversized_payload_is_rejected_not_truncated() {
        // Regression: `chunk_count as u16` used to wrap for payloads
        // needing more than 65535 chunks, emitting datagrams whose
        // headers lied about the message geometry. At MIN_MTU each chunk
        // carries one byte, so 65536 bytes crosses the line cheaply.
        let too_big = vec![0u8; u16::MAX as usize + 1];
        let err = encode_message(1, &too_big, MIN_MTU).unwrap_err();
        assert_eq!(
            err,
            EncodeError::TooManyChunks {
                needed: u16::MAX as usize + 1,
                max_payload: u16::MAX as usize,
            }
        );
        // One byte under the line still encodes, with the maximum count.
        let at_limit = vec![0u8; u16::MAX as usize];
        let grams = encode_message(1, &at_limit, MIN_MTU).unwrap();
        assert_eq!(grams.len(), u16::MAX as usize);
        let last = decode_datagram(grams.last().unwrap()).unwrap();
        assert_eq!((last.chunk_index, last.chunk_count), (u16::MAX - 1, u16::MAX));
    }

    #[test]
    fn mtu_floor_is_enforced() {
        assert_eq!(max_chunk_payload(MIN_MTU), 1);
        let r = std::panic::catch_unwind(|| encode_message(1, &[1], HEADER_BYTES));
        assert!(r.is_err(), "sub-minimum MTU must panic");
    }
}

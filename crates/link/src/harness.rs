//! The cooperative perception loop over the simulated link.
//!
//! [`V2vHarness`] runs two simulated vehicles end to end: each tick the
//! transmitting car serialises its [`bb_align::PerceptionFrame`]
//! ([`bb_align::wire::encode_frame`]) and ships it through a lossy
//! [`SimChannel`] via a [`LinkEndpoint`] session; the receiving car
//! reassembles, recovers the relative pose (`bb_align`), feeds it to the
//! temporal tracker, and fuses cooperatively (`bba-fusion`). When the
//! link fails to deliver a fresh frame the loop *degrades instead of
//! stalling*: the pose comes from the tracker's constant-velocity
//! extrapolation ([`bb_align::tracking`]) and perception falls back to
//! the ego car's own detections ([`FusionExperiment::ego_only`]).
//!
//! Every random stream is seeded from the harness seed, and per-frame
//! recovery RNGs are derived independently of link outcomes
//! ([`recovery_rng`]), so over a lossless channel the loop reproduces the
//! direct-call pipeline bit for bit — the property the integration tests
//! pin.

use crate::channel::{ChannelConfig, ChannelStats, SimChannel};
use crate::session::{LinkEndpoint, PeerState, SessionConfig, SessionStats};
use bb_align::tracking::{PoseTracker, TrackerConfig};
use bb_align::{wire, BbAlign, BbAlignConfig, PerceptionFrame, RecoveryPath, WarmRecovery};
use bba_dataset::{AgentFrame, Dataset, DatasetConfig, FramePair};
use bba_fusion::{FusionExperiment, FusionMethod};
use bba_geometry::Iso2;
use bba_obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Harness parameters.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Frame pairs (ticks) to run.
    pub frames: usize,
    /// Master seed: dataset, channels, and recovery streams derive from it.
    pub seed: u64,
    /// World/sensor generation (its `frame_interval` sets the tick length).
    pub dataset: DatasetConfig,
    /// Pose-recovery engine configuration.
    pub engine: BbAlignConfig,
    /// Cooperative fusion method for delivered frames.
    pub fusion: FusionMethod,
    /// Link impairments, applied to both directions (data and acks).
    pub channel: ChannelConfig,
    /// Session (framing/retransmit/staleness) parameters.
    pub session: SessionConfig,
    /// Temporal tracker parameters for the degradation fallback.
    pub tracker: TrackerConfig,
    /// Route delivered frames through the temporal warm start
    /// ([`BbAlign::recover_warm`]): a confident track prediction is
    /// verified directly, skipping stage 1 on a hit. Off by default so
    /// the loop reproduces the direct-call pipeline bit for bit.
    pub warm_start: bool,
    /// Link pump sub-steps per tick: how often the endpoints look at the
    /// channel between frames (retransmissions need the opportunities).
    pub substeps: usize,
    /// Observability sink shared by the recovery engine, both link
    /// endpoints, and the fusion step. Disabled (and free) by default;
    /// pass [`Recorder::enabled`] and snapshot it after
    /// [`V2vHarness::run`] for a per-run health record.
    pub recorder: Recorder,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            frames: 10,
            seed: 2024,
            dataset: DatasetConfig::standard(),
            engine: BbAlignConfig::default(),
            fusion: FusionMethod::Late,
            channel: ChannelConfig::urban(),
            session: SessionConfig::default(),
            tracker: TrackerConfig::default(),
            warm_start: false,
            substeps: 5,
            recorder: Recorder::disabled(),
        }
    }
}

/// Where this tick's relative-pose estimate came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoseSource {
    /// A fresh frame arrived and per-frame recovery succeeded.
    Recovered,
    /// A fresh frame arrived and the tracker's prediction verified
    /// directly — stage 1 never ran ([`HarnessConfig::warm_start`]).
    WarmStart,
    /// Recovery was unavailable this tick; the tracker extrapolated.
    Extrapolated,
    /// No frame and no initialised track: the receiver has no estimate.
    Unavailable,
}

/// What happened on one tick of the cooperative loop.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameOutcome {
    /// Tick index.
    pub index: usize,
    /// Virtual frame timestamp (s).
    pub time: f64,
    /// Receiver's view of peer health at the end of the tick.
    pub link_state: PeerState,
    /// A fresh perception frame completed reassembly this tick.
    pub delivered: bool,
    /// End-to-end frame latency (s) when delivered.
    pub link_latency: Option<f64>,
    /// Provenance of the pose estimate.
    pub pose_source: PoseSource,
    /// The pose estimate used (None only when [`PoseSource::Unavailable`]).
    pub pose: Option<Iso2>,
    /// `(translation m, rotation rad)` error of the estimate vs. ground
    /// truth.
    pub pose_error: Option<(f64, f64)>,
    /// Fused cooperatively (true) or degraded to ego-only (false).
    pub cooperative: bool,
    /// Detections produced this tick (cooperative or ego-only).
    pub detections: usize,
}

/// The full run record.
#[derive(Debug, Clone)]
pub struct HarnessReport {
    /// One outcome per tick.
    pub outcomes: Vec<FrameOutcome>,
    /// Data-direction (other → ego) channel counters.
    pub forward: ChannelStats,
    /// Ack-direction (ego → other) channel counters.
    pub reverse: ChannelStats,
    /// Receiver session counters.
    pub receiver: SessionStats,
    /// Transmitter session counters.
    pub transmitter: SessionStats,
}

impl HarnessReport {
    /// Fraction of ticks with a fresh frame delivered.
    pub fn delivered_rate(&self) -> f64 {
        self.rate(|o| o.delivered)
    }

    /// Fraction of ticks whose pose came from a successful recovery
    /// (cold pipeline or verified warm start).
    pub fn recovered_rate(&self) -> f64 {
        self.rate(|o| {
            o.pose_source == PoseSource::Recovered || o.pose_source == PoseSource::WarmStart
        })
    }

    /// Fraction of ticks with *some* pose estimate (recovery or track).
    pub fn pose_available_rate(&self) -> f64 {
        self.rate(|o| o.pose.is_some())
    }

    fn rate(&self, f: impl Fn(&FrameOutcome) -> bool) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| f(o)).count() as f64 / self.outcomes.len() as f64
    }
}

/// The per-frame recovery RNG, derived from `(seed, tick index)` only.
///
/// Deriving it from the tick index — not from a shared stream whose phase
/// would shift with link outcomes — is what makes the lossless run
/// reproduce the direct-call pipeline exactly, and lossy runs recover
/// identically on whichever frames they do receive.
pub fn recovery_rng(seed: u64, index: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Builds one car's transmissible frame from its dataset view.
pub fn perception_frame(aligner: &BbAlign, agent: &AgentFrame) -> PerceptionFrame {
    aligner.frame_from_parts(
        agent.scan.points().iter().map(|p| p.position),
        agent.detections.iter().map(|d| (d.box3, d.confidence)),
    )
}

/// The two-vehicle cooperative loop (see the [module docs](self)).
#[derive(Debug)]
pub struct V2vHarness {
    config: HarnessConfig,
}

impl V2vHarness {
    /// Creates a harness.
    pub fn new(config: HarnessConfig) -> Self {
        V2vHarness { config }
    }

    /// The configuration.
    pub fn config(&self) -> &HarnessConfig {
        &self.config
    }

    /// Runs the loop for the configured number of ticks.
    pub fn run(&self) -> HarnessReport {
        let cfg = &self.config;
        let dt = cfg.dataset.frame_interval;
        let substeps = cfg.substeps.max(1);
        let aligner = BbAlign::new(cfg.engine.clone()).with_recorder(cfg.recorder.clone());
        let fusion = FusionExperiment::new(cfg.fusion);
        let mut dataset = Dataset::new(cfg.dataset.clone(), cfg.seed);
        let mut tracker = PoseTracker::new(cfg.tracker);
        let mut forward = SimChannel::new(cfg.channel, cfg.seed.wrapping_add(0x5E_EDF0));
        let mut reverse = SimChannel::new(cfg.channel, cfg.seed.wrapping_add(0x5E_EDF1));
        let mut receiver = LinkEndpoint::new(cfg.session);
        receiver.set_recorder(cfg.recorder.clone());
        let mut transmitter = LinkEndpoint::new(cfg.session);
        transmitter.set_recorder(cfg.recorder.clone());
        let mut fusion_rng =
            StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(1));

        let mut outcomes = Vec::with_capacity(cfg.frames);
        for index in 0..cfg.frames {
            let pair = dataset.next_pair().expect("dataset streams indefinitely");
            let t = pair.time;
            let ego_frame = perception_frame(&aligner, &pair.ego);
            let other_frame = perception_frame(&aligner, &pair.other);

            // The transmitting car ships its frame at the tick timestamp.
            // Perception frames are far below the wire's chunk-count
            // ceiling at any valid MTU, so an encode failure here is a
            // programming error, not a runtime condition.
            transmitter
                .send_message(t, &wire::encode_frame(&other_frame), &mut forward)
                .expect("perception frame exceeds wire capacity");

            // Pump both endpoints through the tick so acks and
            // retransmissions get their chance before the next frame.
            let mut latest = None;
            let mut end = t;
            for s in 1..=substeps {
                end = t + dt * s as f64 / (substeps + 1) as f64;
                for msg in receiver.pump(end, &mut forward, &mut reverse) {
                    latest = Some(msg);
                }
                transmitter.pump(end, &mut reverse, &mut forward);
            }

            let received = latest.and_then(|msg| {
                // Checksummed chunks make corruption here unreachable, but
                // a defensive decode keeps the loop alive regardless.
                wire::decode_frame(&msg.payload).ok().map(|frame| (frame, msg.latency))
            });
            let outcome = self.evaluate_tick(TickInputs {
                index,
                pair: &pair,
                ego_frame: &ego_frame,
                received,
                link_state: receiver.peer_state(end),
                aligner: &aligner,
                fusion: &fusion,
                tracker: &mut tracker,
                fusion_rng: &mut fusion_rng,
            });
            outcomes.push(outcome);
        }

        HarnessReport {
            outcomes,
            forward: *forward.stats(),
            reverse: *reverse.stats(),
            receiver: *receiver.stats(),
            transmitter: *transmitter.stats(),
        }
    }

    fn evaluate_tick(&self, inputs: TickInputs<'_>) -> FrameOutcome {
        let TickInputs {
            index,
            pair,
            ego_frame,
            received,
            link_state,
            aligner,
            fusion,
            tracker,
            fusion_rng,
        } = inputs;
        let t = pair.time;
        let delivered = received.is_some();
        let link_latency = received.as_ref().map(|(_, latency)| *latency);

        // Pose: recovery from a fresh frame (warm-started off the track
        // when enabled), else the tracker's extrapolation (also the
        // fallback when recovery itself fails on a delivered frame).
        let recovery = received.as_ref().and_then(|(frame, _)| {
            let mut rng = recovery_rng(self.config.seed, index);
            if self.config.warm_start {
                let hint = tracker.warm_prediction(t);
                aligner.recover_warm(ego_frame, frame, hint.as_ref(), &mut rng).ok()
            } else {
                aligner
                    .recover(ego_frame, frame, &mut rng)
                    .ok()
                    .map(|recovery| WarmRecovery { recovery, path: RecoveryPath::Cold })
            }
        });
        let (pose, pose_source) = match &recovery {
            Some(w) => {
                tracker.update(t, &w.recovery);
                let source = if w.path == RecoveryPath::WarmStart {
                    PoseSource::WarmStart
                } else {
                    PoseSource::Recovered
                };
                (Some(w.recovery.transform), source)
            }
            None => match tracker.predict(t) {
                Some(p) => (Some(p), PoseSource::Extrapolated),
                None => (None, PoseSource::Unavailable),
            },
        };
        let pose_error = pose.map(|p| p.error_to(&pair.true_relative));

        let obs = &self.config.recorder;
        obs.incr("harness.ticks");
        match pose_source {
            PoseSource::Recovered => obs.incr("harness.pose_recovered"),
            PoseSource::WarmStart => obs.incr("harness.pose_warmstart"),
            PoseSource::Extrapolated => obs.incr("harness.pose_extrapolated"),
            PoseSource::Unavailable => obs.incr("harness.pose_unavailable"),
        }
        if let Some((dt_err, _)) = pose_error {
            obs.gauge("harness.pose_error_t_m", dt_err);
            obs.observe("harness.pose_error_t_m", dt_err);
        }

        // Perception: cooperative fusion needs both a delivered frame and
        // a pose to place it with; anything less is ego-only.
        let link_pose = if delivered { pose } else { None };
        let (detections, _) =
            fusion.run_frame_link_observed(pair, link_pose.as_ref(), fusion_rng, obs);

        FrameOutcome {
            index,
            time: t,
            link_state,
            delivered,
            link_latency,
            pose_source,
            pose,
            pose_error,
            cooperative: link_pose.is_some(),
            detections: detections.len(),
        }
    }
}

struct TickInputs<'a> {
    index: usize,
    pair: &'a FramePair,
    ego_frame: &'a PerceptionFrame,
    received: Option<(PerceptionFrame, f64)>,
    link_state: PeerState,
    aligner: &'a BbAlign,
    fusion: &'a FusionExperiment,
    tracker: &'a mut PoseTracker,
    fusion_rng: &'a mut StdRng,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_bev::BevConfig;

    /// A fast configuration mirroring the bench crate's test pool.
    pub fn test_config(frames: usize, seed: u64) -> HarnessConfig {
        let mut engine = BbAlignConfig {
            bev: BevConfig { range: 102.4, resolution: 1.6 }, // 128²
            min_inliers_bv: 10,
            ..BbAlignConfig::default()
        };
        engine.descriptor.patch_size = 24;
        engine.descriptor.grid_size = 4;
        HarnessConfig {
            frames,
            seed,
            dataset: DatasetConfig::test_small(),
            engine,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn lossless_loop_recovers_every_frame() {
        let mut cfg = test_config(3, 41);
        cfg.channel = ChannelConfig::ideal();
        let report = V2vHarness::new(cfg).run();
        assert_eq!(report.outcomes.len(), 3);
        assert!((report.delivered_rate() - 1.0).abs() < 1e-12);
        for o in &report.outcomes {
            assert!(o.delivered);
            assert!(o.cooperative);
            assert_eq!(o.link_latency, Some(0.0));
        }
        assert!(report.recovered_rate() > 0.5, "urban frames should mostly recover");
    }

    #[test]
    fn dead_link_degrades_to_ego_only() {
        let mut cfg = test_config(3, 42);
        cfg.channel = ChannelConfig { loss: 1.0, ..ChannelConfig::urban() };
        let report = V2vHarness::new(cfg).run();
        assert_eq!(report.outcomes.len(), 3);
        for o in &report.outcomes {
            assert!(!o.delivered);
            assert!(!o.cooperative, "nothing arrived, nothing to fuse");
            assert_eq!(o.pose_source, PoseSource::Unavailable);
            assert_eq!(o.link_state, PeerState::Discovering);
        }
        assert_eq!(report.receiver.messages_delivered, 0);
        assert!(report.transmitter.messages_abandoned > 0, "retry budget must give up");
    }

    #[test]
    fn warm_start_loop_stays_cooperative() {
        let mut cfg = test_config(4, 41);
        cfg.channel = ChannelConfig::ideal();
        cfg.warm_start = true;
        let report = V2vHarness::new(cfg).run();
        assert_eq!(report.outcomes.len(), 4);
        for o in &report.outcomes {
            assert!(o.delivered && o.cooperative);
            // A warm tick is still a recovery, never an extrapolation.
            assert_ne!(o.pose_source, PoseSource::Extrapolated);
        }
        assert!(report.recovered_rate() > 0.5);
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let cfg = || {
            let mut c = test_config(4, 43);
            c.channel = ChannelConfig::urban().with_loss(0.25);
            c
        };
        let a = V2vHarness::new(cfg()).run();
        let b = V2vHarness::new(cfg()).run();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.forward, b.forward);
        assert_eq!(a.receiver, b.receiver);
    }
}

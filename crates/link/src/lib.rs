//! **bba-link**: a simulated V2V transport runtime for the BB-Align
//! reproduction.
//!
//! The paper's evaluation hands one car's perception frame to the other
//! by function call. Real V2V links drop, delay, reorder, and duplicate
//! packets — and the interesting systems question is what the cooperative
//! perception stack does when they do. This crate closes that gap with
//! four layers:
//!
//! 1. [`codec`] — length-prefixed, versioned, checksummed datagram
//!    framing that chunks a serialised
//!    [`PerceptionFrame`](bb_align::PerceptionFrame) payload into
//!    MTU-sized datagrams;
//! 2. [`channel`] — a seeded, virtual-clock lossy link model
//!    ([`SimChannel`]) with configurable loss, latency, jitter,
//!    reordering, duplication, and a bandwidth cap;
//! 3. [`session`] — a per-peer state machine ([`LinkEndpoint`]) with
//!    sequence numbers, reassembly buffers, ack/retransmit with
//!    exponential backoff, staleness expiry, and a
//!    `Discovering → Synced → Degraded → Lost` health signal;
//! 4. [`harness`] — the cooperative loop ([`V2vHarness`]) running two
//!    simulated vehicles over the link, feeding received frames into
//!    `bb_align` pose recovery and `bba-fusion`, and degrading gracefully
//!    to ego-only perception plus tracking-based pose extrapolation when
//!    the link starves.
//!
//! Everything is deterministic for a fixed seed, and over a lossless
//! channel ([`ChannelConfig::ideal`]) the loop reproduces the direct-call
//! pipeline exactly — the two properties the integration tests pin.

#![warn(missing_docs)]

pub mod channel;
pub mod codec;
pub mod harness;
pub mod session;

pub use channel::{ChannelConfig, ChannelStats, SimChannel};
pub use codec::{
    decode_datagram, encode_ack, encode_message, CodecError, Datagram, DatagramKind, EncodeError,
};
pub use harness::{FrameOutcome, HarnessConfig, HarnessReport, PoseSource, V2vHarness};
pub use session::{LinkEndpoint, PeerState, ReceivedMessage, SessionConfig, SessionStats};

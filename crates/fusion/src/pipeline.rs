//! The fusion pipelines and their shared evidence model.

use bba_dataset::FramePair;
use bba_detect::{Detection, GroundTruthBox};
use bba_geometry::{obb_iou, Box3, Iso2, Vec3};
use bba_obs::Recorder;
use bba_scene::GaussianSampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The fusion families of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusionMethod {
    /// Merge raw point clouds, then detect.
    Early,
    /// Detect per car, transform the other car's boxes, NMS-merge.
    Late,
    /// Intermediate fusion, F-Cooper style (maxout of BEV features).
    FCooper,
    /// Intermediate fusion, coBEVT style (attention-weighted features).
    CoBevt,
}

impl FusionMethod {
    /// All four methods, in Table I row order.
    pub const ALL: [FusionMethod; 4] =
        [FusionMethod::Early, FusionMethod::Late, FusionMethod::FCooper, FusionMethod::CoBevt];

    /// Human-readable name matching the paper's table rows.
    pub fn name(self) -> &'static str {
        match self {
            FusionMethod::Early => "Early Fusion",
            FusionMethod::Late => "Late Fusion",
            FusionMethod::FCooper => "F-Cooper",
            FusionMethod::CoBevt => "coBEVT",
        }
    }

    /// Misalignment tolerance `τ` (m): how fast the other car's evidence
    /// decays as its placement error grows. Point-level merging (early) is
    /// the most brittle; attention-weighted feature fusion (coBEVT)
    /// tolerates the most — mirroring the relative robustness ordering of
    /// Table I's "corrupted pose" columns.
    fn tolerance(self) -> f64 {
        match self {
            FusionMethod::Early => 1.0,
            FusionMethod::Late => 1.0, // unused: late fusion merges boxes
            FusionMethod::FCooper => 1.6,
            FusionMethod::CoBevt => 2.1,
        }
    }

    /// Displacement (m) beyond which fused evidence splits into a ghost
    /// detection instead of blending.
    fn split_threshold(self) -> f64 {
        match self {
            FusionMethod::Early => 2.2,
            FusionMethod::Late => f64::INFINITY,
            FusionMethod::FCooper => 2.8,
            FusionMethod::CoBevt => 3.2,
        }
    }
}

/// Detection/evidence constants of the fused detector (shared across
/// methods; per-method behaviour enters through `tolerance` /
/// `split_threshold`).
const MIN_HITS: usize = 5;
const SATURATE_HITS: f64 = 60.0;
const MAX_RECALL: f64 = 0.97;
const CENTER_SIGMA: f64 = 0.12;
const CENTER_SIGMA_PER_M: f64 = 0.004;
const YAW_SIGMA: f64 = 0.03;
const NMS_IOU: f64 = 0.3;

/// A cooperative-detection experiment bound to one fusion method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionExperiment {
    method: FusionMethod,
}

impl FusionExperiment {
    /// Creates an experiment.
    pub fn new(method: FusionMethod) -> Self {
        FusionExperiment { method }
    }

    /// The fusion method.
    pub fn method(&self) -> FusionMethod {
        self.method
    }

    /// Runs cooperative detection on one frame pair, fusing with
    /// `used_pose` (the relative other→ego transform actually applied —
    /// ground truth, corrupted, or recovered).
    ///
    /// Returns `(detections, ground_truth)`, both in the ego frame, ready
    /// for [`bba_detect::average_precision`].
    pub fn run_frame<R: Rng + ?Sized>(
        &self,
        pair: &FramePair,
        used_pose: &Iso2,
        rng: &mut R,
    ) -> (Vec<Detection>, Vec<GroundTruthBox>) {
        let gt: Vec<GroundTruthBox> =
            pair.gt_vehicles_ego.iter().map(|&(_, b)| GroundTruthBox { box3: b }).collect();
        let dets = match self.method {
            FusionMethod::Late => self.late_fusion(pair, used_pose, rng),
            _ => self.evidence_fusion(pair, used_pose, rng),
        };
        (dets, gt)
    }

    /// Ego-only detection: what the receiver is left with when the V2V
    /// link delivered no usable frame. Same `(detections, ground_truth)`
    /// shape as [`FusionExperiment::run_frame`], so degradation
    /// experiments can score both operating modes with one AP pass.
    pub fn ego_only(pair: &FramePair) -> (Vec<Detection>, Vec<GroundTruthBox>) {
        let gt: Vec<GroundTruthBox> =
            pair.gt_vehicles_ego.iter().map(|&(_, b)| GroundTruthBox { box3: b }).collect();
        (pair.ego.detections.clone(), gt)
    }

    /// Link-fed entry point: fuses cooperatively when the transport
    /// produced a pose for this frame (recovered or extrapolated), and
    /// degrades to [`FusionExperiment::ego_only`] when it did not.
    pub fn run_frame_link<R: Rng + ?Sized>(
        &self,
        pair: &FramePair,
        link_pose: Option<&Iso2>,
        rng: &mut R,
    ) -> (Vec<Detection>, Vec<GroundTruthBox>) {
        match link_pose {
            Some(pose) => self.run_frame(pair, pose, rng),
            None => Self::ego_only(pair),
        }
    }

    /// [`FusionExperiment::run_frame_link`] with observability: times the
    /// frame under a `fusion` span and counts cooperative vs. ego-only
    /// operation plus emitted detections. `FusionExperiment` is a `Copy`
    /// method tag, so the recorder is passed per call rather than stored.
    pub fn run_frame_link_observed<R: Rng + ?Sized>(
        &self,
        pair: &FramePair,
        link_pose: Option<&Iso2>,
        rng: &mut R,
        obs: &Recorder,
    ) -> (Vec<Detection>, Vec<GroundTruthBox>) {
        let _span = obs.span("fusion");
        obs.incr("fusion.frames");
        obs.incr(if link_pose.is_some() {
            "fusion.cooperative_frames"
        } else {
            "fusion.ego_only_frames"
        });
        let out = self.run_frame_link(pair, link_pose, rng);
        obs.add("fusion.detections", out.0.len() as u64);
        out
    }

    /// Late fusion: per-car boxes, other's transformed, NMS-merged.
    fn late_fusion<R: Rng + ?Sized>(
        &self,
        pair: &FramePair,
        used_pose: &Iso2,
        rng: &mut R,
    ) -> Vec<Detection> {
        let _ = rng;
        let mut boxes: Vec<Detection> = pair.ego.detections.clone();
        boxes.extend(pair.other.detections.iter().map(|d| Detection {
            box3: d.box3.transformed(used_pose),
            confidence: d.confidence,
            truth: d.truth,
        }));
        // Greedy NMS by confidence.
        boxes.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
        let mut kept: Vec<Detection> = Vec::new();
        for det in boxes {
            let dup = kept.iter().any(|k| obb_iou(&k.box3.to_bev(), &det.box3.to_bev()) > NMS_IOU);
            if !dup {
                kept.push(det);
            }
        }
        kept
    }

    /// Early / intermediate fusion: the analytic evidence model (see the
    /// [crate docs](crate)).
    fn evidence_fusion<R: Rng + ?Sized>(
        &self,
        pair: &FramePair,
        used_pose: &Iso2,
        rng: &mut R,
    ) -> Vec<Detection> {
        let mut gauss = GaussianSampler::new();
        let mut out = Vec::new();
        let true_pose = pair.true_relative;
        let tau = self.method.tolerance();
        let split = self.method.split_threshold();
        // Rotation error shared by all of the other car's evidence.
        let yaw_err = bba_geometry::angle_diff(used_pose.yaw(), true_pose.yaw());

        for &(id, gt_box) in &pair.gt_vehicles_ego {
            let n_e = pair.ego.scan.hits_on(id);
            let n_o = pair.other.scan.hits_on(id);
            if n_e + n_o < MIN_HITS {
                continue; // neither car gathered meaningful evidence
            }
            // Placement error of the other car's evidence at this object:
            // where the used pose puts it minus where it belongs.
            let c_other = true_pose.inverse().apply(gt_box.center.xy());
            let displacement = used_pose.apply(c_other) - gt_box.center.xy();
            let miss = displacement.norm();

            // Candidate clusters: (evidence, centre offset, yaw offset).
            let mut clusters: Vec<(f64, bba_geometry::Vec2, f64)> = Vec::new();
            if miss <= split {
                // Evidence blends; the other car's share is attenuated by
                // the misalignment and pulls the fused centre toward its
                // displaced position.
                let eff_o = n_o as f64 * (-(miss / tau).powi(2)).exp();
                let total = n_e as f64 + eff_o;
                if total >= MIN_HITS as f64 {
                    let w_o = eff_o / total;
                    clusters.push((total, displacement * w_o, yaw_err * w_o));
                }
            } else {
                // Ghosting: each car's evidence stands alone.
                if n_e >= MIN_HITS {
                    clusters.push((n_e as f64, bba_geometry::Vec2::ZERO, 0.0));
                }
                if n_o >= MIN_HITS {
                    clusters.push((n_o as f64, displacement, yaw_err));
                }
            }

            for (evidence, offset, yaw_offset) in clusters {
                let p_det = MAX_RECALL * (evidence / SATURATE_HITS).min(1.0).powf(0.35);
                if rng.random::<f64>() > p_det {
                    continue;
                }
                let range = gt_box.center.xy().norm();
                let sigma_c = CENTER_SIGMA + CENTER_SIGMA_PER_M * range;
                let center = gt_box.center.xy()
                    + offset
                    + bba_geometry::Vec2::new(
                        gauss.sample_scaled(rng, sigma_c),
                        gauss.sample_scaled(rng, sigma_c),
                    );
                let confidence = (p_det * (0.85 + 0.15 * rng.random::<f64>())).clamp(0.05, 0.999);
                out.push(Detection {
                    box3: Box3::new(
                        Vec3::from_xy(center, gt_box.center.z),
                        gt_box.extents,
                        gt_box.yaw + yaw_offset + gauss.sample_scaled(rng, YAW_SIGMA),
                    ),
                    confidence,
                    truth: Some(id),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_dataset::{Dataset, DatasetConfig, PoseNoise};
    use bba_detect::average_precision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frames(n: usize, seed: u64) -> Vec<FramePair> {
        let mut ds = Dataset::new(DatasetConfig::test_small(), seed);
        (0..n).map(|_| ds.next_pair().unwrap()).collect()
    }

    fn ap_for(method: FusionMethod, pose_error: Option<PoseNoise>, frames: &[FramePair]) -> f64 {
        let exp = FusionExperiment::new(method);
        let mut rng = StdRng::seed_from_u64(7);
        let evaluated: Vec<_> = frames
            .iter()
            .map(|pair| {
                let pose = match pose_error {
                    Some(noise) => noise.corrupt(&pair.true_relative, &mut rng),
                    None => pair.true_relative,
                };
                exp.run_frame(pair, &pose, &mut rng)
            })
            .collect();
        average_precision(&evaluated, 0.5).ap
    }

    #[test]
    fn true_pose_beats_corrupted_pose_for_every_method() {
        let frames = frames(4, 11);
        for method in FusionMethod::ALL {
            let ap_true = ap_for(method, None, &frames);
            let ap_bad = ap_for(method, Some(PoseNoise::table1()), &frames);
            assert!(
                ap_true > ap_bad + 0.05,
                "{}: clean AP {ap_true:.3} should clearly beat corrupted {ap_bad:.3}",
                method.name()
            );
        }
    }

    #[test]
    fn cobevt_is_most_robust_intermediate() {
        let frames = frames(6, 13);
        let noise = PoseNoise::table1();
        let early = ap_for(FusionMethod::Early, Some(noise), &frames);
        let cobevt = ap_for(FusionMethod::CoBevt, Some(noise), &frames);
        assert!(
            cobevt >= early,
            "coBEVT ({cobevt:.3}) should tolerate pose error at least as well as early fusion ({early:.3})"
        );
    }

    #[test]
    fn fusion_beats_single_car_on_recall() {
        // With the true pose, cooperative early fusion should detect
        // objects the ego car alone misses (the whole point of V2V).
        let frames = frames(4, 17);
        let exp = FusionExperiment::new(FusionMethod::Early);
        let mut rng = StdRng::seed_from_u64(3);
        let mut coop_tp = 0usize;
        let mut solo_tp = 0usize;
        for pair in &frames {
            let (dets, gt) = exp.run_frame(pair, &pair.true_relative, &mut rng);
            let r = average_precision(&[(dets, gt.clone())], 0.5);
            coop_tp += r.true_positives;
            let solo = average_precision(&[(pair.ego.detections.clone(), gt)], 0.5);
            solo_tp += solo.true_positives;
        }
        assert!(coop_tp >= solo_tp, "cooperative TP {coop_tp} should be ≥ single-car TP {solo_tp}");
    }

    #[test]
    fn ghosting_appears_under_large_error() {
        // A gross pose error splits fused evidence into ghosts for early
        // fusion: detection count grows or localisation collapses.
        let frames = frames(3, 23);
        let exp = FusionExperiment::new(FusionMethod::Early);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ghosted = 0;
        for pair in &frames {
            let bad = Iso2::new(
                pair.true_relative.yaw(),
                pair.true_relative.translation() + bba_geometry::Vec2::new(5.0, 5.0),
            );
            let (dets, _) = exp.run_frame(pair, &bad, &mut rng);
            // Count detections that are far from every ground-truth box.
            for d in &dets {
                let nearest = pair
                    .gt_vehicles_ego
                    .iter()
                    .map(|(_, g)| g.center.xy().distance(d.box3.center.xy()))
                    .fold(f64::INFINITY, f64::min);
                if nearest > 2.0 {
                    ghosted += 1;
                }
            }
        }
        assert!(ghosted > 0, "large pose error should create ghost detections");
    }

    #[test]
    fn late_fusion_nms_deduplicates_aligned_boxes() {
        let frames = frames(2, 29);
        let exp = FusionExperiment::new(FusionMethod::Late);
        let mut rng = StdRng::seed_from_u64(9);
        for pair in &frames {
            let (dets, _) = exp.run_frame(pair, &pair.true_relative, &mut rng);
            // No two kept boxes overlap strongly.
            for (i, a) in dets.iter().enumerate() {
                for b in dets.iter().skip(i + 1) {
                    assert!(
                        obb_iou(&a.box3.to_bev(), &b.box3.to_bev()) <= NMS_IOU + 1e-9,
                        "NMS left overlapping duplicates"
                    );
                }
            }
        }
    }

    #[test]
    fn method_names_match_table() {
        assert_eq!(FusionMethod::Early.name(), "Early Fusion");
        assert_eq!(FusionMethod::Late.name(), "Late Fusion");
        assert_eq!(FusionMethod::FCooper.name(), "F-Cooper");
        assert_eq!(FusionMethod::CoBevt.name(), "coBEVT");
    }
}

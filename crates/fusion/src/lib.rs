//! Cooperative-perception fusion under true, corrupted or recovered poses —
//! the machinery behind the paper's Table I.
//!
//! The ego car fuses the other car's shared perception after transforming
//! it with a relative pose. When that pose is wrong, the other car's
//! evidence lands in the wrong place: fused objects shift, split into
//! ghosts, or lose support — exactly the Fig. 1 failure the paper opens
//! with. This crate models the four fusion families the paper evaluates:
//!
//! * **Early fusion** ([`FusionMethod::Early`]) — merge raw point evidence.
//! * **Late fusion** ([`FusionMethod::Late`]) — merge per-car detection
//!   boxes with NMS.
//! * **Intermediate, F-Cooper-style** ([`FusionMethod::FCooper`]) — fuse
//!   BEV feature evidence by maxout.
//! * **Intermediate, coBEVT-style** ([`FusionMethod::CoBevt`]) — fuse with
//!   attention weighting (more tolerant of misalignment).
//!
//! Early and intermediate fusion share an analytic evidence model
//! ([`pipeline`]): per ground-truth object, each car contributes LiDAR
//! hits; the other car's contribution is displaced by the pose error at the
//! object's location and attenuated by a method-specific misalignment
//! tolerance `τ` (point-level merging is brittle, attention-weighted
//! feature fusion is the most forgiving). Beyond a split threshold the
//! evidence no longer merges and the object yields a shifted ghost
//! detection. The resulting detections feed the standard AP@IoU evaluator
//! of `bba-detect`.
//!
//! # Example
//!
//! ```
//! use bba_fusion::{FusionExperiment, FusionMethod};
//! use bba_dataset::{Dataset, DatasetConfig, PoseNoise};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut ds = Dataset::new(DatasetConfig::test_small(), 3);
//! let pair = ds.next_pair().unwrap();
//! let mut rng = StdRng::seed_from_u64(1);
//!
//! let exp = FusionExperiment::new(FusionMethod::Early);
//! // Fuse with the TRUE pose...
//! let (dets_true, gt) = exp.run_frame(&pair, &pair.true_relative, &mut rng);
//! // ...and with a corrupted pose.
//! let bad = PoseNoise::table1().corrupt(&pair.true_relative, &mut rng);
//! let (dets_bad, _) = exp.run_frame(&pair, &bad, &mut rng);
//! assert!(!gt.is_empty());
//! # let _ = (dets_true, dets_bad);
//! ```

#![warn(missing_docs)]

pub mod pipeline;

pub use pipeline::{FusionExperiment, FusionMethod};

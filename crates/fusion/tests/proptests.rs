//! Property-based tests for the fusion evidence model.

use bba_dataset::{Dataset, DatasetConfig};
use bba_detect::average_precision;
use bba_fusion::{FusionExperiment, FusionMethod};
use bba_geometry::{Iso2, Vec2};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_method() -> impl Strategy<Value = FusionMethod> {
    prop_oneof![
        Just(FusionMethod::Early),
        Just(FusionMethod::Late),
        Just(FusionMethod::FCooper),
        Just(FusionMethod::CoBevt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn detections_are_well_formed(method in any_method(), seed in 0u64..40,
                                  ex in -4.0..4.0f64, ey in -4.0..4.0f64) {
        let mut ds = Dataset::new(DatasetConfig::test_small(), seed);
        let pair = ds.next_pair().unwrap();
        let pose = Iso2::new(
            pair.true_relative.yaw(),
            pair.true_relative.translation() + Vec2::new(ex, ey),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let exp = FusionExperiment::new(method);
        let (dets, gt) = exp.run_frame(&pair, &pose, &mut rng);
        prop_assert_eq!(gt.len(), pair.gt_vehicles_ego.len());
        for d in &dets {
            prop_assert!((0.0..=1.0).contains(&d.confidence));
            prop_assert!(d.box3.center.xy().is_finite());
            prop_assert!(d.box3.extents.x > 0.0 && d.box3.extents.y > 0.0);
        }
    }

    #[test]
    fn larger_pose_error_never_helps_much(method in any_method(), seed in 0u64..20) {
        // AP under a 5 m error should not beat AP under the true pose by a
        // margin (small-sample noise allowed).
        let mut ds = Dataset::new(DatasetConfig::test_small(), seed);
        let frames: Vec<_> = (0..3).map(|_| ds.next_pair().unwrap()).collect();
        let exp = FusionExperiment::new(method);
        let ap_for = |offset: Vec2| {
            let mut rng = StdRng::seed_from_u64(9);
            let evaluated: Vec<_> = frames
                .iter()
                .map(|pair| {
                    let pose = Iso2::new(
                        pair.true_relative.yaw(),
                        pair.true_relative.translation() + offset,
                    );
                    exp.run_frame(pair, &pose, &mut rng)
                })
                .collect();
            average_precision(&evaluated, 0.5).ap
        };
        let clean = ap_for(Vec2::ZERO);
        let bad = ap_for(Vec2::new(5.0, 3.0));
        prop_assert!(bad <= clean + 0.15, "error helped: clean {clean:.2}, bad {bad:.2}");
    }
}

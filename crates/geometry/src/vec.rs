//! Plain 2-D and 3-D Cartesian vectors.
//!
//! These are deliberately minimal value types (no SIMD, no generics): the
//! simulator and the matching pipeline only need a handful of operations and
//! the explicit field access keeps the numeric code readable.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector / point on the ground (bird's-eye-view) plane.
///
/// # Example
///
/// ```
/// use bba_geometry::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v.perp().dot(v), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Cartesian x (forward in the ego frame, metres).
    pub x: f64,
    /// Cartesian y (left in the ego frame, metres).
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at `angle` radians from the +x axis.
    ///
    /// ```
    /// use bba_geometry::Vec2;
    /// let v = Vec2::from_angle(std::f64::consts::FRAC_PI_2);
    /// assert!((v - Vec2::new(0.0, 1.0)).norm() < 1e-12);
    /// ```
    #[inline]
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// 2-D cross product (the z component of the 3-D cross product).
    #[inline]
    pub fn cross(self, rhs: Vec2) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (cheaper than [`Vec2::norm`]).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec2) -> f64 {
        (self - rhs).norm()
    }

    /// Counter-clockwise perpendicular vector `(-y, x)`.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// The angle of the vector from the +x axis, in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Returns the vector scaled to unit length, or `None` for (near-)zero
    /// vectors.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x.min(rhs.x), self.y.min(rhs.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x.max(rhs.x), self.y.max(rhs.y))
    }

    /// Linear interpolation: `self` at `t = 0`, `rhs` at `t = 1`.
    #[inline]
    pub fn lerp(self, rhs: Vec2, t: f64) -> Vec2 {
        self + (rhs - self) * t
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    fn from(v: Vec2) -> Self {
        (v.x, v.y)
    }
}

/// A 3-D vector / point (metres).
///
/// # Example
///
/// ```
/// use bba_geometry::Vec3;
/// let p = Vec3::new(1.0, 2.0, 3.0);
/// assert_eq!(p.xy().x, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// Cartesian x (metres).
    pub x: f64,
    /// Cartesian y (metres).
    pub y: f64,
    /// Cartesian z / height (metres).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Ground-plane projection, dropping z.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Lifts a ground-plane point to 3-D at height `z`.
    #[inline]
    pub fn from_xy(v: Vec2, z: f64) -> Vec3 {
        Vec3::new(v.x, v.y, z)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Returns the vector scaled to unit length, or `None` for (near-)zero
    /// vectors.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// True when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl From<(f64, f64, f64)> for Vec3 {
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Vec3::new(x, y, z)
    }
}

impl From<Vec3> for (f64, f64, f64) {
    fn from(v: Vec3) -> Self {
        (v.x, v.y, v.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn vec2_dot_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn vec2_rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!((v - Vec2::new(0.0, 1.0)).norm() < 1e-12);
        let w = Vec2::new(1.0, 0.0).rotated(PI);
        assert!((w - Vec2::new(-1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn vec2_angle_roundtrip() {
        for k in -6..=6 {
            let a = k as f64 * 0.5;
            let wrapped = Vec2::from_angle(a).angle();
            let diff = (wrapped - a).rem_euclid(2.0 * PI);
            let diff = diff.min(2.0 * PI - diff);
            assert!(diff < 1e-12, "angle {a} wrapped to {wrapped}");
        }
    }

    #[test]
    fn vec2_normalized_zero_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let n = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vec2_lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn vec3_cross_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn vec3_projection_and_lift() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(p.xy(), Vec2::new(1.0, 2.0));
        assert_eq!(Vec3::from_xy(p.xy(), 5.0), Vec3::new(1.0, 2.0, 5.0));
    }

    #[test]
    fn vec3_norm_pythagoras() {
        assert!((Vec3::new(2.0, 3.0, 6.0).norm() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn tuple_conversions() {
        let v: Vec2 = (1.0, 2.0).into();
        let t: (f64, f64) = v.into();
        assert_eq!(t, (1.0, 2.0));
        let w: Vec3 = (1.0, 2.0, 3.0).into();
        let u: (f64, f64, f64) = w.into();
        assert_eq!(u, (1.0, 2.0, 3.0));
    }
}

//! Convex-polygon clipping and rotated-rectangle IoU.
//!
//! The AP@IoU evaluation of the paper's Table I and the late-fusion NMS both
//! need the intersection-over-union of *oriented* BEV rectangles, which in
//! turn needs convex polygon intersection (Sutherland–Hodgman clipping).

use crate::boxes::BevBox;
use crate::vec::Vec2;

/// Signed area of a simple polygon (positive for counter-clockwise winding).
///
/// ```
/// use bba_geometry::{convex_area, Vec2};
/// let square = [
///     Vec2::new(0.0, 0.0),
///     Vec2::new(2.0, 0.0),
///     Vec2::new(2.0, 2.0),
///     Vec2::new(0.0, 2.0),
/// ];
/// assert!((convex_area(&square) - 4.0).abs() < 1e-12);
/// ```
pub fn convex_area(poly: &[Vec2]) -> f64 {
    if poly.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..poly.len() {
        let a = poly[i];
        let b = poly[(i + 1) % poly.len()];
        acc += a.cross(b);
    }
    0.5 * acc
}

/// Clips the convex `subject` polygon against the convex `clip` polygon
/// (Sutherland–Hodgman). Both polygons must wind counter-clockwise.
///
/// Returns the intersection polygon (may be empty).
pub fn intersect_convex(subject: &[Vec2], clip: &[Vec2]) -> Vec<Vec2> {
    if subject.len() < 3 || clip.len() < 3 {
        return Vec::new();
    }
    let mut output: Vec<Vec2> = subject.to_vec();
    for i in 0..clip.len() {
        if output.is_empty() {
            break;
        }
        let a = clip[i];
        let b = clip[(i + 1) % clip.len()];
        let edge = b - a;
        let input = std::mem::take(&mut output);
        let inside = |p: Vec2| edge.cross(p - a) >= -1e-12;
        for j in 0..input.len() {
            let cur = input[j];
            let prev = input[(j + input.len() - 1) % input.len()];
            let cur_in = inside(cur);
            let prev_in = inside(prev);
            if cur_in {
                if !prev_in {
                    if let Some(x) = line_intersection(prev, cur, a, b) {
                        output.push(x);
                    }
                }
                output.push(cur);
            } else if prev_in {
                if let Some(x) = line_intersection(prev, cur, a, b) {
                    output.push(x);
                }
            }
        }
    }
    output
}

/// Intersection of segment `p0-p1` with the infinite line through `a-b`.
fn line_intersection(p0: Vec2, p1: Vec2, a: Vec2, b: Vec2) -> Option<Vec2> {
    let d = p1 - p0;
    let e = b - a;
    let denom = d.cross(e);
    if denom.abs() < 1e-300 {
        return None; // parallel
    }
    let t = (a - p0).cross(e) / denom;
    Some(p0 + d * t)
}

/// Area of the intersection of two oriented rectangles.
pub fn obb_intersection_area(a: &BevBox, b: &BevBox) -> f64 {
    // Quick reject via circumscribed circles.
    let r = a.circumradius() + b.circumradius();
    if a.center.distance(b.center) > r {
        return 0.0;
    }
    let inter = intersect_convex(&a.corners(), &b.corners());
    convex_area(&inter).max(0.0)
}

/// Intersection-over-union of two oriented rectangles, in `[0, 1]`.
///
/// ```
/// use bba_geometry::{obb_iou, BevBox, Vec2};
/// let a = BevBox::new(Vec2::ZERO, Vec2::new(2.0, 2.0), 0.0);
/// let b = BevBox::new(Vec2::new(1.0, 0.0), Vec2::new(2.0, 2.0), 0.0);
/// assert!((obb_iou(&a, &b) - 1.0 / 3.0).abs() < 1e-9);
/// ```
pub fn obb_iou(a: &BevBox, b: &BevBox) -> f64 {
    let inter = obb_intersection_area(a, b);
    if inter <= 0.0 {
        return 0.0;
    }
    let union = a.area() + b.area() - inter;
    (inter / union).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    fn unit_square_at(x: f64, y: f64) -> BevBox {
        BevBox::new(Vec2::new(x, y), Vec2::new(1.0, 1.0), 0.0)
    }

    #[test]
    fn area_of_triangle() {
        let tri = [Vec2::new(0.0, 0.0), Vec2::new(2.0, 0.0), Vec2::new(0.0, 2.0)];
        assert!((convex_area(&tri) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn area_degenerate_is_zero() {
        assert_eq!(convex_area(&[]), 0.0);
        assert_eq!(convex_area(&[Vec2::ZERO, Vec2::new(1.0, 1.0)]), 0.0);
    }

    #[test]
    fn clip_disjoint_is_empty() {
        let a = unit_square_at(0.0, 0.0);
        let b = unit_square_at(5.0, 5.0);
        assert!(intersect_convex(&a.corners(), &b.corners()).is_empty());
        assert_eq!(obb_iou(&a, &b), 0.0);
    }

    #[test]
    fn clip_contained_returns_inner() {
        let outer = BevBox::new(Vec2::ZERO, Vec2::new(10.0, 10.0), 0.0);
        let inner = BevBox::new(Vec2::new(1.0, 1.0), Vec2::new(2.0, 2.0), 0.3);
        let inter = obb_intersection_area(&outer, &inner);
        assert!((inter - inner.area()).abs() < 1e-9);
        let iou = obb_iou(&outer, &inner);
        assert!((iou - inner.area() / outer.area()).abs() < 1e-9);
    }

    #[test]
    fn half_overlap_axis_aligned() {
        let a = unit_square_at(0.0, 0.0);
        let b = unit_square_at(0.5, 0.0);
        let inter = obb_intersection_area(&a, &b);
        assert!((inter - 0.5).abs() < 1e-9);
        assert!((obb_iou(&a, &b) - 0.5 / 1.5).abs() < 1e-9);
    }

    #[test]
    fn rotated_square_intersection_is_octagon() {
        // A unit square and the same square rotated 45° about its centre:
        // intersection is a regular octagon of area 2(√2 − 1).
        let a = BevBox::new(Vec2::ZERO, Vec2::new(1.0, 1.0), 0.0);
        let b = BevBox::new(Vec2::ZERO, Vec2::new(1.0, 1.0), FRAC_PI_4);
        let inter = obb_intersection_area(&a, &b);
        let expect = 2.0 * (2f64.sqrt() - 1.0);
        assert!((inter - expect).abs() < 1e-9, "{inter} vs {expect}");
    }

    #[test]
    fn iou_is_symmetric_and_bounded() {
        let a = BevBox::new(Vec2::new(0.3, -0.2), Vec2::new(4.5, 1.9), 0.2);
        let b = BevBox::new(Vec2::new(1.0, 0.5), Vec2::new(4.2, 1.8), -0.4);
        let ab = obb_iou(&a, &b);
        let ba = obb_iou(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn touching_squares_have_zero_iou() {
        let a = unit_square_at(0.0, 0.0);
        let b = unit_square_at(1.0, 0.0);
        assert!(obb_iou(&a, &b) < 1e-9);
    }

    #[test]
    fn iou_decreases_with_offset() {
        let a = unit_square_at(0.0, 0.0);
        let mut last = 1.0;
        for k in 1..=9 {
            let b = unit_square_at(k as f64 * 0.1, 0.0);
            let iou = obb_iou(&a, &b);
            assert!(iou < last, "IoU must decrease monotonically");
            last = iou;
        }
    }
}

//! Angle utilities: wrapping, differences and degree/radian newtypes.
//!
//! Pose-recovery accuracy in the paper is reported as an absolute *angular
//! difference* (rotation error), so correct wrapping at the ±π seam matters
//! throughout the codebase.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;
use std::fmt;

/// Wraps an angle into `(-π, π]`.
///
/// ```
/// use bba_geometry::normalize_angle;
/// use std::f64::consts::PI;
/// assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((normalize_angle(-3.5 * PI) - 0.5 * PI).abs() < 1e-12);
/// ```
pub fn normalize_angle(a: f64) -> f64 {
    let mut r = a.rem_euclid(2.0 * PI);
    if r > PI {
        r -= 2.0 * PI;
    }
    r
}

/// The signed smallest difference `a - b`, wrapped into `(-π, π]`.
///
/// The absolute value of this is the paper's **rotation error** metric.
///
/// ```
/// use bba_geometry::angle_diff;
/// use std::f64::consts::PI;
/// // 179° and -179° are only 2° apart.
/// let d = angle_diff(179f64.to_radians(), -179f64.to_radians());
/// assert!((d.abs() - 2f64.to_radians()).abs() < 1e-12);
/// ```
pub fn angle_diff(a: f64, b: f64) -> f64 {
    normalize_angle(a - b)
}

/// An angle expressed in radians (newtype for API clarity).
///
/// ```
/// use bba_geometry::{Degrees, Radians};
/// let r = Radians(std::f64::consts::PI);
/// assert!((r.to_degrees().0 - 180.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Radians(pub f64);

/// An angle expressed in degrees (newtype for API clarity).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Degrees(pub f64);

impl Radians {
    /// Converts to degrees.
    pub fn to_degrees(self) -> Degrees {
        Degrees(self.0.to_degrees())
    }

    /// Wraps into `(-π, π]`.
    pub fn normalized(self) -> Radians {
        Radians(normalize_angle(self.0))
    }
}

impl Degrees {
    /// Converts to radians.
    pub fn to_radians(self) -> Radians {
        Radians(self.0.to_radians())
    }
}

impl From<Degrees> for Radians {
    fn from(d: Degrees) -> Self {
        d.to_radians()
    }
}

impl From<Radians> for Degrees {
    fn from(r: Radians) -> Self {
        r.to_degrees()
    }
}

impl fmt::Display for Radians {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rad", self.0)
    }
}

impl fmt::Display for Degrees {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}°", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_keeps_range() {
        for k in -20..20 {
            let a = k as f64 * 0.7;
            let n = normalize_angle(a);
            assert!(n > -PI - 1e-12 && n <= PI + 1e-12, "{a} -> {n}");
            // Same direction.
            assert!(
                ((n - a).rem_euclid(2.0 * PI)).min(2.0 * PI - (n - a).rem_euclid(2.0 * PI)) < 1e-9
            );
        }
    }

    #[test]
    fn normalize_pi_maps_to_pi() {
        assert!((normalize_angle(PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(-PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn diff_is_antisymmetric() {
        let a = 2.5;
        let b = -1.2;
        assert!((angle_diff(a, b) + angle_diff(b, a)).abs() < 1e-12);
    }

    #[test]
    fn diff_across_seam_is_small() {
        let d = angle_diff(PI - 0.01, -(PI - 0.01));
        assert!((d + 0.02).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn degree_radian_roundtrip() {
        let d = Degrees(123.456);
        let back: Degrees = d.to_radians().into();
        assert!((back.0 - d.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Degrees(90.0)), "90°");
        assert_eq!(format!("{}", Radians(1.5)), "1.5 rad");
    }
}

//! Closed-form least-squares rigid 2-D fit from point correspondences.
//!
//! Both RANSAC stages of BB-Align ("estimating the transformation given
//! source and destination points" — Algorithm 1, lines 11 and 14) reduce to
//! this primitive: find the rotation + translation minimising
//! `Σᵢ wᵢ ‖R·sᵢ + t − dᵢ‖²`.
//!
//! In 2-D the optimum has a closed form without an SVD: demean both point
//! sets, then `θ* = atan2(Σ wᵢ (sᵢ × dᵢ), Σ wᵢ (sᵢ · dᵢ))` and
//! `t* = d̄ − R(θ*)·s̄` (the planar specialisation of Arun/Umeyama
//! least-squares fitting of two point sets, paper reference \[17\]).

use crate::iso::Iso2;
use crate::vec::Vec2;
use std::error::Error;
use std::fmt;

/// Error returned when a rigid fit is impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RigidFitError {
    /// Fewer than two correspondences (rotation unobservable).
    TooFewPoints {
        /// Number of correspondences supplied.
        got: usize,
    },
    /// Source and destination slices differ in length.
    LengthMismatch {
        /// Length of the source slice.
        src: usize,
        /// Length of the destination slice.
        dst: usize,
    },
    /// All points coincide (after weighting), so rotation is unobservable.
    Degenerate,
}

impl fmt::Display for RigidFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RigidFitError::TooFewPoints { got } => {
                write!(f, "rigid fit needs at least 2 correspondences, got {got}")
            }
            RigidFitError::LengthMismatch { src, dst } => {
                write!(f, "source has {src} points but destination has {dst}")
            }
            RigidFitError::Degenerate => {
                write!(f, "correspondences are degenerate (coincident points)")
            }
        }
    }
}

impl Error for RigidFitError {}

/// Least-squares rigid transform mapping `src[i]` onto `dst[i]`.
///
/// # Errors
///
/// Returns [`RigidFitError`] when the slices mismatch, have fewer than two
/// points, or are rotationally degenerate.
///
/// # Example
///
/// ```
/// use bba_geometry::{fit_rigid_2d, Iso2, Vec2};
/// let truth = Iso2::new(0.7, Vec2::new(3.0, -1.0));
/// let src = [Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0), Vec2::new(0.0, 2.0)];
/// let dst: Vec<Vec2> = src.iter().map(|&p| truth.apply(p)).collect();
/// let fit = fit_rigid_2d(&src, &dst)?;
/// assert!(fit.approx_eq(&truth, 1e-9, 1e-9));
/// # Ok::<(), bba_geometry::RigidFitError>(())
/// ```
pub fn fit_rigid_2d(src: &[Vec2], dst: &[Vec2]) -> Result<Iso2, RigidFitError> {
    weighted_fit_rigid_2d(src, dst, None)
}

/// Weighted variant of [`fit_rigid_2d`].
///
/// `weights`, when provided, must match the point count; non-positive
/// weights effectively drop the pair.
///
/// # Errors
///
/// Same conditions as [`fit_rigid_2d`]; a weight slice of the wrong length
/// is reported as [`RigidFitError::LengthMismatch`].
pub fn weighted_fit_rigid_2d(
    src: &[Vec2],
    dst: &[Vec2],
    weights: Option<&[f64]>,
) -> Result<Iso2, RigidFitError> {
    if src.len() != dst.len() {
        return Err(RigidFitError::LengthMismatch { src: src.len(), dst: dst.len() });
    }
    if let Some(w) = weights {
        if w.len() != src.len() {
            return Err(RigidFitError::LengthMismatch { src: src.len(), dst: w.len() });
        }
    }
    if src.len() < 2 {
        return Err(RigidFitError::TooFewPoints { got: src.len() });
    }

    let w_at = |i: usize| weights.map_or(1.0, |w| w[i].max(0.0));
    let total_w: f64 = (0..src.len()).map(w_at).sum();
    if total_w <= 1e-300 {
        return Err(RigidFitError::Degenerate);
    }

    let mut s_mean = Vec2::ZERO;
    let mut d_mean = Vec2::ZERO;
    for i in 0..src.len() {
        let w = w_at(i);
        s_mean += src[i] * w;
        d_mean += dst[i] * w;
    }
    s_mean = s_mean / total_w;
    d_mean = d_mean / total_w;

    let mut dot = 0.0;
    let mut cross = 0.0;
    let mut spread = 0.0;
    for i in 0..src.len() {
        let w = w_at(i);
        let a = src[i] - s_mean;
        let b = dst[i] - d_mean;
        dot += w * a.dot(b);
        cross += w * a.cross(b);
        spread += w * a.norm_sq();
    }
    if spread < 1e-18 {
        return Err(RigidFitError::Degenerate);
    }

    let yaw = cross.atan2(dot);
    let t = d_mean - s_mean.rotated(yaw);
    Ok(Iso2::new(yaw, t))
}

/// Two-correspondence special case of [`fit_rigid_2d`], bit-identical to
/// `fit_rigid_2d(&[s0, s1], &[d0, d1])` but without slices or the generic
/// accumulation loop — the shape RANSAC's minimal-sample hypothesis fit
/// takes thousands of times per call.
///
/// The accumulation order below deliberately mirrors the general loop
/// (start from zero, add the two terms in index order) so the returned
/// transform has the exact same bits; `crates/features` pins that
/// equivalence under proptest.
///
/// # Errors
///
/// Returns [`RigidFitError::Degenerate`] when the two source points
/// (near-)coincide; length/count errors cannot occur by construction.
#[inline]
pub fn fit_rigid_2pt(s0: Vec2, s1: Vec2, d0: Vec2, d1: Vec2) -> Result<Iso2, RigidFitError> {
    let total_w = 2.0;
    let mut s_mean = Vec2::ZERO;
    let mut d_mean = Vec2::ZERO;
    s_mean += s0;
    d_mean += d0;
    s_mean += s1;
    d_mean += d1;
    s_mean = s_mean / total_w;
    d_mean = d_mean / total_w;

    let mut dot = 0.0;
    let mut cross = 0.0;
    let mut spread = 0.0;
    let a0 = s0 - s_mean;
    let b0 = d0 - d_mean;
    dot += a0.dot(b0);
    cross += a0.cross(b0);
    spread += a0.norm_sq();
    let a1 = s1 - s_mean;
    let b1 = d1 - d_mean;
    dot += a1.dot(b1);
    cross += a1.cross(b1);
    spread += a1.norm_sq();
    if spread < 1e-18 {
        return Err(RigidFitError::Degenerate);
    }

    let yaw = cross.atan2(dot);
    let t = d_mean - s_mean.rotated(yaw);
    Ok(Iso2::new(yaw, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_all(t: &Iso2, pts: &[Vec2]) -> Vec<Vec2> {
        pts.iter().map(|&p| t.apply(p)).collect()
    }

    #[test]
    fn exact_recovery_on_clean_data() {
        let truth = Iso2::new(-1.9, Vec2::new(12.0, -7.5));
        let src =
            [Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0), Vec2::new(3.0, 8.0), Vec2::new(-5.0, 2.0)];
        let dst = apply_all(&truth, &src);
        let fit = fit_rigid_2d(&src, &dst).unwrap();
        assert!(fit.approx_eq(&truth, 1e-10, 1e-10));
    }

    #[test]
    fn two_points_suffice() {
        let truth = Iso2::new(0.4, Vec2::new(1.0, 1.0));
        let src = [Vec2::new(0.0, 0.0), Vec2::new(5.0, 0.0)];
        let dst = apply_all(&truth, &src);
        let fit = fit_rigid_2d(&src, &dst).unwrap();
        assert!(fit.approx_eq(&truth, 1e-10, 1e-10));
    }

    #[test]
    fn least_squares_averages_noise() {
        // Symmetric noise around the true transform cancels in the estimate.
        let truth = Iso2::new(0.0, Vec2::ZERO);
        let src =
            [Vec2::new(1.0, 0.0), Vec2::new(-1.0, 0.0), Vec2::new(0.0, 1.0), Vec2::new(0.0, -1.0)];
        let eps = 0.05;
        let dst = [
            Vec2::new(1.0 + eps, 0.0),
            Vec2::new(-1.0 - eps, 0.0),
            Vec2::new(0.0, 1.0 + eps),
            Vec2::new(0.0, -1.0 - eps),
        ];
        let fit = fit_rigid_2d(&src, &dst).unwrap();
        assert!(fit.approx_eq(&truth, 1e-10, 1e-10));
    }

    #[test]
    fn weights_select_inliers() {
        let truth = Iso2::new(0.8, Vec2::new(-2.0, 3.0));
        let src = [
            Vec2::new(0.0, 0.0),
            Vec2::new(4.0, 0.0),
            Vec2::new(0.0, 4.0),
            Vec2::new(100.0, 100.0), // outlier pair
        ];
        let mut dst = apply_all(&truth, &src);
        dst[3] = Vec2::new(-500.0, 200.0);
        let w = [1.0, 1.0, 1.0, 0.0];
        let fit = weighted_fit_rigid_2d(&src, &dst, Some(&w)).unwrap();
        assert!(fit.approx_eq(&truth, 1e-9, 1e-9));
    }

    #[test]
    fn mismatched_lengths_error() {
        let e = fit_rigid_2d(&[Vec2::ZERO], &[Vec2::ZERO, Vec2::ZERO]).unwrap_err();
        assert_eq!(e, RigidFitError::LengthMismatch { src: 1, dst: 2 });
    }

    #[test]
    fn too_few_points_error() {
        let e = fit_rigid_2d(&[Vec2::ZERO], &[Vec2::ZERO]).unwrap_err();
        assert_eq!(e, RigidFitError::TooFewPoints { got: 1 });
    }

    #[test]
    fn coincident_points_error() {
        let p = Vec2::new(1.0, 1.0);
        let e = fit_rigid_2d(&[p, p, p], &[p, p, p]).unwrap_err();
        assert_eq!(e, RigidFitError::Degenerate);
    }

    #[test]
    fn two_point_fit_matches_general_fit_bit_for_bit() {
        // A spread of pair geometries, including negative coords, tiny
        // offsets and signed zeros — the bits must agree exactly.
        let pairs = [
            (Vec2::new(0.0, 0.0), Vec2::new(5.0, 0.0), Vec2::new(1.0, 1.0), Vec2::new(4.9, 2.3)),
            (
                Vec2::new(-3.25, 7.5),
                Vec2::new(12.0, -0.125),
                Vec2::new(8.0, 8.0),
                Vec2::new(-1.0, 2.0),
            ),
            (
                Vec2::new(1e-7, -1e-7),
                Vec2::new(-2e-7, 3e-7),
                Vec2::new(0.5, 0.5),
                Vec2::new(0.25, -0.75),
            ),
            (
                Vec2::new(-0.0, 0.0),
                Vec2::new(0.0, -0.0),
                Vec2::new(-0.0, -0.0),
                Vec2::new(1.0, 1.0),
            ),
            (
                Vec2::new(100.5, -200.25),
                Vec2::new(-300.125, 400.0),
                Vec2::new(7.0, 9.0),
                Vec2::new(-11.0, 13.0),
            ),
        ];
        for (s0, s1, d0, d1) in pairs {
            let general = fit_rigid_2d(&[s0, s1], &[d0, d1]);
            let special = fit_rigid_2pt(s0, s1, d0, d1);
            match (general, special) {
                (Ok(g), Ok(s)) => {
                    assert_eq!(g.yaw().to_bits(), s.yaw().to_bits());
                    assert_eq!(g.translation().x.to_bits(), s.translation().x.to_bits());
                    assert_eq!(g.translation().y.to_bits(), s.translation().y.to_bits());
                }
                (g, s) => assert_eq!(g, s),
            }
        }
    }

    #[test]
    fn two_point_fit_coincident_points_degenerate() {
        let p = Vec2::new(2.0, 3.0);
        assert_eq!(
            fit_rigid_2pt(p, p, Vec2::ZERO, Vec2::new(1.0, 0.0)),
            Err(RigidFitError::Degenerate)
        );
        assert_eq!(
            fit_rigid_2d(&[p, p], &[Vec2::ZERO, Vec2::new(1.0, 0.0)]),
            Err(RigidFitError::Degenerate)
        );
    }

    #[test]
    fn errors_are_displayable() {
        let msgs = [
            RigidFitError::TooFewPoints { got: 1 }.to_string(),
            RigidFitError::LengthMismatch { src: 1, dst: 2 }.to_string(),
            RigidFitError::Degenerate.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}

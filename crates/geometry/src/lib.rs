//! Rigid-body geometry primitives for the BB-Align reproduction.
//!
//! This crate is the foundation of the workspace. It provides:
//!
//! * [`Vec2`] / [`Vec3`] — plain Cartesian vectors.
//! * [`Iso2`] — a rigid transform on the ground plane (yaw + translation),
//!   the `(α, t_x, t_y)` triple that BB-Align estimates.
//! * [`Iso3`] — the 3-D homogeneous transform of the paper's Eq. (1)–(3),
//!   lifted from an [`Iso2`] with fixed roll/pitch/`t_z`.
//! * [`BevBox`] — an oriented bounding rectangle in bird's-eye view with the
//!   *consistent corner ordering* that stage 2 of BB-Align relies on.
//! * [`Box3`] — a 3-D object box that projects onto a [`BevBox`].
//! * Convex-polygon clipping and rotated-rectangle IoU ([`polygon`]).
//! * The closed-form least-squares rigid fit used by RANSAC ([`fit`]).
//!
//! # Example
//!
//! ```
//! use bba_geometry::{Iso2, Vec2};
//!
//! // The "other" car is 10 m ahead of the ego car and rotated 90°.
//! let other_to_ego = Iso2::new(std::f64::consts::FRAC_PI_2, Vec2::new(10.0, 0.0));
//! let p_other = Vec2::new(1.0, 0.0); // a point seen by the other car
//! let p_ego = other_to_ego.apply(p_other);
//! assert!((p_ego - Vec2::new(10.0, 1.0)).norm() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod angle;
pub mod boxes;
pub mod fit;
pub mod iso;
pub mod polygon;
pub mod vec;

pub use angle::{angle_diff, normalize_angle, Degrees, Radians};
pub use boxes::{BevBox, Box3};
pub use fit::{fit_rigid_2d, fit_rigid_2pt, weighted_fit_rigid_2d, RigidFitError};
pub use iso::{Iso2, Iso3};
pub use polygon::{convex_area, intersect_convex, obb_intersection_area, obb_iou};
pub use vec::{Vec2, Vec3};

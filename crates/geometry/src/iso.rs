//! Rigid transforms: SE(2) on the ground plane and the paper's 3-D lift.
//!
//! BB-Align estimates a 3-degree-of-freedom transform `(α, t_x, t_y)` — an
//! [`Iso2`] — and lifts it to the 4×4 homogeneous matrix of the paper's
//! Eq. (1) with pitch, roll and `t_z` held at pre-defined constants
//! ([`Iso3::from_iso2`]).

use crate::angle::normalize_angle;
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rigid transform on the ground plane: rotation by `yaw` followed by
/// `translation`.
///
/// This is the `(α, t_x, t_y)` triple of the paper. `apply` maps a point from
/// the *source* frame (the other car) into the *destination* frame (the ego
/// car).
///
/// # Example
///
/// ```
/// use bba_geometry::{Iso2, Vec2};
/// let t = Iso2::new(0.3, Vec2::new(1.0, 2.0));
/// let p = Vec2::new(5.0, -1.0);
/// let roundtrip = t.inverse().apply(t.apply(p));
/// assert!((roundtrip - p).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Iso2 {
    /// Rotation angle `α` in radians, wrapped to `(-π, π]`.
    yaw: f64,
    /// Translation `(t_x, t_y)` in metres.
    translation: Vec2,
}

impl Iso2 {
    /// The identity transform.
    pub const IDENTITY: Iso2 = Iso2 { yaw: 0.0, translation: Vec2::ZERO };

    /// Creates a transform from rotation `yaw` (radians) and `translation`.
    pub fn new(yaw: f64, translation: Vec2) -> Self {
        Iso2 { yaw: normalize_angle(yaw), translation }
    }

    /// Creates a pure translation.
    pub fn from_translation(translation: Vec2) -> Self {
        Iso2 { yaw: 0.0, translation }
    }

    /// Creates a pure rotation about the origin.
    pub fn from_yaw(yaw: f64) -> Self {
        Iso2::new(yaw, Vec2::ZERO)
    }

    /// A vehicle pose: position + heading. Identical representation, reads
    /// better at call sites that deal in world poses.
    pub fn from_pose(position: Vec2, heading: f64) -> Self {
        Iso2::new(heading, position)
    }

    /// Rotation angle `α` in radians, in `(-π, π]`.
    #[inline]
    pub fn yaw(&self) -> f64 {
        self.yaw
    }

    /// Translation `(t_x, t_y)` in metres.
    #[inline]
    pub fn translation(&self) -> Vec2 {
        self.translation
    }

    /// Applies the transform to a point: `R(yaw)·p + t`.
    #[inline]
    pub fn apply(&self, p: Vec2) -> Vec2 {
        p.rotated(self.yaw) + self.translation
    }

    /// Applies only the rotation part (for direction vectors).
    #[inline]
    pub fn rotate(&self, v: Vec2) -> Vec2 {
        v.rotated(self.yaw)
    }

    /// Composition: `self ∘ rhs` (apply `rhs` first, then `self`).
    ///
    /// This is the paper's `T_2D = T_box × T_bv` (Algorithm 1, line 15).
    pub fn compose(&self, rhs: &Iso2) -> Iso2 {
        Iso2::new(self.yaw + rhs.yaw, self.apply(rhs.translation))
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Iso2 {
        let inv_yaw = -self.yaw;
        Iso2::new(inv_yaw, (-self.translation).rotated(inv_yaw))
    }

    /// The relative transform mapping points in the `other` frame to this
    /// ("ego") frame, when both are poses expressed in a common world frame.
    ///
    /// This is the ground truth the estimators are compared against:
    /// `T_other→ego = T_ego⁻¹ ∘ T_other`.
    pub fn relative_from(&self, other: &Iso2) -> Iso2 {
        self.inverse().compose(other)
    }

    /// Translation error (Euclidean, metres) and rotation error (absolute
    /// radians) of `self` w.r.t. a ground-truth transform.
    pub fn error_to(&self, truth: &Iso2) -> (f64, f64) {
        let dt = (self.translation - truth.translation).norm();
        let dr = crate::angle::angle_diff(self.yaw, truth.yaw).abs();
        (dt, dr)
    }

    /// Row-major 3×3 homogeneous matrix representation.
    pub fn to_matrix(&self) -> [[f64; 3]; 3] {
        let (s, c) = self.yaw.sin_cos();
        [[c, -s, self.translation.x], [s, c, self.translation.y], [0.0, 0.0, 1.0]]
    }

    /// Reconstructs the transform from a row-major homogeneous matrix.
    ///
    /// The rotation block is re-orthogonalised via `atan2`, so mildly noisy
    /// matrices (e.g. least-squares outputs) are accepted.
    pub fn from_matrix(m: &[[f64; 3]; 3]) -> Iso2 {
        let yaw = m[1][0].atan2(m[0][0]);
        Iso2::new(yaw, Vec2::new(m[0][2], m[1][2]))
    }

    /// True when the transform is close to `rhs` within the given tolerances.
    pub fn approx_eq(&self, rhs: &Iso2, trans_tol: f64, rot_tol: f64) -> bool {
        let (dt, dr) = self.error_to(rhs);
        dt <= trans_tol && dr <= rot_tol
    }
}

impl Default for Iso2 {
    fn default() -> Self {
        Iso2::IDENTITY
    }
}

impl fmt::Display for Iso2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Iso2(α={:.3}°, t=({:.3}, {:.3}) m)",
            self.yaw.to_degrees(),
            self.translation.x,
            self.translation.y
        )
    }
}

/// The 3-D homogeneous rigid transform of the paper's Eq. (1)–(2).
///
/// Stored as a full 4×4 row-major matrix so Eq. (3) — transforming received
/// perception points into the ego view — is a direct matrix product.
///
/// # Example
///
/// ```
/// use bba_geometry::{Iso2, Iso3, Vec2, Vec3};
/// let t2 = Iso2::new(0.5, Vec2::new(3.0, -2.0));
/// let t3 = Iso3::from_iso2(&t2, 0.0);
/// let p = Vec3::new(1.0, 1.0, 0.7);
/// // The ground-plane part agrees with the 2-D transform; z is preserved.
/// let q = t3.apply(p);
/// assert!((q.xy() - t2.apply(p.xy())).norm() < 1e-12);
/// assert!((q.z - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Iso3 {
    m: [[f64; 4]; 4],
}

impl Iso3 {
    /// The identity transform.
    pub const IDENTITY: Iso3 = Iso3 {
        m: [[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0], [0.0, 0.0, 1.0, 0.0], [0.0, 0.0, 0.0, 1.0]],
    };

    /// Builds the full Euler-angle transform of Eq. (1)–(2) with yaw `α`,
    /// pitch `β`, roll `γ` and translation `(t_x, t_y, t_z)`.
    pub fn from_euler(alpha: f64, beta: f64, gamma: f64, t: Vec3) -> Iso3 {
        let (sa, ca) = alpha.sin_cos();
        let (sb, cb) = beta.sin_cos();
        let (sg, cg) = gamma.sin_cos();
        // Rotation matrix of the paper's Eq. (2): R_z(α)·R_y(β)·R_x(γ).
        let m = [
            [ca * cb, ca * sb * sg - sa * cg, sa * sg + ca * sb * cg, t.x],
            [sa * cb, sa * sb * sg + ca * cg, cg * sa * sb - ca * sg, t.y],
            [-sb, cb * sg, cb * cg, t.z],
            [0.0, 0.0, 0.0, 1.0],
        ];
        Iso3 { m }
    }

    /// Lifts a 2-D recovered transform to 3-D with pitch = roll = 0 and the
    /// supplied constant `t_z` (the paper's "pre-defined constant values").
    pub fn from_iso2(t: &Iso2, t_z: f64) -> Iso3 {
        Iso3::from_euler(t.yaw(), 0.0, 0.0, Vec3::from_xy(t.translation(), t_z))
    }

    /// The row-major 4×4 matrix.
    pub fn matrix(&self) -> &[[f64; 4]; 4] {
        &self.m
    }

    /// Applies the transform to a point — the paper's Eq. (3).
    #[inline]
    pub fn apply(&self, p: Vec3) -> Vec3 {
        let m = &self.m;
        Vec3::new(
            m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z + m[0][3],
            m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z + m[1][3],
            m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z + m[2][3],
        )
    }

    /// Composition: `self ∘ rhs` (apply `rhs` first).
    pub fn compose(&self, rhs: &Iso3) -> Iso3 {
        let mut out = [[0.0; 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..4).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        Iso3 { m: out }
    }

    /// The inverse of a rigid transform (transpose of the rotation block).
    pub fn inverse(&self) -> Iso3 {
        let r = &self.m;
        let mut out = [[0.0; 4]; 4];
        // Rᵀ
        for i in 0..3 {
            for j in 0..3 {
                out[i][j] = r[j][i];
            }
        }
        // -Rᵀ·t
        for i in 0..3 {
            out[i][3] = -(0..3).map(|k| r[k][i] * r[k][3]).sum::<f64>();
        }
        out[3][3] = 1.0;
        Iso3 { m: out }
    }

    /// Extracts the ground-plane part `(α, t_x, t_y)` assuming a yaw-only
    /// rotation (the V2V ground-vehicle assumption).
    pub fn to_iso2(&self) -> Iso2 {
        let yaw = self.m[1][0].atan2(self.m[0][0]);
        Iso2::new(yaw, Vec2::new(self.m[0][3], self.m[1][3]))
    }
}

impl Default for Iso3 {
    fn default() -> Self {
        Iso3::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_is_noop() {
        let p = Vec2::new(3.0, -4.0);
        assert_eq!(Iso2::IDENTITY.apply(p), p);
    }

    #[test]
    fn apply_rotates_then_translates() {
        let t = Iso2::new(FRAC_PI_2, Vec2::new(10.0, 0.0));
        let q = t.apply(Vec2::new(1.0, 0.0));
        assert!((q - Vec2::new(10.0, 1.0)).norm() < 1e-12);
    }

    #[test]
    fn compose_matches_sequential_apply() {
        let a = Iso2::new(0.4, Vec2::new(1.0, 2.0));
        let b = Iso2::new(-1.1, Vec2::new(-3.0, 0.5));
        let p = Vec2::new(0.7, -0.2);
        let lhs = a.compose(&b).apply(p);
        let rhs = a.apply(b.apply(p));
        assert!((lhs - rhs).norm() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let t = Iso2::new(2.3, Vec2::new(-7.0, 4.2));
        let id = t.compose(&t.inverse());
        assert!(id.approx_eq(&Iso2::IDENTITY, 1e-12, 1e-12));
    }

    #[test]
    fn relative_from_recovers_other_pose() {
        let ego = Iso2::from_pose(Vec2::new(100.0, 50.0), 0.3);
        let other = Iso2::from_pose(Vec2::new(130.0, 55.0), -0.2);
        let rel = ego.relative_from(&other);
        // A point expressed in the other car's frame maps to the same world
        // point whether we go other→world or other→ego→world.
        let p = Vec2::new(5.0, 1.0);
        let via_world = other.apply(p);
        let via_ego = ego.apply(rel.apply(p));
        assert!((via_world - via_ego).norm() < 1e-12);
    }

    #[test]
    fn matrix_roundtrip() {
        let t = Iso2::new(-0.9, Vec2::new(3.5, -1.25));
        let back = Iso2::from_matrix(&t.to_matrix());
        assert!(back.approx_eq(&t, 1e-12, 1e-12));
    }

    #[test]
    fn error_metrics() {
        let truth = Iso2::new(0.0, Vec2::ZERO);
        let est = Iso2::new(0.1, Vec2::new(3.0, 4.0));
        let (dt, dr) = est.error_to(&truth);
        assert!((dt - 5.0).abs() < 1e-12);
        assert!((dr - 0.1).abs() < 1e-12);
    }

    #[test]
    fn error_wraps_at_pi() {
        let truth = Iso2::new(PI - 0.01, Vec2::ZERO);
        let est = Iso2::new(-(PI - 0.01), Vec2::ZERO);
        let (_, dr) = est.error_to(&truth);
        assert!(dr < 0.03, "rotation error should wrap, got {dr}");
    }

    #[test]
    fn iso3_matches_iso2_on_ground_plane() {
        let t2 = Iso2::new(1.1, Vec2::new(4.0, -6.0));
        let t3 = Iso3::from_iso2(&t2, 0.0);
        let p = Vec3::new(2.0, 3.0, 1.5);
        let q = t3.apply(p);
        assert!((q.xy() - t2.apply(p.xy())).norm() < 1e-12);
        assert!((q.z - p.z).abs() < 1e-12);
    }

    #[test]
    fn iso3_inverse_roundtrip() {
        let t = Iso3::from_euler(0.7, 0.1, -0.2, Vec3::new(1.0, 2.0, 3.0));
        let p = Vec3::new(-4.0, 0.5, 2.0);
        let q = t.inverse().apply(t.apply(p));
        assert!((q - p).norm() < 1e-10);
    }

    #[test]
    fn iso3_compose_matches_apply() {
        let a = Iso3::from_euler(0.2, 0.0, 0.0, Vec3::new(1.0, 0.0, 0.0));
        let b = Iso3::from_euler(-0.5, 0.0, 0.0, Vec3::new(0.0, 2.0, 0.0));
        let p = Vec3::new(1.0, 1.0, 1.0);
        let lhs = a.compose(&b).apply(p);
        let rhs = a.apply(b.apply(p));
        assert!((lhs - rhs).norm() < 1e-12);
    }

    #[test]
    fn iso3_to_iso2_roundtrip() {
        let t2 = Iso2::new(-2.0, Vec2::new(0.5, 9.0));
        let back = Iso3::from_iso2(&t2, 1.3).to_iso2();
        assert!(back.approx_eq(&t2, 1e-12, 1e-12));
    }

    #[test]
    fn euler_rotation_matrix_matches_paper_eq2() {
        // Spot-check Eq. (2) against independent axis rotations.
        let alpha = 0.3;
        let beta = 0.2;
        let gamma = -0.4;
        let t = Iso3::from_euler(alpha, beta, gamma, Vec3::ZERO);
        // R_z(α)·R_y(β)·R_x(γ) applied step by step.
        let rx = |p: Vec3| {
            let (s, c) = gamma.sin_cos();
            Vec3::new(p.x, c * p.y - s * p.z, s * p.y + c * p.z)
        };
        let ry = |p: Vec3| {
            let (s, c) = beta.sin_cos();
            Vec3::new(c * p.x + s * p.z, p.y, -s * p.x + c * p.z)
        };
        let rz = |p: Vec3| {
            let (s, c) = alpha.sin_cos();
            Vec3::new(c * p.x - s * p.y, s * p.x + c * p.y, p.z)
        };
        let p = Vec3::new(0.3, -1.2, 2.2);
        let expect = rz(ry(rx(p)));
        let got = t.apply(p);
        assert!((got - expect).norm() < 1e-12, "{got:?} vs {expect:?}");
    }
}

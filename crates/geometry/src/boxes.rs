//! Oriented bounding boxes: 3-D object boxes and their BEV projections.
//!
//! Stage 2 of BB-Align matches *corresponding corners* of overlapping boxes
//! detected by the two cars. The paper notes that corners are "stored as a
//! sequence of points, consistently ordered in accordance with the 3-D
//! Cartesian world coordinate system" so that corner pairing is unambiguous.
//! [`BevBox::canonical_corners`] implements that contract: the box yaw is
//! first canonicalised into `[-π/2, π/2)` (a rectangle is invariant under
//! 180° flips) and corners are then emitted in a fixed box-frame order, which
//! makes the ordering agree between two detections of the same physical
//! object regardless of the side it was observed from.

use crate::angle::normalize_angle;
use crate::iso::Iso2;
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_PI_2, PI};

/// An oriented rectangle on the ground plane (a bird's-eye-view box).
///
/// # Example
///
/// ```
/// use bba_geometry::{BevBox, Vec2};
/// let b = BevBox::new(Vec2::new(10.0, 5.0), Vec2::new(4.6, 1.9), 0.0);
/// assert!((b.area() - 4.6 * 1.9).abs() < 1e-12);
/// assert!(b.contains(Vec2::new(11.0, 5.5)));
/// assert!(!b.contains(Vec2::new(20.0, 5.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BevBox {
    /// Centre of the rectangle (metres).
    pub center: Vec2,
    /// Full extents: `(length, width)` along the box's local x/y axes.
    pub extents: Vec2,
    /// Heading of the local x axis, radians in `(-π, π]`.
    pub yaw: f64,
}

impl BevBox {
    /// Creates a box from centre, full `(length, width)` extents and yaw.
    ///
    /// # Panics
    ///
    /// Panics if either extent is not strictly positive and finite.
    pub fn new(center: Vec2, extents: Vec2, yaw: f64) -> Self {
        assert!(
            extents.x > 0.0 && extents.y > 0.0 && extents.is_finite(),
            "box extents must be positive and finite, got {extents:?}"
        );
        BevBox { center, extents, yaw: normalize_angle(yaw) }
    }

    /// Rectangle area in m².
    #[inline]
    pub fn area(&self) -> f64 {
        self.extents.x * self.extents.y
    }

    /// Half-diagonal length — radius of the circumscribed circle.
    #[inline]
    pub fn circumradius(&self) -> f64 {
        0.5 * self.extents.norm()
    }

    /// The four corners in counter-clockwise order starting at the box-frame
    /// `(+x, +y)` corner, **without** yaw canonicalisation.
    pub fn corners(&self) -> [Vec2; 4] {
        self.corners_for_yaw(self.yaw)
    }

    /// The four corners in the *canonical* consistent ordering used for
    /// stage-2 corner pairing (see module docs).
    ///
    /// Two noise-free detections of the same physical rectangle always yield
    /// the same point sequence from this method, regardless of whether the
    /// detectors reported headings that differ by 180°.
    pub fn canonical_corners(&self) -> [Vec2; 4] {
        self.corners_for_yaw(canonical_yaw(self.yaw))
    }

    fn corners_for_yaw(&self, yaw: f64) -> [Vec2; 4] {
        let hx = 0.5 * self.extents.x;
        let hy = 0.5 * self.extents.y;
        let local =
            [Vec2::new(hx, hy), Vec2::new(-hx, hy), Vec2::new(-hx, -hy), Vec2::new(hx, -hy)];
        let t = Iso2::new(yaw, self.center);
        [t.apply(local[0]), t.apply(local[1]), t.apply(local[2]), t.apply(local[3])]
    }

    /// True when the point lies inside (or on the boundary of) the box.
    pub fn contains(&self, p: Vec2) -> bool {
        let local = (p - self.center).rotated(-self.yaw);
        local.x.abs() <= 0.5 * self.extents.x + 1e-12
            && local.y.abs() <= 0.5 * self.extents.y + 1e-12
    }

    /// The box transformed rigidly by `t`.
    pub fn transformed(&self, t: &Iso2) -> BevBox {
        BevBox {
            center: t.apply(self.center),
            extents: self.extents,
            yaw: normalize_angle(self.yaw + t.yaw()),
        }
    }

    /// Axis-aligned bounding rectangle as `(min, max)` corners.
    pub fn aabb(&self) -> (Vec2, Vec2) {
        let cs = self.corners();
        let mut lo = cs[0];
        let mut hi = cs[0];
        for &c in &cs[1..] {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        (lo, hi)
    }

    /// Intersection-over-union with another box (see [`crate::polygon`]).
    pub fn iou(&self, other: &BevBox) -> f64 {
        crate::polygon::obb_iou(self, other)
    }
}

/// Canonicalises a rectangle yaw into `[-π/2, π/2)` (mod π).
pub fn canonical_yaw(yaw: f64) -> f64 {
    let mut y = normalize_angle(yaw);
    if y >= FRAC_PI_2 {
        y -= PI;
    } else if y < -FRAC_PI_2 {
        y += PI;
    }
    y
}

/// A 3-D oriented box: a BEV footprint plus a vertical slab.
///
/// Object detectors in this reproduction output `Box3`es; stage 2 of
/// BB-Align only needs the projected [`BevBox`], per the paper's
/// simplification "projecting these bounding boxes as the bird's-eye view
/// 2-D rectangles".
///
/// # Example
///
/// ```
/// use bba_geometry::{Box3, Vec2, Vec3};
/// let car = Box3::new(Vec3::new(4.0, 2.0, 0.8), Vec3::new(4.5, 1.9, 1.6), 0.1);
/// let bev = car.to_bev();
/// assert_eq!(bev.center, Vec2::new(4.0, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Box3 {
    /// Centre of the box (metres); `center.z` is the mid-height.
    pub center: Vec3,
    /// Full extents `(length, width, height)`.
    pub extents: Vec3,
    /// Heading about the z axis, radians.
    pub yaw: f64,
}

impl Box3 {
    /// Creates a 3-D box.
    ///
    /// # Panics
    ///
    /// Panics if any extent is not strictly positive and finite.
    pub fn new(center: Vec3, extents: Vec3, yaw: f64) -> Self {
        assert!(
            extents.x > 0.0 && extents.y > 0.0 && extents.z > 0.0 && extents.is_finite(),
            "box extents must be positive and finite, got {extents:?}"
        );
        Box3 { center, extents, yaw: normalize_angle(yaw) }
    }

    /// Ground-plane projection.
    pub fn to_bev(&self) -> BevBox {
        BevBox::new(self.center.xy(), Vec2::new(self.extents.x, self.extents.y), self.yaw)
    }

    /// Bottom and top z of the slab.
    pub fn z_range(&self) -> (f64, f64) {
        let h = 0.5 * self.extents.z;
        (self.center.z - h, self.center.z + h)
    }

    /// True when the 3-D point is inside the box.
    pub fn contains(&self, p: Vec3) -> bool {
        let (z0, z1) = self.z_range();
        p.z >= z0 - 1e-12 && p.z <= z1 + 1e-12 && self.to_bev().contains(p.xy())
    }

    /// The box transformed rigidly by the ground-plane transform `t`
    /// (z is unchanged — the V2V ground-vehicle assumption).
    pub fn transformed(&self, t: &Iso2) -> Box3 {
        let c2 = t.apply(self.center.xy());
        Box3 {
            center: Vec3::from_xy(c2, self.center.z),
            extents: self.extents,
            yaw: normalize_angle(self.yaw + t.yaw()),
        }
    }

    /// BEV intersection-over-union with another 3-D box (ignores z overlap,
    /// matching the BEV AP evaluation protocol used in the paper's Table I).
    pub fn bev_iou(&self, other: &Box3) -> f64 {
        self.to_bev().iou(&other.to_bev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: Vec2, b: Vec2) -> bool {
        (a - b).norm() < 1e-9
    }

    #[test]
    fn corners_are_ccw_and_centered() {
        let b = BevBox::new(Vec2::new(1.0, 2.0), Vec2::new(4.0, 2.0), 0.0);
        let cs = b.corners();
        assert!(approx(cs[0], Vec2::new(3.0, 3.0)));
        assert!(approx(cs[1], Vec2::new(-1.0, 3.0)));
        assert!(approx(cs[2], Vec2::new(-1.0, 1.0)));
        assert!(approx(cs[3], Vec2::new(3.0, 1.0)));
        // Centroid equals centre.
        let centroid = (cs[0] + cs[1] + cs[2] + cs[3]) / 4.0;
        assert!(approx(centroid, b.center));
        // CCW: positive signed area.
        let area2: f64 = (0..4).map(|i| cs[i].cross(cs[(i + 1) % 4])).sum();
        assert!(area2 > 0.0);
    }

    #[test]
    fn canonical_corners_invariant_under_flip() {
        let a = BevBox::new(Vec2::new(5.0, -3.0), Vec2::new(4.6, 1.9), 0.4);
        let flipped = BevBox::new(a.center, a.extents, a.yaw + PI);
        let ca = a.canonical_corners();
        let cb = flipped.canonical_corners();
        for (p, q) in ca.iter().zip(cb.iter()) {
            assert!(approx(*p, *q), "{p:?} vs {q:?}");
        }
    }

    #[test]
    fn canonical_yaw_range() {
        for k in -8..8 {
            let y = canonical_yaw(k as f64 * 0.7);
            assert!((-FRAC_PI_2..FRAC_PI_2).contains(&y), "{y}");
        }
        // A canonical yaw differs from the input by a multiple of π.
        let y = 2.5;
        let c = canonical_yaw(y);
        let d = (y - c) / PI;
        assert!((d - d.round()).abs() < 1e-12);
    }

    #[test]
    fn contains_respects_rotation() {
        let b = BevBox::new(Vec2::ZERO, Vec2::new(4.0, 2.0), FRAC_PI_2);
        // After a 90° rotation the long axis is along y.
        assert!(b.contains(Vec2::new(0.0, 1.9)));
        assert!(!b.contains(Vec2::new(1.9, 0.0)));
    }

    #[test]
    fn transform_then_corners_commutes() {
        let b = BevBox::new(Vec2::new(2.0, 1.0), Vec2::new(4.0, 2.0), 0.3);
        let t = Iso2::new(1.2, Vec2::new(-5.0, 7.0));
        let via_box = b.transformed(&t).corners();
        let via_pts = b.corners().map(|c| t.apply(c));
        for (p, q) in via_box.iter().zip(via_pts.iter()) {
            assert!(approx(*p, *q));
        }
    }

    #[test]
    fn aabb_bounds_all_corners() {
        let b = BevBox::new(Vec2::new(1.0, 1.0), Vec2::new(5.0, 2.0), 0.7);
        let (lo, hi) = b.aabb();
        for c in b.corners() {
            assert!(c.x >= lo.x - 1e-12 && c.x <= hi.x + 1e-12);
            assert!(c.y >= lo.y - 1e-12 && c.y <= hi.y + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "extents must be positive")]
    fn zero_extent_panics() {
        let _ = BevBox::new(Vec2::ZERO, Vec2::new(0.0, 1.0), 0.0);
    }

    #[test]
    fn box3_projection_and_contains() {
        let b = Box3::new(Vec3::new(0.0, 0.0, 1.0), Vec3::new(4.0, 2.0, 2.0), 0.0);
        assert!(b.contains(Vec3::new(1.0, 0.5, 1.5)));
        assert!(!b.contains(Vec3::new(1.0, 0.5, 2.5)));
        assert_eq!(b.z_range(), (0.0, 2.0));
    }

    #[test]
    fn box3_transform_preserves_z() {
        let b = Box3::new(Vec3::new(1.0, 2.0, 0.9), Vec3::new(4.0, 2.0, 1.8), 0.0);
        let t = Iso2::new(0.5, Vec2::new(10.0, -10.0));
        let tb = b.transformed(&t);
        assert_eq!(tb.center.z, 0.9);
        assert!(approx(tb.center.xy(), t.apply(b.center.xy())));
    }

    #[test]
    fn identical_boxes_have_unit_iou() {
        let b = BevBox::new(Vec2::new(3.0, 3.0), Vec2::new(4.5, 1.8), 0.3);
        assert!((b.iou(&b) - 1.0).abs() < 1e-9);
    }
}

//! Property-based tests for the geometry crate's core invariants.

use bba_geometry::{
    angle_diff, fit_rigid_2d, normalize_angle, obb_iou, BevBox, Iso2, Iso3, Vec2, Vec3,
};
use proptest::prelude::*;
use std::f64::consts::PI;

fn small_coord() -> impl Strategy<Value = f64> {
    -100.0..100.0f64
}

fn any_angle() -> impl Strategy<Value = f64> {
    -10.0..10.0f64
}

fn any_iso2() -> impl Strategy<Value = Iso2> {
    (any_angle(), small_coord(), small_coord()).prop_map(|(a, x, y)| Iso2::new(a, Vec2::new(x, y)))
}

fn any_vec2() -> impl Strategy<Value = Vec2> {
    (small_coord(), small_coord()).prop_map(|(x, y)| Vec2::new(x, y))
}

fn any_box() -> impl Strategy<Value = BevBox> {
    (small_coord(), small_coord(), 0.5..8.0f64, 0.5..4.0f64, any_angle())
        .prop_map(|(x, y, l, w, yaw)| BevBox::new(Vec2::new(x, y), Vec2::new(l, w), yaw))
}

proptest! {
    #[test]
    fn normalize_angle_is_idempotent(a in any_angle()) {
        let n = normalize_angle(a);
        prop_assert!((normalize_angle(n) - n).abs() < 1e-12);
        prop_assert!(n > -PI - 1e-12 && n <= PI + 1e-12);
    }

    #[test]
    fn angle_diff_bounded(a in any_angle(), b in any_angle()) {
        let d = angle_diff(a, b);
        prop_assert!(d.abs() <= PI + 1e-12);
    }

    #[test]
    fn iso2_inverse_roundtrip(t in any_iso2(), p in any_vec2()) {
        let q = t.inverse().apply(t.apply(p));
        prop_assert!((q - p).norm() < 1e-9);
    }

    #[test]
    fn iso2_compose_associative(a in any_iso2(), b in any_iso2(), c in any_iso2(), p in any_vec2()) {
        let lhs = a.compose(&b).compose(&c).apply(p);
        let rhs = a.compose(&b.compose(&c)).apply(p);
        prop_assert!((lhs - rhs).norm() < 1e-8);
    }

    #[test]
    fn iso2_preserves_distances(t in any_iso2(), p in any_vec2(), q in any_vec2()) {
        let d0 = p.distance(q);
        let d1 = t.apply(p).distance(t.apply(q));
        prop_assert!((d0 - d1).abs() < 1e-9);
    }

    #[test]
    fn iso2_matrix_roundtrip(t in any_iso2()) {
        let back = Iso2::from_matrix(&t.to_matrix());
        prop_assert!(back.approx_eq(&t, 1e-9, 1e-9));
    }

    #[test]
    fn iso3_lift_consistent(t in any_iso2(), p in any_vec2(), z in -5.0..5.0f64) {
        let t3 = Iso3::from_iso2(&t, 0.0);
        let q = t3.apply(Vec3::from_xy(p, z));
        prop_assert!((q.xy() - t.apply(p)).norm() < 1e-9);
        prop_assert!((q.z - z).abs() < 1e-9);
    }

    #[test]
    fn iou_symmetric_and_bounded(a in any_box(), b in any_box()) {
        let ab = obb_iou(&a, &b);
        let ba = obb_iou(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-7);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
    }

    #[test]
    fn iou_self_is_one(a in any_box()) {
        prop_assert!((obb_iou(&a, &a) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn box_transform_preserves_iou(a in any_box(), b in any_box(), t in any_iso2()) {
        let before = obb_iou(&a, &b);
        let after = obb_iou(&a.transformed(&t), &b.transformed(&t));
        prop_assert!((before - after).abs() < 1e-6);
    }

    #[test]
    fn canonical_corners_flip_invariant(a in any_box()) {
        let flipped = BevBox::new(a.center, a.extents, a.yaw + PI);
        let ca = a.canonical_corners();
        let cb = flipped.canonical_corners();
        for (p, q) in ca.iter().zip(cb.iter()) {
            prop_assert!((*p - *q).norm() < 1e-9);
        }
    }

    #[test]
    fn rigid_fit_recovers_exact_transform(
        t in any_iso2(),
        pts in proptest::collection::vec(any_vec2(), 3..20),
    ) {
        // Require a non-degenerate spread.
        let spread: f64 = {
            let mean = pts.iter().fold(Vec2::ZERO, |a, &b| a + b) / pts.len() as f64;
            pts.iter().map(|p| (*p - mean).norm_sq()).sum()
        };
        prop_assume!(spread > 1e-6);
        let dst: Vec<Vec2> = pts.iter().map(|&p| t.apply(p)).collect();
        let fit = fit_rigid_2d(&pts, &dst).unwrap();
        prop_assert!(fit.approx_eq(&t, 1e-6, 1e-6));
    }
}

//! Property-based tests for the BB-Align core: pixel/world transform
//! conversion, wire accounting and the pose tracker.

use bb_align::{BbAlign, BbAlignConfig, PoseTracker, TrackerConfig};
use bba_geometry::{Box3, Iso2, Vec2, Vec3};
use proptest::prelude::*;

fn any_iso2() -> impl Strategy<Value = Iso2> {
    (-3.0..3.0f64, -40.0..40.0f64, -40.0..40.0f64)
        .prop_map(|(a, x, y)| Iso2::new(a, Vec2::new(x, y)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn frame_wire_size_scales_with_content(
        pts in proptest::collection::vec(
            (-20.0..20.0f64, -20.0..20.0f64, 0.5..10.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
            0..100,
        ),
        n_boxes in 0usize..10,
    ) {
        let aligner = BbAlign::new(BbAlignConfig::test_small());
        let boxes: Vec<(Box3, f64)> = (0..n_boxes)
            .map(|i| {
                (
                    Box3::new(
                        Vec3::new(i as f64 * 3.0 - 10.0, 5.0, 0.8),
                        Vec3::new(4.5, 1.9, 1.6),
                        0.1,
                    ),
                    0.9,
                )
            })
            .collect();
        let frame = aligner.frame_from_parts(pts.iter().copied(), boxes.iter().copied());
        // Wire size: 24 bytes per box plus ≤5 bytes per point (sparse cells).
        prop_assert!(frame.wire_size_bytes() <= pts.len() * 5 + n_boxes * 24);
        prop_assert!(frame.wire_size_bytes() >= n_boxes * 24);
        prop_assert_eq!(frame.boxes().len(), n_boxes);
    }

    #[test]
    fn tracker_converges_to_constant_measurement(pose in any_iso2()) {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        for k in 0..12 {
            tracker.update_pose(k as f64 * 0.5, &pose, 40);
        }
        let p = tracker.predict(5.5).unwrap();
        let (dt, dr) = p.error_to(&pose);
        prop_assert!(dt < 0.2, "tracker did not converge: {dt}");
        prop_assert!(dr < 0.05);
    }

    #[test]
    fn tracker_prediction_is_continuous(pose in any_iso2(), v in -5.0..5.0f64) {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        for k in 0..8 {
            let t = k as f64 * 0.5;
            let moved = Iso2::new(pose.yaw(), pose.translation() + Vec2::new(v, 0.0) * t);
            tracker.update_pose(t, &moved, 40);
        }
        // Predictions at nearby times stay close (no jumps).
        let a = tracker.predict(4.0).unwrap();
        let b = tracker.predict(4.05).unwrap();
        let (dt, dr) = a.error_to(&b);
        prop_assert!(dt < 0.5 && dr < 0.05);
    }

    /// Shuffled (non-monotonic) timestamps must never blow up the velocity
    /// estimate. The truth is an exactly linear ~3 m/s trajectory, so with
    /// out-of-order measurements rejected the learned velocity stays
    /// physical; the old `dt = max(dt, 1e-6)` clamp instead divided
    /// metre-scale displacements by microseconds and sent the EMA to
    /// ~10⁴ m/s.
    #[test]
    fn tracker_velocity_stays_bounded_under_shuffled_timestamps(
        order in prop::collection::vec(0usize..24, 8..24),
        v in -3.0..3.0f64,
    ) {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        for &k in &order {
            let t = k as f64 * 0.5;
            let truth = Vec2::new(40.0 + v * t, 0.0);
            tracker.update_pose(t, &Iso2::new(0.0, truth), 40);
        }
        if let Some(vel) = tracker.relative_velocity() {
            prop_assert!(
                vel.norm() <= 50.0,
                "shuffled timestamps produced an unphysical velocity: {:?}",
                vel
            );
        }
    }

    #[test]
    fn tracker_never_accepts_gross_jumps(pose in any_iso2(), jump in 20.0..200.0f64) {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        for k in 0..6 {
            tracker.update_pose(k as f64 * 0.5, &pose, 40);
        }
        let hijack = Iso2::new(pose.yaw(), pose.translation() + Vec2::new(jump, 0.0));
        tracker.update_pose(3.0, &hijack, 100);
        let p = tracker.predict(3.0).unwrap();
        let (dt, _) = p.error_to(&pose);
        prop_assert!(dt < 2.0, "single outlier moved the track by {dt}");
    }
}

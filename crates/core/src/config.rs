//! BB-Align configuration: every tunable of the two-stage pipeline.

use bba_bev::{BevConfig, BevMode};
use bba_features::{DescriptorConfig, KeypointConfig, MatcherConfig, RansacConfig};
use bba_signal::LogGaborConfig;
use serde::{Deserialize, Serialize};

/// Where stage 1 detects its keypoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum KeypointSource {
    /// On the Log-Gabor amplitude map (normalised to max 1). The amplitude
    /// map is a smooth band-pass response, so FAST corners on it are far
    /// more repeatable under rotation than corners on the aliased raw
    /// raster. Default.
    #[default]
    MimAmplitude,
    /// Directly on the raw BV image (the literal reading of the paper;
    /// kept for the ablation bench).
    BvImage,
}

/// How stage 2 builds correspondences from paired boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BoxPairing {
    /// Four canonical corners per box pair (the paper's design): corners
    /// carry orientation information, so even two boxes constrain rotation.
    #[default]
    Corners,
    /// Box centres only (ablation baseline): needs ≥2 boxes for any
    /// rotation signal and is blind to per-box yaw.
    Centers,
}

/// Full parameter set of the framework.
///
/// Defaults follow the paper's model setup (§V "Model Setup"): Log-Gabor
/// with `N_s = 4` scales and `N_o = 12` orientations, grid size `l = 6`,
/// success thresholds `Inliers_bv > 25` ∧ `Inliers_box > 6`. The descriptor
/// patch is `J = 48` px at the default 0.4 m/px raster (the paper's
/// `J = 96` at its finer raster covers a similar metric footprint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BbAlignConfig {
    /// BV rasterisation geometry.
    pub bev: BevConfig,
    /// Rasterisation mode (height map by default; density map for the
    /// ablation).
    pub bev_mode: BevMode,
    /// Log-Gabor filter bank for the MIM.
    pub log_gabor: LogGaborConfig,
    /// Which image stage 1 detects keypoints on.
    pub keypoint_source: KeypointSource,
    /// FAST keypoint detection parameters. With
    /// [`KeypointSource::MimAmplitude`] the threshold applies to the
    /// amplitude map normalised to a maximum of 1; with
    /// [`KeypointSource::BvImage`] it applies to raw heights (metres).
    pub keypoints: KeypointConfig,
    /// BVFT descriptor computation on the MIM.
    pub descriptor: DescriptorConfig,
    /// Number of global rotation hypotheses swept during matching. Each
    /// hypothesis rotates the other car's patches by `k·2π/N` before
    /// matching against the ego car's unrotated patches; the hypothesis
    /// with the strongest RANSAC consensus wins. `2·N_o` (24 at the default
    /// 12 orientations, i.e. 15° steps) gives exact MIM index shifts and
    /// covers all relative headings. Set to 1 to assume near-zero relative
    /// yaw (fast path; breaks oncoming-traffic geometry).
    pub rotation_hypotheses: usize,
    /// Descriptor matching.
    pub matcher: MatcherConfig,
    /// Stage-1 RANSAC (units: **pixels**).
    pub ransac_bv: RansacConfig,
    /// Stage-2 RANSAC on box corners (units: **metres**).
    pub ransac_box: RansacConfig,
    /// Run the stage-2 box alignment (disable for the Fig. 14 ablation).
    pub box_alignment: bool,
    /// Boxes pair up when, after the stage-1 transform, their centres are
    /// within this distance (m). The paper observes stage-1 residuals of
    /// "2 or 3 meters".
    pub box_pair_max_distance: f64,
    /// Minimum detection confidence for a box to participate in stage 2.
    pub box_min_confidence: f64,
    /// Stage 2 estimates a full rigid refinement only with at least this
    /// many box pairs; below it the refinement is translation-only (the
    /// paper's Fig. 14 observes box alignment "predominantly contributes
    /// to correcting translation errors", and two noisy boxes constrain
    /// rotation poorly).
    pub box_min_pairs_for_rotation: usize,
    /// Reject a stage-2 correction larger than this translation (m) —
    /// self-motion distortion is physically bounded by speed × sweep time,
    /// so a huge "refinement" means the boxes mismatched.
    pub box_max_correction_t: f64,
    /// Reject a stage-2 correction larger than this rotation (radians).
    pub box_max_correction_r: f64,
    /// Correspondence construction for stage 2 (corner pairing per the
    /// paper, or centre pairing for the ablation).
    pub box_pairing: BoxPairing,
    /// Experimental: verify stage-1 candidate transforms by *global BEV
    /// occupancy alignment* (fraction of the other car's occupied cells
    /// landing near occupied ego cells after the transform) instead of by
    /// keypoint inlier count. Disabled by default: in practice corridor
    /// aliases align look-alike structure globally as well as locally,
    /// while visibility asymmetry (cells one car sees and the other
    /// cannot) penalises the true transform — inlier count plus the
    /// success criterion separates the two more reliably. Exposed for the
    /// ablation bench.
    pub alignment_verification: bool,
    /// Sequential-RANSAC depth per rotation hypothesis: after the best
    /// model, its inliers are removed and RANSAC reruns to surface
    /// runner-up models for verification (the alias usually outnumbers the
    /// truth in keypoint votes, so the truth is often the second model).
    pub stage1_candidates: usize,
    /// Temporal warm start: absolute floor on the coarse-to-fine BEV
    /// alignment score (fraction in `[0, 1]`) a tracker-predicted
    /// transform must clear — both as proposed and after stage-2
    /// refinement — for `BbAlign::recover_warm` to consider it. The floor
    /// only rules out hopeless predictions; the discriminating check is
    /// the scene-independent peak-*sharpness* gate (the refined pose must
    /// beat four ±3 m decoy transforms by a fixed ratio), because the
    /// absolute score a true pose reaches varies with scene density and
    /// raster resolution (≈0.40 dense urban, ≈0.55 sparse). Failing any
    /// gate falls back to the full cold pipeline.
    pub warm_min_alignment: f64,
    /// Success threshold on stage-1 inliers (paper: 25).
    pub min_inliers_bv: usize,
    /// Success threshold on stage-2 inliers (paper: 6).
    pub min_inliers_box: usize,
    /// Maximum number of idle scratch buffers (FFT workspaces, stage-1
    /// describe scratch) the engine retains between recoveries. `take`
    /// beyond the retained set allocates fresh scratch (a counted *miss*)
    /// and returning scratch to a full pool drops it (a counted *drop*),
    /// so this caps steady-state memory without ever blocking a caller —
    /// the property a service multiplexing many concurrent sessions over
    /// one shared engine relies on. Defaults to 16 (≥ the engine's
    /// in-flight scratch at the default thread budgets).
    pub pool_capacity: usize,
}

/// Default for [`BbAlignConfig::pool_capacity`].
fn default_pool_capacity() -> usize {
    16
}

impl Default for BbAlignConfig {
    fn default() -> Self {
        BbAlignConfig {
            bev: BevConfig::wide(),
            bev_mode: BevMode::Height,
            log_gabor: LogGaborConfig::default(),
            keypoint_source: KeypointSource::default(),
            keypoints: KeypointConfig { threshold: 0.05, ..Default::default() },
            descriptor: DescriptorConfig::default(),
            rotation_hypotheses: 24,
            matcher: MatcherConfig {
                // Stage 1 feeds RANSAC, which rejects outliers itself, so
                // matching is tuned for recall: no ratio test, no mutual
                // check, two candidates per keypoint. Strict matching
                // starves RANSAC of the (scarce) true correspondences
                // between viewpoints tens of metres apart.
                ratio: 1.0,
                mutual: false,
                max_distance: 1.5,
                keep_top_k: 2,
            },
            ransac_bv: RansacConfig {
                max_iterations: 3000,
                inlier_threshold: 2.0, // pixels = 1.6 m at 0.8 m/px
                min_inliers: 6,
                early_exit_fraction: 0.7,
            },
            ransac_box: RansacConfig {
                max_iterations: 300,
                inlier_threshold: 0.8, // metres
                min_inliers: 4,
                early_exit_fraction: 0.9,
            },
            box_alignment: true,
            box_pair_max_distance: 3.5,
            box_min_confidence: 0.3,
            box_min_pairs_for_rotation: 3,
            box_max_correction_t: 3.0,
            box_max_correction_r: 3f64.to_radians(),
            box_pairing: BoxPairing::default(),
            alignment_verification: false,
            stage1_candidates: 1,
            warm_min_alignment: 0.25,
            min_inliers_bv: 25,
            min_inliers_box: 6,
            pool_capacity: default_pool_capacity(),
        }
    }
}

impl BbAlignConfig {
    /// A reduced-resolution configuration for fast tests (128² BV images).
    pub fn test_small() -> Self {
        BbAlignConfig {
            bev: BevConfig::test_small(),
            descriptor: DescriptorConfig { patch_size: 32, grid_size: 4, ..Default::default() },
            min_inliers_bv: 10,
            ..Default::default()
        }
    }

    /// The Fig. 14 ablation: stage 1 only.
    pub fn without_box_alignment(mut self) -> Self {
        self.box_alignment = false;
        self
    }

    /// Validates cross-parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics when the descriptor patch cannot fit the BV image or the BEV
    /// raster is invalid.
    pub fn validate(&self) {
        self.bev.validate();
        assert!(
            self.descriptor.patch_size * 2 < self.bev.image_size(),
            "descriptor patch {} too large for BV image {}",
            self.descriptor.patch_size,
            self.bev.image_size()
        );
        assert!(self.box_pair_max_distance > 0.0, "box pairing gate must be positive");
        assert!(
            (0.0..=1.0).contains(&self.box_min_confidence),
            "confidence threshold must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.warm_min_alignment),
            "warm_min_alignment must be a fraction in [0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = BbAlignConfig::default();
        assert_eq!(c.log_gabor.num_scales, 4);
        assert_eq!(c.log_gabor.num_orientations, 12);
        assert_eq!(c.descriptor.grid_size, 6);
        assert_eq!(c.min_inliers_bv, 25);
        assert_eq!(c.min_inliers_box, 6);
        assert!(c.box_alignment);
        c.validate();
    }

    #[test]
    fn test_small_is_valid() {
        BbAlignConfig::test_small().validate();
    }

    #[test]
    fn ablation_disables_stage2() {
        let c = BbAlignConfig::default().without_box_alignment();
        assert!(!c.box_alignment);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_patch_panics() {
        let mut c = BbAlignConfig::test_small();
        c.descriptor.patch_size = 100;
        c.validate();
    }
}

//! Temporal pose tracking across frames — the deployment layer above
//! per-frame recovery.
//!
//! The paper recovers the relative pose independently per frame and lists
//! time efficiency as future work. In a deployed V2V stack, consecutive
//! frames are strongly correlated: the relative pose evolves smoothly with
//! the two cars' motion. [`PoseTracker`] exploits that with a
//! constant-velocity α–β filter on `(x, y, yaw)`:
//!
//! * per-frame recoveries are blended in with a gain that grows with their
//!   inlier confidence;
//! * measurements wildly inconsistent with the prediction are *gated out*
//!   (a single aliased stage-1 match cannot hijack the track), but
//!   repeated consistent outliers force a reset (the track, not the
//!   measurement, was wrong — e.g. after a lane change of either car);
//! * between measurements the tracker extrapolates, so fusion can run at
//!   sensor rate while recovery runs at a lower duty cycle — directly
//!   addressing the paper's future-work point.

use crate::recover::Recovery;
use bba_geometry::{angle_diff, normalize_angle, Iso2, Vec2};
use serde::{Deserialize, Serialize};

/// Tracker parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Base blend gain for a barely-confident measurement (0..1).
    pub min_gain: f64,
    /// Blend gain at/above `saturate_inliers` (0..1).
    pub max_gain: f64,
    /// Inlier count (stage 1 + stage 2) at which gain saturates.
    pub saturate_inliers: usize,
    /// Gate: measurements farther than this from the prediction (m) are
    /// rejected as outliers.
    pub gate_translation: f64,
    /// Gate on rotation disagreement (radians).
    pub gate_rotation: f64,
    /// After this many consecutive gated measurements the tracker resets
    /// onto the latest measurement.
    pub reset_after: usize,
    /// Velocity smoothing factor (0 = frozen velocity, 1 = instantaneous).
    pub velocity_gain: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            min_gain: 0.25,
            max_gain: 0.85,
            saturate_inliers: 50,
            gate_translation: 4.0,
            gate_rotation: 8f64.to_radians(),
            reset_after: 3,
            velocity_gain: 0.3,
        }
    }
}

/// Outcome of feeding one measurement to the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackUpdate {
    /// First measurement: the track was initialised.
    Initialized,
    /// Measurement blended into the track.
    Fused,
    /// Measurement rejected by the innovation gate.
    Gated,
    /// Too many consecutive rejections: track reset onto the measurement.
    Reset,
    /// Measurement timestamp not after the newest state: rejected outright
    /// (a backwards `dt` cannot update a forward-time motion model).
    OutOfOrder,
}

/// A constant-velocity α–β tracker over the relative pose.
///
/// # Example
///
/// ```
/// use bb_align::tracking::{PoseTracker, TrackerConfig};
/// use bba_geometry::{Iso2, Vec2};
///
/// let mut tracker = PoseTracker::new(TrackerConfig::default());
/// // The other car pulls ahead at 2 m/s.
/// for k in 0..8 {
///     let t = k as f64 * 0.5;
///     tracker.update_pose(t, &Iso2::new(0.0, Vec2::new(40.0 + 2.0 * t, 0.0)), 30);
/// }
/// // Predict half a second past the last measurement.
/// let p = tracker.predict(4.0).unwrap();
/// assert!((p.translation().x - 48.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoseTracker {
    config: TrackerConfig,
    state: Option<TrackState>,
    gated_streak: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct TrackState {
    time: f64,
    translation: Vec2,
    yaw: f64,
    velocity: Vec2,
    yaw_rate: f64,
}

impl PoseTracker {
    /// Creates an empty tracker.
    pub fn new(config: TrackerConfig) -> Self {
        PoseTracker { config, state: None, gated_streak: 0 }
    }

    /// True once at least one measurement has been accepted.
    pub fn is_initialized(&self) -> bool {
        self.state.is_some()
    }

    /// Feeds a full per-frame [`Recovery`] (gain derives from its inlier
    /// counts).
    pub fn update(&mut self, time: f64, recovery: &Recovery) -> TrackUpdate {
        let confidence = recovery.inliers_bv() + 2 * recovery.inliers_box();
        self.update_pose(time, &recovery.transform, confidence)
    }

    /// Feeds a raw pose measurement with an explicit confidence (total
    /// inlier count).
    pub fn update_pose(&mut self, time: f64, measured: &Iso2, confidence: usize) -> TrackUpdate {
        let cfg = &self.config;
        let Some(prev) = self.state else {
            self.state = Some(TrackState {
                time,
                translation: measured.translation(),
                yaw: measured.yaw(),
                velocity: Vec2::ZERO,
                yaw_rate: 0.0,
            });
            self.gated_streak = 0;
            return TrackUpdate::Initialized;
        };

        // Non-monotonic timestamps are rejected, not clamped: dividing the
        // displacement by a floor like 1e-6 s would turn centimetres into
        // ~10⁴ m/s in `vel_meas` below and poison the velocity EMA. The
        // state (including the gated streak — an out-of-order stamp says
        // nothing about the world) is left untouched.
        if time <= prev.time {
            return TrackUpdate::OutOfOrder;
        }
        let dt = time - prev.time;
        let predicted_t = prev.translation + prev.velocity * dt;
        let predicted_yaw = prev.yaw + prev.yaw_rate * dt;

        // Innovation gate.
        let innov_t = measured.translation() - predicted_t;
        let innov_r = angle_diff(measured.yaw(), predicted_yaw);
        if innov_t.norm() > cfg.gate_translation || innov_r.abs() > cfg.gate_rotation {
            self.gated_streak += 1;
            if self.gated_streak >= cfg.reset_after {
                self.state = Some(TrackState {
                    time,
                    translation: measured.translation(),
                    yaw: measured.yaw(),
                    velocity: Vec2::ZERO,
                    yaw_rate: 0.0,
                });
                self.gated_streak = 0;
                return TrackUpdate::Reset;
            }
            // Keep coasting on the prediction.
            self.state = Some(TrackState {
                time,
                translation: predicted_t,
                yaw: normalize_angle(predicted_yaw),
                ..prev
            });
            return TrackUpdate::Gated;
        }
        self.gated_streak = 0;

        // Confidence-weighted blend.
        let frac = (confidence as f64 / cfg.saturate_inliers as f64).min(1.0);
        let gain = cfg.min_gain + (cfg.max_gain - cfg.min_gain) * frac;
        let new_t = predicted_t + innov_t * gain;
        let new_yaw = normalize_angle(predicted_yaw + innov_r * gain);

        // Velocity update from the *filtered* displacement.
        let vel_meas = (new_t - prev.translation) / dt;
        let yawrate_meas = angle_diff(new_yaw, prev.yaw) / dt;
        let velocity = prev.velocity.lerp(vel_meas, cfg.velocity_gain);
        let yaw_rate = prev.yaw_rate + (yawrate_meas - prev.yaw_rate) * cfg.velocity_gain;

        self.state =
            Some(TrackState { time, translation: new_t, yaw: new_yaw, velocity, yaw_rate });
        TrackUpdate::Fused
    }

    /// The filtered relative pose extrapolated to `time`, or `None` before
    /// initialisation.
    pub fn predict(&self, time: f64) -> Option<Iso2> {
        let s = self.state?;
        let dt = time - s.time;
        Some(Iso2::new(s.yaw + s.yaw_rate * dt, s.translation + s.velocity * dt))
    }

    /// The estimated relative velocity (m/s) of the other car in the ego
    /// frame, or `None` before initialisation.
    pub fn relative_velocity(&self) -> Option<Vec2> {
        self.state.map(|s| s.velocity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_linear(
        tracker: &mut PoseTracker,
        n: usize,
        dt: f64,
        start: Vec2,
        velocity: Vec2,
        noise: impl Fn(usize) -> Vec2,
    ) {
        for k in 0..n {
            let t = k as f64 * dt;
            let truth = start + velocity * t;
            let measured = Iso2::new(0.0, truth + noise(k));
            tracker.update_pose(t, &measured, 40);
        }
    }

    #[test]
    fn smooths_noisy_measurements() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        // Alternating ±0.5 m noise around a constant-velocity truth.
        feed_linear(&mut tracker, 20, 0.5, Vec2::new(40.0, 0.0), Vec2::new(2.0, 0.0), |k| {
            Vec2::new(0.5 * if k % 2 == 0 { 1.0 } else { -1.0 }, 0.0)
        });
        let t_end = 19.0 * 0.5;
        let truth = Vec2::new(40.0, 0.0) + Vec2::new(2.0, 0.0) * t_end;
        let filtered = tracker.predict(t_end).unwrap();
        let err = (filtered.translation() - truth).norm();
        assert!(err < 0.45, "filtered error {err} should beat the 0.5 m noise");
        // Velocity learned.
        let v = tracker.relative_velocity().unwrap();
        assert!((v.x - 2.0).abs() < 0.7, "velocity {v:?}");
    }

    #[test]
    fn extrapolates_between_measurements() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        feed_linear(&mut tracker, 12, 0.5, Vec2::ZERO, Vec2::new(3.0, 1.0), |_| Vec2::ZERO);
        // Predict 1 s past the last measurement.
        let p = tracker.predict(5.5 + 1.0).unwrap();
        let truth = Vec2::new(3.0, 1.0) * 6.5;
        assert!((p.translation() - truth).norm() < 0.8, "{p}");
    }

    #[test]
    fn gates_single_outlier() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        feed_linear(&mut tracker, 8, 0.5, Vec2::new(30.0, 0.0), Vec2::ZERO, |_| Vec2::ZERO);
        // One aliased recovery 40 m off.
        let verdict = tracker.update_pose(4.0, &Iso2::new(0.0, Vec2::new(70.0, 0.0)), 40);
        assert_eq!(verdict, TrackUpdate::Gated);
        let p = tracker.predict(4.0).unwrap();
        assert!((p.translation() - Vec2::new(30.0, 0.0)).norm() < 1.0, "track hijacked: {p}");
    }

    #[test]
    fn repeated_consistent_outliers_force_reset() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        feed_linear(&mut tracker, 5, 0.5, Vec2::new(30.0, 0.0), Vec2::ZERO, |_| Vec2::ZERO);
        // The world changed: measurements now consistently at 50 m.
        let mut last = TrackUpdate::Fused;
        for k in 0..3 {
            last = tracker.update_pose(
                2.5 + k as f64 * 0.5,
                &Iso2::new(0.0, Vec2::new(50.0, 0.0)),
                40,
            );
        }
        assert_eq!(last, TrackUpdate::Reset);
        let p = tracker.predict(4.0).unwrap();
        assert!((p.translation() - Vec2::new(50.0, 0.0)).norm() < 1.0);
    }

    #[test]
    fn confidence_controls_gain() {
        let run = |confidence: usize| {
            let mut tracker = PoseTracker::new(TrackerConfig::default());
            tracker.update_pose(0.0, &Iso2::new(0.0, Vec2::new(10.0, 0.0)), 40);
            tracker.update_pose(0.5, &Iso2::new(0.0, Vec2::new(12.0, 0.0)), confidence);
            tracker.predict(0.5).unwrap().translation().x
        };
        let weak = run(1);
        let strong = run(100);
        // A strong measurement pulls the state closer to 12.
        assert!(strong > weak, "strong {strong} vs weak {weak}");
        assert!(strong > 11.5 && weak < 11.5);
    }

    #[test]
    fn yaw_wraps_correctly_at_pi() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        let near_pi = std::f64::consts::PI - 0.01;
        tracker.update_pose(0.0, &Iso2::new(near_pi, Vec2::new(20.0, 0.0)), 40);
        tracker.update_pose(0.5, &Iso2::new(-near_pi, Vec2::new(20.0, 0.0)), 40);
        let p = tracker.predict(0.5).unwrap();
        // Filtered yaw stays near ±π, not near 0.
        assert!(p.yaw().abs() > 3.0, "yaw blended across the seam: {}", p.yaw());
    }

    /// Regression: a backwards timestamp used to be clamped to `dt = 1e-6`,
    /// turning a 5 cm displacement into a ~5·10⁴ m/s velocity measurement
    /// that the EMA then blended into the track.
    #[test]
    fn backwards_timestamp_is_rejected_not_clamped() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        tracker.update_pose(0.0, &Iso2::new(0.0, Vec2::new(10.0, 0.0)), 40);
        tracker.update_pose(1.0, &Iso2::new(0.0, Vec2::new(10.5, 0.0)), 40);
        let v_before = tracker.relative_velocity().unwrap();
        let p_before = tracker.predict(2.0).unwrap();

        // 5 cm of displacement, half a second *backwards*.
        let verdict = tracker.update_pose(0.5, &Iso2::new(0.0, Vec2::new(10.55, 0.0)), 40);
        assert_eq!(verdict, TrackUpdate::OutOfOrder);
        // The track is untouched: same velocity, same prediction.
        assert_eq!(tracker.relative_velocity().unwrap(), v_before);
        assert_eq!(tracker.predict(2.0).unwrap(), p_before);
        assert!(v_before.norm() < 1.0, "sanity: the track itself is slow");
    }

    #[test]
    fn repeated_timestamp_is_rejected() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        tracker.update_pose(0.0, &Iso2::new(0.0, Vec2::new(10.0, 0.0)), 40);
        tracker.update_pose(1.0, &Iso2::new(0.0, Vec2::new(12.0, 0.0)), 40);
        let verdict = tracker.update_pose(1.0, &Iso2::new(0.0, Vec2::new(12.1, 0.0)), 40);
        assert_eq!(verdict, TrackUpdate::OutOfOrder);
        let v = tracker.relative_velocity().unwrap();
        assert!(v.norm() < 3.0, "zero-dt update must not fabricate velocity: {v:?}");
    }

    #[test]
    fn out_of_order_does_not_advance_the_gated_streak() {
        let cfg = TrackerConfig::default();
        let mut tracker = PoseTracker::new(cfg.clone());
        feed_linear(&mut tracker, 5, 0.5, Vec2::new(30.0, 0.0), Vec2::ZERO, |_| Vec2::ZERO);
        // reset_after - 1 gated outliers, separated by out-of-order noise:
        // the stale stamps must not tip the streak into a reset.
        for k in 0..cfg.reset_after - 1 {
            let t = 2.5 + k as f64 * 0.5;
            assert_eq!(
                tracker.update_pose(t, &Iso2::new(0.0, Vec2::new(60.0, 0.0)), 40),
                TrackUpdate::Gated
            );
            assert_eq!(
                tracker.update_pose(t - 10.0, &Iso2::new(0.0, Vec2::new(60.0, 0.0)), 40),
                TrackUpdate::OutOfOrder
            );
        }
        let p = tracker.predict(4.0).unwrap();
        assert!((p.translation() - Vec2::new(30.0, 0.0)).norm() < 1.0, "track hijacked: {p}");
    }

    #[test]
    fn uninitialized_tracker_has_no_prediction() {
        let tracker = PoseTracker::new(TrackerConfig::default());
        assert!(!tracker.is_initialized());
        assert!(tracker.predict(0.0).is_none());
        assert!(tracker.relative_velocity().is_none());
    }
}

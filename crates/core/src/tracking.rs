//! Temporal pose tracking across frames — the deployment layer above
//! per-frame recovery.
//!
//! The paper recovers the relative pose independently per frame and lists
//! time efficiency as future work. In a deployed V2V stack, consecutive
//! frames are strongly correlated: the relative pose evolves smoothly with
//! the two cars' motion. [`PoseTracker`] exploits that with a
//! constant-velocity α–β filter on `(x, y, yaw)`:
//!
//! * per-frame recoveries are blended in with a gain that grows with their
//!   inlier confidence;
//! * measurements wildly inconsistent with the prediction are *gated out*
//!   (a single aliased stage-1 match cannot hijack the track), but
//!   repeated consistent outliers force a reset (the track, not the
//!   measurement, was wrong — e.g. after a lane change of either car);
//! * between measurements the tracker extrapolates, so fusion can run at
//!   sensor rate while recovery runs at a lower duty cycle — directly
//!   addressing the paper's future-work point;
//! * alongside the pose it carries a scalar positional uncertainty `σ`
//!   that shrinks when confident measurements fuse and grows with
//!   extrapolation age, so callers can ask for a *warm* prediction
//!   ([`PoseTracker::warm_prediction`]) that is only returned while the
//!   track is still trustworthy — the gate behind
//!   `BbAlign::recover_warm`'s skip-stage-1 fast path.

use crate::recover::Recovery;
use bba_geometry::{angle_diff, normalize_angle, Iso2, Vec2};
use serde::{Deserialize, Serialize};

/// Tracker parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Base blend gain for a barely-confident measurement (0..1).
    pub min_gain: f64,
    /// Blend gain at/above `saturate_inliers` (0..1).
    pub max_gain: f64,
    /// Inlier count (stage 1 + stage 2) at which gain saturates.
    pub saturate_inliers: usize,
    /// Gate: measurements farther than this from the prediction (m) are
    /// rejected as outliers.
    pub gate_translation: f64,
    /// Gate on rotation disagreement (radians).
    pub gate_rotation: f64,
    /// After this many consecutive gated measurements the tracker resets
    /// onto the latest measurement.
    pub reset_after: usize,
    /// Velocity smoothing factor (0 = frozen velocity, 1 = instantaneous).
    pub velocity_gain: f64,
    /// Positional 1-σ uncertainty (m) right after initialisation or a
    /// reset, before any further measurement has confirmed the state.
    pub init_sigma: f64,
    /// Positional 1-σ (m) of a fully-confident measurement (at/above
    /// `saturate_inliers`); weaker measurements count proportionally less.
    pub measurement_sigma: f64,
    /// Uncertainty growth rate while extrapolating (m of σ per second):
    /// prediction quality decays with extrapolation age.
    pub process_noise: f64,
    /// Warm-start gate: [`PoseTracker::warm_prediction`] returns `None`
    /// once the predicted σ exceeds this (m) — a stale track must fall
    /// back to cold recovery instead of proposing its pose.
    pub max_prediction_sigma: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            min_gain: 0.25,
            max_gain: 0.85,
            saturate_inliers: 50,
            gate_translation: 4.0,
            gate_rotation: 8f64.to_radians(),
            reset_after: 3,
            velocity_gain: 0.3,
            init_sigma: 1.0,
            measurement_sigma: 0.5,
            process_noise: 0.8,
            max_prediction_sigma: 2.5,
        }
    }
}

/// Why a [`TrackerConfig`] was rejected by [`TrackerConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrackerConfigError {
    /// A gain parameter lies outside `[0, 1]` (or is NaN).
    GainOutOfRange {
        /// Field name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// `min_gain` exceeds `max_gain`.
    GainOrderInverted {
        /// Configured `min_gain`.
        min: f64,
        /// Configured `max_gain`.
        max: f64,
    },
    /// A parameter that must be strictly positive and finite is zero,
    /// negative, NaN, or infinite.
    NotPositive {
        /// Field name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl std::fmt::Display for TrackerConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrackerConfigError::GainOutOfRange { name, value } => {
                write!(f, "tracker config: {name} = {value} must lie in [0, 1]")
            }
            TrackerConfigError::GainOrderInverted { min, max } => {
                write!(f, "tracker config: min_gain = {min} exceeds max_gain = {max}")
            }
            TrackerConfigError::NotPositive { name, value } => {
                write!(f, "tracker config: {name} = {value} must be positive and finite")
            }
        }
    }
}

impl std::error::Error for TrackerConfigError {}

impl TrackerConfig {
    /// Checks every parameter, returning the first violation. Gains must
    /// lie in `[0, 1]` with `min_gain <= max_gain`; gates, counts, and
    /// sigmas must be strictly positive (and finite) — values outside
    /// these ranges used to be accepted silently and poison the track.
    pub fn validate(&self) -> Result<(), TrackerConfigError> {
        let gains = [
            ("min_gain", self.min_gain),
            ("max_gain", self.max_gain),
            ("velocity_gain", self.velocity_gain),
        ];
        for (name, value) in gains {
            if !(0.0..=1.0).contains(&value) {
                return Err(TrackerConfigError::GainOutOfRange { name, value });
            }
        }
        if self.min_gain > self.max_gain {
            return Err(TrackerConfigError::GainOrderInverted {
                min: self.min_gain,
                max: self.max_gain,
            });
        }
        let positives = [
            ("saturate_inliers", self.saturate_inliers as f64),
            ("gate_translation", self.gate_translation),
            ("gate_rotation", self.gate_rotation),
            ("reset_after", self.reset_after as f64),
            ("init_sigma", self.init_sigma),
            ("measurement_sigma", self.measurement_sigma),
            ("process_noise", self.process_noise),
            ("max_prediction_sigma", self.max_prediction_sigma),
        ];
        for (name, value) in positives {
            if !(value > 0.0 && value.is_finite()) {
                return Err(TrackerConfigError::NotPositive { name, value });
            }
        }
        Ok(())
    }
}

/// Outcome of feeding one measurement to the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackUpdate {
    /// First measurement: the track was initialised.
    Initialized,
    /// Measurement blended into the track.
    Fused,
    /// Measurement rejected by the innovation gate.
    Gated,
    /// Too many consecutive rejections: track reset onto the measurement.
    Reset,
    /// Measurement timestamp not after the newest state: rejected outright
    /// (a backwards `dt` cannot update a forward-time motion model).
    OutOfOrder,
}

/// A constant-velocity α–β tracker over the relative pose.
///
/// # Example
///
/// ```
/// use bb_align::tracking::{PoseTracker, TrackerConfig};
/// use bba_geometry::{Iso2, Vec2};
///
/// let mut tracker = PoseTracker::new(TrackerConfig::default());
/// // The other car pulls ahead at 2 m/s.
/// for k in 0..8 {
///     let t = k as f64 * 0.5;
///     tracker.update_pose(t, &Iso2::new(0.0, Vec2::new(40.0 + 2.0 * t, 0.0)), 30);
/// }
/// // Predict half a second past the last measurement.
/// let p = tracker.predict(4.0).unwrap();
/// assert!((p.translation().x - 48.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoseTracker {
    config: TrackerConfig,
    state: Option<TrackState>,
    gated_streak: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct TrackState {
    time: f64,
    translation: Vec2,
    yaw: f64,
    velocity: Vec2,
    yaw_rate: f64,
    /// Positional 1-σ uncertainty (m) of the state at `time`.
    sigma: f64,
}

/// A track state extrapolated to a query time, with its quality estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackPrediction {
    /// The extrapolated relative pose.
    pub pose: Iso2,
    /// Seconds elapsed since the last accepted state (negative when the
    /// query time precedes it).
    pub age: f64,
    /// Predicted positional 1-σ uncertainty (m): the state's σ plus
    /// `process_noise · age` of extrapolation growth.
    pub sigma: f64,
}

impl TrackPrediction {
    /// Quality in `(0, 1]`: `1 / (1 + σ)` — decays smoothly with both
    /// measurement scarcity and extrapolation age.
    pub fn confidence(&self) -> f64 {
        1.0 / (1.0 + self.sigma)
    }
}

impl PoseTracker {
    /// Creates an empty tracker.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid; use
    /// [`PoseTracker::try_new`] to handle the error instead.
    pub fn new(config: TrackerConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates an empty tracker, rejecting invalid configurations.
    pub fn try_new(config: TrackerConfig) -> Result<Self, TrackerConfigError> {
        config.validate()?;
        Ok(PoseTracker { config, state: None, gated_streak: 0 })
    }

    /// True once at least one measurement has been accepted.
    pub fn is_initialized(&self) -> bool {
        self.state.is_some()
    }

    /// Feeds a full per-frame [`Recovery`] (gain derives from its inlier
    /// counts).
    pub fn update(&mut self, time: f64, recovery: &Recovery) -> TrackUpdate {
        let confidence = recovery.inliers_bv() + 2 * recovery.inliers_box();
        self.update_pose(time, &recovery.transform, confidence)
    }

    /// Feeds a raw pose measurement with an explicit confidence (total
    /// inlier count).
    pub fn update_pose(&mut self, time: f64, measured: &Iso2, confidence: usize) -> TrackUpdate {
        let cfg = &self.config;
        let Some(prev) = self.state else {
            self.state = Some(TrackState {
                time,
                translation: measured.translation(),
                yaw: measured.yaw(),
                velocity: Vec2::ZERO,
                yaw_rate: 0.0,
                sigma: cfg.init_sigma,
            });
            self.gated_streak = 0;
            return TrackUpdate::Initialized;
        };

        // Non-monotonic timestamps are rejected, not clamped: dividing the
        // displacement by a floor like 1e-6 s would turn centimetres into
        // ~10⁴ m/s in `vel_meas` below and poison the velocity EMA. The
        // state (including the gated streak — an out-of-order stamp says
        // nothing about the world) is left untouched.
        if time <= prev.time {
            return TrackUpdate::OutOfOrder;
        }
        let dt = time - prev.time;
        let predicted_t = prev.translation + prev.velocity * dt;
        let predicted_yaw = prev.yaw + prev.yaw_rate * dt;
        // Uncertainty grows with the time advanced, whatever happens next.
        let sigma_pred = prev.sigma + cfg.process_noise * dt;

        // Innovation gate.
        let innov_t = measured.translation() - predicted_t;
        let innov_r = angle_diff(measured.yaw(), predicted_yaw);
        if innov_t.norm() > cfg.gate_translation || innov_r.abs() > cfg.gate_rotation {
            self.gated_streak += 1;
            if self.gated_streak >= cfg.reset_after {
                self.state = Some(TrackState {
                    time,
                    translation: measured.translation(),
                    yaw: measured.yaw(),
                    velocity: Vec2::ZERO,
                    yaw_rate: 0.0,
                    sigma: cfg.init_sigma,
                });
                self.gated_streak = 0;
                return TrackUpdate::Reset;
            }
            // Keep coasting on the prediction; the gated measurement adds
            // no information, so only σ advances.
            self.state = Some(TrackState {
                time,
                translation: predicted_t,
                yaw: normalize_angle(predicted_yaw),
                sigma: sigma_pred,
                ..prev
            });
            return TrackUpdate::Gated;
        }
        self.gated_streak = 0;

        // Confidence-weighted blend.
        let frac = (confidence as f64 / cfg.saturate_inliers as f64).min(1.0);
        let gain = cfg.min_gain + (cfg.max_gain - cfg.min_gain) * frac;
        let new_t = predicted_t + innov_t * gain;
        let new_yaw = normalize_angle(predicted_yaw + innov_r * gain);

        // Velocity update from the *filtered* displacement.
        let vel_meas = (new_t - prev.translation) / dt;
        let yawrate_meas = angle_diff(new_yaw, prev.yaw) / dt;
        let velocity = prev.velocity.lerp(vel_meas, cfg.velocity_gain);
        let yaw_rate = prev.yaw_rate + (yawrate_meas - prev.yaw_rate) * cfg.velocity_gain;

        // Information-style fusion of the predicted σ with the measurement
        // σ (confident measurements count as tighter): the posterior
        // variance is the harmonic combination, so it always shrinks.
        let meas_sigma = cfg.measurement_sigma * (2.0 - frac);
        let (vp, vm) = (sigma_pred * sigma_pred, meas_sigma * meas_sigma);
        let sigma = (vp * vm / (vp + vm)).sqrt();

        self.state =
            Some(TrackState { time, translation: new_t, yaw: new_yaw, velocity, yaw_rate, sigma });
        TrackUpdate::Fused
    }

    /// The filtered relative pose extrapolated to `time`, or `None` before
    /// initialisation.
    pub fn predict(&self, time: f64) -> Option<Iso2> {
        self.prediction(time).map(|p| p.pose)
    }

    /// The extrapolated pose plus its quality estimate, or `None` before
    /// initialisation. Unlike [`PoseTracker::warm_prediction`] this never
    /// gates — callers that can tolerate stale state (e.g. display-layer
    /// extrapolation) read the σ themselves.
    pub fn prediction(&self, time: f64) -> Option<TrackPrediction> {
        let s = self.state?;
        let dt = time - s.time;
        Some(TrackPrediction {
            pose: Iso2::new(s.yaw + s.yaw_rate * dt, s.translation + s.velocity * dt),
            age: dt,
            sigma: s.sigma + self.config.process_noise * dt.max(0.0),
        })
    }

    /// The extrapolated pose *when the track is still trustworthy enough
    /// to warm-start recovery*: `None` before initialisation, for
    /// backwards query times, and once the predicted σ exceeds
    /// `max_prediction_sigma` (a blown or long-extrapolated track must
    /// never propose a stale pose).
    pub fn warm_prediction(&self, time: f64) -> Option<Iso2> {
        let p = self.prediction(time)?;
        (p.age >= 0.0 && p.sigma <= self.config.max_prediction_sigma).then_some(p.pose)
    }

    /// The estimated relative velocity (m/s) of the other car in the ego
    /// frame, or `None` before initialisation.
    pub fn relative_velocity(&self) -> Option<Vec2> {
        self.state.map(|s| s.velocity)
    }

    /// The positional 1-σ uncertainty (m) of the current state, or `None`
    /// before initialisation.
    pub fn position_sigma(&self) -> Option<f64> {
        self.state.map(|s| s.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_linear(
        tracker: &mut PoseTracker,
        n: usize,
        dt: f64,
        start: Vec2,
        velocity: Vec2,
        noise: impl Fn(usize) -> Vec2,
    ) {
        for k in 0..n {
            let t = k as f64 * dt;
            let truth = start + velocity * t;
            let measured = Iso2::new(0.0, truth + noise(k));
            tracker.update_pose(t, &measured, 40);
        }
    }

    #[test]
    fn smooths_noisy_measurements() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        // Alternating ±0.5 m noise around a constant-velocity truth.
        feed_linear(&mut tracker, 20, 0.5, Vec2::new(40.0, 0.0), Vec2::new(2.0, 0.0), |k| {
            Vec2::new(0.5 * if k % 2 == 0 { 1.0 } else { -1.0 }, 0.0)
        });
        let t_end = 19.0 * 0.5;
        let truth = Vec2::new(40.0, 0.0) + Vec2::new(2.0, 0.0) * t_end;
        let filtered = tracker.predict(t_end).unwrap();
        let err = (filtered.translation() - truth).norm();
        assert!(err < 0.45, "filtered error {err} should beat the 0.5 m noise");
        // Velocity learned.
        let v = tracker.relative_velocity().unwrap();
        assert!((v.x - 2.0).abs() < 0.7, "velocity {v:?}");
    }

    #[test]
    fn extrapolates_between_measurements() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        feed_linear(&mut tracker, 12, 0.5, Vec2::ZERO, Vec2::new(3.0, 1.0), |_| Vec2::ZERO);
        // Predict 1 s past the last measurement.
        let p = tracker.predict(5.5 + 1.0).unwrap();
        let truth = Vec2::new(3.0, 1.0) * 6.5;
        assert!((p.translation() - truth).norm() < 0.8, "{p}");
    }

    #[test]
    fn gates_single_outlier() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        feed_linear(&mut tracker, 8, 0.5, Vec2::new(30.0, 0.0), Vec2::ZERO, |_| Vec2::ZERO);
        // One aliased recovery 40 m off.
        let verdict = tracker.update_pose(4.0, &Iso2::new(0.0, Vec2::new(70.0, 0.0)), 40);
        assert_eq!(verdict, TrackUpdate::Gated);
        let p = tracker.predict(4.0).unwrap();
        assert!((p.translation() - Vec2::new(30.0, 0.0)).norm() < 1.0, "track hijacked: {p}");
    }

    #[test]
    fn repeated_consistent_outliers_force_reset() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        feed_linear(&mut tracker, 5, 0.5, Vec2::new(30.0, 0.0), Vec2::ZERO, |_| Vec2::ZERO);
        // The world changed: measurements now consistently at 50 m.
        let mut last = TrackUpdate::Fused;
        for k in 0..3 {
            last = tracker.update_pose(
                2.5 + k as f64 * 0.5,
                &Iso2::new(0.0, Vec2::new(50.0, 0.0)),
                40,
            );
        }
        assert_eq!(last, TrackUpdate::Reset);
        let p = tracker.predict(4.0).unwrap();
        assert!((p.translation() - Vec2::new(50.0, 0.0)).norm() < 1.0);
    }

    #[test]
    fn confidence_controls_gain() {
        let run = |confidence: usize| {
            let mut tracker = PoseTracker::new(TrackerConfig::default());
            tracker.update_pose(0.0, &Iso2::new(0.0, Vec2::new(10.0, 0.0)), 40);
            tracker.update_pose(0.5, &Iso2::new(0.0, Vec2::new(12.0, 0.0)), confidence);
            tracker.predict(0.5).unwrap().translation().x
        };
        let weak = run(1);
        let strong = run(100);
        // A strong measurement pulls the state closer to 12.
        assert!(strong > weak, "strong {strong} vs weak {weak}");
        assert!(strong > 11.5 && weak < 11.5);
    }

    #[test]
    fn yaw_wraps_correctly_at_pi() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        let near_pi = std::f64::consts::PI - 0.01;
        tracker.update_pose(0.0, &Iso2::new(near_pi, Vec2::new(20.0, 0.0)), 40);
        tracker.update_pose(0.5, &Iso2::new(-near_pi, Vec2::new(20.0, 0.0)), 40);
        let p = tracker.predict(0.5).unwrap();
        // Filtered yaw stays near ±π, not near 0.
        assert!(p.yaw().abs() > 3.0, "yaw blended across the seam: {}", p.yaw());
    }

    /// Regression: a backwards timestamp used to be clamped to `dt = 1e-6`,
    /// turning a 5 cm displacement into a ~5·10⁴ m/s velocity measurement
    /// that the EMA then blended into the track.
    #[test]
    fn backwards_timestamp_is_rejected_not_clamped() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        tracker.update_pose(0.0, &Iso2::new(0.0, Vec2::new(10.0, 0.0)), 40);
        tracker.update_pose(1.0, &Iso2::new(0.0, Vec2::new(10.5, 0.0)), 40);
        let v_before = tracker.relative_velocity().unwrap();
        let p_before = tracker.predict(2.0).unwrap();

        // 5 cm of displacement, half a second *backwards*.
        let verdict = tracker.update_pose(0.5, &Iso2::new(0.0, Vec2::new(10.55, 0.0)), 40);
        assert_eq!(verdict, TrackUpdate::OutOfOrder);
        // The track is untouched: same velocity, same prediction.
        assert_eq!(tracker.relative_velocity().unwrap(), v_before);
        assert_eq!(tracker.predict(2.0).unwrap(), p_before);
        assert!(v_before.norm() < 1.0, "sanity: the track itself is slow");
    }

    #[test]
    fn repeated_timestamp_is_rejected() {
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        tracker.update_pose(0.0, &Iso2::new(0.0, Vec2::new(10.0, 0.0)), 40);
        tracker.update_pose(1.0, &Iso2::new(0.0, Vec2::new(12.0, 0.0)), 40);
        let verdict = tracker.update_pose(1.0, &Iso2::new(0.0, Vec2::new(12.1, 0.0)), 40);
        assert_eq!(verdict, TrackUpdate::OutOfOrder);
        let v = tracker.relative_velocity().unwrap();
        assert!(v.norm() < 3.0, "zero-dt update must not fabricate velocity: {v:?}");
    }

    #[test]
    fn out_of_order_does_not_advance_the_gated_streak() {
        let cfg = TrackerConfig::default();
        let mut tracker = PoseTracker::new(cfg);
        feed_linear(&mut tracker, 5, 0.5, Vec2::new(30.0, 0.0), Vec2::ZERO, |_| Vec2::ZERO);
        // reset_after - 1 gated outliers, separated by out-of-order noise:
        // the stale stamps must not tip the streak into a reset.
        for k in 0..cfg.reset_after - 1 {
            let t = 2.5 + k as f64 * 0.5;
            assert_eq!(
                tracker.update_pose(t, &Iso2::new(0.0, Vec2::new(60.0, 0.0)), 40),
                TrackUpdate::Gated
            );
            assert_eq!(
                tracker.update_pose(t - 10.0, &Iso2::new(0.0, Vec2::new(60.0, 0.0)), 40),
                TrackUpdate::OutOfOrder
            );
        }
        let p = tracker.predict(4.0).unwrap();
        assert!((p.translation() - Vec2::new(30.0, 0.0)).norm() < 1.0, "track hijacked: {p}");
    }

    #[test]
    fn uninitialized_tracker_has_no_prediction() {
        let tracker = PoseTracker::new(TrackerConfig::default());
        assert!(!tracker.is_initialized());
        assert!(tracker.predict(0.0).is_none());
        assert!(tracker.warm_prediction(0.0).is_none());
        assert!(tracker.relative_velocity().is_none());
        assert!(tracker.position_sigma().is_none());
    }

    #[test]
    fn default_config_is_valid() {
        assert_eq!(TrackerConfig::default().validate(), Ok(()));
        assert!(PoseTracker::try_new(TrackerConfig::default()).is_ok());
    }

    #[test]
    fn gains_outside_unit_interval_are_rejected() {
        for (patch, name) in [
            (
                Box::new(|c: &mut TrackerConfig| c.min_gain = -0.1) as Box<dyn Fn(&mut _)>,
                "min_gain",
            ),
            (Box::new(|c: &mut TrackerConfig| c.max_gain = 1.5), "max_gain"),
            (Box::new(|c: &mut TrackerConfig| c.velocity_gain = f64::NAN), "velocity_gain"),
        ] {
            let mut cfg = TrackerConfig::default();
            patch(&mut cfg);
            match cfg.validate() {
                Err(TrackerConfigError::GainOutOfRange { name: n, .. }) => assert_eq!(n, name),
                other => panic!("{name}: expected GainOutOfRange, got {other:?}"),
            }
            assert!(PoseTracker::try_new(cfg).is_err());
        }
    }

    #[test]
    fn inverted_gain_order_is_rejected() {
        let cfg = TrackerConfig { min_gain: 0.9, max_gain: 0.2, ..TrackerConfig::default() };
        assert_eq!(
            cfg.validate(),
            Err(TrackerConfigError::GainOrderInverted { min: 0.9, max: 0.2 })
        );
    }

    #[test]
    fn non_positive_gates_counts_and_sigmas_are_rejected() {
        type Patch = Box<dyn Fn(&mut TrackerConfig)>;
        let cases: Vec<(Patch, &str)> = vec![
            (Box::new(|c| c.saturate_inliers = 0), "saturate_inliers"),
            (Box::new(|c| c.gate_translation = 0.0), "gate_translation"),
            (Box::new(|c| c.gate_rotation = -1.0), "gate_rotation"),
            (Box::new(|c| c.reset_after = 0), "reset_after"),
            (Box::new(|c| c.init_sigma = 0.0), "init_sigma"),
            (Box::new(|c| c.measurement_sigma = -0.5), "measurement_sigma"),
            (Box::new(|c| c.process_noise = f64::INFINITY), "process_noise"),
            (Box::new(|c| c.max_prediction_sigma = 0.0), "max_prediction_sigma"),
        ];
        for (patch, name) in cases {
            let mut cfg = TrackerConfig::default();
            patch(&mut cfg);
            match cfg.validate() {
                Err(TrackerConfigError::NotPositive { name: n, .. }) => assert_eq!(n, name),
                other => panic!("{name}: expected NotPositive, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "gate_translation")]
    fn new_panics_on_invalid_config() {
        let cfg = TrackerConfig { gate_translation: -1.0, ..TrackerConfig::default() };
        let _ = PoseTracker::new(cfg);
    }

    #[test]
    fn config_errors_are_displayable() {
        let err =
            TrackerConfig { min_gain: 2.0, ..TrackerConfig::default() }.validate().unwrap_err();
        assert!(err.to_string().contains("min_gain"));
        let err =
            TrackerConfig { reset_after: 0, ..TrackerConfig::default() }.validate().unwrap_err();
        assert!(err.to_string().contains("reset_after"));
    }

    #[test]
    fn sigma_shrinks_with_fused_measurements_and_grows_while_coasting() {
        let cfg = TrackerConfig::default();
        let mut tracker = PoseTracker::new(cfg);
        tracker.update_pose(0.0, &Iso2::new(0.0, Vec2::new(30.0, 0.0)), 50);
        assert_eq!(tracker.position_sigma().unwrap(), cfg.init_sigma);
        for k in 1..6 {
            tracker.update_pose(k as f64 * 0.1, &Iso2::new(0.0, Vec2::new(30.0, 0.0)), 50);
        }
        let settled = tracker.position_sigma().unwrap();
        assert!(settled < cfg.measurement_sigma * 1.05, "σ should settle near meas σ: {settled}");
        // A gated outlier coasts: σ grows by process_noise · dt.
        let before = tracker.position_sigma().unwrap();
        tracker.update_pose(1.0, &Iso2::new(0.0, Vec2::new(80.0, 0.0)), 50);
        let after = tracker.position_sigma().unwrap();
        assert!((after - (before + cfg.process_noise * 0.5)).abs() < 1e-12, "{before} -> {after}");
    }

    #[test]
    fn warm_prediction_gates_out_stale_tracks() {
        let cfg = TrackerConfig::default();
        let mut tracker = PoseTracker::new(cfg);
        for k in 0..6 {
            tracker.update_pose(k as f64 * 0.1, &Iso2::new(0.0, Vec2::new(30.0, 0.0)), 50);
        }
        // Fresh track: warm prediction available just after the last fuse.
        assert!(tracker.warm_prediction(0.6).is_some());
        // Backwards query times never warm-start.
        assert!(tracker.warm_prediction(0.3).is_none());
        // A dropout gap ages the track past the σ gate while the raw
        // prediction stays available for display-layer extrapolation.
        let sigma_now = tracker.position_sigma().unwrap();
        let gap = (cfg.max_prediction_sigma - sigma_now) / cfg.process_noise + 0.1;
        let stale_t = 0.5 + gap;
        assert!(tracker.warm_prediction(stale_t).is_none(), "stale track must not warm-start");
        assert!(tracker.predict(stale_t).is_some());
        let p = tracker.prediction(stale_t).unwrap();
        assert!(p.sigma > cfg.max_prediction_sigma);
        assert!(p.confidence() < 1.0 / (1.0 + cfg.max_prediction_sigma) + 1e-12);
    }

    #[test]
    fn reset_restores_init_sigma() {
        let cfg = TrackerConfig::default();
        let mut tracker = PoseTracker::new(cfg);
        feed_linear(&mut tracker, 5, 0.5, Vec2::new(30.0, 0.0), Vec2::ZERO, |_| Vec2::ZERO);
        assert!(tracker.position_sigma().unwrap() < cfg.init_sigma);
        for k in 0..cfg.reset_after {
            tracker.update_pose(2.5 + k as f64 * 0.5, &Iso2::new(0.0, Vec2::new(60.0, 0.0)), 40);
        }
        assert_eq!(tracker.position_sigma().unwrap(), cfg.init_sigma);
    }
}

//! The transmissible perception frame: BV image + BEV boxes.
//!
//! This is precisely what the other car sends the ego car in the paper's
//! protocol (§III "Pose Recovery"): its BV image `B_other` and its detected
//! object bounding boxes projected to BEV rectangles `B_other` — not the
//! raw point cloud, which is the bandwidth argument for the whole design.

use bba_bev::BevImage;
use bba_geometry::BevBox;
use serde::{Deserialize, Serialize};

/// A detected BEV box with its confidence, as transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameBox {
    /// The BEV rectangle (sensor frame).
    pub bev: BevBox,
    /// Detector confidence in `[0, 1]`.
    pub confidence: f64,
}

/// One car's transmissible perception payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerceptionFrame {
    bev: BevImage,
    boxes: Vec<FrameBox>,
}

impl PerceptionFrame {
    /// Assembles a frame from a rasterised BV image and BEV boxes.
    pub fn new(bev: BevImage, boxes: Vec<FrameBox>) -> Self {
        PerceptionFrame { bev, boxes }
    }

    /// The BV image.
    pub fn bev(&self) -> &BevImage {
        &self.bev
    }

    /// The detected boxes.
    pub fn boxes(&self) -> &[FrameBox] {
        &self.boxes
    }

    /// Boxes with confidence at least `min_confidence`.
    pub fn confident_boxes(&self, min_confidence: f64) -> impl Iterator<Item = &FrameBox> {
        self.boxes.iter().filter(move |b| b.confidence >= min_confidence)
    }

    /// Approximate transmitted size in bytes: sparse BV image plus
    /// 24 bytes per box (2×f32 centre, 2×f32 extents, f32 yaw, f32
    /// confidence).
    pub fn wire_size_bytes(&self) -> usize {
        self.bev.wire_size_bytes() + self.boxes.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_bev::BevConfig;
    use bba_geometry::{Vec2, Vec3};

    fn sample_frame() -> PerceptionFrame {
        let cfg = BevConfig::test_small();
        let bev =
            BevImage::height_map(vec![Vec3::new(1.0, 2.0, 5.0), Vec3::new(-4.0, 3.0, 2.0)], &cfg);
        let boxes = vec![
            FrameBox {
                bev: BevBox::new(Vec2::new(10.0, 0.0), Vec2::new(4.5, 1.9), 0.1),
                confidence: 0.9,
            },
            FrameBox {
                bev: BevBox::new(Vec2::new(-5.0, 8.0), Vec2::new(4.2, 1.8), -0.4),
                confidence: 0.2,
            },
        ];
        PerceptionFrame::new(bev, boxes)
    }

    #[test]
    fn accessors_and_filtering() {
        let f = sample_frame();
        assert_eq!(f.boxes().len(), 2);
        assert_eq!(f.confident_boxes(0.5).count(), 1);
        assert_eq!(f.confident_boxes(0.0).count(), 2);
    }

    #[test]
    fn wire_size_combines_image_and_boxes() {
        let f = sample_frame();
        assert_eq!(f.wire_size_bytes(), f.bev().wire_size_bytes() + 2 * 24);
        // Two occupied cells → 10 bytes of image payload.
        assert_eq!(f.bev().wire_size_bytes(), 10);
    }
}

//! The two-stage recovery algorithm (paper Algorithm 1).

use crate::config::BbAlignConfig;
use crate::frame::{FrameBox, PerceptionFrame};
use bba_bev::{BevConfig, BevImage};
use bba_features::{
    detect_keypoints, match_sets, ransac_rigid, ransac_rigid_hinted, DescriptorSet, PatchSamples,
    RansacError, RotationSweep,
};
use bba_geometry::{BevBox, Box3, Iso2, Iso3, Vec2, Vec3};
use bba_obs::Recorder;
use bba_signal::{FftWorkspace, LogGaborBank, MaxIndexMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::sync::OnceLock;
use std::time::Instant;

/// Stage-1 result: the BV image-matching alignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BvMatch {
    /// Coarse alignment `T_bv` in metres (other → ego).
    pub transform: Iso2,
    /// The same transform in pixel coordinates (diagnostics).
    pub transform_pixels: Iso2,
    /// RANSAC inlier count — the paper's `Inliers_bv`.
    pub inliers: usize,
    /// Number of descriptor matches fed to RANSAC.
    pub matches: usize,
    /// Keypoints detected on the ego / other BV image.
    pub keypoints: (usize, usize),
}

/// Wall-clock breakdown of one stage-1 run, phase by phase.
///
/// Filled by [`BbAlign::match_bv_timed`]; the describe / match / RANSAC
/// entries accumulate over every rotation hypothesis actually swept. Pure
/// instrumentation — the timed and untimed paths execute the same
/// operations on the same data, so results are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Stage1Timing {
    /// Log-Gabor MIM computation for both BV images (ms).
    pub mim_ms: f64,
    /// Keypoint detection on both images (ms).
    pub detect_ms: f64,
    /// Descriptor work (ms): the sample-once pass for both images plus
    /// every per-hypothesis re-bin.
    pub describe_ms: f64,
    /// Descriptor matching across all hypotheses (ms).
    pub match_ms: f64,
    /// RANSAC model extraction across all hypotheses (ms).
    pub ransac_ms: f64,
    /// Candidate alignment verification (ms; 0 unless enabled and needed).
    pub verify_ms: f64,
    /// Rotation hypotheses actually swept before the early exit.
    pub hypotheses_swept: usize,
}

/// Stage-2 result: the box-corner refinement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxAlignment {
    /// Refinement `T_box` in metres (applied after `T_bv`).
    pub transform: Iso2,
    /// RANSAC inlier count over corner correspondences — `Inliers_box`.
    pub inliers: usize,
    /// Number of overlapping box pairs used.
    pub box_pairs: usize,
}

/// The full recovery output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recovery {
    /// The recovered relative pose `T_2D = T_box × T_bv` (other → ego).
    pub transform: Iso2,
    /// The 3-D homogeneous lift of the paper's Eq. (1) (`t_z = 0`).
    pub transform_3d: Iso3,
    /// Stage-1 diagnostics.
    pub bv: BvMatch,
    /// Stage-2 diagnostics (`None` when disabled or when too few boxes
    /// overlapped — the recovery then falls back to stage 1 alone).
    pub box_alignment: Option<BoxAlignment>,
    /// The success thresholds this recovery was judged against.
    thresholds: (usize, usize),
}

impl Recovery {
    /// The paper's empirical success criterion:
    /// `Inliers_bv > 25 ∧ Inliers_box > 6` (configurable thresholds).
    pub fn is_success(&self) -> bool {
        self.bv.inliers > self.thresholds.0
            && self.box_alignment.as_ref().is_some_and(|b| b.inliers > self.thresholds.1)
    }

    /// Stage-1 inlier count (`Inliers_bv`).
    pub fn inliers_bv(&self) -> usize {
        self.bv.inliers
    }

    /// Stage-2 inlier count (`Inliers_box`; 0 when stage 2 did not run).
    pub fn inliers_box(&self) -> usize {
        self.box_alignment.as_ref().map_or(0, |b| b.inliers)
    }
}

/// Which path produced a [`WarmRecovery`] — see [`BbAlign::recover_warm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPath {
    /// The tracker-predicted transform passed direct verification; stage 1
    /// (MIM / detect / describe / match / RANSAC) was skipped entirely.
    WarmStart,
    /// A prediction existed but failed verification: the full cold
    /// pipeline ran, with the prediction offered to stage-1 RANSAC as
    /// hypothesis zero. Whenever that hint does not win outright, the
    /// result is bit-identical to [`BbAlign::recover`].
    ColdFallback,
    /// No usable prediction: the plain cold pipeline ran, bit-identical
    /// to [`BbAlign::recover`].
    Cold,
}

/// A [`Recovery`] annotated with the path that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmRecovery {
    /// The recovery result (same invariants as [`BbAlign::recover`]'s).
    pub recovery: Recovery,
    /// Which path produced it.
    pub path: RecoveryPath,
}

/// Fixed seed for the stage-2 residual check inside warm verification: the
/// check runs on its own RNG so the caller's stream is untouched and the
/// cold fallback stays bit-identical to [`BbAlign::recover`].
const WARM_VERIFY_SEED: u64 = 0xBBA1_16D0_57A2_7EED;

/// Peak-sharpness factor for warm verification: the refined transform's
/// alignment score must exceed every ±[`WARM_DECOY_OFFSET_M`] decoy score
/// by this ratio. The absolute score a true transform can reach varies
/// with scene density and raster resolution (≈0.40 on dense urban scenes,
/// ≈0.55 on sparse ones — visibility asymmetry caps it), but a true pose
/// is always a *sharp peak* of the score field (measured ≥1.2× its
/// neighbours) while a stale or aliased pose sits on the plateau (≈1.0×),
/// so the ratio separates where no absolute bar can.
const WARM_SHARPNESS: f64 = 1.1;

/// Minimum translation offset (m) of the four decoy transforms probed by
/// the warm sharpness check. The effective offset is
/// `max(WARM_DECOY_OFFSET_M, WARM_DECOY_OFFSET_CELLS × resolution)`: it
/// must clear the scorer's one-cell dilation by the same margin at every
/// raster, or coarse rasters would leave the decoys inside the true
/// peak's own support and fail sharp poses.
const WARM_DECOY_OFFSET_M: f64 = 3.0;

/// Decoy offset in BEV cells (see [`WARM_DECOY_OFFSET_M`]): one cell of
/// dilation plus three cells of clearance.
const WARM_DECOY_OFFSET_CELLS: f64 = 4.0;

/// Failure modes of the recovery pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoverError {
    /// A BV image yielded no keypoints (e.g. a featureless open area).
    NoKeypoints {
        /// Which side was featureless: `"ego"` or `"other"`.
        side: &'static str,
    },
    /// No descriptor matches survived the ratio/mutual tests.
    NoMatches,
    /// Stage-1 RANSAC found no consensus.
    NoConsensus(RansacError),
    /// The frames were built with different BV geometries.
    GeometryMismatch,
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::NoKeypoints { side } => {
                write!(f, "no keypoints detected on the {side} BV image")
            }
            RecoverError::NoMatches => write!(f, "no descriptor matches between BV images"),
            RecoverError::NoConsensus(e) => write!(f, "stage-1 registration failed: {e}"),
            RecoverError::GeometryMismatch => {
                write!(f, "perception frames use different BV rasterisation geometries")
            }
        }
    }
}

impl Error for RecoverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RecoverError::NoConsensus(e) => Some(e),
            _ => None,
        }
    }
}

/// The BB-Align pose-recovery engine.
///
/// Construction is cheap; the Log-Gabor filter bank is built lazily on
/// first use and cached (it depends only on the BV image size).
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct BbAlign {
    config: BbAlignConfig,
    bank: OnceLock<LogGaborBank>,
    /// Precomputed rotation-hypothesis binning tables (angle → offset→cell
    /// lookup); configuration-only, so built once and shared.
    sweep: OnceLock<RotationSweep>,
    /// Pool of FFT scratch workspaces, recycled across recoveries so the
    /// steady-state MIM computation allocates nothing per frame. Two are in
    /// flight per `match_bv` call (one per car's BV image). Retention is
    /// bounded by [`BbAlignConfig::pool_capacity`]; overflow buffers are
    /// dropped, and hit/miss/drop counts surface through the recorder as
    /// `pool.workspace.*` counters.
    workspaces: crate::pool::BoundedPool<FftWorkspace>,
    /// Pool of stage-1 describe scratch (patch-sample buffers + descriptor
    /// sets), recycled for the same reason; one set is in flight per
    /// `match_bv` call. Bounded like the workspace pool, with
    /// `pool.stage1.*` counters.
    stage1_scratch: crate::pool::BoundedPool<Stage1Scratch>,
    /// Observability sink (disabled by default — and then free). Records
    /// per-phase spans, inlier gauges, and success/failure counters; it
    /// never influences results, only observes them.
    obs: Recorder,
}

/// Reusable stage-1 buffers: the hypothesis-invariant patch samples of both
/// images and the descriptor sets they are re-binned into.
#[derive(Debug, Default)]
struct Stage1Scratch {
    ego_samples: PatchSamples,
    other_samples: PatchSamples,
    ego_set: DescriptorSet,
    other_set: DescriptorSet,
}

impl BbAlign {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`BbAlignConfig::validate`]).
    pub fn new(config: BbAlignConfig) -> Self {
        config.validate();
        let capacity = config.pool_capacity;
        BbAlign {
            config,
            bank: OnceLock::new(),
            sweep: OnceLock::new(),
            workspaces: crate::pool::BoundedPool::new(
                capacity,
                "pool.workspace.hits",
                "pool.workspace.misses",
                "pool.workspace.dropped",
            ),
            stage1_scratch: crate::pool::BoundedPool::new(
                capacity,
                "pool.stage1.hits",
                "pool.stage1.misses",
                "pool.stage1.dropped",
            ),
            obs: Recorder::disabled(),
        }
    }

    /// Installs an observability recorder (builder style). With an enabled
    /// recorder every recovery emits hierarchical timing spans
    /// (`recover/stage1/mim` … `recover/stage2`), inlier gauges, and
    /// success/failure counters; with the default disabled recorder the
    /// instrumentation short-circuits and the hot path stays
    /// allocation-free. Recorded timings never feed back into the
    /// algorithm, so results are bit-identical either way.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.obs = recorder;
        // Pin the active SIMD dispatch into every metrics snapshot (1 =
        // AVX2, 0 = portable) so perf artifacts recorded on different
        // hosts stay comparable.
        self.obs.gauge(
            "simd.dispatch_avx2",
            match bba_simd::active() {
                bba_simd::Dispatch::Avx2 => 1.0,
                bba_simd::Dispatch::Portable => 0.0,
            },
        );
        self
    }

    /// The engine's observability recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// The engine configuration.
    pub fn config(&self) -> &BbAlignConfig {
        &self.config
    }

    fn bank(&self) -> &LogGaborBank {
        self.bank.get_or_init(|| {
            let h = self.config.bev.image_size();
            LogGaborBank::new(h, h, self.config.log_gabor.clone())
        })
    }

    fn sweep(&self) -> &RotationSweep {
        self.sweep.get_or_init(|| {
            let hypotheses = self.config.rotation_hypotheses.max(1);
            let angles: Vec<f64> = (0..hypotheses)
                .map(|k| k as f64 * std::f64::consts::TAU / hypotheses as f64)
                .collect();
            RotationSweep::new(
                &self.config.descriptor,
                self.config.log_gabor.num_orientations,
                &angles,
            )
        })
    }

    /// Builds a transmissible [`PerceptionFrame`] from raw sensor-frame
    /// points and detected 3-D boxes with confidences. Detector-agnostic:
    /// any source of `(Box3, confidence)` works.
    pub fn frame_from_parts(
        &self,
        points: impl IntoIterator<Item = Vec3>,
        boxes: impl IntoIterator<Item = (Box3, f64)>,
    ) -> PerceptionFrame {
        let bev = BevImage::rasterize(points, &self.config.bev, self.config.bev_mode);
        let boxes = boxes
            .into_iter()
            .map(|(b, confidence)| FrameBox { bev: b.to_bev(), confidence })
            .collect();
        PerceptionFrame::new(bev, boxes)
    }

    /// Extracts a global place descriptor for `frame` (see `bba-place`),
    /// reusing the engine's shared Log-Gabor bank and pooled FFT
    /// workspaces — the same plans and scratch stage 1 runs on, so the
    /// steady-state filtering allocates nothing per frame. Callers that
    /// already hold a [`MaxIndexMap`] (a frame that just ran stage 1)
    /// should use [`bba_place::PlaceDescriptor::from_mim`] directly and
    /// skip the recomputation entirely.
    pub fn place_descriptor(
        &self,
        frame: &PerceptionFrame,
        config: &bba_place::PlaceConfig,
    ) -> bba_place::PlaceDescriptor {
        let _span = self.obs.span("place.extract");
        let bank = self.bank();
        let mut ws = self.workspaces.take(&self.obs);
        let mim = MaxIndexMap::compute_with_workspace(frame.bev().grid(), bank, &mut ws);
        self.workspaces.put(ws, &self.obs);
        bba_place::PlaceDescriptor::from_mim(&mim, config)
    }

    /// Stage 1: BV image matching (Algorithm 1, lines 5–11).
    ///
    /// Returns the coarse other→ego alignment.
    ///
    /// # Errors
    ///
    /// Returns [`RecoverError`] when keypoints, matches or RANSAC consensus
    /// are missing — the paper's "insufficient landmarks" failure regime.
    pub fn match_bv<R: Rng + ?Sized>(
        &self,
        ego: &PerceptionFrame,
        other: &PerceptionFrame,
        rng: &mut R,
    ) -> Result<BvMatch, RecoverError> {
        self.match_bv_timed(ego, other, rng).map(|(bv, _)| bv)
    }

    /// [`BbAlign::match_bv`] plus a per-phase wall-clock breakdown.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`BbAlign::match_bv`].
    pub fn match_bv_timed<R: Rng + ?Sized>(
        &self,
        ego: &PerceptionFrame,
        other: &PerceptionFrame,
        rng: &mut R,
    ) -> Result<(BvMatch, Stage1Timing), RecoverError> {
        self.match_bv_timed_hinted(ego, other, None, rng)
    }

    /// [`BbAlign::match_bv_timed`] with an optional pixel-space warm hint
    /// offered to stage-1 RANSAC as hypothesis zero. With `None` this is
    /// exactly the plain path (the hinted RANSAC entry consumes no RNG and
    /// delegates verbatim when there is no hint).
    fn match_bv_timed_hinted<R: Rng + ?Sized>(
        &self,
        ego: &PerceptionFrame,
        other: &PerceptionFrame,
        hint_pix: Option<&Iso2>,
        rng: &mut R,
    ) -> Result<(BvMatch, Stage1Timing), RecoverError> {
        let span = self.obs.span("stage1");
        let mut scratch = self.stage1_scratch.take(&self.obs);
        let out = self.match_bv_inner(ego, other, hint_pix, rng, &mut scratch);
        self.stage1_scratch.put(scratch, &self.obs);
        // Re-publish the phase breakdown (measured inside the inner run
        // regardless) as nested spans while the stage-1 span is still
        // open, so they land under its path.
        if self.obs.is_enabled() {
            match &out {
                Ok((bv, timing)) => {
                    self.obs.record_span_ms("mim", timing.mim_ms);
                    self.obs.record_span_ms("detect", timing.detect_ms);
                    self.obs.record_span_ms("describe", timing.describe_ms);
                    self.obs.record_span_ms("match", timing.match_ms);
                    self.obs.record_span_ms("ransac", timing.ransac_ms);
                    self.obs.record_span_ms("verify", timing.verify_ms);
                    self.obs.gauge("stage1.hypotheses_swept", timing.hypotheses_swept as f64);
                    self.obs.gauge("stage1.keypoints_ego", bv.keypoints.0 as f64);
                    self.obs.gauge("stage1.keypoints_other", bv.keypoints.1 as f64);
                    self.obs.gauge("stage1.matches", bv.matches as f64);
                    self.obs.gauge("stage1.inliers_bv", bv.inliers as f64);
                    self.obs.observe("stage1.inliers_bv", bv.inliers as f64);
                }
                Err(_) => self.obs.incr("stage1.failures"),
            }
        }
        drop(span);
        out
    }

    fn match_bv_inner<R: Rng + ?Sized>(
        &self,
        ego: &PerceptionFrame,
        other: &PerceptionFrame,
        hint_pix: Option<&Iso2>,
        rng: &mut R,
        scratch: &mut Stage1Scratch,
    ) -> Result<(BvMatch, Stage1Timing), RecoverError> {
        if ego.bev().config() != other.bev().config() {
            return Err(RecoverError::GeometryMismatch);
        }
        let cfg = &self.config;
        let mut timing = Stage1Timing::default();
        let ms = |t: Instant| t.elapsed().as_secs_f64() * 1e3;

        // MIM feature maps (needed for descriptors, and by default also as
        // the keypoint-detection image). The two cars' BV→MIM pipelines are
        // independent, so they run concurrently; each branch inherits half
        // the thread budget for its internal filter-bank parallelism.
        let bank = self.bank();
        let (mut ws_ego, mut ws_other) =
            (self.workspaces.take(&self.obs), self.workspaces.take(&self.obs));
        let t = Instant::now();
        let (mim_ego, mim_other) = bba_par::join(
            || MaxIndexMap::compute_with_workspace(ego.bev().grid(), bank, &mut ws_ego),
            || MaxIndexMap::compute_with_workspace(other.bev().grid(), bank, &mut ws_other),
        );
        timing.mim_ms = ms(t);
        self.workspaces.put(ws_ego, &self.obs);
        self.workspaces.put(ws_other, &self.obs);

        // Keypoints.
        let detect = |frame: &PerceptionFrame, mim: &MaxIndexMap| match cfg.keypoint_source {
            crate::config::KeypointSource::BvImage => {
                detect_keypoints(frame.bev().grid(), &cfg.keypoints)
            }
            crate::config::KeypointSource::MimAmplitude => {
                let max = mim.amplitude.max_value();
                if max <= 0.0 {
                    return Vec::new();
                }
                let normalised = mim.amplitude.map(|&a| a / max);
                detect_keypoints(&normalised, &cfg.keypoints)
            }
        };
        let t = Instant::now();
        let kp_ego = detect(ego, &mim_ego);
        if kp_ego.is_empty() {
            return Err(RecoverError::NoKeypoints { side: "ego" });
        }
        let kp_other = detect(other, &mim_other);
        timing.detect_ms = ms(t);
        if kp_other.is_empty() {
            return Err(RecoverError::NoKeypoints { side: "other" });
        }

        // Descriptors. Per-patch orientation normalisation is deliberately
        // avoided: estimating an angle from view-dependent samples is
        // unstable, while a global rotation hypothesis (RIFT-style, swept
        // below) keeps the descriptors raw and discriminative. Each image
        // is *sampled* exactly once — the per-hypothesis work is only the
        // cheap re-binning of the cached samples. The ego side is re-binned
        // once at hypothesis 0 (angle 0), the other side once per swept
        // hypothesis.
        let sweep = self.sweep();
        let Stage1Scratch { ego_samples, other_samples, ego_set, other_set } = scratch;
        let t = Instant::now();
        bba_par::join(
            || ego_samples.sample(&mim_ego, &kp_ego, &cfg.descriptor),
            || other_samples.sample(&mim_other, &kp_other, &cfg.descriptor),
        );
        ego_samples.rebin_into(sweep, 0, ego_set);
        timing.describe_ms = ms(t);
        if ego_set.is_empty() {
            return Err(RecoverError::NoKeypoints { side: "ego" });
        }
        let pix = |kp: &bba_features::Keypoint| Vec2::new(kp.u as f64 + 0.5, kp.v as f64 + 0.5);

        let hypotheses = sweep.hypotheses();
        let mut candidates: Vec<(bba_features::RansacResult, usize)> = Vec::new();
        let mut any_descriptors = false;
        let mut any_matches = false;
        let mut last_ransac_err = None;
        'sweep: for k in 0..hypotheses {
            timing.hypotheses_swept = k + 1;
            let t = Instant::now();
            other_samples.rebin_into(sweep, k, other_set);
            timing.describe_ms += ms(t);
            if other_set.is_empty() {
                continue;
            }
            any_descriptors = true;
            let t = Instant::now();
            let matches = match_sets(other_set, ego_set, &cfg.matcher);
            timing.match_ms += ms(t);
            if matches.len() < 2 {
                continue;
            }
            any_matches = true;
            let mut src: Vec<Vec2> =
                matches.iter().map(|m| pix(other_set.keypoint(m.src))).collect();
            let mut dst: Vec<Vec2> = matches.iter().map(|m| pix(ego_set.keypoint(m.dst))).collect();
            // Descriptor distances rank the correspondences for RANSAC's
            // PROSAC-style preview; they schedule work only and cannot
            // change the result.
            let mut qual: Vec<f64> = matches.iter().map(|m| m.distance).collect();

            // Sequential RANSAC: extract up to `stage1_candidates` disjoint
            // consensus models per hypothesis. In self-similar corridors an
            // aliased model often out-votes the true one, so surfacing
            // runner-up models for global verification is essential.
            let t = Instant::now();
            let mut stop_sweep = false;
            for _ in 0..cfg.stage1_candidates.max(1) {
                match ransac_rigid_hinted(&src, &dst, Some(&qual), hint_pix, &cfg.ransac_bv, rng) {
                    Ok(result) => {
                        // Unambiguously strong consensus: clears the success
                        // threshold AND explains at least half the matches.
                        // That only happens for the true transform (aliases
                        // never explain the majority), so stop sweeping.
                        // Same-direction traffic makes hypothesis 0 the
                        // common case, making this the usual fast path.
                        let strong = result.num_inliers > cfg.min_inliers_bv
                            && 2 * result.num_inliers >= matches.len();
                        // Remove this model's inliers before re-running.
                        let inlier_set: std::collections::HashSet<usize> =
                            result.inliers.iter().copied().collect();
                        let keep: Vec<usize> =
                            (0..src.len()).filter(|i| !inlier_set.contains(i)).collect();
                        candidates.push((result, matches.len()));
                        if strong {
                            stop_sweep = true;
                            break;
                        }
                        if keep.len() < cfg.ransac_bv.min_inliers.max(2) {
                            break;
                        }
                        src = keep.iter().map(|&i| src[i]).collect();
                        dst = keep.iter().map(|&i| dst[i]).collect();
                        qual = keep.iter().map(|&i| qual[i]).collect();
                    }
                    Err(e) => {
                        last_ransac_err = Some(e);
                        break;
                    }
                }
            }
            timing.ransac_ms += ms(t);
            if stop_sweep {
                break 'sweep;
            }
        }

        if candidates.is_empty() {
            if !any_descriptors {
                return Err(RecoverError::NoKeypoints { side: "other" });
            }
            if !any_matches {
                return Err(RecoverError::NoMatches);
            }
            return Err(RecoverError::NoConsensus(
                last_ransac_err.unwrap_or(RansacError::NoConsensus { best: 0, required: 2 }),
            ));
        }

        // Pick the winning candidate: by global BEV occupancy alignment
        // when verification is enabled (keypoint inliers break ties), by
        // inlier count otherwise. The ego occupancy mask is dilated once
        // and shared across all candidate scores.
        let (result, matches) = if cfg.alignment_verification && candidates.len() > 1 {
            let t = Instant::now();
            let scorer = AlignmentScorer::new(ego.bev());
            let cells = scorer.collect_occupied(other.bev());
            let picked = candidates
                .into_iter()
                .map(|(r, m)| {
                    let world = self.pixel_to_world_transform(&r.transform);
                    let score = scorer.score_cells(&cells, &world);
                    (score, r, m)
                })
                .max_by(|a, b| a.0.total_cmp(&b.0).then(a.1.num_inliers.cmp(&b.1.num_inliers)))
                .map(|(_, r, m)| (r, m))
                .expect("candidates is nonempty");
            timing.verify_ms = ms(t);
            picked
        } else {
            candidates
                .into_iter()
                .max_by_key(|(r, _)| r.num_inliers)
                .expect("candidates is nonempty")
        };

        Ok((
            BvMatch {
                transform: self.pixel_to_world_transform(&result.transform),
                transform_pixels: result.transform,
                inliers: result.num_inliers,
                matches,
                keypoints: (kp_ego.len(), kp_other.len()),
            },
            timing,
        ))
    }

    /// Converts a rigid transform expressed in continuous pixel coordinates
    /// into the same transform in metres. Rotation carries over directly
    /// (the raster is a uniform similarity); the translation follows from
    /// tracking the world origin through pixel space.
    fn pixel_to_world_transform(&self, t_pix: &Iso2) -> Iso2 {
        let bev = &self.config.bev;
        let origin_pix = bev.world_to_pixel_f(Vec2::ZERO);
        let moved = bev.pixel_to_world_f(t_pix.apply(origin_pix));
        Iso2::new(t_pix.yaw(), moved)
    }

    /// Inverse of [`BbAlign::pixel_to_world_transform`]: expresses a rigid
    /// transform given in metres in continuous pixel coordinates, by
    /// tracking the pixel origin's world point through the transform.
    fn world_to_pixel_transform(&self, t_world: &Iso2) -> Iso2 {
        let bev = &self.config.bev;
        let origin_world = bev.pixel_to_world_f(Vec2::ZERO);
        let moved = bev.world_to_pixel_f(t_world.apply(origin_world));
        Iso2::new(t_world.yaw(), moved)
    }

    /// Stage 2: bounding-box corner alignment (Algorithm 1, lines 12–14).
    ///
    /// `coarse` is the stage-1 transform. Returns `None` when fewer than
    /// two box pairs overlap (stage 2 is then skipped, per the fallback in
    /// [`BbAlign::recover`]).
    pub fn align_boxes<R: Rng + ?Sized>(
        &self,
        ego: &PerceptionFrame,
        other: &PerceptionFrame,
        coarse: &Iso2,
        rng: &mut R,
    ) -> Option<BoxAlignment> {
        let _span = self.obs.span("stage2");
        let out = self.align_boxes_inner(ego, other, coarse, rng);
        if self.obs.is_enabled() {
            match &out {
                Some(b) => {
                    self.obs.gauge("stage2.box_pairs", b.box_pairs as f64);
                    self.obs.gauge("stage2.inliers_box", b.inliers as f64);
                    self.obs.observe("stage2.inliers_box", b.inliers as f64);
                    // The refinement magnitude is itself the stage-2
                    // residual: how far stage 1 was from the box geometry.
                    let (dt, dr) = b.transform.error_to(&Iso2::IDENTITY);
                    self.obs.gauge("stage2.residual_t_m", dt);
                    self.obs.gauge("stage2.residual_r_rad", dr);
                }
                None => self.obs.incr("stage2.skipped"),
            }
        }
        out
    }

    fn align_boxes_inner<R: Rng + ?Sized>(
        &self,
        ego: &PerceptionFrame,
        other: &PerceptionFrame,
        coarse: &Iso2,
        rng: &mut R,
    ) -> Option<BoxAlignment> {
        let cfg = &self.config;
        let ego_boxes: Vec<&FrameBox> = ego.confident_boxes(cfg.box_min_confidence).collect();
        let other_boxes: Vec<BevBox> = other
            .confident_boxes(cfg.box_min_confidence)
            .map(|b| b.bev.transformed(coarse))
            .collect();
        if ego_boxes.is_empty() || other_boxes.is_empty() {
            return None;
        }

        // Greedy one-to-one pairing by centre distance under the gate.
        let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
        for (i, ob) in other_boxes.iter().enumerate() {
            for (j, eb) in ego_boxes.iter().enumerate() {
                let d = ob.center.distance(eb.bev.center);
                if d <= cfg.box_pair_max_distance {
                    candidates.push((i, j, d));
                }
            }
        }
        candidates.sort_by(|a, b| a.2.total_cmp(&b.2));
        let mut used_other = vec![false; other_boxes.len()];
        let mut used_ego = vec![false; ego_boxes.len()];
        let mut src = Vec::new();
        let mut dst = Vec::new();
        let mut pairs = 0usize;
        for (i, j, _) in candidates {
            if used_other[i] || used_ego[j] {
                continue;
            }
            used_other[i] = true;
            used_ego[j] = true;
            pairs += 1;
            match cfg.box_pairing {
                crate::config::BoxPairing::Corners => {
                    // Corresponding canonical corners (consistent ordering —
                    // see `bba_geometry::BevBox::canonical_corners`).
                    let co = other_boxes[i].canonical_corners();
                    let ce = ego_boxes[j].bev.canonical_corners();
                    src.extend_from_slice(&co);
                    dst.extend_from_slice(&ce);
                }
                crate::config::BoxPairing::Centers => {
                    src.push(other_boxes[i].center);
                    dst.push(ego_boxes[j].bev.center);
                }
            }
        }
        if pairs < 2 {
            return None;
        }

        let result = ransac_rigid(&src, &dst, &cfg.ransac_box, rng).ok()?;
        // With few box pairs the rotation is poorly constrained by noisy
        // corners; restrict the refinement to translation (the dominant
        // self-motion-distortion component per the paper's Fig. 14).
        let transform = if pairs < cfg.box_min_pairs_for_rotation {
            let mean = result.inliers.iter().fold(Vec2::ZERO, |acc, &k| acc + (dst[k] - src[k]))
                / result.inliers.len().max(1) as f64;
            Iso2::from_translation(mean)
        } else {
            result.transform
        };
        // Physical sanity: stage 2 corrects metres-scale residuals; a
        // larger "correction" means the boxes paired up wrong.
        let (dt, dr) = transform.error_to(&Iso2::IDENTITY);
        if dt > cfg.box_max_correction_t || dr > cfg.box_max_correction_r {
            return None;
        }
        Some(BoxAlignment { transform, inliers: result.num_inliers, box_pairs: pairs })
    }

    /// Runs the full two-stage recovery (Algorithm 1).
    ///
    /// Stage-2 failure (too few overlapping boxes) degrades gracefully to
    /// the stage-1 transform; such recoveries report `Inliers_box = 0` and
    /// fail [`Recovery::is_success`].
    ///
    /// # Errors
    ///
    /// Returns [`RecoverError`] when stage 1 cannot align the BV images at
    /// all.
    pub fn recover<R: Rng + ?Sized>(
        &self,
        ego: &PerceptionFrame,
        other: &PerceptionFrame,
        rng: &mut R,
    ) -> Result<Recovery, RecoverError> {
        self.recover_with_hint(ego, other, None, rng)
    }

    /// The cold pipeline, optionally seeding stage-1 RANSAC with a
    /// world-frame warm hint as hypothesis zero. With `None` (or whenever
    /// the hint does not win a RANSAC call outright) this is bit-identical
    /// to the plain [`BbAlign::recover`]: same RNG consumption, same
    /// result.
    fn recover_with_hint<R: Rng + ?Sized>(
        &self,
        ego: &PerceptionFrame,
        other: &PerceptionFrame,
        warm_hint: Option<&Iso2>,
        rng: &mut R,
    ) -> Result<Recovery, RecoverError> {
        let _span = self.obs.span("recover");
        self.obs.incr("recover.calls");
        // The stage-1 sweep matches keypoints in pixel coordinates, so the
        // hint is converted once here. Keypoint positions are unrotated
        // across rotation hypotheses (only descriptor binning rotates), so
        // one pixel-space hint is valid for every hypothesis.
        let hint_pix = warm_hint.map(|t| self.world_to_pixel_transform(t));
        let bv = match self.match_bv_timed_hinted(ego, other, hint_pix.as_ref(), rng) {
            Ok((bv, _)) => bv,
            Err(e) => {
                self.obs.incr("recover.failures");
                return Err(e);
            }
        };
        let box_alignment = if self.config.box_alignment {
            self.align_boxes(ego, other, &bv.transform, rng)
        } else {
            None
        };
        let transform = match &box_alignment {
            Some(b) => b.transform.compose(&bv.transform),
            None => bv.transform,
        };
        let recovery = Recovery {
            transform,
            transform_3d: Iso3::from_iso2(&transform, 0.0),
            bv,
            box_alignment,
            thresholds: (self.config.min_inliers_bv, self.config.min_inliers_box),
        };
        if recovery.is_success() {
            self.obs.incr("recover.success");
        }
        Ok(recovery)
    }

    /// Temporal warm start: recovery seeded by a tracker-predicted
    /// transform (see `PoseTracker::warm_prediction`).
    ///
    /// With a usable prediction the engine first *verifies it directly* —
    /// the [`AlignmentScorer`] coarse-to-fine occupancy screen against the
    /// [`BbAlignConfig::warm_min_alignment`] floor, then the stage-2
    /// box-alignment residual check, then the screen again on the refined
    /// transform plus a peak-sharpness test (the refined pose must beat
    /// four ±3 m decoy transforms — true poses are sharp maxima of the
    /// score field, stale and aliased poses sit on its plateau). On pass,
    /// the call returns a successful
    /// [`RecoveryPath::WarmStart`] recovery having skipped MIM / detect /
    /// describe / match / RANSAC entirely. On fail, the full cold pipeline
    /// runs with the prediction offered to stage-1 RANSAC as hypothesis
    /// zero ([`RecoveryPath::ColdFallback`]); without a prediction the
    /// plain cold pipeline runs ([`RecoveryPath::Cold`]). Both fallbacks
    /// are bit-identical to [`BbAlign::recover`] whenever the
    /// hypothesis-zero hint does not win a RANSAC call outright — warm
    /// verification runs on a fixed-seed internal RNG, so the caller's
    /// stream reaches the cold path untouched.
    ///
    /// Every call increments exactly one of the `warmstart.hit` /
    /// `warmstart.miss` counters (so their sum counts calls);
    /// `warmstart.fallback` counts the subset of misses that had a
    /// prediction.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`BbAlign::recover`] (the warm path itself
    /// never fails — it falls back).
    pub fn recover_warm<R: Rng + ?Sized>(
        &self,
        ego: &PerceptionFrame,
        other: &PerceptionFrame,
        predicted: Option<&Iso2>,
        rng: &mut R,
    ) -> Result<WarmRecovery, RecoverError> {
        let Some(predicted) = predicted else {
            self.obs.incr("warmstart.miss");
            let recovery = self.recover(ego, other, rng)?;
            return Ok(WarmRecovery { recovery, path: RecoveryPath::Cold });
        };
        if ego.bev().config() == other.bev().config() {
            let span = self.obs.span("warmstart.verify");
            let verified = self.verify_predicted(ego, other, predicted);
            drop(span);
            if let Some(recovery) = verified {
                self.obs.incr("warmstart.hit");
                self.obs.gauge("warmstart.inliers_bv", recovery.bv.inliers as f64);
                return Ok(WarmRecovery { recovery, path: RecoveryPath::WarmStart });
            }
        }
        self.obs.incr("warmstart.miss");
        self.obs.incr("warmstart.fallback");
        let recovery = self.recover_with_hint(ego, other, Some(predicted), rng)?;
        Ok(WarmRecovery { recovery, path: RecoveryPath::ColdFallback })
    }

    /// Direct verification of a predicted transform, without stage 1.
    ///
    /// Returns a fully-successful [`Recovery`] (it would pass
    /// [`Recovery::is_success`]) or `None` when any check fails. The
    /// stage-2 residual check runs on a fixed-seed RNG so the caller's
    /// stream is preserved for the cold fallback.
    fn verify_predicted(
        &self,
        ego: &PerceptionFrame,
        other: &PerceptionFrame,
        predicted: &Iso2,
    ) -> Option<Recovery> {
        let cfg = &self.config;
        // A warm recovery must clear the same success criterion as a cold
        // one, and Inliers_box > min requires stage 2.
        if !cfg.box_alignment {
            return None;
        }
        let scorer = AlignmentScorer::new(ego.bev());
        let cells = scorer.collect_occupied(other.bev());
        let check = scorer.score_cells_detail(&cells, predicted);
        self.obs.gauge("warmstart.alignment", check.score);
        // Absolute floor on the raw prediction: rules out hopeless
        // predictions (a gross alias or a blown track scores well under
        // this at every raster) before paying for box alignment.
        if check.score < cfg.warm_min_alignment {
            return None;
        }
        // Box-alignment residual check: the boxes must agree with (and
        // refine) the prediction just as they would a stage-1 transform.
        let mut verify_rng = StdRng::seed_from_u64(WARM_VERIFY_SEED);
        let b = self.align_boxes(ego, other, predicted, &mut verify_rng)?;
        if b.inliers <= cfg.min_inliers_box {
            return None;
        }
        let transform = b.transform.compose(predicted);
        let refined = scorer.score_cells_detail(&cells, &transform);
        if refined.score < cfg.warm_min_alignment || refined.hits <= cfg.min_inliers_bv {
            return None;
        }
        // Peak-sharpness gate: a true pose is a sharp local maximum of the
        // alignment-score field, while stale tracks and aliases sit on the
        // surrounding plateau. The refined transform must beat four
        // translation decoys by [`WARM_SHARPNESS`]; the absolute score a
        // true pose reaches is scene-dependent, the sharpness is not.
        let off = WARM_DECOY_OFFSET_M.max(WARM_DECOY_OFFSET_CELLS * cfg.bev.resolution);
        let sharp = [(off, 0.0), (-off, 0.0), (0.0, off), (0.0, -off)].iter().all(|&(dx, dy)| {
            let decoy = Iso2::new(transform.yaw(), transform.translation() + Vec2::new(dx, dy));
            scorer.score_cells_detail(&cells, &decoy).score * WARM_SHARPNESS < refined.score
        });
        if !sharp {
            return None;
        }
        let bv = BvMatch {
            transform: *predicted,
            transform_pixels: self.world_to_pixel_transform(predicted),
            // Warm recoveries carry cell-level consensus: the occupied
            // cells the verified transform lands on the dilated ego mask.
            inliers: refined.hits,
            matches: 0,
            keypoints: (0, 0),
        };
        let recovery = Recovery {
            transform,
            transform_3d: Iso3::from_iso2(&transform, 0.0),
            bv,
            box_alignment: Some(b),
            thresholds: (cfg.min_inliers_bv, cfg.min_inliers_box),
        };
        debug_assert!(recovery.is_success());
        Some(recovery)
    }
}

/// Global BEV occupancy alignment scoring with a precomputed, shared ego
/// mask.
///
/// Keypoint inlier counts measure *local* agreement around matched
/// features; the alignment score measures *global* agreement of everything
/// both cars rasterised — the quantity that separates the true transform
/// from a locally self-similar alias.
///
/// Construction dilates the ego image's occupancy by one cell (3×3) once;
/// every subsequent [`AlignmentScorer::score`] is then a single mask probe
/// per mapped cell instead of a 3×3 occupancy re-scan, which is what makes
/// scoring many candidate transforms against one ego image cheap.
///
/// For scoring several candidate transforms, collect the other image's
/// occupied cells once with [`AlignmentScorer::collect_occupied`] and score
/// through [`AlignmentScorer::score_cells`]: same value as [`score`]
/// bit for bit, but the full-raster sweep and the `pixel_center` math are
/// paid once instead of per candidate, and a coarse 4×-downsampled
/// block-OR of the dilated mask screens each probe before touching the
/// full-resolution mask (a coarse miss is a guaranteed fine miss, so the
/// screen cannot change the score).
///
/// [`score`]: AlignmentScorer::score
#[derive(Debug, Clone)]
pub struct AlignmentScorer {
    bev: BevConfig,
    /// Row-major: cell `(u, v)` is true iff any ego cell within the 3×3
    /// window around it is occupied.
    dilated: Vec<bool>,
    size: usize,
    /// Block-OR of `dilated` over `COARSE`×`COARSE` tiles: a coarse cell is
    /// true iff *any* fine cell in its tile is. Superset by construction,
    /// so probing it first is an exact screen.
    coarse: Vec<bool>,
    coarse_w: usize,
}

/// Downsampling factor of the coarse screening mask.
const COARSE: usize = 4;

/// One BEV image's occupied cells as SoA world coordinates (cell centres),
/// collected once by [`AlignmentScorer::collect_occupied`] and shared
/// across every candidate transform scored against the same ego image.
#[derive(Debug, Clone)]
pub struct OccupiedCells {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

/// Outcome of one coarse-to-fine alignment screen
/// ([`AlignmentScorer::score_cells_detail`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentCheck {
    /// The alignment score: `hits / mapped`, or `0.0` below the 30-cell
    /// co-visibility cutoff.
    pub score: f64,
    /// Occupied cells that mapped inside the ego raster.
    pub mapped: usize,
    /// Mapped cells landing on the dilated ego occupancy.
    pub hits: usize,
}

impl OccupiedCells {
    /// Number of occupied cells collected.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the source image had no occupied cells at all.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

impl AlignmentScorer {
    /// Precomputes the dilated occupancy mask of the ego image.
    pub fn new(ego: &BevImage) -> Self {
        let grid = ego.grid();
        let size = grid.width();
        let h = size as isize;
        let mut dilated = vec![false; size * grid.height()];
        bba_par::par_for_rows(&mut dilated, size, |v, row| {
            for (u, out) in row.iter_mut().enumerate() {
                'win: for du in -1..=1isize {
                    for dv in -1..=1isize {
                        let (a, b) = (u as isize + du, v as isize + dv);
                        if a >= 0
                            && b >= 0
                            && a < h
                            && b < h
                            && grid[(a as usize, b as usize)] > 1e-9
                        {
                            *out = true;
                            break 'win;
                        }
                    }
                }
            }
        });
        let height = dilated.len().checked_div(size).unwrap_or(0);
        let coarse_w = size.div_ceil(COARSE).max(1);
        let coarse_h = height.div_ceil(COARSE).max(1);
        let mut coarse = vec![false; coarse_w * coarse_h];
        for v in 0..height {
            let row = &dilated[v * size..(v + 1) * size];
            let crow = (v / COARSE) * coarse_w;
            for (u, &d) in row.iter().enumerate() {
                if d {
                    coarse[crow + u / COARSE] = true;
                }
            }
        }
        AlignmentScorer { bev: *ego.config(), dilated, size, coarse, coarse_w }
    }

    /// Collects the world-frame centres of `other`'s occupied cells once,
    /// for repeated scoring via [`AlignmentScorer::score_cells`]. Cell
    /// order (and therefore every downstream float accumulation) matches
    /// the raster sweep in [`AlignmentScorer::score`].
    pub fn collect_occupied(&self, other: &BevImage) -> OccupiedCells {
        let bev = &self.bev;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (u, v, &x) in other.grid().iter_cells() {
            if x <= 1e-9 {
                continue;
            }
            let p = bev.pixel_center(u, v);
            xs.push(p.x);
            ys.push(p.y);
        }
        OccupiedCells { xs, ys }
    }

    /// Fast scoring path: bit-identical value to
    /// [`AlignmentScorer::score`], evaluated over a precollected
    /// occupied-cell list with the transform's `sin_cos` hoisted out of the
    /// loop and the coarse mask screening each probe.
    pub fn score_cells(&self, cells: &OccupiedCells, transform: &Iso2) -> f64 {
        self.score_cells_detail(cells, transform).score
    }

    /// [`AlignmentScorer::score_cells`] plus the raw mapped/hit counts —
    /// the warm-start verifier reads the hit count as the recovery's
    /// cell-level consensus. The score is computed by the exact same
    /// operations, so it stays bit-identical to [`AlignmentScorer::score`].
    pub fn score_cells_detail(&self, cells: &OccupiedCells, transform: &Iso2) -> AlignmentCheck {
        let bev = &self.bev;
        let h = self.size as isize;
        let (sin, cos) = transform.yaw().sin_cos();
        let t = transform.translation();
        let mut mapped = 0usize;
        let mut hits = 0usize;
        for k in 0..cells.xs.len() {
            let (x, y) = (cells.xs[k], cells.ys[k]);
            // Exactly `transform.apply(pixel_center)` with sin_cos hoisted.
            let world = Vec2::new((cos * x - sin * y) + t.x, (sin * x + cos * y) + t.y);
            let p = bev.world_to_pixel_f(world);
            let (eu, ev) = (p.x.floor() as isize, p.y.floor() as isize);
            if eu < 0 || ev < 0 || eu >= h || ev >= h {
                continue;
            }
            mapped += 1;
            let (u, v) = (eu as usize, ev as usize);
            if self.coarse[(v / COARSE) * self.coarse_w + u / COARSE]
                && self.dilated[v * self.size + u]
            {
                hits += 1;
            }
        }
        // Below 30 mapped cells there is too little co-visible content for
        // the score to mean anything.
        let score = if mapped < 30 { 0.0 } else { hits as f64 / mapped as f64 };
        AlignmentCheck { score, mapped, hits }
    }

    /// The fraction of the other image's occupied cells that land within
    /// one cell of an occupied ego cell after `transform` (cells mapping
    /// outside the ego raster are excluded from the denominator).
    pub fn score(&self, other: &BevImage, transform: &Iso2) -> f64 {
        let bev = &self.bev;
        let h = self.size as isize;
        let mut mapped = 0usize;
        let mut hits = 0usize;
        for (u, v, &x) in other.grid().iter_cells() {
            if x <= 1e-9 {
                continue;
            }
            let world = transform.apply(bev.pixel_center(u, v));
            let p = bev.world_to_pixel_f(world);
            let (eu, ev) = (p.x.floor() as isize, p.y.floor() as isize);
            if eu < 0 || ev < 0 || eu >= h || ev >= h {
                continue;
            }
            mapped += 1;
            if self.dilated[ev as usize * self.size + eu as usize] {
                hits += 1;
            }
        }
        if mapped < 30 {
            // Too little co-visible content for the score to mean anything.
            return 0.0;
        }
        hits as f64 / mapped as f64
    }
}

/// One-shot convenience wrapper: builds an [`AlignmentScorer`] for `ego`
/// and scores `transform`. Prefer the scorer directly when evaluating
/// several candidate transforms against the same ego image.
pub fn alignment_score(ego: &BevImage, other: &BevImage, transform: &Iso2) -> f64 {
    AlignmentScorer::new(ego).score(other, transform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BbAlignConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Synthetic world landmarks: vertical structures with distinctive
    /// corners, expressed in the ego frame.
    fn landmark_points() -> Vec<Vec3> {
        let mut pts = Vec::new();
        // Three "building walls" at different heights and orientations.
        let walls: [(Vec2, Vec2, f64); 4] = [
            (Vec2::new(-12.0, 8.0), Vec2::new(-2.0, 8.0), 6.0),
            (Vec2::new(-2.0, 8.0), Vec2::new(-2.0, 15.0), 6.0),
            (Vec2::new(5.0, -10.0), Vec2::new(14.0, -6.0), 9.0),
            (Vec2::new(-14.0, -8.0), Vec2::new(-8.0, -14.0), 4.0),
        ];
        for (a, b, height) in walls {
            let n = 60;
            for k in 0..=n {
                let p = a.lerp(b, k as f64 / n as f64);
                for h in 0..6 {
                    pts.push(Vec3::from_xy(p, height * (0.5 + h as f64 / 10.0)));
                }
            }
        }
        // A few isolated "tree tops".
        for (x, y, z) in [(9.0, 9.0, 5.0), (-9.0, 1.0, 7.0), (2.0, -13.0, 6.0)] {
            for du in -1..=1 {
                for dv in -1..=1 {
                    pts.push(Vec3::new(x + du as f64 * 0.4, y + dv as f64 * 0.4, z));
                }
            }
        }
        pts
    }

    fn car_boxes() -> Vec<(Box3, f64)> {
        [
            (Vec2::new(6.0, 2.0), 0.2),
            (Vec2::new(-4.0, -5.0), -0.1),
            (Vec2::new(0.0, 10.0), 1.4),
            (Vec2::new(-10.0, 5.0), 0.05),
        ]
        .iter()
        .map(|&(c, yaw)| (Box3::new(Vec3::from_xy(c, 0.8), Vec3::new(4.5, 1.9, 1.6), yaw), 0.9))
        .collect()
    }

    /// Builds the two frames for a known relative pose `truth` (other→ego):
    /// the other car observes the same world through `truth⁻¹`.
    fn frame_pair(aligner: &BbAlign, truth: &Iso2) -> (PerceptionFrame, PerceptionFrame) {
        let inv = truth.inverse();
        let pts = landmark_points();
        let boxes = car_boxes();
        let ego = aligner.frame_from_parts(pts.iter().copied(), boxes.iter().copied());
        let other = aligner.frame_from_parts(
            pts.iter().map(|p| Vec3::from_xy(inv.apply(p.xy()), p.z)),
            boxes.iter().map(|(b, c)| (b.transformed(&inv), *c)),
        );
        (ego, other)
    }

    #[test]
    fn recovers_identity() {
        let aligner = BbAlign::new(BbAlignConfig::test_small());
        let truth = Iso2::IDENTITY;
        let (ego, other) = frame_pair(&aligner, &truth);
        let mut rng = StdRng::seed_from_u64(1);
        let r = aligner.recover(&ego, &other, &mut rng).unwrap();
        let (dt, dr) = r.transform.error_to(&truth);
        assert!(dt < 0.5, "translation error {dt}");
        assert!(dr < 0.05, "rotation error {dr}");
    }

    #[test]
    fn recovers_translation_and_rotation() {
        let aligner = BbAlign::new(BbAlignConfig::test_small());
        let truth = Iso2::new(0.35, Vec2::new(6.0, -3.0));
        let (ego, other) = frame_pair(&aligner, &truth);
        let mut rng = StdRng::seed_from_u64(2);
        let r = aligner.recover(&ego, &other, &mut rng).unwrap();
        let (dt, dr) = r.transform.error_to(&truth);
        assert!(dt < 0.8, "translation error {dt} (recovered {})", r.transform);
        assert!(dr < 0.06, "rotation error {dr}");
        assert!(r.inliers_bv() >= 6);
    }

    #[test]
    fn stage2_refines_stage1() {
        // Perturb the other car's *points* with a small rigid offset that
        // its *boxes* do not share (a self-motion-distortion surrogate):
        // stage 1 locks onto the distorted landmarks, stage 2 pulls the
        // estimate back toward the box geometry.
        let aligner = BbAlign::new(BbAlignConfig::test_small());
        let truth = Iso2::new(0.1, Vec2::new(4.0, 2.0));
        let inv = truth.inverse();
        let drift = Iso2::new(0.004, Vec2::new(0.45, -0.3)); // distortion
        let pts = landmark_points();
        let boxes = car_boxes();
        let ego = aligner.frame_from_parts(pts.iter().copied(), boxes.iter().copied());
        let other = aligner.frame_from_parts(
            pts.iter().map(|p| Vec3::from_xy(drift.apply(inv.apply(p.xy())), p.z)),
            boxes.iter().map(|(b, c)| (b.transformed(&inv), *c)),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let full = aligner.recover(&ego, &other, &mut rng).unwrap();
        assert!(full.box_alignment.is_some(), "stage 2 should engage");
        let (dt_full, _) = full.transform.error_to(&truth);
        let (dt_bv, _) = full.bv.transform.error_to(&truth);
        assert!(
            dt_full < dt_bv + 1e-9,
            "stage 2 should not hurt: full {dt_full} vs stage1 {dt_bv}"
        );
        assert!(dt_full < 0.4, "refined error {dt_full}");
    }

    #[test]
    fn ablation_config_skips_stage2() {
        let aligner = BbAlign::new(BbAlignConfig::test_small().without_box_alignment());
        let truth = Iso2::new(0.2, Vec2::new(3.0, 1.0));
        let (ego, other) = frame_pair(&aligner, &truth);
        let mut rng = StdRng::seed_from_u64(4);
        let r = aligner.recover(&ego, &other, &mut rng).unwrap();
        assert!(r.box_alignment.is_none());
        assert_eq!(r.inliers_box(), 0);
        assert!(!r.is_success(), "stage-1-only recovery cannot meet the success criterion");
    }

    #[test]
    fn empty_world_fails_cleanly() {
        let aligner = BbAlign::new(BbAlignConfig::test_small());
        let empty = aligner.frame_from_parts(std::iter::empty(), std::iter::empty());
        let mut rng = StdRng::seed_from_u64(5);
        let e = aligner.recover(&empty, &empty, &mut rng).unwrap_err();
        assert!(matches!(e, RecoverError::NoKeypoints { .. }), "{e}");
    }

    #[test]
    fn mismatched_geometry_is_rejected() {
        let small = BbAlign::new(BbAlignConfig::test_small());
        let big = BbAlign::new(BbAlignConfig::default());
        let f_small = small.frame_from_parts(landmark_points(), car_boxes());
        let f_big = big.frame_from_parts(landmark_points(), car_boxes());
        let mut rng = StdRng::seed_from_u64(6);
        let e = small.recover(&f_small, &f_big, &mut rng).unwrap_err();
        assert_eq!(e, RecoverError::GeometryMismatch);
    }

    #[test]
    fn pixel_world_transform_conversion() {
        let aligner = BbAlign::new(BbAlignConfig::test_small());
        let bev = &aligner.config().bev;
        // A known world transform, expressed in pixel space, converts back.
        let t_world = Iso2::new(0.3, Vec2::new(2.0, -1.5));
        // Build the pixel-space equivalent by conjugation with the raster
        // map: pix' = w2p(T(p2w(pix))).
        let p0 = Vec2::new(10.0, 20.0);
        let p1 = Vec2::new(100.0, 47.0);
        let map = |p: Vec2| bev.world_to_pixel_f(t_world.apply(bev.pixel_to_world_f(p)));
        let t_pix = bba_geometry::fit_rigid_2d(&[p0, p1], &[map(p0), map(p1)]).unwrap();
        let back = aligner.pixel_to_world_transform(&t_pix);
        assert!(back.approx_eq(&t_world, 1e-9, 1e-9), "{back} vs {t_world}");
    }

    #[test]
    fn world_pixel_transform_roundtrip() {
        let aligner = BbAlign::new(BbAlignConfig::test_small());
        for t in [
            Iso2::IDENTITY,
            Iso2::new(0.3, Vec2::new(2.0, -1.5)),
            Iso2::new(-1.2, Vec2::new(-40.0, 17.5)),
        ] {
            let pix = aligner.world_to_pixel_transform(&t);
            let back = aligner.pixel_to_world_transform(&pix);
            assert!(back.approx_eq(&t, 1e-9, 1e-9), "{back} vs {t}");
        }
    }

    #[test]
    fn warm_start_verifies_a_good_prediction_without_stage1() {
        let recorder = bba_obs::Recorder::enabled();
        let aligner = BbAlign::new(BbAlignConfig::test_small()).with_recorder(recorder.clone());
        let truth = Iso2::new(0.35, Vec2::new(6.0, -3.0));
        let (ego, other) = frame_pair(&aligner, &truth);
        let mut rng = StdRng::seed_from_u64(11);
        let untouched = rng.clone();
        let w = aligner.recover_warm(&ego, &other, Some(&truth), &mut rng).unwrap();
        assert_eq!(w.path, RecoveryPath::WarmStart);
        assert!(w.recovery.is_success(), "warm recoveries must clear the success criterion");
        let (dt, dr) = w.recovery.transform.error_to(&truth);
        assert!(dt < 0.8, "translation error {dt}");
        assert!(dr < 0.06, "rotation error {dr}");
        // Stage 1 never ran and the caller's RNG was never touched.
        assert_eq!(w.recovery.bv.matches, 0);
        assert_eq!(w.recovery.bv.keypoints, (0, 0));
        assert_eq!(rng, untouched);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("warmstart.hit"), Some(1));
        assert_eq!(snap.counter("warmstart.miss"), None);
        assert_eq!(snap.counter("recover.calls"), None, "cold pipeline must not have run");
    }

    #[test]
    fn warm_miss_falls_back_bit_identically_to_cold() {
        let recorder = bba_obs::Recorder::enabled();
        let aligner = BbAlign::new(BbAlignConfig::test_small()).with_recorder(recorder.clone());
        let truth = Iso2::new(0.35, Vec2::new(6.0, -3.0));
        let (ego, other) = frame_pair(&aligner, &truth);
        // A prediction mapping everything off-raster: the screen scores 0
        // and the pixel-space hint can never win a RANSAC call.
        let bad = Iso2::new(0.35, Vec2::new(400.0, 400.0));
        let mut rng_warm = StdRng::seed_from_u64(21);
        let mut rng_cold = StdRng::seed_from_u64(21);
        let warm = aligner.recover_warm(&ego, &other, Some(&bad), &mut rng_warm).unwrap();
        let cold = aligner.recover(&ego, &other, &mut rng_cold).unwrap();
        assert_eq!(warm.path, RecoveryPath::ColdFallback);
        assert_eq!(warm.recovery, cold, "fallback must be bit-identical to recover");
        assert_eq!(warm.recovery.transform.yaw().to_bits(), cold.transform.yaw().to_bits());
        assert_eq!(rng_warm, rng_cold, "fallback must consume the same RNG stream");
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("warmstart.miss"), Some(1));
        assert_eq!(snap.counter("warmstart.fallback"), Some(1));
    }

    #[test]
    fn warm_without_prediction_is_plain_cold() {
        let recorder = bba_obs::Recorder::enabled();
        let aligner = BbAlign::new(BbAlignConfig::test_small()).with_recorder(recorder.clone());
        let truth = Iso2::new(0.2, Vec2::new(3.0, 1.0));
        let (ego, other) = frame_pair(&aligner, &truth);
        let mut rng_warm = StdRng::seed_from_u64(31);
        let mut rng_cold = StdRng::seed_from_u64(31);
        let warm = aligner.recover_warm(&ego, &other, None, &mut rng_warm).unwrap();
        let cold = aligner.recover(&ego, &other, &mut rng_cold).unwrap();
        assert_eq!(warm.path, RecoveryPath::Cold);
        assert_eq!(warm.recovery, cold);
        assert_eq!(rng_warm, rng_cold);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("warmstart.miss"), Some(1));
        assert_eq!(snap.counter("warmstart.fallback"), None);
    }

    #[test]
    fn warm_start_requires_stage2_to_be_enabled() {
        let aligner = BbAlign::new(BbAlignConfig::test_small().without_box_alignment());
        let truth = Iso2::new(0.2, Vec2::new(3.0, 1.0));
        let (ego, other) = frame_pair(&aligner, &truth);
        let mut rng = StdRng::seed_from_u64(41);
        let w = aligner.recover_warm(&ego, &other, Some(&truth), &mut rng).unwrap();
        // Without stage 2 a warm recovery could never clear Inliers_box,
        // so the warm path must decline and fall back.
        assert_eq!(w.path, RecoveryPath::ColdFallback);
    }

    #[test]
    fn errors_are_displayable() {
        for e in [
            RecoverError::NoKeypoints { side: "ego" },
            RecoverError::NoMatches,
            RecoverError::GeometryMismatch,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn coarse_to_fine_alignment_score_is_bit_identical() {
        let aligner = BbAlign::new(BbAlignConfig::test_small());
        let truth = Iso2::new(0.35, Vec2::new(6.0, -3.0));
        let (ego, other) = frame_pair(&aligner, &truth);
        let scorer = AlignmentScorer::new(ego.bev());
        let cells = scorer.collect_occupied(other.bev());
        assert!(!cells.is_empty());
        // True transform, identity, aliases, off-raster and large-angle
        // candidates: naive raster sweep and coarse-to-fine cells path must
        // return the exact same bits, including the mapped<30 cutoff.
        let candidates = [
            truth,
            Iso2::IDENTITY,
            Iso2::new(-0.35, Vec2::new(-6.0, 3.0)),
            Iso2::new(3.0, Vec2::new(0.5, 0.5)),
            Iso2::new(0.35, Vec2::new(400.0, 400.0)), // maps almost everything off-raster
            Iso2::new(1.7, Vec2::new(-12.0, 9.0)),
        ];
        for t in &candidates {
            let naive = scorer.score(other.bev(), t);
            let fast = scorer.score_cells(&cells, t);
            assert_eq!(naive.to_bits(), fast.to_bits(), "transform {t}");
        }
    }
}

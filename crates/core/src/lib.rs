//! **BB-Align**: training-free two-stage pose recovery for V2V cooperative
//! perception (Song et al., ICDCS 2024).
//!
//! When two vehicles share perception data, the receiver must transform the
//! sender's data into its own frame using the relative pose — which GPS
//! failures, measurement noise or transmission errors can corrupt
//! arbitrarily. BB-Align recovers the 3-DoF relative pose `(α, t_x, t_y)`
//! from the shared data itself, with no learned model and no prior pose:
//!
//! 1. **Stage 1 — BV image matching** ([`BbAlign::match_bv`]): both cars
//!    rasterise their LiDAR scans into bird's-eye-view height maps
//!    (`bba-bev`); a Log-Gabor Maximum Index Map (`bba-signal`) makes the
//!    sparse images matchable; FAST keypoints + BVFT descriptors +
//!    RANSAC (`bba-features`) produce a coarse alignment `T_bv` with an
//!    inlier count `Inliers_bv`.
//! 2. **Stage 2 — bounding-box alignment** ([`BbAlign::align_boxes`]): the
//!    sender's detected boxes, transformed by `T_bv`, are paired with the
//!    receiver's overlapping boxes; corresponding canonical corners feed a
//!    second RANSAC producing the refinement `T_box` (with `Inliers_box`)
//!    that cancels self-motion-distortion residuals.
//!
//! The recovered transform is `T_2D = T_box × T_bv` (Algorithm 1), lifted
//! to the paper's 4×4 homogeneous matrix via [`bba_geometry::Iso3`].
//!
//! The paper's empirical success criterion — `Inliers_bv > 25` and
//! `Inliers_box > 6` — is exposed as [`Recovery::is_success`].
//!
//! # Example
//!
//! ```no_run
//! use bb_align::{BbAlign, BbAlignConfig, PerceptionFrame};
//! use bba_dataset::{Dataset, DatasetConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut dataset = Dataset::new(DatasetConfig::standard(), 7);
//! let pair = dataset.next_pair().unwrap();
//!
//! let aligner = BbAlign::new(BbAlignConfig::default());
//! // Each car builds its transmissible frame: a BV image + BEV boxes.
//! // The framework is detector-agnostic: it takes raw points and
//! // (box, confidence) pairs from whatever detector the car runs.
//! let ego = aligner.frame_from_parts(
//!     pair.ego.scan.points().iter().map(|p| p.position),
//!     pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
//! );
//! let other = aligner.frame_from_parts(
//!     pair.other.scan.points().iter().map(|p| p.position),
//!     pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
//! );
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let recovery = aligner.recover(&ego, &other, &mut rng)?;
//! let (t_err, r_err) = recovery.transform.error_to(&pair.true_relative);
//! println!("translation error {t_err:.2} m, rotation error {:.2}°", r_err.to_degrees());
//! # Ok::<(), bb_align::RecoverError>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod frame;
pub mod pool;
pub mod recover;
pub mod tracking;
pub mod wire;

pub use config::{BbAlignConfig, BoxPairing, KeypointSource};
pub use frame::PerceptionFrame;
pub use pool::BoundedPool;
pub use recover::{
    AlignmentCheck, AlignmentScorer, BbAlign, BoxAlignment, BvMatch, RecoverError, Recovery,
    RecoveryPath, Stage1Timing, WarmRecovery,
};
pub use tracking::{PoseTracker, TrackPrediction, TrackerConfig, TrackerConfigError};
pub use wire::{decode_frame, encode_frame, DecodeError, WireReport};

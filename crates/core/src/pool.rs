//! Bounded scratch-buffer pools shared across recoveries.
//!
//! The engine recycles [`bba_signal::FftWorkspace`] and stage-1 describe
//! scratch so the steady-state pipeline allocates nothing per frame. The
//! original pools were plain `Mutex<Vec<T>>` with unbounded growth: under
//! N concurrent callers the high-water mark is N live buffers, and every
//! one of them is retained forever even if the service later settles at a
//! much lower concurrency. A fleet-scale service multiplexing hundreds of
//! sessions over one shared engine needs the opposite guarantee — a fixed
//! ceiling on retained scratch, with overflow buffers simply dropped back
//! to the allocator.
//!
//! [`BoundedPool`] provides that: `take` pops a recycled buffer (a *hit*)
//! or builds a fresh default (a *miss*); `put` returns a buffer unless the
//! pool is already at capacity, in which case the buffer is dropped and
//! counted. All three outcomes are exposed through `bba-obs` counters
//! (`<prefix>.hits` / `<prefix>.misses` / `<prefix>.dropped`), so a
//! metrics snapshot shows exactly how well the scratch set covers the
//! offered concurrency.

use bba_obs::Recorder;
use std::sync::Mutex;

/// A mutex-guarded object pool with a hard retention ceiling.
///
/// Misses are unbounded by design — `take` never blocks and never fails;
/// it is the *retained* memory that is capped. `capacity` therefore bounds
/// steady-state memory while transient concurrency spikes degrade to
/// allocation, not to queueing.
#[derive(Debug)]
pub struct BoundedPool<T> {
    items: Mutex<Vec<T>>,
    capacity: usize,
    /// Static metric prefix (e.g. `"pool.workspace"`); kept `'static` so
    /// counter recording never allocates a name.
    hits_metric: &'static str,
    misses_metric: &'static str,
    dropped_metric: &'static str,
}

impl<T: Default> BoundedPool<T> {
    /// An empty pool retaining at most `capacity` items. The metric names
    /// are fixed per pool so hot-path recording is a static-str counter
    /// bump.
    pub const fn new(
        capacity: usize,
        hits_metric: &'static str,
        misses_metric: &'static str,
        dropped_metric: &'static str,
    ) -> Self {
        BoundedPool {
            items: Mutex::new(Vec::new()),
            capacity,
            hits_metric,
            misses_metric,
            dropped_metric,
        }
    }

    /// Pops a recycled item, or builds `T::default()` when the pool is
    /// empty. Never blocks beyond the (short) mutex critical section.
    pub fn take(&self, obs: &Recorder) -> T {
        let popped = self.items.lock().expect("pool lock").pop();
        match popped {
            Some(item) => {
                obs.incr(self.hits_metric);
                item
            }
            None => {
                obs.incr(self.misses_metric);
                T::default()
            }
        }
    }

    /// Returns an item to the pool; at capacity the item is dropped (and
    /// the drop counted) instead of growing the pool.
    pub fn put(&self, item: T, obs: &Recorder) {
        let mut items = self.items.lock().expect("pool lock");
        if items.len() < self.capacity {
            items.push(item);
        } else {
            drop(items);
            obs.incr(self.dropped_metric);
        }
    }

    /// The retention ceiling.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of idle items currently retained.
    pub fn len(&self) -> usize {
        self.items.lock().expect("pool lock").len()
    }

    /// True when no idle items are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pool(capacity: usize) -> BoundedPool<Vec<u8>> {
        BoundedPool::new(capacity, "pool.test.hits", "pool.test.misses", "pool.test.dropped")
    }

    #[test]
    fn take_from_empty_pool_is_a_miss() {
        let pool = test_pool(2);
        let obs = Recorder::enabled();
        let item = pool.take(&obs);
        assert!(item.is_empty());
        let snap = obs.snapshot();
        assert_eq!(snap.counter("pool.test.misses"), Some(1));
        assert_eq!(snap.counter("pool.test.hits"), None);
    }

    #[test]
    fn put_then_take_is_a_hit_and_recycles_the_item() {
        let pool = test_pool(2);
        let obs = Recorder::enabled();
        pool.put(vec![1, 2, 3], &obs);
        assert_eq!(pool.len(), 1);
        let item = pool.take(&obs);
        assert_eq!(item, vec![1, 2, 3]);
        assert!(pool.is_empty());
        assert_eq!(obs.snapshot().counter("pool.test.hits"), Some(1));
    }

    #[test]
    fn pool_never_retains_more_than_capacity() {
        let pool = test_pool(3);
        let obs = Recorder::enabled();
        for i in 0..10 {
            pool.put(vec![i], &obs);
        }
        assert_eq!(pool.len(), 3);
        assert_eq!(obs.snapshot().counter("pool.test.dropped"), Some(7));
    }

    #[test]
    fn zero_capacity_pool_drops_everything() {
        let pool = test_pool(0);
        let obs = Recorder::enabled();
        pool.put(vec![1], &obs);
        assert!(pool.is_empty());
        assert_eq!(obs.snapshot().counter("pool.test.dropped"), Some(1));
        // Every take is a miss but still succeeds.
        let _ = pool.take(&obs);
        assert_eq!(obs.snapshot().counter("pool.test.misses"), Some(1));
    }

    #[test]
    fn concurrent_callers_stay_bounded() {
        use std::sync::Arc;
        let pool = Arc::new(test_pool(4));
        let obs = Recorder::enabled();
        std::thread::scope(|s| {
            for _ in 0..16 {
                let pool = Arc::clone(&pool);
                let obs = obs.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        let item = pool.take(&obs);
                        pool.put(item, &obs);
                    }
                });
            }
        });
        assert!(pool.len() <= 4, "retained {} > capacity 4", pool.len());
        let snap = obs.snapshot();
        let hits = snap.counter("pool.test.hits").unwrap_or(0);
        let misses = snap.counter("pool.test.misses").unwrap_or(0);
        assert_eq!(hits + misses, 16 * 50, "every take is a hit or a miss");
    }

    #[test]
    fn disabled_recorder_costs_nothing_and_changes_nothing() {
        let pool = test_pool(1);
        let obs = Recorder::disabled();
        pool.put(vec![9], &obs);
        assert_eq!(pool.take(&obs), vec![9]);
        assert!(obs.snapshot().is_empty());
    }
}

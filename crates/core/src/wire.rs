//! Bandwidth accounting: the paper's communication-cost argument.
//!
//! §III: "Due to the highly compressed nature of BV images, the
//! communication cost associated with transmitting this information is
//! significantly lower compared to transmitting raw Lidar data or even
//! processed feature maps." This module quantifies that comparison for a
//! given frame.

use crate::frame::{FrameBox, PerceptionFrame};
use bba_bev::{BevConfig, BevImage, BevMode};
use bba_geometry::{BevBox, Vec2};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Per-frame wire-size comparison between transmission strategies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireReport {
    /// Raw point cloud (3 × f32 per point) — early fusion's payload.
    pub raw_cloud_bytes: usize,
    /// Dense intermediate feature map (the paper's "processed feature
    /// maps"): modelled as `C` channels of f16 over the BEV grid.
    pub feature_map_bytes: usize,
    /// BB-Align's payload: sparse BV image + boxes.
    pub bb_align_bytes: usize,
    /// Late fusion's payload: boxes only.
    pub boxes_only_bytes: usize,
}

impl WireReport {
    /// Number of feature channels assumed for the intermediate-fusion
    /// estimate (typical PointPillars-style BEV backbones use 64–384).
    pub const FEATURE_CHANNELS: usize = 64;

    /// Builds the report for one frame.
    ///
    /// `num_points` is the raw scan size the frame was built from.
    pub fn for_frame(frame: &PerceptionFrame, num_points: usize) -> WireReport {
        let h = frame.bev().size();
        WireReport {
            raw_cloud_bytes: num_points * 12,
            feature_map_bytes: h * h * Self::FEATURE_CHANNELS * 2,
            bb_align_bytes: frame.wire_size_bytes(),
            boxes_only_bytes: frame.boxes().len() * box_wire_bytes(),
        }
    }

    /// Compression factor of the BB-Align payload vs. the raw cloud.
    pub fn saving_vs_raw(&self) -> f64 {
        self.raw_cloud_bytes as f64 / self.bb_align_bytes.max(1) as f64
    }

    /// Compression factor vs. an intermediate feature map.
    pub fn saving_vs_features(&self) -> f64 {
        self.feature_map_bytes as f64 / self.bb_align_bytes.max(1) as f64
    }
}

/// Error returned when a wire payload cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the declared content.
    Truncated,
    /// The header magic or version did not match.
    BadHeader,
    /// A cell index lay outside the declared raster.
    CellOutOfRange,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadHeader => write!(f, "bad magic or unsupported version"),
            DecodeError::CellOutOfRange => write!(f, "cell index outside raster"),
        }
    }
}

impl Error for DecodeError {}

const MAGIC: &[u8; 4] = b"BBA1";
/// Height quantisation step (m per intensity unit): u8 spans 0–25.5 m,
/// covering every landmark the generator produces.
const HEIGHT_QUANT: f64 = 0.1;

/// Encodes a perception frame into the compact V2V payload:
///
/// ```text
/// magic "BBA1" | range f64 | resolution f64 | n_cells u32 | n_boxes u16
/// cells:  (u u16, v u16, height u8) × n_cells        — sparse BV image
/// boxes:  (cx f32, cy f32, ex f32, ey f32, yaw f32, conf f32) × n_boxes
/// ```
///
/// Heights are quantised to 0.1 m — far below the 0.8 m raster's
/// geometric error, so recovery quality is unaffected (see the round-trip
/// tests). This is the byte stream the paper's bandwidth argument is
/// about; [`PerceptionFrame::wire_size_bytes`] estimates its size without
/// building it.
pub fn encode_frame(frame: &PerceptionFrame) -> Vec<u8> {
    let bev = frame.bev();
    let cells: Vec<(u16, u16, u8)> = bev
        .grid()
        .iter_cells()
        .filter(|(_, _, &h)| h > 1e-9)
        .map(|(u, v, &h)| {
            (u as u16, v as u16, ((h / HEIGHT_QUANT).round() as u64).clamp(1, 255) as u8)
        })
        .collect();
    let mut out = Vec::with_capacity(26 + cells.len() * 5 + frame.boxes().len() * 24);
    out.extend_from_slice(MAGIC);
    // Raster geometry at full precision: the receiver's pixel↔world
    // mapping must match the sender's bit for bit.
    out.extend_from_slice(&bev.config().range.to_le_bytes());
    out.extend_from_slice(&bev.config().resolution.to_le_bytes());
    out.extend_from_slice(&(cells.len() as u32).to_le_bytes());
    out.extend_from_slice(&(frame.boxes().len() as u16).to_le_bytes());
    for (u, v, q) in cells {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
        out.push(q);
    }
    for b in frame.boxes() {
        encode_box(b, &mut out);
    }
    out
}

/// Serialises one box in the frame payload's box record format.
fn encode_box(b: &FrameBox, out: &mut Vec<u8>) {
    for value in
        [b.bev.center.x, b.bev.center.y, b.bev.extents.x, b.bev.extents.y, b.bev.yaw, b.confidence]
    {
        out.extend_from_slice(&(value as f32).to_le_bytes());
    }
}

/// Wire size of one serialised box record, derived from the serialiser
/// itself so size accounting ([`WireReport`]) cannot drift from the
/// actual encoding.
pub fn box_wire_bytes() -> usize {
    let mut buf = Vec::new();
    encode_box(
        &FrameBox { bev: BevBox::new(Vec2::ZERO, Vec2::new(1.0, 1.0), 0.0), confidence: 1.0 },
        &mut buf,
    );
    buf.len()
}

/// Decodes a payload produced by [`encode_frame`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, bad header, or out-of-raster
/// cell indices.
pub fn decode_frame(bytes: &[u8]) -> Result<PerceptionFrame, DecodeError> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8], DecodeError> {
        let s = bytes.get(*cursor..*cursor + n).ok_or(DecodeError::Truncated)?;
        *cursor += n;
        Ok(s)
    };
    if take(&mut cursor, 4)? != MAGIC {
        return Err(DecodeError::BadHeader);
    }
    let f32_at = |s: &[u8]| f32::from_le_bytes(s.try_into().expect("4 bytes"));
    let f64_at = |s: &[u8]| f64::from_le_bytes(s.try_into().expect("8 bytes"));
    let range = f64_at(take(&mut cursor, 8)?);
    let resolution = f64_at(take(&mut cursor, 8)?);
    // NaN-safe: the header floats must be finite and positive.
    if !(range.is_finite() && range > 0.0 && resolution.is_finite() && resolution > 0.0) {
        return Err(DecodeError::BadHeader);
    }
    let n_cells = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
    let n_boxes = u16::from_le_bytes(take(&mut cursor, 2)?.try_into().expect("2 bytes")) as usize;

    let config = BevConfig { range, resolution };
    let h = config.image_size();
    let mut grid = bba_signal::Grid::new(h, h, 0.0f64);
    for _ in 0..n_cells {
        let u = u16::from_le_bytes(take(&mut cursor, 2)?.try_into().expect("2 bytes")) as usize;
        let v = u16::from_le_bytes(take(&mut cursor, 2)?.try_into().expect("2 bytes")) as usize;
        let q = take(&mut cursor, 1)?[0];
        if u >= h || v >= h {
            return Err(DecodeError::CellOutOfRange);
        }
        grid[(u, v)] = q as f64 * HEIGHT_QUANT;
    }
    let mut boxes = Vec::with_capacity(n_boxes);
    for _ in 0..n_boxes {
        let mut vals = [0.0f64; 6];
        for v in &mut vals {
            *v = f32_at(take(&mut cursor, 4)?) as f64;
        }
        boxes.push(FrameBox {
            bev: BevBox::new(
                Vec2::new(vals[0], vals[1]),
                Vec2::new(vals[2].max(0.1), vals[3].max(0.1)),
                vals[4],
            ),
            confidence: vals[5].clamp(0.0, 1.0),
        });
    }
    Ok(PerceptionFrame::new(BevImage::from_grid(grid, config, BevMode::Height), boxes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBox;
    use bba_bev::{BevConfig, BevImage};
    use bba_geometry::{BevBox, Vec2, Vec3};

    fn frame_with_occupancy(cells: usize) -> PerceptionFrame {
        let cfg = BevConfig::test_small();
        let pts: Vec<Vec3> = (0..cells)
            .map(|i| Vec3::new((i % 50) as f64 * 0.45 - 11.0, (i / 50) as f64 * 0.45 - 11.0, 3.0))
            .collect();
        let bev = BevImage::height_map(pts, &cfg);
        let boxes = vec![FrameBox {
            bev: BevBox::new(Vec2::new(5.0, 0.0), Vec2::new(4.5, 1.9), 0.0),
            confidence: 0.8,
        }];
        PerceptionFrame::new(bev, boxes)
    }

    #[test]
    fn bb_align_payload_is_much_smaller_than_raw() {
        let frame = frame_with_occupancy(1000);
        let report = WireReport::for_frame(&frame, 20_000);
        assert_eq!(report.raw_cloud_bytes, 240_000);
        assert!(report.bb_align_bytes < 10_000);
        assert!(report.saving_vs_raw() > 20.0);
    }

    #[test]
    fn feature_maps_are_the_largest() {
        let frame = frame_with_occupancy(100);
        let report = WireReport::for_frame(&frame, 20_000);
        assert!(report.feature_map_bytes > report.raw_cloud_bytes);
        assert!(report.saving_vs_features() > report.saving_vs_raw());
    }

    #[test]
    fn late_fusion_is_smallest() {
        let frame = frame_with_occupancy(100);
        let report = WireReport::for_frame(&frame, 20_000);
        assert!(report.boxes_only_bytes < report.bb_align_bytes);
        assert_eq!(report.boxes_only_bytes, 24);
    }

    #[test]
    fn box_wire_bytes_matches_encoder() {
        // 6 × f32 per box record.
        assert_eq!(box_wire_bytes(), 24);
        // Adding one box to a frame grows the payload by exactly the
        // derived per-box size — WireReport accounting cannot drift from
        // the encoder.
        let frame = frame_with_occupancy(100);
        let mut boxes = frame.boxes().to_vec();
        boxes.push(FrameBox {
            bev: BevBox::new(Vec2::new(-3.0, 7.0), Vec2::new(4.2, 1.8), 0.4),
            confidence: 0.5,
        });
        let bigger = PerceptionFrame::new(frame.bev().clone(), boxes);
        assert_eq!(encode_frame(&bigger).len() - encode_frame(&frame).len(), box_wire_bytes());
        let report = WireReport::for_frame(&bigger, 1000);
        assert_eq!(report.boxes_only_bytes, 2 * box_wire_bytes());
    }

    #[test]
    fn encode_decode_roundtrip_preserves_structure() {
        let frame = frame_with_occupancy(400);
        let bytes = encode_frame(&frame);
        let back = decode_frame(&bytes).unwrap();
        assert_eq!(back.bev().config(), frame.bev().config());
        assert_eq!(back.boxes().len(), frame.boxes().len());
        // Occupancy pattern identical; heights within quantisation error.
        let mut max_err = 0.0f64;
        for (u, v, &h) in frame.bev().grid().iter_cells() {
            let hb = back.bev().grid()[(u, v)];
            assert_eq!(h > 1e-9, hb > 1e-9, "occupancy changed at ({u},{v})");
            if h > 1e-9 {
                max_err = max_err.max((h - hb).abs());
            }
        }
        assert!(max_err <= HEIGHT_QUANT / 2.0 + 1e-9, "height error {max_err}");
        // Box geometry within f32 precision.
        for (a, b) in frame.boxes().iter().zip(back.boxes()) {
            assert!((a.bev.center - b.bev.center).norm() < 1e-4);
            assert!((a.bev.yaw - b.bev.yaw).abs() < 1e-4);
            assert!((a.confidence - b.confidence).abs() < 1e-4);
        }
    }

    #[test]
    fn encoded_size_matches_estimate() {
        let frame = frame_with_occupancy(250);
        let bytes = encode_frame(&frame);
        // Header is 26 bytes; the estimate counts cells and boxes only.
        assert_eq!(bytes.len(), 26 + frame.wire_size_bytes());
        assert!(bytes.len() <= frame.wire_size_bytes() + 64);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode_frame(b"no").unwrap_err(), DecodeError::Truncated);
        assert_eq!(decode_frame(b"nope").unwrap_err(), DecodeError::BadHeader);
        assert_eq!(decode_frame(b"XXXX____________________").unwrap_err(), DecodeError::BadHeader);
        // Truncated mid-cells.
        let frame = frame_with_occupancy(50);
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes[..bytes.len() - 3]).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn recovery_works_on_decoded_frames() {
        // The payload carries everything recovery needs: quantisation must
        // not break matching.
        use crate::config::BbAlignConfig;
        use crate::recover::BbAlign;
        use rand::SeedableRng;
        let aligner = BbAlign::new(BbAlignConfig::test_small());
        // A structured synthetic scene (walls + blobs) as in recover tests.
        let mut pts = Vec::new();
        for k in 0..=60 {
            let t = k as f64 / 60.0;
            pts.push(Vec3::new(-12.0 + 10.0 * t, 8.0, 6.0));
            pts.push(Vec3::new(5.0 + 9.0 * t, -10.0 + 4.0 * t, 8.0));
            pts.push(Vec3::new(-2.0, 8.0 + 7.0 * t, 5.0));
        }
        let truth = bba_geometry::Iso2::new(0.2, Vec2::new(4.0, -2.0));
        let inv = truth.inverse();
        let ego = aligner.frame_from_parts(pts.iter().copied(), std::iter::empty());
        let other_raw = aligner.frame_from_parts(
            pts.iter().map(|p| Vec3::from_xy(inv.apply(p.xy()), p.z)),
            std::iter::empty(),
        );
        // Ship the other frame through the wire.
        let other = decode_frame(&encode_frame(&other_raw)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let r = aligner.match_bv(&ego, &other, &mut rng).unwrap();
        let (dt, dr) = r.transform.error_to(&truth);
        assert!(dt < 1.0, "translation error {dt} after wire round-trip");
        assert!(dr < 0.1, "rotation error {dr}");
    }
}

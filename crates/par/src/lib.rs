//! Deterministic data-parallel substrate for the BB-Align workspace.
//!
//! Stage 1 of the pipeline (Log-Gabor MIM, descriptors, RANSAC scoring) is
//! embarrassingly parallel, but no external thread-pool crates are available
//! offline, so this crate hand-rolls one on [`std::thread::scope`]. The
//! design constraint that shapes everything here is **bit-exactness**: every
//! helper collects results *by index*, never by completion order, so the
//! output of a parallel run is identical — to the last bit — to the serial
//! run. That is what lets the serial≡parallel equivalence suite
//! (`tests/parallel_equivalence.rs` at the workspace root) treat every
//! parallelised hot path as a testable claim rather than a hopeful
//! optimisation.
//!
//! # Thread budget
//!
//! The number of worker threads is a per-thread *budget*, resolved as:
//!
//! 1. a scoped override installed by [`with_threads`] (how tests and the
//!    bench binaries pin a count),
//! 2. else the `BBA_THREADS` environment variable,
//! 3. else [`std::thread::available_parallelism`].
//!
//! A budget of 1 short-circuits every helper to a plain serial loop on the
//! calling thread — no threads are spawned, no locks taken. Nested calls
//! split the budget instead of multiplying it: a [`join`] under a budget of
//! 8 hands each branch a budget of 4, and a `par_map` worker runs its inner
//! parallel calls serially (its share is 1). The total number of live
//! workers therefore never exceeds the top-level budget.
//!
//! # Panics
//!
//! A panic inside a worker closure propagates to the caller when the scope
//! joins ([`std::thread::scope`] re-raises it), so a parallel map panics
//! exactly like the serial loop would — callers need no extra handling.
//!
//! # Example
//!
//! ```
//! let squares = bba_par::par_map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Bit-identical at any thread count:
//! let serial = bba_par::with_threads(1, || bba_par::par_map(&[1u64, 2, 3], |x| x * x));
//! let wide = bba_par::with_threads(8, || bba_par::par_map(&[1u64, 2, 3], |x| x * x));
//! assert_eq!(serial, wide);
//! ```

#![warn(missing_docs)]

use bba_obs::Recorder;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The process-wide recorder for pool occupancy metrics. Unset by default:
/// the gate is a single atomic load, so uninstrumented users (and the
/// allocation-free hot-path tests, which never install one) pay nothing.
static OBS: OnceLock<Recorder> = OnceLock::new();

/// Installs a process-wide observability recorder for the parallel
/// substrate. From then on every chunked run records worker occupancy
/// (`par.workers` gauge), chunk counts (`par.chunks`), and how often the
/// serial fast path short-circuits (`par.serial_ops` vs `par.parallel_ops`).
///
/// Returns `false` when a recorder was already installed (the install is
/// once-per-process; the original recorder stays in place).
pub fn install_recorder(recorder: Recorder) -> bool {
    OBS.set(recorder).is_ok()
}

/// The installed recorder, if any and enabled.
fn obs() -> Option<&'static Recorder> {
    OBS.get().filter(|r| r.is_enabled())
}

thread_local! {
    /// The calling thread's remaining thread budget (`None` = unresolved,
    /// fall back to the process default).
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Parses a `BBA_THREADS` value; `None` for absent or malformed input.
fn parse_threads(value: Option<&str>) -> Option<usize> {
    value.and_then(|v| v.trim().parse::<usize>().ok()).map(|n| n.max(1))
}

/// The process-wide default thread count: `BBA_THREADS` when set (clamped to
/// at least 1), else the machine's available parallelism. Resolved once and
/// cached.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        parse_threads(std::env::var("BBA_THREADS").ok().as_deref())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// The thread budget in effect on the calling thread (see the crate docs
/// for the resolution order).
pub fn current_threads() -> usize {
    BUDGET.with(|b| b.get()).unwrap_or_else(default_threads)
}

/// Runs `f` with the calling thread's budget set to `threads` (clamped to
/// at least 1), restoring the previous budget afterwards — also on panic.
///
/// This is the scoped, race-free alternative to mutating `BBA_THREADS`:
/// the equivalence tests run the same pipeline under `with_threads(1)` and
/// `with_threads(k)` and assert bit-identical results.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.0));
        }
    }
    let prev = BUDGET.with(|b| b.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Core chunk runner: evaluates `eval(lo, hi)` over `n` items split into
/// `chunk_size`-sized half-open ranges, concatenating the per-chunk outputs
/// **in chunk order**. Workers pull chunk indices from an atomic counter
/// (dynamic load balance) but the reduction sorts by index, so the result
/// is independent of scheduling.
fn run_chunks<U: Send>(
    n: usize,
    chunk_size: usize,
    eval: impl Fn(usize, usize) -> Vec<U> + Sync,
) -> Vec<U> {
    let chunk = chunk_size.max(1);
    let n_chunks = n.div_ceil(chunk);
    let threads = current_threads();
    let workers = threads.min(n_chunks);
    if workers <= 1 {
        // Serial fast path: one pass on the calling thread.
        if let Some(r) = obs() {
            r.incr("par.serial_ops");
        }
        return eval(0, n);
    }
    if let Some(r) = obs() {
        r.incr("par.parallel_ops");
        r.add("par.chunks", n_chunks as u64);
        r.gauge("par.workers", workers as f64);
    }
    let inner = (threads / workers).max(1);
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                BUDGET.with(|b| b.set(Some(inner)));
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let out = eval(lo, (lo + chunk).min(n));
                    done.lock().expect("no worker poisoned the result lock").push((c, out));
                }
            });
        }
    });
    let mut parts = done.into_inner().expect("all workers joined cleanly");
    parts.sort_unstable_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(n);
    for (_, part) in parts {
        out.extend(part);
    }
    out
}

/// A chunk size splitting `n` items into ~4 chunks per worker — enough
/// slack for dynamic balance without drowning in scheduling overhead.
fn auto_chunk(n: usize) -> usize {
    n.div_ceil(current_threads().max(1) * 4).max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Bit-identical to `items.iter().map(f).collect()` at every thread count.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_chunked(items, auto_chunk(items.len()), f)
}

/// [`par_map`] with an explicit chunk size (items per work unit). Chunk
/// sizes larger than the input degenerate to the serial fast path.
pub fn par_map_chunked<T: Sync, U: Send>(
    items: &[T],
    chunk_size: usize,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    run_chunks(items.len(), chunk_size, |lo, hi| items[lo..hi].iter().map(&f).collect())
}

/// Maps `f` over the index range `0..n` in parallel, returning results in
/// index order — the slice-free sibling of [`par_map`] for loops like
/// "for every image column".
pub fn par_map_indices<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    run_chunks(n, auto_chunk(n), |lo, hi| (lo..hi).map(&f).collect())
}

/// Applies `f(row_index, row)` to every consecutive `row_len`-sized chunk
/// of `data` in parallel (the last row may be shorter). Each row is a
/// disjoint `&mut` slice, so no synchronisation is needed on the data
/// itself; determinism follows from `f` seeing exactly the serial loop's
/// `(index, contents)`.
///
/// # Panics
///
/// Panics if `row_len` is zero.
pub fn par_for_rows<T: Send>(data: &mut [T], row_len: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    assert!(row_len > 0, "row length must be positive");
    let n_rows = data.len().div_ceil(row_len);
    let threads = current_threads().min(n_rows.max(1));
    if threads <= 1 {
        if let Some(r) = obs() {
            r.incr("par.serial_ops");
        }
        for (v, row) in data.chunks_mut(row_len).enumerate() {
            f(v, row);
        }
        return;
    }
    if let Some(r) = obs() {
        r.incr("par.parallel_ops");
        r.add("par.chunks", n_rows as u64);
        r.gauge("par.workers", threads as f64);
    }
    let inner = (current_threads() / threads).max(1);
    let work: Mutex<Vec<(usize, &mut [T])>> =
        Mutex::new(data.chunks_mut(row_len).enumerate().collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                BUDGET.with(|b| b.set(Some(inner)));
                loop {
                    let item = work.lock().expect("no worker poisoned the work queue").pop();
                    let Some((v, row)) = item else { break };
                    f(v, row);
                }
            });
        }
    });
}

/// Deterministic chunked early-exit scan: evaluates `eval(i)` for
/// `i ∈ 0..n` and feeds the results to `visit(i, result)` **strictly in
/// index order** until `visit` returns [`std::ops::ControlFlow::Break`] or the range
/// is exhausted.
///
/// Evaluation is batched `chunk_size` indices at a time; each batch is
/// computed in parallel (via the ordered chunk runner) and then visited
/// serially, so a `Break` skips every later batch. Under a thread budget of
/// 1 the scan degenerates to the classic lazy loop — evaluate one index,
/// visit it, stop at the same index the serial loop would.
///
/// Determinism contract: when `eval` is a pure function of its index, the
/// visited prefix — indices, values and the stopping point — is identical
/// at every thread count; chunking only affects how far *past* the break
/// point `eval` is speculatively called. Callers whose `eval` reads shared
/// state updated by `visit` (e.g. a best-so-far bound) must ensure the
/// final outcome is invariant to `eval` seeing a stale value, because a
/// batch is evaluated before any of it is visited.
pub fn par_scan_chunked<U: Send>(
    n: usize,
    chunk_size: usize,
    eval: impl Fn(usize) -> U + Sync,
    mut visit: impl FnMut(usize, U) -> std::ops::ControlFlow<()>,
) {
    use std::ops::ControlFlow;
    if current_threads() <= 1 {
        if let Some(r) = obs() {
            r.incr("par.serial_ops");
        }
        for i in 0..n {
            if let ControlFlow::Break(()) = visit(i, eval(i)) {
                return;
            }
        }
        return;
    }
    let chunk = chunk_size.max(1);
    for start in (0..n).step_by(chunk) {
        let end = (start + chunk).min(n);
        let batch = par_map_indices(end - start, |off| eval(start + off));
        for (off, value) in batch.into_iter().enumerate() {
            if let ControlFlow::Break(()) = visit(start + off, value) {
                return;
            }
        }
    }
}

/// Runs two closures concurrently, returning both results. Each branch
/// inherits half the caller's thread budget (so its own inner `par_map`
/// calls stay within the total). Under a budget of 1 both run serially on
/// the calling thread, in order.
pub fn join<A: Send, B: Send>(
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
) -> (A, B) {
    let threads = current_threads();
    if threads <= 1 {
        if let Some(r) = obs() {
            r.incr("par.serial_ops");
        }
        return (fa(), fb());
    }
    if let Some(r) = obs() {
        r.incr("par.joins");
    }
    let inner = (threads / 2).max(1);
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            BUDGET.with(|b| b.set(Some(inner)));
            fb()
        });
        let ra = with_threads(inner, fa);
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn parse_threads_handles_env_forms() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("nope")), None);
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), Some(1), "zero clamps to one");
    }

    #[test]
    fn par_map_preserves_order_at_every_width() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in 1..=8 {
            let got = with_threads(threads, || par_map(&items, |x| x * x + 1));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty: [u32; 0] = [];
        assert!(with_threads(8, || par_map(&empty, |x| *x)).is_empty());
        assert!(with_threads(8, || par_map_indices(0, |i| i)).is_empty());
        let mut nothing: [f64; 0] = [];
        with_threads(8, || par_for_rows(&mut nothing, 3, |_, _| panic!("no rows to visit")));
    }

    #[test]
    fn chunk_size_larger_than_input_is_serial() {
        let items = [1, 2, 3];
        let main_id = std::thread::current().id();
        let got = with_threads(8, || {
            par_map_chunked(&items, 1000, |x| (x * 10, std::thread::current().id()))
        });
        assert_eq!(got.iter().map(|&(v, _)| v).collect::<Vec<_>>(), vec![10, 20, 30]);
        // One chunk ⇒ one worker ⇒ the serial fast path on the caller.
        assert!(got.iter().all(|&(_, id)| id == main_id));
    }

    #[test]
    fn budget_one_takes_serial_fast_path() {
        let main_id = std::thread::current().id();
        let ids = with_threads(1, || par_map(&[1, 2, 3, 4], |_| std::thread::current().id()));
        assert!(ids.iter().all(|&id| id == main_id), "budget 1 must not spawn");
        assert_eq!(with_threads(1, current_threads), 1);
    }

    #[test]
    fn nested_par_map_splits_the_budget() {
        // 8 items under a budget of 8 → 8 single-chunk workers, each left
        // with a budget of 8/8 = 1: the inner call must run serially (and
        // correctly) rather than oversubscribe.
        let items: Vec<usize> = (0..8).collect();
        let expected: Vec<Vec<usize>> =
            items.iter().map(|&i| (0..10).map(|j| i * 100 + j).collect()).collect();
        let got = with_threads(8, || {
            par_map(&items, |&i| {
                assert_eq!(current_threads(), 1);
                par_map_indices(10, |j| i * 100 + j)
            })
        });
        assert_eq!(got, expected);

        // 4 items under a budget of 8 → 4 workers sharing the surplus:
        // each inherits 8/4 = 2 for its own nested parallelism.
        let inner: Vec<usize> = with_threads(8, || par_map(&[(); 4], |_| current_threads()));
        assert_eq!(inner, vec![2; 4]);
    }

    #[test]
    fn with_threads_restores_budget_after_nesting() {
        with_threads(6, || {
            assert_eq!(current_threads(), 6);
            with_threads(2, || assert_eq!(current_threads(), 2));
            assert_eq!(current_threads(), 6);
        });
    }

    #[test]
    fn par_scan_visits_in_order_and_stops_at_break() {
        use std::ops::ControlFlow;
        // The scan must visit 0..=break point in order at every width, with
        // the same stopping index as the serial loop.
        for threads in 1..=8 {
            let mut visited = Vec::new();
            with_threads(threads, || {
                par_scan_chunked(
                    1000,
                    threads * 8,
                    |i| i * 3,
                    |i, v| {
                        assert_eq!(v, i * 3);
                        visited.push(i);
                        if i == 137 {
                            ControlFlow::Break(())
                        } else {
                            ControlFlow::Continue(())
                        }
                    },
                );
            });
            assert_eq!(visited, (0..=137).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn par_scan_without_break_visits_everything() {
        use std::ops::ControlFlow;
        let mut sum = 0usize;
        with_threads(4, || {
            par_scan_chunked(
                257,
                16,
                |i| i,
                |_, v| {
                    sum += v;
                    ControlFlow::Continue(())
                },
            );
        });
        assert_eq!(sum, 257 * 256 / 2);
        // Empty range: visit must never run.
        with_threads(4, || {
            par_scan_chunked(0, 8, |i| i, |_, _| -> ControlFlow<()> { panic!("nothing to visit") });
        });
    }

    #[test]
    fn par_scan_serial_budget_is_lazy() {
        use std::ops::ControlFlow;
        // Under a budget of 1 evaluation is index-at-a-time: breaking at k
        // means eval was called exactly k+1 times, regardless of chunk size.
        let evals = AtomicUsize::new(0);
        with_threads(1, || {
            par_scan_chunked(
                1000,
                64,
                |i| {
                    evals.fetch_add(1, Ordering::Relaxed);
                    i
                },
                |i, _| if i == 9 { ControlFlow::Break(()) } else { ControlFlow::Continue(()) },
            );
        });
        assert_eq!(evals.load(Ordering::Relaxed), 10);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates_from_par_map() {
        let items: Vec<u32> = (0..64).collect();
        let _ = with_threads(4, || {
            par_map(&items, |&x| {
                if x == 33 {
                    panic!("worker closure failed");
                }
                x
            })
        });
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates_from_par_for_rows() {
        let mut data = vec![0u8; 64];
        with_threads(4, || {
            par_for_rows(&mut data, 8, |v, _| {
                if v == 5 {
                    panic!("row worker failed");
                }
            })
        });
    }

    #[test]
    fn par_for_rows_visits_every_row_once_with_its_index() {
        let mut data = vec![0usize; 7 * 5 + 3]; // ragged final row
        with_threads(8, || {
            par_for_rows(&mut data, 5, |v, row| {
                for x in row.iter_mut() {
                    *x += v * 10 + 1;
                }
            })
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, (i / 5) * 10 + 1, "cell {i}");
        }
    }

    #[test]
    fn join_returns_both_and_splits_budget() {
        let (a, b) =
            with_threads(8, || join(|| (current_threads(), 7u32), || (current_threads(), 11u32)));
        assert_eq!((a.1, b.1), (7, 11));
        assert_eq!(a.0, 4);
        assert_eq!(b.0, 4);
        // Serial path under budget 1 still runs both, in order.
        let order = AtomicBool::new(false);
        let (x, y) = with_threads(1, || {
            join(
                || {
                    order.store(true, Ordering::SeqCst);
                    1
                },
                || order.load(Ordering::SeqCst),
            )
        });
        assert_eq!(x, 1);
        assert!(y, "serial join must run the first branch first");
    }

    #[test]
    #[should_panic]
    fn join_propagates_spawned_branch_panic() {
        let _ = with_threads(4, || join(|| 1, || -> i32 { panic!("branch failed") }));
    }

    #[test]
    fn installed_recorder_sees_pool_occupancy() {
        // Installation is once-per-process, so this test owns the global
        // recorder for this test binary; other tests in the same process
        // may add to the counters, which is why the assertions are ≥.
        let r = Recorder::enabled();
        assert!(install_recorder(r.clone()));
        assert!(!install_recorder(Recorder::enabled()), "second install must be refused");
        let items: Vec<u64> = (0..64).collect();
        with_threads(4, || par_map(&items, |x| x + 1));
        with_threads(1, || par_map(&items, |x| x + 1));
        let snap = r.snapshot();
        assert!(snap.counter("par.parallel_ops").unwrap_or(0) >= 1);
        assert!(snap.counter("par.serial_ops").unwrap_or(0) >= 1);
        assert!(snap.counter("par.chunks").unwrap_or(0) >= 1);
        assert!(snap.gauge("par.workers").is_some());
    }

    #[test]
    fn results_are_bit_identical_across_widths() {
        // Floating-point per-item work: same input ⇒ same bits, any width.
        let items: Vec<f64> = (0..500).map(|i| i as f64 * 0.37).collect();
        let reference = with_threads(1, || par_map(&items, |x| (x.sin() * x.exp()).to_bits()));
        for threads in 2..=8 {
            let got = with_threads(threads, || par_map(&items, |x| (x.sin() * x.exp()).to_bits()));
            assert_eq!(got, reference, "threads={threads}");
        }
    }
}

//! Feature detection, description, matching and robust 2-D registration —
//! the computer-vision toolbox behind BB-Align's stage 1 (and the RANSAC
//! shared by stage 2).
//!
//! The pipeline follows the paper's §IV-A:
//!
//! 1. [`detect_keypoints`] — a FAST-style segment-test corner detector with
//!    non-maximum suppression, run on the BV image.
//! 2. [`describe_keypoints`] — BVFT-style descriptors on the Maximum Index
//!    Map: a `J×J` patch around the keypoint is rotated to its dominant
//!    orientation (ORB-style rotation normalisation), subdivided into `l×l`
//!    grids, and each grid contributes an `N_o`-bin orientation histogram
//!    (`l·l·N_o` dimensions total).
//! 3. [`match_descriptors`] — brute-force nearest-neighbour matching with
//!    Lowe ratio test and optional mutual-consistency check. The production
//!    rotation-hypothesis sweep uses the [`sweep`] fast path instead:
//!    sample each patch once ([`PatchSamples`]), re-bin per hypothesis into
//!    a flat [`DescriptorSet`], and match with the blocked dot-product
//!    kernel [`match_sets`] — bit-identical to the naive pipeline.
//! 4. [`ransac_rigid`] — RANSAC over 2-point samples fitting a rigid 2-D
//!    transform; the inlier count it returns is the paper's `Inliers_bv` /
//!    `Inliers_box` confidence signal.
//!
//! # Example
//!
//! ```
//! use bba_features::{ransac_rigid, RansacConfig};
//! use bba_geometry::{Iso2, Vec2};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let truth = Iso2::new(0.4, Vec2::new(2.0, -1.0));
//! let src: Vec<Vec2> = (0..30).map(|i| Vec2::new(i as f64, (i * 7 % 13) as f64)).collect();
//! let mut dst: Vec<Vec2> = src.iter().map(|&p| truth.apply(p)).collect();
//! dst[5] = Vec2::new(500.0, 500.0); // an outlier
//! let mut rng = StdRng::seed_from_u64(1);
//! let result = ransac_rigid(&src, &dst, &RansacConfig::default(), &mut rng).unwrap();
//! assert!(result.transform.approx_eq(&truth, 1e-6, 1e-6));
//! assert_eq!(result.num_inliers, 29);
//! ```

#![warn(missing_docs)]

pub mod descriptor;
pub mod keypoints;
pub mod matcher;
pub mod ransac;
pub mod sweep;

pub use descriptor::{
    describe_keypoints, describe_keypoints_rotated, Descriptor, DescriptorConfig, SampleWeighting,
};
pub use keypoints::{detect_keypoints, Keypoint, KeypointConfig};
pub use matcher::{match_descriptors, match_sets, Match, MatcherConfig};
pub use ransac::{
    ransac_rigid, ransac_rigid_guided, ransac_rigid_hinted, ransac_rigid_naive, RansacConfig,
    RansacError, RansacResult,
};
pub use sweep::{DescriptorSet, PatchSamples, RotationSweep};

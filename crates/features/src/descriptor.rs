//! BVFT-style descriptors on the Maximum Index Map.
//!
//! For each keypoint a `J×J` patch of the MIM is summarised as `l×l`
//! orientation histograms with `N_o` bins each (paper §IV-A, "Detecting
//! Keypoints & Computing Descriptors"). Because MIM values are orientation
//! *indices*, rotating the image rotates both the patch content **and** the
//! index values; the descriptor therefore (1) estimates the patch's
//! dominant orientation, (2) assigns every pixel to a grid cell of the
//! rotated patch frame, and (3) shifts every sampled index by the dominant
//! orientation — the BVFT/ORB-style normalisation the paper adopts from
//! \[27\]/\[34\].
//!
//! # Sampling convention
//!
//! A rotated patch is sampled by *inverse mapping*: the descriptor visits
//! every image pixel inside the patch's reach window once, rotates the
//! pixel's offset back into the patch frame, and bins it into the grid cell
//! it lands in (pixels falling outside the rotated `J×J` square are
//! skipped). Compared to forward-sampling a rotated grid this reads each
//! pixel at most once and — crucially — makes the *sample set per keypoint
//! independent of the rotation*: only the cell assignment and the
//! orientation-index shift depend on the angle. That is what the sweep fast
//! path ([`crate::sweep`]) exploits to sample each patch once and re-bin it
//! per rotation hypothesis.

use crate::keypoints::Keypoint;
use bba_signal::MaxIndexMap;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// How each MIM sample contributes to its histogram bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SampleWeighting {
    /// Weight by Log-Gabor amplitude (raw evidence strength).
    Amplitude,
    /// Weight by √amplitude — compresses the near/far asymmetry between
    /// two viewpoints of the same structure. Default.
    #[default]
    SqrtAmplitude,
    /// Count samples equally (pure occupancy of orientations).
    Binary,
}

/// Descriptor parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DescriptorConfig {
    /// Patch side length `J` in pixels (paper default 96 at 0.2 m/px; scale
    /// with resolution).
    pub patch_size: usize,
    /// Grid subdivision `l` (paper default 6).
    pub grid_size: usize,
    /// Normalise patches to their dominant orientation (rotation
    /// invariance). Disable only for the ablation study.
    pub rotation_invariant: bool,
    /// Ignore samples whose MIM amplitude falls below this fraction of the
    /// patch's maximum amplitude.
    pub amplitude_gate: f64,
    /// Histogram contribution of each sample.
    pub weighting: SampleWeighting,
}

impl Default for DescriptorConfig {
    fn default() -> Self {
        DescriptorConfig {
            patch_size: 48,
            grid_size: 6,
            rotation_invariant: true,
            amplitude_gate: 0.05,
            weighting: SampleWeighting::default(),
        }
    }
}

/// A descriptor vector plus the keypoint it belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Descriptor {
    /// The keypoint this descriptor was computed at.
    pub keypoint: Keypoint,
    /// L2-normalised feature vector of length `l·l·N_o`.
    pub vector: Vec<f32>,
}

impl Descriptor {
    /// Squared Euclidean distance between two descriptor vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths (descriptors from
    /// differently-configured pipelines are not comparable).
    pub fn distance_sq(&self, other: &Descriptor) -> f64 {
        assert_eq!(self.vector.len(), other.vector.len(), "descriptor dimensionality mismatch");
        self.vector
            .iter()
            .zip(&other.vector)
            .map(|(a, b)| {
                let d = (*a - *b) as f64;
                d * d
            })
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Shared primitives. The naive per-angle path below and the sample-once
// sweep fast path (`crate::sweep`) both call these exact functions, so the
// two implementations are bit-identical by construction — the equivalence
// proptests then verify the claim rather than a tolerance.
// ---------------------------------------------------------------------------

/// Half the patch diagonal, rounded up: a keypoint must be at least this far
/// from every image border for the patch to stay in bounds under *any*
/// rotation.
pub(crate) fn patch_reach(patch_size: usize) -> isize {
    (patch_size as f64 / 2.0 * std::f64::consts::SQRT_2).ceil() as isize
}

/// The continuous orientation-index shift matching a patch rotation.
pub(crate) fn bin_shift_of(rotation: f64, n_o: usize) -> f64 {
    rotation / (PI / n_o as f64)
}

/// Maps an integer pixel offset `(du, dv)` from the patch centre to the
/// grid cell it lands in after rotating the patch frame by the angle whose
/// sine/cosine are `(rs, rc)`. Returns `None` when the offset falls outside
/// the rotated `J×J` square. `half = J/2`, `cell_px = J/l`.
pub(crate) fn grid_cell(
    du: isize,
    dv: isize,
    rs: f64,
    rc: f64,
    half: f64,
    cell_px: f64,
    l: usize,
) -> Option<usize> {
    // Inverse rotation: image offset → patch coordinates.
    let x = rc * du as f64 + rs * dv as f64;
    let y = -rs * du as f64 + rc * dv as f64;
    let fx = x + half;
    let fy = y + half;
    if fx < 0.0 || fy < 0.0 || fx >= 2.0 * half || fy >= 2.0 * half {
        return None;
    }
    let gu = ((fx / cell_px) as usize).min(l - 1);
    let gv = ((fy / cell_px) as usize).min(l - 1);
    Some(gv * l + gu)
}

/// The histogram contribution of a sample with amplitude `amp`.
pub(crate) fn sample_weight(amp: f64, weighting: SampleWeighting) -> f64 {
    match weighting {
        SampleWeighting::Amplitude => amp,
        SampleWeighting::SqrtAmplitude => amp.sqrt(),
        SampleWeighting::Binary => 1.0,
    }
}

/// The split of one raw orientation index under a continuous `bin_shift`:
/// `(lo, hi, frac)`, with weight fraction `1 − frac` going to bin `lo` and
/// `frac` to bin `hi`. Factored out of [`soft_bin`] so the sweep's
/// per-hypothesis lookup table ([`bba_simd::SoftBinLut`]) is built from the
/// exact arithmetic applied per sample — the LUT-driven re-bin kernel is
/// then bit-identical to the naive path by construction.
pub(crate) fn soft_bin_split(raw_index: u8, bin_shift: f64, n_o: usize) -> (usize, usize, f64) {
    let shifted = (raw_index as f64 - bin_shift).rem_euclid(n_o as f64);
    let lo = (shifted.floor() as usize) % n_o;
    let hi = (lo + 1) % n_o;
    let frac = shifted - shifted.floor();
    (lo, hi, frac)
}

/// Soft-bins one sample: the orientation index is shifted by the continuous
/// `bin_shift` and the weight split linearly between the two adjacent bins —
/// hard binning would reintroduce the quantisation the continuous dominant-
/// orientation estimate removed.
pub(crate) fn soft_bin(
    vector: &mut [f32],
    cell_base: usize,
    raw_index: u8,
    bin_shift: f64,
    n_o: usize,
    weight: f64,
) {
    let (lo, hi, frac) = soft_bin_split(raw_index, bin_shift, n_o);
    vector[cell_base + lo] += (weight * (1.0 - frac)) as f32;
    vector[cell_base + hi] += (weight * frac) as f32;
}

/// L2-normalises a descriptor vector in place. Returns `false` (vector
/// untouched, necessarily all zero) when there is nothing to normalise.
pub(crate) fn l2_normalize(vector: &mut [f32]) -> bool {
    let norm: f32 = vector.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm <= 0.0 {
        return false;
    }
    for x in vector {
        *x /= norm;
    }
    true
}

/// Computes descriptors for all keypoints far enough from the border to fit
/// a full patch. Keypoints whose patch contains no significant MIM samples
/// are dropped.
///
/// With [`DescriptorConfig::rotation_invariant`] set, each patch is
/// normalised to its own dominant orientation (ORB-style). The alternative
/// — and the default strategy of the BB-Align pipeline — is
/// [`describe_keypoints_rotated`], which applies one *global* rotation
/// hypothesis to every patch and lets the caller sweep hypotheses (RIFT's
/// approach): per-patch angle estimation is unstable across real viewpoint
/// changes, while a global hypothesis keeps descriptors raw and
/// discriminative.
pub fn describe_keypoints(
    mim: &MaxIndexMap,
    keypoints: &[Keypoint],
    config: &DescriptorConfig,
) -> Vec<Descriptor> {
    describe_all(mim, keypoints, config, None)
}

/// Shared parallel driver: one independent patch per keypoint, collected in
/// keypoint order and filtered in that order, so the output is identical to
/// the serial `filter_map` at every thread count.
fn describe_all(
    mim: &MaxIndexMap,
    keypoints: &[Keypoint],
    config: &DescriptorConfig,
    rotation_override: Option<f64>,
) -> Vec<Descriptor> {
    bba_par::par_map(keypoints, |kp| describe_one(mim, *kp, config, rotation_override))
        .into_iter()
        .flatten()
        .collect()
}

/// Computes descriptors with a fixed global patch rotation of `angle`
/// radians (per-patch orientation estimation disabled).
///
/// Matching a set described at angle `δ` against a set described at angle
/// `0` finds correspondences between images that differ by a rotation of
/// `δ`; sweeping `δ` over multiples of `π / N_o` gives exact MIM index
/// shifts and covers all relative headings.
///
/// This is the naive reference implementation: it re-scans the patch per
/// angle. The production sweep path samples each patch once and re-bins it
/// per hypothesis ([`crate::sweep::PatchSamples`]), producing bit-identical
/// descriptors — the `sweep_matches_naive_describe` proptest holds the two
/// together.
pub fn describe_keypoints_rotated(
    mim: &MaxIndexMap,
    keypoints: &[Keypoint],
    config: &DescriptorConfig,
    angle: f64,
) -> Vec<Descriptor> {
    describe_all(mim, keypoints, config, Some(angle))
}

/// First pass over the axis-aligned `J×J` window: the gating maximum
/// amplitude, plus (only when a dominant orientation is needed) the
/// circular-mean trig sums and the amplitude centroid.
pub(crate) struct PatchStats {
    pub max_amp: f64,
    pub sin2: f64,
    pub cos2: f64,
    pub centroid_x: f64,
    pub centroid_y: f64,
}

pub(crate) fn patch_stats(
    mim: &MaxIndexMap,
    cu: isize,
    cv: isize,
    half: isize,
    with_orientation: bool,
) -> PatchStats {
    let n_o = mim.num_orientations;
    let mut s = PatchStats { max_amp: 0.0, sin2: 0.0, cos2: 0.0, centroid_x: 0.0, centroid_y: 0.0 };
    for dv in -half..half {
        for du in -half..half {
            let (u, v) = ((cu + du) as usize, (cv + dv) as usize);
            let amp = mim.amplitude[(u, v)];
            if amp > 0.0 {
                if with_orientation {
                    // Orientations are π-periodic, so the circular mean is
                    // taken on doubled angles.
                    let theta = (mim.index[(u, v)] as f64 + 0.5) * PI / n_o as f64;
                    s.sin2 += amp * (2.0 * theta).sin();
                    s.cos2 += amp * (2.0 * theta).cos();
                    s.centroid_x += amp * du as f64;
                    s.centroid_y += amp * dv as f64;
                }
                s.max_amp = s.max_amp.max(amp);
            }
        }
    }
    s
}

fn describe_one(
    mim: &MaxIndexMap,
    kp: Keypoint,
    config: &DescriptorConfig,
    rotation_override: Option<f64>,
) -> Option<Descriptor> {
    let j = config.patch_size;
    let l = config.grid_size;
    let n_o = mim.num_orientations;
    let half = j as f64 / 2.0;
    let w = mim.width() as isize;
    let h = mim.height() as isize;

    // Reject patches that would leave the image even after rotation
    // (diagonal half-extent).
    let reach = patch_reach(j);
    let (cu, cv) = (kp.u as isize, kp.v as isize);
    if cu - reach < 0 || cv - reach < 0 || cu + reach >= w || cv + reach >= h {
        return None;
    }

    // Pass 1: gating maximum, and — only when this patch normalises to its
    // own orientation — the dominant-orientation estimate. A *continuous*
    // estimate (rather than the strongest bin) is essential: bin-quantised
    // normalisation leaves up to half a bin (7.5° at N_o = 12) of
    // uncompensated rotation, which destroys matches between views rotated
    // by odd angles.
    let needs_orientation = rotation_override.is_none() && config.rotation_invariant;
    let stats = patch_stats(mim, cu, cv, half as isize, needs_orientation);
    if stats.max_amp <= 0.0 {
        return None; // empty patch: nothing to describe
    }
    let gate = stats.max_amp * config.amplitude_gate;

    let rotation = if let Some(angle) = rotation_override {
        angle
    } else if needs_orientation && (stats.sin2 != 0.0 || stats.cos2 != 0.0) {
        // Orientations are π-periodic, so the circular mean fixes the
        // canonical frame only modulo π. The amplitude centroid (ORB's
        // intensity-centroid idea) supplies the missing polarity bit: pick
        // the half-turn that points along the centroid direction, which
        // rotates with the content and is therefore consistent across
        // views rotated by ~180°.
        let base = (0.5 * stats.sin2.atan2(stats.cos2)).rem_euclid(PI);
        let psi = stats.centroid_y.atan2(stats.centroid_x);
        if (base - psi).cos() < 0.0 {
            base + PI
        } else {
            base
        }
    } else {
        0.0
    };
    let bin_shift = bin_shift_of(rotation, n_o);
    let (rs, rc) = rotation.sin_cos();

    // Pass 2 (inverse mapping): every pixel of the reach window whose
    // offset lands inside the rotated patch square contributes to the grid
    // cell it falls in, with its orientation index shifted into the patch's
    // own frame.
    let mut vector = vec![0.0f32; l * l * n_o];
    let cell_px = j as f64 / l as f64;
    for dv in -reach..=reach {
        for du in -reach..=reach {
            let (u, v) = ((cu + du) as usize, (cv + dv) as usize);
            let amp = mim.amplitude[(u, v)];
            if amp <= gate {
                continue;
            }
            let Some(cell) = grid_cell(du, dv, rs, rc, half, cell_px, l) else {
                continue;
            };
            let weight = sample_weight(amp, config.weighting);
            soft_bin(&mut vector, cell * n_o, mim.index[(u, v)], bin_shift, n_o, weight);
        }
    }

    if !l2_normalize(&mut vector) {
        return None;
    }
    Some(Descriptor { keypoint: kp, vector })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_signal::{Grid, LogGaborConfig, MaxIndexMap};

    /// An L-shaped structure: two orthogonal bright lines.
    fn l_shape_image(size: usize, angle_deg: f64) -> Grid<f64> {
        let mut img = Grid::new(size, size, 0.0);
        let c = size as f64 / 2.0;
        let a = angle_deg.to_radians();
        for leg in [a, a + std::f64::consts::FRAC_PI_2] {
            let (s, co) = leg.sin_cos();
            for k in 0..(size as i32 / 3) {
                let t = k as f64;
                let u = (c + t * co).round() as isize;
                let v = (c + t * s).round() as isize;
                if u >= 0 && v >= 0 && (u as usize) < size && (v as usize) < size {
                    img[(u as usize, v as usize)] = 8.0;
                }
            }
        }
        img
    }

    fn mim_of(img: &Grid<f64>) -> MaxIndexMap {
        MaxIndexMap::compute(img, &LogGaborConfig::default())
    }

    fn center_kp(size: usize) -> Keypoint {
        Keypoint { u: size / 2, v: size / 2, score: 1.0 }
    }

    fn small_cfg() -> DescriptorConfig {
        DescriptorConfig { patch_size: 24, grid_size: 4, ..Default::default() }
    }

    #[test]
    fn descriptor_has_expected_dimension_and_norm() {
        let img = l_shape_image(128, 0.0);
        let mim = mim_of(&img);
        let desc = describe_keypoints(&mim, &[center_kp(128)], &small_cfg());
        assert_eq!(desc.len(), 1);
        assert_eq!(desc[0].vector.len(), 4 * 4 * 12);
        let norm: f32 = desc[0].vector.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn border_keypoints_are_dropped() {
        let img = l_shape_image(128, 0.0);
        let mim = mim_of(&img);
        let kp = Keypoint { u: 2, v: 2, score: 1.0 };
        assert!(describe_keypoints(&mim, &[kp], &small_cfg()).is_empty());
    }

    #[test]
    fn empty_patch_is_dropped() {
        let img = Grid::new(128, 128, 0.0);
        let mim = mim_of(&img);
        assert!(describe_keypoints(&mim, &[center_kp(128)], &small_cfg()).is_empty());
    }

    #[test]
    fn rotation_invariance_brings_rotated_structures_close() {
        // The same L-shape at 0° and rotated 45°: with rotation
        // normalisation the descriptors should be much closer than two
        // different structures.
        let cfg = small_cfg();
        let d0 = describe_keypoints(&mim_of(&l_shape_image(128, 0.0)), &[center_kp(128)], &cfg);
        let d45 = describe_keypoints(&mim_of(&l_shape_image(128, 45.0)), &[center_kp(128)], &cfg);
        // A different structure: single line only.
        let mut other = Grid::new(128, 128, 0.0);
        for u in 40..90 {
            other[(u, 64)] = 8.0;
            other[(u, 70)] = 8.0;
        }
        let d_other = describe_keypoints(&mim_of(&other), &[center_kp(128)], &cfg);
        assert_eq!(d0.len(), 1);
        assert_eq!(d45.len(), 1);
        assert_eq!(d_other.len(), 1);
        let same = d0[0].distance_sq(&d45[0]);
        let diff = d0[0].distance_sq(&d_other[0]);
        assert!(
            same < diff,
            "rotated same-structure distance {same} should beat different-structure {diff}"
        );
    }

    #[test]
    fn non_invariant_mode_differs_under_rotation() {
        let mut cfg = small_cfg();
        cfg.rotation_invariant = false;
        let d0 = describe_keypoints(&mim_of(&l_shape_image(128, 0.0)), &[center_kp(128)], &cfg);
        let d45 = describe_keypoints(&mim_of(&l_shape_image(128, 45.0)), &[center_kp(128)], &cfg);
        let dist = d0[0].distance_sq(&d45[0]);
        assert!(dist > 0.1, "raw descriptors should diverge under rotation, got {dist}");
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn mismatched_descriptor_lengths_panic() {
        let a = Descriptor { keypoint: center_kp(10), vector: vec![0.0; 8] };
        let b = Descriptor { keypoint: center_kp(10), vector: vec![0.0; 16] };
        let _ = a.distance_sq(&b);
    }

    #[test]
    fn identical_patches_have_zero_distance() {
        let img = l_shape_image(128, 20.0);
        let mim = mim_of(&img);
        let d = describe_keypoints(&mim, &[center_kp(128)], &small_cfg());
        assert_eq!(d[0].distance_sq(&d[0]), 0.0);
    }

    #[test]
    fn grid_cell_covers_unrotated_patch_exactly() {
        // At angle 0 the in-patch offsets are exactly the axis-aligned J×J
        // square [-J/2, J/2), and the corner cells are assigned correctly.
        let (j, l) = (24usize, 4usize);
        let half = j as f64 / 2.0;
        let cell_px = j as f64 / l as f64;
        assert_eq!(grid_cell(-12, -12, 0.0, 1.0, half, cell_px, l), Some(0));
        assert_eq!(grid_cell(11, 11, 0.0, 1.0, half, cell_px, l), Some(l * l - 1));
        assert_eq!(grid_cell(12, 0, 0.0, 1.0, half, cell_px, l), None);
        assert_eq!(grid_cell(0, -13, 0.0, 1.0, half, cell_px, l), None);
    }
}

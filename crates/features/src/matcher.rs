//! Brute-force descriptor matching with ratio test.
//!
//! Paper §IV-A: "we match these keypoints based on the similarity of their
//! descriptors ... measured by the Euclidean distance". The classic Lowe
//! ratio test rejects ambiguous matches (best ≈ second best), and an
//! optional mutual-consistency check keeps only pairs that are each other's
//! nearest neighbours.

use crate::descriptor::Descriptor;
use serde::{Deserialize, Serialize};

/// A correspondence between descriptor indices of two sets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Match {
    /// Index into the source (other car) descriptor set.
    pub src: usize,
    /// Index into the destination (ego car) descriptor set.
    pub dst: usize,
    /// Euclidean distance between the matched descriptors.
    pub distance: f64,
}

/// Matching parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Lowe ratio: accept only when `best / second_best < ratio`.
    /// Set to 1.0 to disable.
    pub ratio: f64,
    /// Require the match to be mutual (src's best is dst AND dst's best is
    /// src).
    pub mutual: bool,
    /// Absolute distance cap; matches farther than this are rejected.
    pub max_distance: f64,
    /// Emit up to this many nearest candidates per source descriptor
    /// (k > 1 trades precision for recall; RANSAC downstream rejects the
    /// extra outliers). The ratio test compares candidate `k` against
    /// candidate `k+1`; the mutual check applies only to `k = 0`.
    pub keep_top_k: usize,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig { ratio: 0.85, mutual: true, max_distance: 1.2, keep_top_k: 1 }
    }
}

/// Matches `src` descriptors against `dst` descriptors.
///
/// Returns matches sorted by ascending distance.
pub fn match_descriptors(
    src: &[Descriptor],
    dst: &[Descriptor],
    config: &MatcherConfig,
) -> Vec<Match> {
    if src.is_empty() || dst.is_empty() {
        return Vec::new();
    }

    let k = config.keep_top_k.max(1);

    // The k+1 nearest dst for every src (k matches plus the ratio-test
    // reference).
    let nearest = |from: &Descriptor, pool: &[Descriptor], count: usize| -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> =
            pool.iter().enumerate().map(|(j, c)| (j, from.distance_sq(c))).collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        all.truncate(count);
        all.into_iter().map(|(j, d)| (j, d.sqrt())).collect()
    };

    // Precompute dst→src best indices for the mutual check. Each row of
    // the distance table is independent, so both directions parallelise
    // per descriptor; results are collected in index order, and the final
    // sort is stable, so the match list is bit-identical to the serial
    // scan at every thread count.
    let dst_best: Vec<usize> =
        if config.mutual { bba_par::par_map(dst, |d| nearest(d, src, 1)[0].0) } else { Vec::new() };

    let per_src: Vec<Vec<Match>> = bba_par::par_map_indices(src.len(), |i| {
        let cands = nearest(&src[i], dst, k + 1);
        let mut out = Vec::new();
        for rank in 0..k.min(cands.len()) {
            let (j, d1) = cands[rank];
            if d1 > config.max_distance {
                break; // candidates are sorted; the rest are farther
            }
            if config.ratio < 1.0 {
                if let Some(&(_, d_next)) = cands.get(rank + 1) {
                    if d1 >= config.ratio * d_next {
                        break;
                    }
                }
            }
            if config.mutual && rank == 0 && dst_best[j] != i {
                break;
            }
            out.push(Match { src: i, dst: j, distance: d1 });
        }
        out
    });
    let mut out: Vec<Match> = per_src.into_iter().flatten().collect();
    out.sort_by(|a, b| a.distance.partial_cmp(&b.distance).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keypoints::Keypoint;

    fn desc(at: usize, v: &[f32]) -> Descriptor {
        // L2-normalise to mirror real descriptors.
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        Descriptor {
            keypoint: Keypoint { u: at, v: at, score: 1.0 },
            vector: v.iter().map(|x| x / norm.max(1e-12)).collect(),
        }
    }

    #[test]
    fn empty_inputs_give_no_matches() {
        let a = [desc(0, &[1.0, 0.0])];
        assert!(match_descriptors(&[], &a, &MatcherConfig::default()).is_empty());
        assert!(match_descriptors(&a, &[], &MatcherConfig::default()).is_empty());
    }

    #[test]
    fn identical_sets_match_one_to_one() {
        let set: Vec<Descriptor> = vec![
            desc(0, &[1.0, 0.0, 0.0, 0.0]),
            desc(1, &[0.0, 1.0, 0.0, 0.0]),
            desc(2, &[0.0, 0.0, 1.0, 0.0]),
        ];
        let matches = match_descriptors(&set, &set, &MatcherConfig::default());
        assert_eq!(matches.len(), 3);
        for m in matches {
            assert_eq!(m.src, m.dst);
            assert!(m.distance < 1e-6);
        }
    }

    #[test]
    fn ratio_test_rejects_ambiguous() {
        // dst contains two near-identical candidates: ambiguous for src[0].
        let src = [desc(0, &[1.0, 0.05, 0.0, 0.0])];
        let dst = [desc(0, &[1.0, 0.0, 0.0, 0.0]), desc(1, &[1.0, 0.1, 0.0, 0.0])];
        let strict = MatcherConfig { ratio: 0.5, mutual: false, max_distance: 10.0, keep_top_k: 1 };
        assert!(match_descriptors(&src, &dst, &strict).is_empty());
        let lax = MatcherConfig { ratio: 1.0, mutual: false, max_distance: 10.0, keep_top_k: 1 };
        assert_eq!(match_descriptors(&src, &dst, &lax).len(), 1);
    }

    #[test]
    fn mutual_check_rejects_one_sided() {
        // src[1] is closer to dst[0] than src[0] is, so src[0]→dst[0] is
        // not mutual.
        let src = [desc(0, &[1.0, 0.3, 0.0, 0.0]), desc(1, &[1.0, 0.05, 0.0, 0.0])];
        let dst = [desc(0, &[1.0, 0.0, 0.0, 0.0])];
        let cfg = MatcherConfig { ratio: 1.0, mutual: true, max_distance: 10.0, keep_top_k: 1 };
        let matches = match_descriptors(&src, &dst, &cfg);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].src, 1);
    }

    #[test]
    fn max_distance_caps_matches() {
        let src = [desc(0, &[1.0, 0.0, 0.0, 0.0])];
        let dst = [desc(0, &[0.0, 1.0, 0.0, 0.0])]; // distance √2
        let cfg = MatcherConfig { ratio: 1.0, mutual: false, max_distance: 1.0, keep_top_k: 1 };
        assert!(match_descriptors(&src, &dst, &cfg).is_empty());
    }

    #[test]
    fn output_sorted_by_distance() {
        let src = [
            desc(0, &[1.0, 0.0, 0.0, 0.0]),
            desc(1, &[0.0, 1.0, 0.02, 0.0]),
            desc(2, &[0.0, 0.0, 1.0, 0.1]),
        ];
        let dst = [
            desc(0, &[1.0, 0.01, 0.0, 0.0]),
            desc(1, &[0.0, 1.0, 0.0, 0.0]),
            desc(2, &[0.0, 0.0, 1.0, 0.0]),
        ];
        let cfg = MatcherConfig { ratio: 1.0, mutual: false, max_distance: 10.0, keep_top_k: 1 };
        let matches = match_descriptors(&src, &dst, &cfg);
        assert_eq!(matches.len(), 3);
        for pair in matches.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
    }
}

//! Brute-force descriptor matching with ratio test.
//!
//! Paper §IV-A: "we match these keypoints based on the similarity of their
//! descriptors ... measured by the Euclidean distance". The classic Lowe
//! ratio test rejects ambiguous matches (best ≈ second best), and an
//! optional mutual-consistency check keeps only pairs that are each other's
//! nearest neighbours.
//!
//! # Dot-product kernel
//!
//! Descriptors are L2-normalised, so Euclidean distance reduces to an
//! inner product: `‖a − b‖² = 2 − 2·⟨a, b⟩`, and because `√` is monotone,
//! ranking by ascending distance is ranking by *descending dot product*.
//! The production matcher ([`match_sets`]) exploits this on the flat
//! [`DescriptorSet`] layout: blocked row×row dot-product loops (one pool
//! block stays cache-hot across a block of query rows), a top-(k+1)
//! insertion select instead of sorting the full distance row, and the
//! distance materialised only for the surviving candidates. A naive
//! reference ([`match_sets_naive`]) computes the same candidates with a
//! full sort; both share the same `dot` kernel and selection logic, so
//! their outputs are bit-identical (pinned by the `kernel_matches_naive`
//! proptest).
//!
//! Numerics: dot products accumulate in `f32` (that is the kernel's speed),
//! so a distance near zero carries absolute noise of order `√(dim)·ε_f32` —
//! irrelevant against matching thresholds, but exact zeros are not
//! preserved the way the old subtract-and-square distance did.

use crate::descriptor::Descriptor;
use crate::sweep::DescriptorSet;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A correspondence between descriptor indices of two sets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Match {
    /// Index into the source (other car) descriptor set.
    pub src: usize,
    /// Index into the destination (ego car) descriptor set.
    pub dst: usize,
    /// Euclidean distance between the matched descriptors.
    pub distance: f64,
}

/// Matching parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Lowe ratio: accept only when `best / second_best < ratio`.
    /// Set to 1.0 to disable.
    pub ratio: f64,
    /// Require the match to be mutual (src's best is dst AND dst's best is
    /// src).
    pub mutual: bool,
    /// Absolute distance cap; matches farther than this are rejected.
    pub max_distance: f64,
    /// Emit up to this many nearest candidates per source descriptor
    /// (k > 1 trades precision for recall; RANSAC downstream rejects the
    /// extra outliers). The ratio test compares candidate `k` against
    /// candidate `k+1`; the mutual check applies only to `k = 0`.
    pub keep_top_k: usize,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig { ratio: 0.85, mutual: true, max_distance: 1.2, keep_top_k: 1 }
    }
}

/// Query rows processed per parallel work unit (and per pool-block pass).
const QUERY_BLOCK: usize = 16;

/// Pool rows per cache block: sized so a block of vectors (~32 KiB) stays
/// resident while it is streamed against a whole query block.
fn pool_block_rows(dim: usize) -> usize {
    (32 * 1024 / (dim.max(1) * std::mem::size_of::<f32>())).clamp(4, 64)
}

/// Four-lane blocked dot product ([`bba_simd::dot_f32`]). Both the blocked
/// kernel and the naive reference call this exact function, so their dot
/// products — and hence candidate rankings — agree bit-for-bit; the SIMD
/// path keeps the same four-lane accumulator blocking, so vectorisation
/// does not move bits either.
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    bba_simd::dot_f32(a, b)
}

/// Distance from a dot product of unit vectors: `√(2 − 2·⟨a,b⟩)`, clamped
/// against rounding pushing the radicand negative.
#[inline]
fn dot_distance(d: f32) -> f64 {
    (2.0 - 2.0 * d as f64).max(0.0).sqrt()
}

/// Inserts `(j, dot)` into a best-first candidate list of capacity `cap`.
///
/// Ordering is descending dot with ties broken towards the earlier pool
/// index — identical to a stable sort by descending dot when candidates
/// arrive in ascending `j`, which both callers guarantee.
#[inline]
fn push_candidate(cands: &mut Vec<(u32, f32)>, cap: usize, j: u32, d: f32) {
    if cands.len() == cap {
        match cands.last() {
            Some(&(_, worst)) if d.total_cmp(&worst) == Ordering::Greater => {}
            _ => return,
        }
    }
    let mut pos = cands.len();
    while pos > 0 && d.total_cmp(&cands[pos - 1].1) == Ordering::Greater {
        pos -= 1;
    }
    cands.insert(pos, (j, d));
    if cands.len() > cap {
        cands.pop();
    }
}

/// For every `q` row, its `cap` best pool rows as `(pool_index, dot)`,
/// best-first. Blocked: parallel over query blocks, and within a block the
/// pool is streamed in cache-sized tiles reused across all query rows of
/// the block. Each query row's result is a pure function of the inputs, so
/// the output is bit-identical at every thread count.
fn blocked_topk(q: &DescriptorSet, pool: &DescriptorSet, cap: usize) -> Vec<Vec<(u32, f32)>> {
    let n = q.len();
    let blocks: Vec<(usize, usize)> =
        (0..n).step_by(QUERY_BLOCK).map(|lo| (lo, (lo + QUERY_BLOCK).min(n))).collect();
    let tile = pool_block_rows(q.dim());
    let per_block: Vec<Vec<Vec<(u32, f32)>>> = bba_par::par_map(&blocks, |&(lo, hi)| {
        let mut tops: Vec<Vec<(u32, f32)>> = vec![Vec::with_capacity(cap + 1); hi - lo];
        let mut jlo = 0;
        while jlo < pool.len() {
            let jhi = (jlo + tile).min(pool.len());
            for (top, i) in tops.iter_mut().zip(lo..hi) {
                let a = q.row(i);
                for j in jlo..jhi {
                    push_candidate(top, cap, j as u32, dot(a, pool.row(j)));
                }
            }
            jlo = jhi;
        }
        tops
    });
    per_block.into_iter().flatten().collect()
}

/// Applies cap / ratio / mutual selection to one query row's best-first
/// candidates. Shared verbatim between the kernel and the naive reference.
fn select_matches(
    i: usize,
    cands: &[(u32, f32)],
    k: usize,
    config: &MatcherConfig,
    dst_best: Option<&[u32]>,
    out: &mut Vec<Match>,
) {
    for rank in 0..k.min(cands.len()) {
        let (j, d) = cands[rank];
        let d1 = dot_distance(d);
        if d1 > config.max_distance {
            break; // candidates are best-first; the rest are farther
        }
        if config.ratio < 1.0 {
            if let Some(&(_, d_next)) = cands.get(rank + 1) {
                if d1 >= config.ratio * dot_distance(d_next) {
                    break;
                }
            }
        }
        if rank == 0 {
            if let Some(best) = dst_best {
                if best[j as usize] != i as u32 {
                    break;
                }
            }
        }
        out.push(Match { src: i, dst: j as usize, distance: d1 });
    }
}

/// Matches `src` descriptors against `dst` descriptors on the flat
/// [`DescriptorSet`] layout (the stage-1 production path).
///
/// Returns matches sorted by ascending distance.
///
/// # Panics
///
/// Panics if the two non-empty sets have different descriptor dimensions.
pub fn match_sets(src: &DescriptorSet, dst: &DescriptorSet, config: &MatcherConfig) -> Vec<Match> {
    if src.is_empty() || dst.is_empty() {
        return Vec::new();
    }
    assert_eq!(src.dim(), dst.dim(), "descriptor dimensionality mismatch");
    let k = config.keep_top_k.max(1);

    // dst→src best indices for the mutual check (top-1 with the same
    // kernel, directions swapped).
    let dst_best: Option<Vec<u32>> =
        config.mutual.then(|| blocked_topk(dst, src, 1).into_iter().map(|c| c[0].0).collect());

    let per_src = blocked_topk(src, dst, k + 1);
    let mut out = Vec::new();
    for (i, cands) in per_src.iter().enumerate() {
        select_matches(i, cands, k, config, dst_best.as_deref(), &mut out);
    }
    // Stable sort on a total order: bit-identical result at every thread
    // count, and NaN distances (impossible for finite descriptors, but no
    // longer a panic) sort last instead of aborting the recovery.
    out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
    out
}

/// Serial reference matcher: full dot-product rows and a stable sort in
/// place of the blocked top-k select. Same `dot`, same selection logic,
/// same output bits as [`match_sets`] — kept public (but hidden) so the
/// equivalence proptests and the `stage1` bench can pit the kernel against
/// it from outside the crate.
#[doc(hidden)]
pub fn match_sets_naive(
    src: &DescriptorSet,
    dst: &DescriptorSet,
    config: &MatcherConfig,
) -> Vec<Match> {
    if src.is_empty() || dst.is_empty() {
        return Vec::new();
    }
    assert_eq!(src.dim(), dst.dim(), "descriptor dimensionality mismatch");
    let k = config.keep_top_k.max(1);

    let topk = |q: &DescriptorSet, pool: &DescriptorSet, cap: usize| -> Vec<Vec<(u32, f32)>> {
        (0..q.len())
            .map(|i| {
                let mut all: Vec<(u32, f32)> =
                    (0..pool.len()).map(|j| (j as u32, dot(q.row(i), pool.row(j)))).collect();
                all.sort_by(|a, b| b.1.total_cmp(&a.1));
                all.truncate(cap);
                all
            })
            .collect()
    };

    let dst_best: Option<Vec<u32>> =
        config.mutual.then(|| topk(dst, src, 1).into_iter().map(|c| c[0].0).collect());
    let per_src = topk(src, dst, k + 1);
    let mut out = Vec::new();
    for (i, cands) in per_src.iter().enumerate() {
        select_matches(i, cands, k, config, dst_best.as_deref(), &mut out);
    }
    out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
    out
}

/// Matches `src` descriptors against `dst` descriptors (AoS convenience
/// wrapper over [`match_sets`]).
///
/// Returns matches sorted by ascending distance.
pub fn match_descriptors(
    src: &[Descriptor],
    dst: &[Descriptor],
    config: &MatcherConfig,
) -> Vec<Match> {
    if src.is_empty() || dst.is_empty() {
        return Vec::new();
    }
    match_sets(&DescriptorSet::from_descriptors(src), &DescriptorSet::from_descriptors(dst), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keypoints::Keypoint;

    fn desc(at: usize, v: &[f32]) -> Descriptor {
        // L2-normalise to mirror real descriptors.
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        Descriptor {
            keypoint: Keypoint { u: at, v: at, score: 1.0 },
            vector: v.iter().map(|x| x / norm.max(1e-12)).collect(),
        }
    }

    #[test]
    fn empty_inputs_give_no_matches() {
        let a = [desc(0, &[1.0, 0.0])];
        assert!(match_descriptors(&[], &a, &MatcherConfig::default()).is_empty());
        assert!(match_descriptors(&a, &[], &MatcherConfig::default()).is_empty());
    }

    #[test]
    fn identical_sets_match_one_to_one() {
        let set: Vec<Descriptor> = vec![
            desc(0, &[1.0, 0.0, 0.0, 0.0]),
            desc(1, &[0.0, 1.0, 0.0, 0.0]),
            desc(2, &[0.0, 0.0, 1.0, 0.0]),
        ];
        let matches = match_descriptors(&set, &set, &MatcherConfig::default());
        assert_eq!(matches.len(), 3);
        for m in matches {
            assert_eq!(m.src, m.dst);
            // The dot identity leaves √(ε_f32)-order noise on exact-match
            // distances; 1e-3 is far below any matching threshold.
            assert!(m.distance < 1e-3);
        }
    }

    #[test]
    fn ratio_test_rejects_ambiguous() {
        // dst contains two near-identical candidates: ambiguous for src[0].
        let src = [desc(0, &[1.0, 0.05, 0.0, 0.0])];
        let dst = [desc(0, &[1.0, 0.0, 0.0, 0.0]), desc(1, &[1.0, 0.1, 0.0, 0.0])];
        let strict = MatcherConfig { ratio: 0.5, mutual: false, max_distance: 10.0, keep_top_k: 1 };
        assert!(match_descriptors(&src, &dst, &strict).is_empty());
        let lax = MatcherConfig { ratio: 1.0, mutual: false, max_distance: 10.0, keep_top_k: 1 };
        assert_eq!(match_descriptors(&src, &dst, &lax).len(), 1);
    }

    #[test]
    fn mutual_check_rejects_one_sided() {
        // src[1] is closer to dst[0] than src[0] is, so src[0]→dst[0] is
        // not mutual.
        let src = [desc(0, &[1.0, 0.3, 0.0, 0.0]), desc(1, &[1.0, 0.05, 0.0, 0.0])];
        let dst = [desc(0, &[1.0, 0.0, 0.0, 0.0])];
        let cfg = MatcherConfig { ratio: 1.0, mutual: true, max_distance: 10.0, keep_top_k: 1 };
        let matches = match_descriptors(&src, &dst, &cfg);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].src, 1);
    }

    #[test]
    fn max_distance_caps_matches() {
        let src = [desc(0, &[1.0, 0.0, 0.0, 0.0])];
        let dst = [desc(0, &[0.0, 1.0, 0.0, 0.0])]; // distance √2
        let cfg = MatcherConfig { ratio: 1.0, mutual: false, max_distance: 1.0, keep_top_k: 1 };
        assert!(match_descriptors(&src, &dst, &cfg).is_empty());
    }

    #[test]
    fn output_sorted_by_distance() {
        let src = [
            desc(0, &[1.0, 0.0, 0.0, 0.0]),
            desc(1, &[0.0, 1.0, 0.02, 0.0]),
            desc(2, &[0.0, 0.0, 1.0, 0.1]),
        ];
        let dst = [
            desc(0, &[1.0, 0.01, 0.0, 0.0]),
            desc(1, &[0.0, 1.0, 0.0, 0.0]),
            desc(2, &[0.0, 0.0, 1.0, 0.0]),
        ];
        let cfg = MatcherConfig { ratio: 1.0, mutual: false, max_distance: 10.0, keep_top_k: 1 };
        let matches = match_descriptors(&src, &dst, &cfg);
        assert_eq!(matches.len(), 3);
        for pair in matches.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
    }

    #[test]
    fn kernel_agrees_with_naive_reference() {
        // Pseudo-random unit vectors, enough rows to cross several pool
        // tiles and query blocks.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u32 << 24) as f32
        };
        let make = |n: usize, dim: usize, next: &mut dyn FnMut() -> f32| -> Vec<Descriptor> {
            (0..n).map(|i| desc(i, &(0..dim).map(|_| next() - 0.5).collect::<Vec<_>>())).collect()
        };
        let src = DescriptorSet::from_descriptors(&make(70, 24, &mut next));
        let dst = DescriptorSet::from_descriptors(&make(90, 24, &mut next));
        for cfg in [
            MatcherConfig::default(),
            MatcherConfig { ratio: 1.0, mutual: false, max_distance: 1.5, keep_top_k: 2 },
            MatcherConfig { ratio: 0.97, mutual: true, max_distance: 2.0, keep_top_k: 3 },
        ] {
            assert_eq!(match_sets(&src, &dst, &cfg), match_sets_naive(&src, &dst, &cfg));
        }
    }

    #[test]
    fn push_candidate_mirrors_stable_sort() {
        let items: Vec<(u32, f32)> =
            vec![(0, 0.5), (1, 0.9), (2, 0.9), (3, 0.1), (4, 1.0), (5, 0.9)];
        for cap in 1..=6 {
            let mut fast = Vec::new();
            for &(j, d) in &items {
                push_candidate(&mut fast, cap, j, d);
            }
            let mut sorted = items.clone();
            sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
            sorted.truncate(cap);
            assert_eq!(fast, sorted, "cap {cap}");
        }
    }
}

//! FAST-style corner detection with non-maximum suppression.
//!
//! The paper uses FAST \[33\] on BV images. The classic detector tests a
//! Bresenham circle of 16 pixels at radius 3: a pixel is a corner when at
//! least `arc_length` *contiguous* circle pixels are all brighter than
//! `center + threshold` or all darker than `center − threshold`. On sparse
//! height maps the bright arcs dominate (building edges against empty
//! ground), which is exactly the structure stage 1 keys on.

use bba_signal::Grid;
use serde::{Deserialize, Serialize};

/// The 16-pixel Bresenham circle of radius 3 used by FAST.
const CIRCLE: [(i32, i32); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// A detected keypoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Keypoint {
    /// Column (pixel).
    pub u: usize,
    /// Row (pixel).
    pub v: usize,
    /// Corner score (sum of absolute contrast over the arc) — used for
    /// non-maximum suppression and capping.
    pub score: f64,
}

/// Detector parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeypointConfig {
    /// Intensity contrast threshold `t`.
    pub threshold: f64,
    /// Minimum contiguous arc length (classic FAST-9 uses 9).
    pub arc_length: usize,
    /// Non-maximum-suppression radius (pixels); 0 disables NMS.
    pub nms_radius: usize,
    /// Keep at most this many keypoints (highest score first).
    pub max_keypoints: usize,
    /// Ignore a border this many pixels wide.
    pub border: usize,
}

impl Default for KeypointConfig {
    fn default() -> Self {
        KeypointConfig {
            threshold: 0.8,
            arc_length: 9,
            nms_radius: 2,
            max_keypoints: 1500,
            border: 4,
        }
    }
}

/// Detects FAST corners in `img`.
///
/// Returns keypoints sorted by descending score, capped at
/// [`KeypointConfig::max_keypoints`].
pub fn detect_keypoints(img: &Grid<f64>, config: &KeypointConfig) -> Vec<Keypoint> {
    let w = img.width() as i32;
    let h = img.height() as i32;
    let border = (config.border.max(3)) as i32;
    let mut raw: Vec<Keypoint> = Vec::new();

    for v in border..h - border {
        for u in border..w - border {
            let center = img[(u as usize, v as usize)];
            let t = config.threshold;
            // Classify the 16 circle pixels: +1 brighter, -1 darker, 0 same.
            let mut states = [0i8; 16];
            let mut diffs = [0.0f64; 16];
            for (k, &(dx, dy)) in CIRCLE.iter().enumerate() {
                let p = img[((u + dx) as usize, (v + dy) as usize)];
                let d = p - center;
                diffs[k] = d;
                states[k] = if d > t {
                    1
                } else if d < -t {
                    -1
                } else {
                    0
                };
            }
            // Longest contiguous run (circular) of all-bright or all-dark.
            let score = longest_run_score(&states, &diffs, config.arc_length);
            if let Some(score) = score {
                raw.push(Keypoint { u: u as usize, v: v as usize, score });
            }
        }
    }

    // Non-maximum suppression on a coarse occupancy grid.
    raw.sort_by(|a, b| b.score.total_cmp(&a.score));
    let mut kept: Vec<Keypoint> = Vec::new();
    if config.nms_radius == 0 {
        kept = raw;
    } else {
        let r = config.nms_radius as i64;
        let mut occupied: Vec<(i64, i64)> = Vec::new();
        for kp in raw {
            let pu = kp.u as i64;
            let pv = kp.v as i64;
            let clash =
                occupied.iter().any(|&(ou, ov)| (ou - pu).abs() <= r && (ov - pv).abs() <= r);
            if !clash {
                occupied.push((pu, pv));
                kept.push(kp);
                if kept.len() >= config.max_keypoints {
                    break;
                }
            }
        }
    }
    kept.truncate(config.max_keypoints);
    kept
}

/// Returns the corner score when a contiguous run of at least `min_len`
/// same-sign states exists, else `None`. The score is the summed absolute
/// contrast over the best run.
fn longest_run_score(states: &[i8; 16], diffs: &[f64; 16], min_len: usize) -> Option<f64> {
    let mut best: Option<f64> = None;
    for sign in [1i8, -1i8] {
        // Walk the doubled circle to handle wraparound.
        let mut run = 0usize;
        let mut run_score = 0.0;
        let mut best_for_sign: Option<f64> = None;
        for k in 0..32 {
            let i = k % 16;
            if states[i] == sign {
                run += 1;
                run_score += diffs[i].abs();
                if run >= min_len {
                    let capped = if run > 16 { run_score * 16.0 / run as f64 } else { run_score };
                    best_for_sign = Some(best_for_sign.map_or(capped, |b: f64| b.max(capped)));
                }
            } else {
                run = 0;
                run_score = 0.0;
            }
            if run >= 16 {
                break; // full circle
            }
        }
        if let Some(s) = best_for_sign {
            best = Some(best.map_or(s, |b: f64| b.max(s)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bright square on dark background: corners at the square's corners.
    fn square_image(size: usize, lo: usize, hi: usize) -> Grid<f64> {
        Grid::from_fn(size, size, |u, v| {
            if (lo..=hi).contains(&u) && (lo..=hi).contains(&v) {
                10.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn detects_square_corners() {
        let img = square_image(40, 12, 26);
        let kps = detect_keypoints(&img, &KeypointConfig::default());
        assert!(!kps.is_empty());
        // Every detected keypoint should be near the square's boundary.
        for kp in &kps {
            let on_boundary_u = (kp.u as i32 - 12).abs() <= 3 || (kp.u as i32 - 26).abs() <= 3;
            let on_boundary_v = (kp.v as i32 - 12).abs() <= 3 || (kp.v as i32 - 26).abs() <= 3;
            assert!(on_boundary_u || on_boundary_v, "stray keypoint at ({}, {})", kp.u, kp.v);
        }
        // At least the 4 corners are found.
        for corner in [(12, 12), (12, 26), (26, 12), (26, 26)] {
            let found = kps
                .iter()
                .any(|k| (k.u as i32 - corner.0).abs() <= 2 && (k.v as i32 - corner.1).abs() <= 2);
            assert!(found, "missing corner {corner:?}");
        }
    }

    #[test]
    fn flat_image_has_no_keypoints() {
        let img = Grid::new(32, 32, 5.0);
        assert!(detect_keypoints(&img, &KeypointConfig::default()).is_empty());
    }

    #[test]
    fn isolated_bright_pixel_is_a_dark_ring_corner() {
        // A lone bright pixel: the circle around it is uniformly darker.
        let mut img = Grid::new(32, 32, 0.0);
        img[(16, 16)] = 10.0;
        let kps = detect_keypoints(&img, &KeypointConfig::default());
        assert!(kps.iter().any(|k| k.u == 16 && k.v == 16));
    }

    #[test]
    fn threshold_gates_weak_corners() {
        let img = square_image(40, 12, 26).map(|&x| x * 0.05); // contrast 0.5
        let strict = KeypointConfig { threshold: 0.8, ..Default::default() };
        assert!(detect_keypoints(&img, &strict).is_empty());
        let lax = KeypointConfig { threshold: 0.1, ..Default::default() };
        assert!(!detect_keypoints(&img, &lax).is_empty());
    }

    #[test]
    fn nms_separates_keypoints() {
        let img = square_image(40, 12, 26);
        let cfg = KeypointConfig { nms_radius: 3, ..Default::default() };
        let kps = detect_keypoints(&img, &cfg);
        for (i, a) in kps.iter().enumerate() {
            for b in kps.iter().skip(i + 1) {
                let du = (a.u as i64 - b.u as i64).abs();
                let dv = (a.v as i64 - b.v as i64).abs();
                assert!(du > 3 || dv > 3, "keypoints too close: {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn max_keypoints_caps_output() {
        let img = Grid::from_fn(64, 64, |u, v| if (u + v) % 7 == 0 { 10.0 } else { 0.0 });
        let cfg = KeypointConfig { max_keypoints: 10, nms_radius: 0, ..Default::default() };
        let kps = detect_keypoints(&img, &cfg);
        assert!(kps.len() <= 10);
        // Sorted by descending score.
        for pair in kps.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn border_is_respected() {
        let mut img = Grid::new(32, 32, 0.0);
        img[(1, 1)] = 10.0; // inside the border margin
        let kps = detect_keypoints(&img, &KeypointConfig::default());
        assert!(kps.is_empty());
    }
}

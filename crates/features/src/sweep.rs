//! Sample-once rotation sweep: the stage-1 describe fast path.
//!
//! The BB-Align rotation-hypothesis sweep describes the *same* keypoints at
//! many global patch rotations. Under the inverse-mapping convention of
//! [`crate::descriptor`], everything expensive about a patch is
//! hypothesis-invariant: which pixels pass the amplitude gate, their MIM
//! orientation indices, and their histogram weights. Only two things depend
//! on the hypothesis angle: *which grid cell* each pixel offset lands in,
//! and the continuous orientation-index shift.
//!
//! This module therefore splits describing into
//!
//! 1. a **sample pass** ([`PatchSamples::sample`]) that reads the MIM once
//!    per keypoint and caches `(weight, window-offset, mim-index)` triples
//!    for every significant pixel, and
//! 2. a **re-bin pass** ([`PatchSamples::rebin_into`]) that, per hypothesis,
//!    looks the cached window offset up in a precomputed offset→cell table
//!    ([`RotationSweep`]) and soft-bins the cached weight — no MIM reads,
//!    no trig, no gating.
//!
//! Both passes call the same helpers as the naive
//! [`describe_keypoints_rotated`](crate::descriptor::describe_keypoints_rotated)
//! path (`patch_stats`, `grid_cell`, `sample_weight`, `soft_bin`,
//! `l2_normalize`), in the same order, so the produced descriptors are
//! **bit-identical** to the naive reference — the `sweep_matches_naive_*`
//! proptests pin that claim. Parallelism goes through `bba_par` with one
//! disjoint output row per keypoint followed by a serial in-order
//! compaction, so results are also bit-identical at every thread count.
//!
//! Descriptors land in a flat row-major [`DescriptorSet`] (structure of
//! arrays, no per-descriptor `Vec`), which is what the blocked dot-product
//! matcher kernel ([`crate::matcher::match_sets`]) runs on.

use crate::descriptor::{
    bin_shift_of, grid_cell, l2_normalize, patch_reach, patch_stats, sample_weight, soft_bin_split,
    Descriptor, DescriptorConfig,
};
use crate::keypoints::Keypoint;
use bba_signal::MaxIndexMap;
use bba_simd::SoftBinLut;

/// Sentinel in the [`RotationSweep`] offset→cell tables for window offsets
/// that fall outside the rotated patch square.
const OUT_OF_PATCH: u8 = u8::MAX;

/// A set of descriptors in flat row-major storage: row `i` is the
/// `dim`-length L2-normalised vector of `keypoints[i]`.
///
/// Compared to `Vec<Descriptor>` this keeps all vectors contiguous (one
/// allocation, reusable across the hypothesis sweep) and lets the matcher
/// kernel stream rows without pointer chasing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DescriptorSet {
    dim: usize,
    keypoints: Vec<Keypoint>,
    data: Vec<f32>,
}

impl DescriptorSet {
    /// An empty set of `dim`-dimensional descriptors.
    pub fn new(dim: usize) -> Self {
        DescriptorSet { dim, keypoints: Vec::new(), data: Vec::new() }
    }

    /// Vector length of every descriptor in the set.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of descriptors.
    pub fn len(&self) -> usize {
        self.keypoints.len()
    }

    /// Whether the set holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.keypoints.is_empty()
    }

    /// The keypoint behind row `i`.
    pub fn keypoint(&self, i: usize) -> &Keypoint {
        &self.keypoints[i]
    }

    /// All keypoints, row order.
    pub fn keypoints(&self) -> &[Keypoint] {
        &self.keypoints
    }

    /// Descriptor vector of row `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends one descriptor row.
    ///
    /// # Panics
    ///
    /// Panics if `vector` does not have length [`DescriptorSet::dim`].
    pub fn push(&mut self, keypoint: Keypoint, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "descriptor dimensionality mismatch");
        self.keypoints.push(keypoint);
        self.data.extend_from_slice(vector);
    }

    /// Drops all rows, keeping the allocations (and switching the set to
    /// `dim`-dimensional rows).
    pub fn reset(&mut self, dim: usize) {
        self.dim = dim;
        self.keypoints.clear();
        self.data.clear();
    }

    /// Converts to the AoS `Descriptor` representation (copies).
    pub fn to_descriptors(&self) -> Vec<Descriptor> {
        (0..self.len())
            .map(|i| Descriptor { keypoint: self.keypoints[i], vector: self.row(i).to_vec() })
            .collect()
    }

    /// Builds a set from AoS descriptors.
    ///
    /// # Panics
    ///
    /// Panics if the descriptors do not all share one vector length.
    pub fn from_descriptors(descriptors: &[Descriptor]) -> Self {
        let dim = descriptors.first().map_or(0, |d| d.vector.len());
        let mut set = DescriptorSet {
            dim,
            keypoints: Vec::with_capacity(descriptors.len()),
            data: Vec::with_capacity(descriptors.len() * dim),
        };
        for d in descriptors {
            set.push(d.keypoint, &d.vector);
        }
        set
    }
}

/// Precomputed per-hypothesis binning tables for a fixed descriptor
/// geometry: for each hypothesis angle, the orientation-index shift and an
/// offset→grid-cell lookup covering the `(2·reach+1)²` pixel window.
///
/// Built once per `BbAlign` (the tables depend only on the configuration,
/// not the images) via the same `grid_cell` helper used by the naive path,
/// so a table lookup is bit-for-bit the naive path's per-sample trig.
#[derive(Debug, Clone)]
pub struct RotationSweep {
    angles: Vec<f64>,
    /// Per hypothesis, the soft-bin split of every raw orientation index
    /// under that hypothesis's shift — built with the exact `soft_bin`
    /// arithmetic ([`soft_bin_split`]), so the LUT-driven re-bin kernel
    /// reproduces the naive path bit for bit while replacing the per-sample
    /// `rem_euclid`/`floor` with a gather.
    luts: Vec<SoftBinLut>,
    /// `angles.len()` consecutive tables of `window²` cells each;
    /// `OUT_OF_PATCH` marks offsets outside the rotated square.
    cells: Vec<u8>,
    window: usize,
    patch_size: usize,
    grid_size: usize,
    num_orientations: usize,
}

impl RotationSweep {
    /// Precomputes binning tables for every `angle` (radians).
    ///
    /// # Panics
    ///
    /// Panics if the grid has ≥ 255 cells (the cell table stores `u8`
    /// indices with one sentinel value; the paper's grids are ≤ 8×8).
    pub fn new(config: &DescriptorConfig, num_orientations: usize, angles: &[f64]) -> Self {
        let l = config.grid_size;
        assert!(l * l < OUT_OF_PATCH as usize, "grid_size² must stay below 255");
        let j = config.patch_size;
        let half = j as f64 / 2.0;
        let cell_px = j as f64 / l as f64;
        let reach = patch_reach(j);
        let window = (2 * reach + 1) as usize;

        let mut cells = vec![OUT_OF_PATCH; angles.len() * window * window];
        let mut luts = Vec::with_capacity(angles.len());
        for (k, &angle) in angles.iter().enumerate() {
            let bin_shift = bin_shift_of(angle, num_orientations);
            let mut lut = SoftBinLut::new();
            for raw in 0..num_orientations {
                let (lo, hi, frac) = soft_bin_split(raw as u8, bin_shift, num_orientations);
                lut.push(lo, hi, frac);
            }
            luts.push(lut);
            let (rs, rc) = angle.sin_cos();
            let table = &mut cells[k * window * window..(k + 1) * window * window];
            for dv in -reach..=reach {
                for du in -reach..=reach {
                    if let Some(cell) = grid_cell(du, dv, rs, rc, half, cell_px, l) {
                        table[(dv + reach) as usize * window + (du + reach) as usize] = cell as u8;
                    }
                }
            }
        }
        RotationSweep {
            angles: angles.to_vec(),
            luts,
            cells,
            window,
            patch_size: j,
            grid_size: l,
            num_orientations,
        }
    }

    /// Number of hypothesis angles.
    pub fn hypotheses(&self) -> usize {
        self.angles.len()
    }

    /// The `k`-th hypothesis angle in radians.
    pub fn angle(&self, k: usize) -> f64 {
        self.angles[k]
    }

    /// Descriptor vector length produced by this sweep.
    pub fn dim(&self) -> usize {
        self.grid_size * self.grid_size * self.num_orientations
    }

    fn table(&self, k: usize) -> &[u8] {
        let n = self.window * self.window;
        &self.cells[k * n..(k + 1) * n]
    }
}

/// One cached MIM sample of a patch during extraction: histogram weight,
/// position inside the reach window (row-major offset), and raw MIM
/// orientation index. Storage is structure-of-arrays ([`PatchSamples`]); the
/// tuple form only exists per worker during the sample pass.
///
/// The weight is kept at `f64` deliberately: the naive path computes the
/// weight in `f64` and converts to `f32` only after the soft-bin split, so
/// caching a narrowed value would change bits.
#[derive(Debug, Clone, Copy)]
struct PatchSample {
    weight: f64,
    offset: u32,
    index: u8,
}

/// The hypothesis-invariant samples of a keypoint set: everything stage 1
/// needs to describe the keypoints at *any* rotation, extracted with
/// exactly one MIM read per pixel.
///
/// Samples are stored as parallel arrays (`weights`/`offsets`/`indices`) so
/// the re-bin kernel ([`bba_simd::rebin_row`]) streams each field with
/// contiguous vector loads instead of strided struct fields.
///
/// Reusable scratch: [`PatchSamples::sample`] clears and refills, keeping
/// allocations, so `BbAlign` pools these alongside its FFT workspaces.
#[derive(Debug, Clone, Default)]
pub struct PatchSamples {
    /// Keypoints that survived the border check, in input order.
    keypoints: Vec<Keypoint>,
    /// Per surviving keypoint: `[start, end)` range into the sample arrays.
    spans: Vec<(u32, u32)>,
    /// Histogram weight per sample.
    weights: Vec<f64>,
    /// Row-major reach-window offset per sample.
    offsets: Vec<u32>,
    /// Raw MIM orientation index per sample.
    indices: Vec<u8>,
    patch_size: usize,
    grid_size: usize,
    num_orientations: usize,
}

impl PatchSamples {
    /// Empty scratch, ready for [`PatchSamples::sample`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keypoints that survived the border check.
    pub fn len(&self) -> usize {
        self.keypoints.len()
    }

    /// Whether no keypoints survived the border check.
    pub fn is_empty(&self) -> bool {
        self.keypoints.is_empty()
    }

    /// Extracts the gated samples of every in-bounds keypoint patch (the
    /// sample-once pass). Replaces previous contents, reusing allocations.
    ///
    /// Border rejection, amplitude gating and sample order are identical to
    /// the naive describe path; per-patch dominant-orientation estimation
    /// does not apply (the sweep is the global-hypothesis strategy, which
    /// always overrides patch orientation).
    pub fn sample(&mut self, mim: &MaxIndexMap, keypoints: &[Keypoint], config: &DescriptorConfig) {
        self.keypoints.clear();
        self.spans.clear();
        self.weights.clear();
        self.offsets.clear();
        self.indices.clear();
        self.patch_size = config.patch_size;
        self.grid_size = config.grid_size;
        self.num_orientations = mim.num_orientations;

        let j = config.patch_size;
        let half = (j as f64 / 2.0) as isize;
        let reach = patch_reach(j);
        let window = (2 * reach + 1) as usize;
        let (w, h) = (mim.width() as isize, mim.height() as isize);

        // One independent patch per keypoint, collected in keypoint order —
        // the same ordered-reduction discipline as `describe_keypoints`.
        let per_kp: Vec<Option<Vec<PatchSample>>> = bba_par::par_map(keypoints, |kp| {
            let (cu, cv) = (kp.u as isize, kp.v as isize);
            if cu - reach < 0 || cv - reach < 0 || cu + reach >= w || cv + reach >= h {
                return None;
            }
            let stats = patch_stats(mim, cu, cv, half, false);
            if stats.max_amp <= 0.0 {
                return None;
            }
            let gate = stats.max_amp * config.amplitude_gate;
            let mut out = Vec::new();
            for dv in -reach..=reach {
                for du in -reach..=reach {
                    let (u, v) = ((cu + du) as usize, (cv + dv) as usize);
                    let amp = mim.amplitude[(u, v)];
                    if amp <= gate {
                        continue;
                    }
                    out.push(PatchSample {
                        weight: sample_weight(amp, config.weighting),
                        offset: ((dv + reach) as usize * window + (du + reach) as usize) as u32,
                        index: mim.index[(u, v)],
                    });
                }
            }
            Some(out)
        });

        for (kp, samples) in keypoints.iter().zip(per_kp) {
            if let Some(samples) = samples {
                let start = self.weights.len() as u32;
                for s in &samples {
                    self.weights.push(s.weight);
                    self.offsets.push(s.offset);
                    self.indices.push(s.index);
                }
                self.keypoints.push(*kp);
                self.spans.push((start, self.weights.len() as u32));
            }
        }
    }

    /// Describes the sampled keypoints under hypothesis `k` of `sweep`
    /// into `out` (cleared first, allocations reused): the re-bin pass.
    ///
    /// Keypoints whose patch ends up with no in-square significant samples
    /// are dropped, exactly as the naive path drops zero-norm descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `sweep` was built for a different descriptor geometry than
    /// the one this buffer was sampled with.
    pub fn rebin_into(&self, sweep: &RotationSweep, k: usize, out: &mut DescriptorSet) {
        assert!(
            sweep.patch_size == self.patch_size
                && sweep.grid_size == self.grid_size
                && sweep.num_orientations == self.num_orientations,
            "RotationSweep geometry does not match the sampled patches"
        );
        let dim = sweep.dim();
        let n = self.keypoints.len();
        out.reset(dim);
        out.data.resize(n * dim, 0.0);

        let table = sweep.table(k);
        let lut = &sweep.luts[k];
        let n_o = sweep.num_orientations;

        // One disjoint output row per keypoint; a row stays all-zero iff
        // the naive path would have dropped the descriptor (its L2 norm is
        // zero), which the serial compaction below detects. The per-sample
        // soft-bin split is precomputed in the hypothesis's LUT; the
        // scatter stays scalar in sample order (colliding bins make the
        // f32 accumulation order observable).
        let spans = &self.spans;
        bba_par::par_for_rows(&mut out.data, dim, |i, row| {
            let (start, end) = (spans[i].0 as usize, spans[i].1 as usize);
            bba_simd::rebin_row(
                row,
                &self.weights[start..end],
                &self.offsets[start..end],
                &self.indices[start..end],
                table,
                OUT_OF_PATCH,
                n_o,
                lut,
            );
            l2_normalize(row);
        });

        // Serial in-order compaction: drop zero rows, keep the rest in
        // keypoint order (deterministic at every thread count).
        let mut kept = 0usize;
        for i in 0..n {
            if self.row_is_zero(&out.data, i, dim) {
                continue;
            }
            if kept != i {
                out.data.copy_within(i * dim..(i + 1) * dim, kept * dim);
            }
            out.keypoints.push(self.keypoints[i]);
            kept += 1;
        }
        out.data.truncate(kept * dim);
    }

    fn row_is_zero(&self, data: &[f32], i: usize, dim: usize) -> bool {
        data[i * dim..(i + 1) * dim].iter().all(|x| *x == 0.0)
    }

    /// Convenience wrapper around [`PatchSamples::rebin_into`] returning a
    /// fresh set.
    pub fn rebin(&self, sweep: &RotationSweep, k: usize) -> DescriptorSet {
        let mut out = DescriptorSet::new(sweep.dim());
        self.rebin_into(sweep, k, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::describe_keypoints_rotated;
    use bba_signal::{Grid, LogGaborConfig, MaxIndexMap};

    fn test_mim(size: usize) -> MaxIndexMap {
        let mut img = Grid::new(size, size, 0.0);
        for t in 0..(size / 2) {
            img[(size / 4 + t / 2, size / 4 + t / 3)] = 5.0 + (t % 7) as f64;
            img[(size / 2, size / 4 + t / 2)] = 3.0;
        }
        MaxIndexMap::compute(&img, &LogGaborConfig::default())
    }

    fn cfg() -> DescriptorConfig {
        DescriptorConfig { patch_size: 24, grid_size: 4, ..Default::default() }
    }

    fn kps(size: usize) -> Vec<Keypoint> {
        vec![
            Keypoint { u: size / 2, v: size / 2, score: 1.0 },
            Keypoint { u: size / 3, v: size / 2, score: 1.0 },
            Keypoint { u: 1, v: 1, score: 1.0 }, // border-rejected
            Keypoint { u: size / 2 + 5, v: size / 3, score: 1.0 },
        ]
    }

    #[test]
    fn rebin_matches_naive_describe_bitwise() {
        let mim = test_mim(128);
        let cfg = cfg();
        let kps = kps(128);
        let angles: Vec<f64> = (0..8).map(|k| k as f64 * std::f64::consts::TAU / 8.0).collect();
        let sweep = RotationSweep::new(&cfg, mim.num_orientations, &angles);
        let mut samples = PatchSamples::new();
        samples.sample(&mim, &kps, &cfg);
        for (k, &angle) in angles.iter().enumerate() {
            let fast = samples.rebin(&sweep, k);
            let naive = describe_keypoints_rotated(&mim, &kps, &cfg, angle);
            assert_eq!(fast.to_descriptors(), naive, "hypothesis {k}");
        }
    }

    #[test]
    fn rebin_into_reuses_buffers() {
        let mim = test_mim(128);
        let cfg = cfg();
        let sweep = RotationSweep::new(&cfg, mim.num_orientations, &[0.0, 1.0]);
        let mut samples = PatchSamples::new();
        samples.sample(&mim, &kps(128), &cfg);
        let mut out = DescriptorSet::new(0);
        samples.rebin_into(&sweep, 1, &mut out);
        let fresh = samples.rebin(&sweep, 1);
        assert_eq!(out, fresh);
        // Re-sampling and re-binning into the same buffers is stable.
        samples.sample(&mim, &kps(128), &cfg);
        samples.rebin_into(&sweep, 1, &mut out);
        assert_eq!(out, fresh);
    }

    #[test]
    fn descriptor_set_round_trips() {
        let mim = test_mim(128);
        let cfg = cfg();
        let naive = describe_keypoints_rotated(&mim, &kps(128), &cfg, 0.7);
        let set = DescriptorSet::from_descriptors(&naive);
        assert_eq!(set.len(), naive.len());
        assert_eq!(set.to_descriptors(), naive);
        for (i, d) in naive.iter().enumerate() {
            assert_eq!(set.row(i), &d.vector[..]);
            assert_eq!(set.keypoint(i), &d.keypoint);
        }
    }

    #[test]
    #[should_panic(expected = "geometry does not match")]
    fn mismatched_sweep_geometry_panics() {
        let mim = test_mim(128);
        let mut samples = PatchSamples::new();
        samples.sample(&mim, &kps(128), &cfg());
        let other_cfg = DescriptorConfig { patch_size: 32, grid_size: 4, ..Default::default() };
        let sweep = RotationSweep::new(&other_cfg, mim.num_orientations, &[0.0]);
        let _ = samples.rebin(&sweep, 0);
    }
}

//! RANSAC estimation of a rigid 2-D transform from point correspondences.
//!
//! Both stages of BB-Align end in this primitive (Algorithm 1, lines 11 and
//! 14). The returned inlier count is the paper's confidence signal: §V-A
//! declares a recovery successful when `Inliers_bv > 25` and
//! `Inliers_box > 6`.
//!
//! Two implementations share one contract:
//!
//! * [`ransac_rigid_naive`] — the reference scan: fit every pre-drawn
//!   minimal sample, score it against all `n` correspondences, keep the
//!   strict running best, stop at the adaptive early-exit fraction.
//! * [`ransac_rigid`] / [`ransac_rigid_guided`] — the layered fast path:
//!   SoA transform-and-count kernel with a hoisted `sin_cos`, max-consensus
//!   bail (a hypothesis is abandoned the moment the unscored remainder
//!   cannot lift it above a provably safe bound — the SPRT-flavoured
//!   sequential test), PROSAC-style quality-ordered preview scores that
//!   raise that bound before the scan starts, and duplicate-sample
//!   memoisation. The fast path returns the **bit-identical**
//!   `RansacResult` (same inlier set, same pose bits, same iteration
//!   count) and the same errors as the naive scan for every input, seed and
//!   `bba-par` thread width; `DESIGN.md` → *RANSAC fast path* carries the
//!   determinism argument and the proptests in this crate pin it.

use bba_geometry::{fit_rigid_2d, fit_rigid_2pt, Iso2, Vec2};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};

/// RANSAC parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RansacConfig {
    /// Maximum sampling iterations.
    pub max_iterations: usize,
    /// A correspondence is an inlier when the transformed source point lies
    /// within this distance of its destination (same unit as the points —
    /// pixels for stage 1, metres for stage 2).
    pub inlier_threshold: f64,
    /// Reject results with fewer inliers than this.
    pub min_inliers: usize,
    /// Stop early once this inlier *fraction* is reached (adaptive exit).
    pub early_exit_fraction: f64,
}

impl Default for RansacConfig {
    fn default() -> Self {
        RansacConfig {
            max_iterations: 400,
            inlier_threshold: 2.0,
            min_inliers: 4,
            early_exit_fraction: 0.8,
        }
    }
}

/// RANSAC output: the refit transform plus its consensus set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RansacResult {
    /// The rigid transform refit on all inliers.
    pub transform: Iso2,
    /// Indices of the inlier correspondences.
    pub inliers: Vec<usize>,
    /// `inliers.len()` — the paper's `Inliers_bv` / `Inliers_box`.
    pub num_inliers: usize,
    /// Number of iterations actually executed.
    pub iterations: usize,
}

/// Failure modes of RANSAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RansacError {
    /// Fewer than two correspondences supplied.
    TooFewCorrespondences {
        /// How many were supplied.
        got: usize,
    },
    /// Source/destination lengths differ.
    LengthMismatch {
        /// Source length.
        src: usize,
        /// Destination length.
        dst: usize,
    },
    /// No model reached [`RansacConfig::min_inliers`].
    NoConsensus {
        /// Best inlier count observed.
        best: usize,
        /// The configured minimum.
        required: usize,
    },
}

impl fmt::Display for RansacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RansacError::TooFewCorrespondences { got } => {
                write!(f, "RANSAC needs at least 2 correspondences, got {got}")
            }
            RansacError::LengthMismatch { src, dst } => {
                write!(f, "source has {src} points, destination {dst}")
            }
            RansacError::NoConsensus { best, required } => {
                write!(f, "no consensus: best model had {best} inliers, {required} required")
            }
        }
    }
}

impl Error for RansacError {}

/// Draws the minimal samples (two distinct correspondences each) up front
/// on the calling thread, so the rng stream is consumed identically at
/// every thread count; fitting and scoring each hypothesis is then a pure
/// function of its sample and parallelises freely. Both the naive and the
/// fast scan consume exactly this sequence.
fn draw_samples<R: Rng + ?Sized>(n: usize, iterations: usize, rng: &mut R) -> Vec<(usize, usize)> {
    (0..iterations)
        .map(|_| {
            let i = rng.random_range(0..n);
            let mut j = rng.random_range(0..n);
            while j == i {
                j = rng.random_range(0..n);
            }
            (i, j)
        })
        .collect()
}

/// Shared tail of both scans: consensus check, refit on the winning set,
/// then one expand/re-fit pass (a single guided re-estimation markedly
/// stabilises the estimate).
fn refit_and_expand(
    src: &[Vec2],
    dst: &[Vec2],
    mut best_inliers: Vec<usize>,
    iterations: usize,
    config: &RansacConfig,
    thresh_sq: f64,
) -> Result<RansacResult, RansacError> {
    let n = src.len();
    if best_inliers.len() < config.min_inliers.max(2) {
        return Err(RansacError::NoConsensus {
            best: best_inliers.len(),
            required: config.min_inliers.max(2),
        });
    }
    let refit = |idx: &[usize]| {
        let s: Vec<Vec2> = idx.iter().map(|&k| src[k]).collect();
        let d: Vec<Vec2> = idx.iter().map(|&k| dst[k]).collect();
        fit_rigid_2d(&s, &d)
    };
    let mut transform = refit(&best_inliers).map_err(|_| RansacError::NoConsensus {
        best: best_inliers.len(),
        required: config.min_inliers.max(2),
    })?;
    let expanded: Vec<usize> =
        (0..n).filter(|&k| (transform.apply(src[k]) - dst[k]).norm_sq() <= thresh_sq).collect();
    if expanded.len() >= best_inliers.len() {
        if let Ok(t2) = refit(&expanded) {
            transform = t2;
            best_inliers = expanded;
        }
    }

    Ok(RansacResult {
        transform,
        num_inliers: best_inliers.len(),
        inliers: best_inliers,
        iterations,
    })
}

/// The reference scorer: fits and fully scores every drawn sample in order.
///
/// This is the bit-exactness oracle for [`ransac_rigid`]; it stays in-tree
/// so the equivalence proptests (and the `ransac` Criterion bench) always
/// have the naive semantics to compare against.
///
/// # Errors
///
/// Returns [`RansacError`] on malformed input or when no model reaches
/// `min_inliers`.
pub fn ransac_rigid_naive<R: Rng + ?Sized>(
    src: &[Vec2],
    dst: &[Vec2],
    config: &RansacConfig,
    rng: &mut R,
) -> Result<RansacResult, RansacError> {
    if src.len() != dst.len() {
        return Err(RansacError::LengthMismatch { src: src.len(), dst: dst.len() });
    }
    let n = src.len();
    if n < 2 {
        return Err(RansacError::TooFewCorrespondences { got: n });
    }

    let thresh_sq = config.inlier_threshold * config.inlier_threshold;
    let samples = draw_samples(n, config.max_iterations, rng);
    let score = |&(i, j): &(usize, usize)| -> Option<Vec<usize>> {
        // Degenerate (coincident) samples cannot define a rotation.
        if (src[i] - src[j]).norm_sq() < 1e-12 {
            return None;
        }
        let model = fit_rigid_2d(&[src[i], src[j]], &[dst[i], dst[j]]).ok()?;
        Some((0..n).filter(|&k| (model.apply(src[k]) - dst[k]).norm_sq() <= thresh_sq).collect())
    };

    // Hypotheses are scored in parallel a chunk at a time, but the
    // best-so-far scan walks them strictly in draw order with the serial
    // loop's early-exit rule, so the winning consensus set — and the
    // reported iteration count — are independent of the thread count.
    // Under a budget of 1 the chunk size is 1: evaluation stays as lazy as
    // the classic loop and stops at the same iteration.
    let threads = bba_par::current_threads();
    let chunk = if threads <= 1 { 1 } else { threads * 8 };
    let mut best_inliers: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    'eval: for start in (0..samples.len()).step_by(chunk) {
        let end = (start + chunk).min(samples.len());
        let scored = bba_par::par_map(&samples[start..end], |s| score(s));
        for (offset, inliers) in scored.into_iter().enumerate() {
            iterations = start + offset + 1;
            let Some(inliers) = inliers else { continue };
            if inliers.len() > best_inliers.len() {
                best_inliers = inliers;
                if best_inliers.len() as f64 >= config.early_exit_fraction * n as f64 {
                    break 'eval;
                }
            }
        }
    }

    refit_and_expand(src, dst, best_inliers, iterations, config, thresh_sq)
}

/// Estimates the rigid transform mapping `src[i]` near `dst[i]` in the
/// presence of outliers.
///
/// Runs the layered fast path (see the module docs); the result is
/// bit-identical to [`ransac_rigid_naive`] on the same inputs and seed.
///
/// # Errors
///
/// Returns [`RansacError`] on malformed input or when no model reaches
/// `min_inliers`.
pub fn ransac_rigid<R: Rng + ?Sized>(
    src: &[Vec2],
    dst: &[Vec2],
    config: &RansacConfig,
    rng: &mut R,
) -> Result<RansacResult, RansacError> {
    ransac_rigid_guided(src, dst, None, config, rng)
}

/// [`ransac_rigid_guided`] with an optional externally-predicted transform
/// evaluated as *hypothesis zero* before any sampling — the entry point of
/// the temporal warm start's guided fallback.
///
/// The hint is scored with the exact consensus predicate **without
/// consuming the RNG**. When its inlier count clears both `min_inliers`
/// and the `early_exit_fraction` bar — i.e. when the reference serial scan
/// would have stopped on it immediately had it been drawn first — the
/// hint's consensus set is refit and returned with `iterations == 0`,
/// skipping sampling entirely. Otherwise the hint is discarded and the
/// call behaves **bit for bit** like [`ransac_rigid_guided`]: same RNG
/// consumption, same result, same errors. Passing `hint: None` is exactly
/// [`ransac_rigid_guided`].
///
/// # Errors
///
/// Returns [`RansacError`] on malformed input or when no model reaches
/// `min_inliers`.
pub fn ransac_rigid_hinted<R: Rng + ?Sized>(
    src: &[Vec2],
    dst: &[Vec2],
    quality: Option<&[f64]>,
    hint: Option<&Iso2>,
    config: &RansacConfig,
    rng: &mut R,
) -> Result<RansacResult, RansacError> {
    if src.len() != dst.len() {
        return Err(RansacError::LengthMismatch { src: src.len(), dst: dst.len() });
    }
    let n = src.len();
    if n < 2 {
        return Err(RansacError::TooFewCorrespondences { got: n });
    }
    if let Some(h) = hint {
        let thresh_sq = config.inlier_threshold * config.inlier_threshold;
        let inliers: Vec<usize> =
            (0..n).filter(|&k| (h.apply(src[k]) - dst[k]).norm_sq() <= thresh_sq).collect();
        let exits = inliers.len() as f64 >= config.early_exit_fraction * n as f64;
        if exits && inliers.len() >= config.min_inliers.max(2) {
            return refit_and_expand(src, dst, inliers, 0, config, thresh_sq);
        }
    }
    ransac_rigid_guided(src, dst, quality, config, rng)
}

/// How many of the best-quality distinct samples are fully pre-scored to
/// seed the bail bound before the scan starts (the PROSAC-style layer).
const PREVIEW_SAMPLES: usize = 16;

/// Outcome of evaluating one hypothesis. `Scored` carries the exact inlier
/// count; `Bailed` certifies only that the count cannot affect the scan
/// (it is at or below the bail bound the evaluation ran under).
enum HypothesisOutcome {
    /// Coincident sample points or a failed fit — no model.
    Degenerate,
    /// Abandoned early; provably irrelevant to best/exit/winner.
    Bailed,
    /// Fully counted.
    Scored(u32),
    /// Same unordered pair as the earlier sample at this index; the twin's
    /// resolution transfers because the two-point fit is bit-commutative
    /// in its pair order.
    Duplicate(u32),
}

/// [`ransac_rigid`] with optional per-correspondence quality weights
/// (lower is better — matcher descriptor distances plug in directly).
///
/// Quality only *schedules* work: the `PREVIEW_SAMPLES` distinct samples
/// with the smallest summed quality are scored first so the bail bound
/// starts high. The returned result is bit-identical to
/// [`ransac_rigid_naive`] with or without `quality`, at every `bba-par`
/// thread width. A `quality` slice whose length differs from the
/// correspondence count is ignored.
///
/// # Errors
///
/// Returns [`RansacError`] on malformed input or when no model reaches
/// `min_inliers`.
pub fn ransac_rigid_guided<R: Rng + ?Sized>(
    src: &[Vec2],
    dst: &[Vec2],
    quality: Option<&[f64]>,
    config: &RansacConfig,
    rng: &mut R,
) -> Result<RansacResult, RansacError> {
    if src.len() != dst.len() {
        return Err(RansacError::LengthMismatch { src: src.len(), dst: dst.len() });
    }
    let n = src.len();
    if n < 2 {
        return Err(RansacError::TooFewCorrespondences { got: n });
    }

    let thresh_sq = config.inlier_threshold * config.inlier_threshold;
    let samples = draw_samples(n, config.max_iterations, rng);
    let n_samples = samples.len();

    // SoA lanes of the correspondences keep the counting kernel's loads
    // unit-stride and autovectorisable.
    let sx: Vec<f64> = src.iter().map(|p| p.x).collect();
    let sy: Vec<f64> = src.iter().map(|p| p.y).collect();
    let dx: Vec<f64> = dst.iter().map(|p| p.x).collect();
    let dy: Vec<f64> = dst.iter().map(|p| p.y).collect();

    let sample_model = |(i, j): (usize, usize)| -> Option<Iso2> {
        // Degenerate (coincident) samples cannot define a rotation.
        if (src[i] - src[j]).norm_sq() < 1e-12 {
            return None;
        }
        fit_rigid_2pt(src[i], src[j], dst[i], dst[j]).ok()
    };

    // The naive scan exits once `count as f64 >= early_exit_fraction * n`.
    // `exit_cap` is the largest count that can NOT trigger that exit: every
    // bail bound is clamped to it, otherwise a bailed hypothesis could have
    // been the naive loop's exit trigger and the iteration count (and
    // winner) would diverge.
    let exit_f = config.early_exit_fraction * n as f64;
    let exits = |count: usize| count as f64 >= exit_f;
    let exit_cap: usize = if !exit_f.is_finite() || exit_f > n as f64 {
        usize::MAX
    } else {
        let mut t = if exit_f <= 0.0 { 0 } else { exit_f.ceil() as usize };
        if (t as f64) < exit_f {
            t += 1;
        }
        t.saturating_sub(1)
    };

    // Duplicate-sample table: (i, j) and (j, i) produce bit-identical
    // models (two-term IEEE sums commute), so a repeated unordered pair
    // reuses its first occurrence's resolution instead of rescoring. With
    // `max_iterations` far above the number of distinct pairs — stage 1
    // draws 3000 samples from often < 1000 pairs — this alone removes most
    // of the work.
    let mut first_seen: HashMap<u64, u32> = HashMap::with_capacity(n_samples);
    let mut dup_of: Vec<u32> = vec![u32::MAX; n_samples];
    for (k, &(i, j)) in samples.iter().enumerate() {
        let key = ((i.min(j) as u64) << 32) | (i.max(j) as u64);
        match first_seen.entry(key) {
            Entry::Occupied(e) => dup_of[k] = *e.get(),
            Entry::Vacant(e) => {
                e.insert(k as u32);
            }
        }
    }

    // PROSAC-style preview: fully score the distinct samples whose two
    // correspondences have the smallest summed quality (matcher distance).
    // Their exact counts are cached for the scan AND feed a suffix-max
    // table: while a previewed count `G` still lies ahead of the scan
    // cursor, any hypothesis that cannot reach `G` can be bailed (clamped
    // to `exit_cap`), because the eventual winner is guaranteed to reach at
    // least `G` — the strict `- 1` keeps first-achiever tie-breaking
    // intact.
    let mut pre: Vec<Option<u32>> = vec![None; n_samples];
    let mut preview_idx: Vec<u32> = Vec::new();
    let mut preview_suffix: Vec<u32> = Vec::new();
    if let Some(q) = quality.filter(|q| q.len() == n) {
        let mut order: Vec<u32> =
            (0..n_samples as u32).filter(|&k| dup_of[k as usize] == u32::MAX).collect();
        let take = PREVIEW_SAMPLES.min(order.len());
        if take > 0 {
            let qsum = |k: u32| {
                let (i, j) = samples[k as usize];
                q[i] + q[j]
            };
            order.select_nth_unstable_by(take - 1, |&a, &b| {
                qsum(a).total_cmp(&qsum(b)).then(a.cmp(&b))
            });
            let mut chosen = order[..take].to_vec();
            chosen.sort_unstable();
            for &k in &chosen {
                if let Some(model) = sample_model(samples[k as usize]) {
                    let (sin, cos) = model.yaw().sin_cos();
                    let t = model.translation();
                    // Bound 0 cannot bail mid-scan; a `None` here means the
                    // full count was exactly zero.
                    let count =
                        count_inliers_bailing(&sx, &sy, &dx, &dy, cos, sin, t.x, t.y, thresh_sq, 0)
                            .unwrap_or(0);
                    pre[k as usize] = Some(count as u32);
                }
            }
            let entries: Vec<(u32, u32)> =
                chosen.iter().filter_map(|&k| pre[k as usize].map(|c| (k, c))).collect();
            preview_idx = entries.iter().map(|&(k, _)| k).collect();
            preview_suffix = vec![0; entries.len()];
            let mut run = 0u32;
            for (slot, &(_, c)) in entries.iter().enumerate().rev() {
                run = run.max(c);
                preview_suffix[slot] = run;
            }
        }
    }
    // Largest safe bail contribution from preview counts strictly ahead of
    // index `k`.
    let suffix_bound = |k: usize| -> usize {
        let pos = preview_idx.partition_point(|&p| (p as usize) <= k);
        if pos >= preview_idx.len() {
            return 0;
        }
        (preview_suffix[pos] as usize).saturating_sub(1).min(exit_cap)
    };

    // The scan. Evaluation may run a chunk ahead in parallel; the merge
    // walks outcomes strictly in draw order, so best/exit/winner replicate
    // the serial scan exactly. Workers read the merged best through an
    // atomic: any value they observe is a prefix-max at or below the true
    // best at their index, so a bail it permits is always one the serial
    // scan could also have taken — looser reads cost extra full scores,
    // never a different result.
    let best_so_far = AtomicUsize::new(0);
    let eval = |k: usize| -> HypothesisOutcome {
        let twin = dup_of[k];
        if twin != u32::MAX {
            return HypothesisOutcome::Duplicate(twin);
        }
        if let Some(count) = pre[k] {
            return HypothesisOutcome::Scored(count);
        }
        let Some(model) = sample_model(samples[k]) else {
            return HypothesisOutcome::Degenerate;
        };
        let bound = best_so_far.load(Ordering::Relaxed).max(suffix_bound(k));
        let (sin, cos) = model.yaw().sin_cos();
        let t = model.translation();
        match count_inliers_bailing(&sx, &sy, &dx, &dy, cos, sin, t.x, t.y, thresh_sq, bound) {
            Some(count) => HypothesisOutcome::Scored(count as u32),
            None => HypothesisOutcome::Bailed,
        }
    };

    // resolved[k]: -2 unvisited, -1 bailed/degenerate (irrelevant), else
    // the exact count — what a later duplicate of sample `k` inherits.
    let mut resolved: Vec<i64> = vec![-2; n_samples];
    let mut best_count = 0usize;
    let mut best_idx: Option<usize> = None;
    let mut iterations = 0usize;
    let threads = bba_par::current_threads();
    let chunk = if threads <= 1 { 1 } else { threads * 8 };
    bba_par::par_scan_chunked(n_samples, chunk, eval, |k, outcome| {
        iterations = k + 1;
        let count = match outcome {
            HypothesisOutcome::Degenerate | HypothesisOutcome::Bailed => {
                resolved[k] = -1;
                return ControlFlow::Continue(());
            }
            HypothesisOutcome::Duplicate(twin) => {
                let r = resolved[twin as usize];
                resolved[k] = r;
                if r < 0 {
                    return ControlFlow::Continue(());
                }
                r as usize
            }
            HypothesisOutcome::Scored(count) => {
                resolved[k] = i64::from(count);
                count as usize
            }
        };
        if count > best_count {
            best_count = count;
            best_idx = Some(k);
            best_so_far.store(count, Ordering::Relaxed);
            if exits(count) {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    });

    let required = config.min_inliers.max(2);
    let Some(winner) = best_idx.filter(|_| best_count >= required) else {
        return Err(RansacError::NoConsensus { best: best_count, required });
    };
    // Materialise the winning consensus set once, with the exact predicate
    // the naive scorer uses.
    let model = sample_model(samples[winner])
        .expect("the winning sample was scored, so its model fit succeeded");
    let best_inliers: Vec<usize> =
        (0..n).filter(|&k| (model.apply(src[k]) - dst[k]).norm_sq() <= thresh_sq).collect();
    debug_assert_eq!(best_inliers.len(), best_count);
    refit_and_expand(src, dst, best_inliers, iterations, config, thresh_sq)
}

/// Counts correspondences the model maps within `sqrt(thresh_sq)` of their
/// destination, abandoning the hypothesis as soon as the unscored remainder
/// cannot lift the count strictly above `bound` (returns `None`; the exact
/// count is then provably `<= bound`).
///
/// The per-point arithmetic reproduces
/// `(model.apply(src[k]) - dst[k]).norm_sq() <= thresh_sq` operation for
/// operation, with the model's `sin_cos` hoisted out of the loop — the
/// hoist is bit-safe because `Vec2::rotated` computes the same `sin_cos`
/// of the same yaw on every call.
#[inline]
#[allow(clippy::too_many_arguments)] // flat scalar lanes keep the kernel SIMD-friendly
fn count_inliers_bailing(
    sx: &[f64],
    sy: &[f64],
    dx: &[f64],
    dy: &[f64],
    cos: f64,
    sin: f64,
    tx: f64,
    ty: f64,
    thresh_sq: f64,
    bound: usize,
) -> Option<usize> {
    const BLOCK: usize = 64;
    let n = sx.len();
    let mut count = 0usize;
    let mut k = 0usize;
    while k < n {
        let end = (k + BLOCK).min(n);
        for idx in k..end {
            let px = (cos * sx[idx] - sin * sy[idx]) + tx;
            let py = (sin * sx[idx] + cos * sy[idx]) + ty;
            let ex = px - dx[idx];
            let ey = py - dy[idx];
            count += usize::from(ex * ex + ey * ey <= thresh_sq);
        }
        k = end;
        if count + (n - k) <= bound {
            return None;
        }
    }
    Some(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth() -> Iso2 {
        Iso2::new(0.6, Vec2::new(5.0, -3.0))
    }

    fn clean_pairs(n: usize) -> (Vec<Vec2>, Vec<Vec2>) {
        let t = truth();
        let src: Vec<Vec2> =
            (0..n).map(|i| Vec2::new((i * 13 % 29) as f64, (i * 7 % 31) as f64)).collect();
        let dst = src.iter().map(|&p| t.apply(p)).collect();
        (src, dst)
    }

    /// Asserts the fast path and the naive reference agree exactly —
    /// including errors — for the given inputs and seed.
    fn assert_fast_matches_naive(
        src: &[Vec2],
        dst: &[Vec2],
        quality: Option<&[f64]>,
        cfg: &RansacConfig,
        seed: u64,
    ) {
        let naive = ransac_rigid_naive(src, dst, cfg, &mut StdRng::seed_from_u64(seed));
        let fast = ransac_rigid_guided(src, dst, quality, cfg, &mut StdRng::seed_from_u64(seed));
        assert_eq!(naive, fast);
    }

    #[test]
    fn recovers_exact_transform_without_outliers() {
        let (src, dst) = clean_pairs(25);
        let mut rng = StdRng::seed_from_u64(1);
        let r = ransac_rigid(&src, &dst, &RansacConfig::default(), &mut rng).unwrap();
        assert!(r.transform.approx_eq(&truth(), 1e-9, 1e-9));
        assert_eq!(r.num_inliers, 25);
    }

    #[test]
    fn hinted_without_hint_is_guided_bitwise_including_rng_stream() {
        let (src, mut dst) = clean_pairs(40);
        for k in 0..12 {
            dst[3 * k] = Vec2::new(900.0 + k as f64 * 11.0, -700.0);
        }
        let qual: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let cfg = RansacConfig::default();
        for seed in [0u64, 7, 91] {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let a = ransac_rigid_hinted(&src, &dst, Some(&qual), None, &cfg, &mut rng_a);
            let b = ransac_rigid_guided(&src, &dst, Some(&qual), &cfg, &mut rng_b);
            assert_eq!(a, b);
            assert_eq!(rng_a.random_range(0..u32::MAX), rng_b.random_range(0..u32::MAX));
        }
    }

    #[test]
    fn losing_hint_falls_back_bit_identically() {
        let (src, mut dst) = clean_pairs(40);
        for k in 0..12 {
            dst[3 * k] = Vec2::new(900.0 + k as f64 * 11.0, -700.0);
        }
        // A hint nowhere near the data: zero inliers, must be discarded.
        let bad = Iso2::new(2.0, Vec2::new(400.0, 400.0));
        let cfg = RansacConfig::default();
        for seed in [1u64, 42] {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let a = ransac_rigid_hinted(&src, &dst, None, Some(&bad), &cfg, &mut rng_a);
            let b = ransac_rigid_guided(&src, &dst, None, &cfg, &mut rng_b);
            assert_eq!(a, b);
            assert_eq!(rng_a.random_range(0..u32::MAX), rng_b.random_range(0..u32::MAX));
        }
    }

    #[test]
    fn winning_hint_skips_sampling_and_consumes_no_rng() {
        let (src, dst) = clean_pairs(30);
        let mut rng = StdRng::seed_from_u64(5);
        let mut untouched = rng.clone();
        let r = ransac_rigid_hinted(
            &src,
            &dst,
            None,
            Some(&truth()),
            &RansacConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(r.iterations, 0, "a winning hint reports zero sampling iterations");
        assert_eq!(r.num_inliers, 30);
        assert!(r.transform.approx_eq(&truth(), 1e-9, 1e-9));
        // The caller's RNG stream was never touched.
        assert_eq!(
            rng.random_range(0..u32::MAX),
            untouched.random_range(0..u32::MAX),
            "winning hint must not consume the RNG"
        );
    }

    #[test]
    fn hint_that_misses_the_exit_bar_is_discarded() {
        // The hint covers 20/40 points exactly, but early_exit_fraction
        // demands 70%: the serial scan would not have stopped on it, so the
        // fallback must run (and, with half the data clean, still win).
        let (src, mut dst) = clean_pairs(40);
        for k in 0..20 {
            dst[2 * k] = Vec2::new(1000.0 + k as f64 * 17.0, -500.0 - k as f64 * 3.0);
        }
        let cfg = RansacConfig::default();
        assert!(cfg.early_exit_fraction > 0.5);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let a = ransac_rigid_hinted(&src, &dst, None, Some(&truth()), &cfg, &mut rng_a);
        let b = ransac_rigid_guided(&src, &dst, None, &cfg, &mut rng_b);
        assert_eq!(a, b);
        assert_eq!(rng_a.random_range(0..u32::MAX), rng_b.random_range(0..u32::MAX));
    }

    #[test]
    fn hinted_validation_errors_precede_hint_use() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = RansacConfig::default();
        let e = ransac_rigid_hinted(&[Vec2::ZERO], &[], None, Some(&truth()), &cfg, &mut rng)
            .unwrap_err();
        assert_eq!(e, RansacError::LengthMismatch { src: 1, dst: 0 });
        let e =
            ransac_rigid_hinted(&[Vec2::ZERO], &[Vec2::ZERO], None, Some(&truth()), &cfg, &mut rng)
                .unwrap_err();
        assert_eq!(e, RansacError::TooFewCorrespondences { got: 1 });
    }

    #[test]
    fn survives_half_outliers() {
        let (src, mut dst) = clean_pairs(40);
        for k in 0..20 {
            dst[2 * k] = Vec2::new(1000.0 + k as f64 * 17.0, -500.0 - k as f64 * 3.0);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let r = ransac_rigid(&src, &dst, &RansacConfig::default(), &mut rng).unwrap();
        assert!(r.transform.approx_eq(&truth(), 1e-6, 1e-6));
        assert_eq!(r.num_inliers, 20);
        // Inlier list contains exactly the odd indices.
        assert!(r.inliers.iter().all(|&i| i % 2 == 1));
    }

    #[test]
    fn noisy_inliers_average_out() {
        let (src, dst) = clean_pairs(60);
        // ±0.3 deterministic perturbation.
        let dst: Vec<Vec2> = dst
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                p + Vec2::new(0.3 * ((i % 3) as f64 - 1.0), 0.3 * ((i % 5) as f64 - 2.0) / 2.0)
            })
            .collect();
        let cfg = RansacConfig { inlier_threshold: 1.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let r = ransac_rigid(&src, &dst, &cfg, &mut rng).unwrap();
        let (dt, dr) = r.transform.error_to(&truth());
        assert!(dt < 0.2, "translation error {dt}");
        assert!(dr < 0.02, "rotation error {dr}");
    }

    #[test]
    fn too_few_points_error() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = ransac_rigid(&[Vec2::ZERO], &[Vec2::ZERO], &RansacConfig::default(), &mut rng)
            .unwrap_err();
        assert_eq!(e, RansacError::TooFewCorrespondences { got: 1 });
    }

    #[test]
    fn length_mismatch_error() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = ransac_rigid(&[Vec2::ZERO], &[], &RansacConfig::default(), &mut rng).unwrap_err();
        assert_eq!(e, RansacError::LengthMismatch { src: 1, dst: 0 });
    }

    #[test]
    fn pure_noise_yields_no_consensus() {
        let src: Vec<Vec2> =
            (0..30).map(|i| Vec2::new(i as f64 * 3.1, (i * i) as f64 % 17.0)).collect();
        let dst: Vec<Vec2> =
            (0..30).map(|i| Vec2::new((i * i * 7) as f64 % 97.0, -(i as f64) * 5.3)).collect();
        let cfg = RansacConfig { inlier_threshold: 0.05, min_inliers: 10, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(4);
        match ransac_rigid(&src, &dst, &cfg, &mut rng) {
            Err(RansacError::NoConsensus { best, required }) => {
                assert!(best < required);
            }
            other => panic!("expected NoConsensus, got {other:?}"),
        }
    }

    #[test]
    fn early_exit_stops_iterating() {
        let (src, dst) = clean_pairs(50);
        let cfg =
            RansacConfig { max_iterations: 1000, early_exit_fraction: 0.5, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(5);
        let r = ransac_rigid(&src, &dst, &cfg, &mut rng).unwrap();
        assert!(r.iterations < 1000, "clean data should exit early, took {}", r.iterations);
    }

    #[test]
    fn errors_are_displayable() {
        for e in [
            RansacError::TooFewCorrespondences { got: 0 },
            RansacError::LengthMismatch { src: 1, dst: 2 },
            RansacError::NoConsensus { best: 1, required: 4 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn fast_matches_naive_on_the_standard_scenarios() {
        // Clean data (early exit fires), half outliers, pure noise
        // (NoConsensus), duplicates-heavy tiny input.
        let (src, dst) = clean_pairs(50);
        for seed in 0..20 {
            assert_fast_matches_naive(&src, &dst, None, &RansacConfig::default(), seed);
        }

        let (src, mut dst) = clean_pairs(40);
        for k in 0..20 {
            dst[2 * k] = Vec2::new(1000.0 + k as f64 * 17.0, -500.0 - k as f64 * 3.0);
        }
        let cfg = RansacConfig { max_iterations: 700, ..Default::default() };
        for seed in 0..20 {
            assert_fast_matches_naive(&src, &dst, None, &cfg, seed);
        }

        let noise_src: Vec<Vec2> =
            (0..30).map(|i| Vec2::new(i as f64 * 3.1, (i * i) as f64 % 17.0)).collect();
        let noise_dst: Vec<Vec2> =
            (0..30).map(|i| Vec2::new((i * i * 7) as f64 % 97.0, -(i as f64) * 5.3)).collect();
        let cfg = RansacConfig { inlier_threshold: 0.05, min_inliers: 10, ..Default::default() };
        for seed in 0..20 {
            assert_fast_matches_naive(&noise_src, &noise_dst, None, &cfg, seed);
        }
    }

    #[test]
    fn fast_matches_naive_with_quality_schedule() {
        let (src, mut dst) = clean_pairs(40);
        for k in 0..13 {
            dst[3 * k] = Vec2::new(-800.0 + k as f64 * 11.0, 900.0 + k as f64 * 5.0);
        }
        // Quality that actually ranks inliers first, plus adversarial
        // (inverted and constant) schedules: none may change the result.
        let good: Vec<f64> = (0..40).map(|i| if i % 3 == 0 { 9.0 } else { 0.1 }).collect();
        let inverted: Vec<f64> = good.iter().map(|q| -q).collect();
        let constant = vec![1.0; 40];
        let wrong_len = vec![1.0; 7];
        let cfg = RansacConfig { max_iterations: 500, ..Default::default() };
        for seed in 0..12 {
            for q in [&good, &inverted, &constant, &wrong_len] {
                assert_fast_matches_naive(&src, &dst, Some(q), &cfg, seed);
            }
        }
    }

    #[test]
    fn fast_matches_naive_when_exit_fraction_is_unreachable() {
        // early_exit_fraction > 1 makes the exit unreachable: the scan must
        // walk the full iteration budget in both implementations.
        let (src, mut dst) = clean_pairs(30);
        for k in 0..10 {
            dst[3 * k] = Vec2::new(500.0 + k as f64, 500.0 - k as f64);
        }
        let cfg =
            RansacConfig { max_iterations: 300, early_exit_fraction: 2.0, ..Default::default() };
        for seed in 0..12 {
            assert_fast_matches_naive(&src, &dst, None, &cfg, seed);
        }
        let r = ransac_rigid(&src, &dst, &cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(r.iterations, 300);
    }

    #[test]
    fn fast_matches_naive_on_duplicate_points() {
        // Many coincident correspondences: most samples are degenerate.
        let mut src = vec![Vec2::new(1.0, 1.0); 8];
        let mut dst = vec![Vec2::new(2.0, 2.0); 8];
        src.extend([Vec2::new(5.0, 0.0), Vec2::new(0.0, 5.0), Vec2::new(-4.0, 2.0)]);
        dst.extend([Vec2::new(6.0, 1.0), Vec2::new(1.0, 6.0), Vec2::new(-3.0, 3.0)]);
        let cfg = RansacConfig { min_inliers: 2, ..Default::default() };
        for seed in 0..20 {
            assert_fast_matches_naive(&src, &dst, None, &cfg, seed);
        }
    }

    #[test]
    fn fast_matches_naive_at_every_thread_width() {
        let (src, mut dst) = clean_pairs(60);
        for k in 0..25 {
            dst[2 * k] = Vec2::new(300.0 + k as f64 * 7.0, -200.0 + k as f64 * 13.0);
        }
        let quality: Vec<f64> = (0..60).map(|i| ((i * 37) % 61) as f64).collect();
        let cfg = RansacConfig { max_iterations: 600, ..Default::default() };
        let reference = bba_par::with_threads(1, || {
            ransac_rigid_naive(&src, &dst, &cfg, &mut StdRng::seed_from_u64(11))
        });
        for threads in 1..=8 {
            let fast = bba_par::with_threads(threads, || {
                ransac_rigid_guided(
                    &src,
                    &dst,
                    Some(&quality),
                    &cfg,
                    &mut StdRng::seed_from_u64(11),
                )
            });
            assert_eq!(reference, fast, "threads={threads}");
        }
    }

    #[test]
    fn count_kernel_bails_only_below_bound() {
        let (src, dst) = clean_pairs(32);
        let sx: Vec<f64> = src.iter().map(|p| p.x).collect();
        let sy: Vec<f64> = src.iter().map(|p| p.y).collect();
        let dx: Vec<f64> = dst.iter().map(|p| p.x).collect();
        let dy: Vec<f64> = dst.iter().map(|p| p.y).collect();
        let t = truth();
        let (sin, cos) = t.yaw().sin_cos();
        let tr = t.translation();
        // Perfect transform: all 32 are inliers at any sane threshold.
        let full = count_inliers_bailing(&sx, &sy, &dx, &dy, cos, sin, tr.x, tr.y, 4.0, 0);
        assert_eq!(full, Some(32));
        // A bound at or above the true count forces a bail...
        assert_eq!(count_inliers_bailing(&sx, &sy, &dx, &dy, cos, sin, tr.x, tr.y, 4.0, 32), None);
        // ...while any bound below it must still return the exact count.
        assert_eq!(
            count_inliers_bailing(&sx, &sy, &dx, &dy, cos, sin, tr.x, tr.y, 4.0, 31),
            Some(32)
        );
        // Identity transform on rotated data: zero inliers, bound 0 bails.
        assert_eq!(count_inliers_bailing(&sx, &sy, &dx, &dy, 1.0, 0.0, 0.0, 0.0, 1e-6, 0), None);
    }
}

//! RANSAC estimation of a rigid 2-D transform from point correspondences.
//!
//! Both stages of BB-Align end in this primitive (Algorithm 1, lines 11 and
//! 14). The returned inlier count is the paper's confidence signal: §V-A
//! declares a recovery successful when `Inliers_bv > 25` and
//! `Inliers_box > 6`.

use bba_geometry::{fit_rigid_2d, Iso2, Vec2};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// RANSAC parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RansacConfig {
    /// Maximum sampling iterations.
    pub max_iterations: usize,
    /// A correspondence is an inlier when the transformed source point lies
    /// within this distance of its destination (same unit as the points —
    /// pixels for stage 1, metres for stage 2).
    pub inlier_threshold: f64,
    /// Reject results with fewer inliers than this.
    pub min_inliers: usize,
    /// Stop early once this inlier *fraction* is reached (adaptive exit).
    pub early_exit_fraction: f64,
}

impl Default for RansacConfig {
    fn default() -> Self {
        RansacConfig {
            max_iterations: 400,
            inlier_threshold: 2.0,
            min_inliers: 4,
            early_exit_fraction: 0.8,
        }
    }
}

/// RANSAC output: the refit transform plus its consensus set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RansacResult {
    /// The rigid transform refit on all inliers.
    pub transform: Iso2,
    /// Indices of the inlier correspondences.
    pub inliers: Vec<usize>,
    /// `inliers.len()` — the paper's `Inliers_bv` / `Inliers_box`.
    pub num_inliers: usize,
    /// Number of iterations actually executed.
    pub iterations: usize,
}

/// Failure modes of RANSAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RansacError {
    /// Fewer than two correspondences supplied.
    TooFewCorrespondences {
        /// How many were supplied.
        got: usize,
    },
    /// Source/destination lengths differ.
    LengthMismatch {
        /// Source length.
        src: usize,
        /// Destination length.
        dst: usize,
    },
    /// No model reached [`RansacConfig::min_inliers`].
    NoConsensus {
        /// Best inlier count observed.
        best: usize,
        /// The configured minimum.
        required: usize,
    },
}

impl fmt::Display for RansacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RansacError::TooFewCorrespondences { got } => {
                write!(f, "RANSAC needs at least 2 correspondences, got {got}")
            }
            RansacError::LengthMismatch { src, dst } => {
                write!(f, "source has {src} points, destination {dst}")
            }
            RansacError::NoConsensus { best, required } => {
                write!(f, "no consensus: best model had {best} inliers, {required} required")
            }
        }
    }
}

impl Error for RansacError {}

/// Estimates the rigid transform mapping `src[i]` near `dst[i]` in the
/// presence of outliers.
///
/// # Errors
///
/// Returns [`RansacError`] on malformed input or when no model reaches
/// `min_inliers`.
pub fn ransac_rigid<R: Rng + ?Sized>(
    src: &[Vec2],
    dst: &[Vec2],
    config: &RansacConfig,
    rng: &mut R,
) -> Result<RansacResult, RansacError> {
    if src.len() != dst.len() {
        return Err(RansacError::LengthMismatch { src: src.len(), dst: dst.len() });
    }
    let n = src.len();
    if n < 2 {
        return Err(RansacError::TooFewCorrespondences { got: n });
    }

    let thresh_sq = config.inlier_threshold * config.inlier_threshold;

    // Minimal samples (two distinct correspondences each) are drawn up
    // front on the calling thread, so the rng stream is consumed
    // identically at every thread count; fitting and scoring each
    // hypothesis is then a pure function of its sample and parallelises
    // freely.
    let samples: Vec<(usize, usize)> = (0..config.max_iterations)
        .map(|_| {
            let i = rng.random_range(0..n);
            let mut j = rng.random_range(0..n);
            while j == i {
                j = rng.random_range(0..n);
            }
            (i, j)
        })
        .collect();
    let score = |&(i, j): &(usize, usize)| -> Option<Vec<usize>> {
        // Degenerate (coincident) samples cannot define a rotation.
        if (src[i] - src[j]).norm_sq() < 1e-12 {
            return None;
        }
        let model = fit_rigid_2d(&[src[i], src[j]], &[dst[i], dst[j]]).ok()?;
        Some((0..n).filter(|&k| (model.apply(src[k]) - dst[k]).norm_sq() <= thresh_sq).collect())
    };

    // Hypotheses are scored in parallel a chunk at a time, but the
    // best-so-far scan walks them strictly in draw order with the serial
    // loop's early-exit rule, so the winning consensus set — and the
    // reported iteration count — are independent of the thread count.
    // Under a budget of 1 the chunk size is 1: evaluation stays as lazy as
    // the classic loop and stops at the same iteration.
    let threads = bba_par::current_threads();
    let chunk = if threads <= 1 { 1 } else { threads * 8 };
    let mut best_inliers: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    'eval: for start in (0..samples.len()).step_by(chunk) {
        let end = (start + chunk).min(samples.len());
        let scored = bba_par::par_map(&samples[start..end], |s| score(s));
        for (offset, inliers) in scored.into_iter().enumerate() {
            iterations = start + offset + 1;
            let Some(inliers) = inliers else { continue };
            if inliers.len() > best_inliers.len() {
                best_inliers = inliers;
                if best_inliers.len() as f64 >= config.early_exit_fraction * n as f64 {
                    break 'eval;
                }
            }
        }
    }

    if best_inliers.len() < config.min_inliers.max(2) {
        return Err(RansacError::NoConsensus {
            best: best_inliers.len(),
            required: config.min_inliers.max(2),
        });
    }

    // Refit on the consensus set, then re-evaluate inliers once (a single
    // guided re-estimation pass markedly stabilises the estimate).
    let refit = |idx: &[usize]| {
        let s: Vec<Vec2> = idx.iter().map(|&k| src[k]).collect();
        let d: Vec<Vec2> = idx.iter().map(|&k| dst[k]).collect();
        fit_rigid_2d(&s, &d)
    };
    let mut transform = refit(&best_inliers).map_err(|_| RansacError::NoConsensus {
        best: best_inliers.len(),
        required: config.min_inliers.max(2),
    })?;
    let expanded: Vec<usize> =
        (0..n).filter(|&k| (transform.apply(src[k]) - dst[k]).norm_sq() <= thresh_sq).collect();
    if expanded.len() >= best_inliers.len() {
        if let Ok(t2) = refit(&expanded) {
            transform = t2;
            best_inliers = expanded;
        }
    }

    Ok(RansacResult {
        transform,
        num_inliers: best_inliers.len(),
        inliers: best_inliers,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth() -> Iso2 {
        Iso2::new(0.6, Vec2::new(5.0, -3.0))
    }

    fn clean_pairs(n: usize) -> (Vec<Vec2>, Vec<Vec2>) {
        let t = truth();
        let src: Vec<Vec2> =
            (0..n).map(|i| Vec2::new((i * 13 % 29) as f64, (i * 7 % 31) as f64)).collect();
        let dst = src.iter().map(|&p| t.apply(p)).collect();
        (src, dst)
    }

    #[test]
    fn recovers_exact_transform_without_outliers() {
        let (src, dst) = clean_pairs(25);
        let mut rng = StdRng::seed_from_u64(1);
        let r = ransac_rigid(&src, &dst, &RansacConfig::default(), &mut rng).unwrap();
        assert!(r.transform.approx_eq(&truth(), 1e-9, 1e-9));
        assert_eq!(r.num_inliers, 25);
    }

    #[test]
    fn survives_half_outliers() {
        let (src, mut dst) = clean_pairs(40);
        for k in 0..20 {
            dst[2 * k] = Vec2::new(1000.0 + k as f64 * 17.0, -500.0 - k as f64 * 3.0);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let r = ransac_rigid(&src, &dst, &RansacConfig::default(), &mut rng).unwrap();
        assert!(r.transform.approx_eq(&truth(), 1e-6, 1e-6));
        assert_eq!(r.num_inliers, 20);
        // Inlier list contains exactly the odd indices.
        assert!(r.inliers.iter().all(|&i| i % 2 == 1));
    }

    #[test]
    fn noisy_inliers_average_out() {
        let (src, dst) = clean_pairs(60);
        // ±0.3 deterministic perturbation.
        let dst: Vec<Vec2> = dst
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                p + Vec2::new(0.3 * ((i % 3) as f64 - 1.0), 0.3 * ((i % 5) as f64 - 2.0) / 2.0)
            })
            .collect();
        let cfg = RansacConfig { inlier_threshold: 1.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let r = ransac_rigid(&src, &dst, &cfg, &mut rng).unwrap();
        let (dt, dr) = r.transform.error_to(&truth());
        assert!(dt < 0.2, "translation error {dt}");
        assert!(dr < 0.02, "rotation error {dr}");
    }

    #[test]
    fn too_few_points_error() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = ransac_rigid(&[Vec2::ZERO], &[Vec2::ZERO], &RansacConfig::default(), &mut rng)
            .unwrap_err();
        assert_eq!(e, RansacError::TooFewCorrespondences { got: 1 });
    }

    #[test]
    fn length_mismatch_error() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = ransac_rigid(&[Vec2::ZERO], &[], &RansacConfig::default(), &mut rng).unwrap_err();
        assert_eq!(e, RansacError::LengthMismatch { src: 1, dst: 0 });
    }

    #[test]
    fn pure_noise_yields_no_consensus() {
        let src: Vec<Vec2> =
            (0..30).map(|i| Vec2::new(i as f64 * 3.1, (i * i) as f64 % 17.0)).collect();
        let dst: Vec<Vec2> =
            (0..30).map(|i| Vec2::new((i * i * 7) as f64 % 97.0, -(i as f64) * 5.3)).collect();
        let cfg = RansacConfig { inlier_threshold: 0.05, min_inliers: 10, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(4);
        match ransac_rigid(&src, &dst, &cfg, &mut rng) {
            Err(RansacError::NoConsensus { best, required }) => {
                assert!(best < required);
            }
            other => panic!("expected NoConsensus, got {other:?}"),
        }
    }

    #[test]
    fn early_exit_stops_iterating() {
        let (src, dst) = clean_pairs(50);
        let cfg =
            RansacConfig { max_iterations: 1000, early_exit_fraction: 0.5, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(5);
        let r = ransac_rigid(&src, &dst, &cfg, &mut rng).unwrap();
        assert!(r.iterations < 1000, "clean data should exit early, took {}", r.iterations);
    }

    #[test]
    fn errors_are_displayable() {
        for e in [
            RansacError::TooFewCorrespondences { got: 0 },
            RansacError::LengthMismatch { src: 1, dst: 2 },
            RansacError::NoConsensus { best: 1, required: 4 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

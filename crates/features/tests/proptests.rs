//! Property-based tests for keypoints, matching and RANSAC — including the
//! equivalence properties pinning the stage-1 fast paths to their naive
//! references (sample-once/re-bin describe, dot-product kernel matcher).

use bba_features::matcher::match_sets_naive;
use bba_features::{
    describe_keypoints_rotated, detect_keypoints, match_descriptors, match_sets, ransac_rigid,
    ransac_rigid_guided, ransac_rigid_naive, Descriptor, DescriptorConfig, DescriptorSet, Keypoint,
    KeypointConfig, MatcherConfig, PatchSamples, RansacConfig, RotationSweep, SampleWeighting,
};
use bba_geometry::{Iso2, Vec2};
use bba_signal::{Grid, LogGaborConfig, MaxIndexMap};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random L2-normalised descriptor sets for the matcher properties.
fn descriptor_set(max: usize) -> impl Strategy<Value = DescriptorSet> {
    proptest::collection::vec(proptest::collection::vec(-1.0f32..1.0, 12), 1..max).prop_map(
        |vecs| {
            let descs: Vec<Descriptor> = vecs
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                    Descriptor {
                        keypoint: Keypoint { u: i, v: i, score: 1.0 },
                        vector: v.iter().map(|x| x / norm).collect(),
                    }
                })
                .collect();
            DescriptorSet::from_descriptors(&descs)
        },
    )
}

fn weighting() -> impl Strategy<Value = SampleWeighting> {
    prop_oneof![
        Just(SampleWeighting::Amplitude),
        Just(SampleWeighting::SqrtAmplitude),
        Just(SampleWeighting::Binary),
    ]
}

fn any_iso2() -> impl Strategy<Value = Iso2> {
    (-3.0..3.0f64, -50.0..50.0f64, -50.0..50.0f64)
        .prop_map(|(a, x, y)| Iso2::new(a, Vec2::new(x, y)))
}

fn spread_points(n: usize) -> impl Strategy<Value = Vec<Vec2>> {
    proptest::collection::vec(
        (-80.0..80.0f64, -80.0..80.0f64).prop_map(|(x, y)| Vec2::new(x, y)),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ransac_recovers_under_outliers(
        t in any_iso2(),
        pts in spread_points(30),
        outlier_mask in proptest::collection::vec(any::<bool>(), 30),
        seed in 0u64..1000,
    ) {
        // Require enough inliers with spatial spread.
        let inlier_pts: Vec<Vec2> = pts
            .iter()
            .zip(&outlier_mask)
            .filter(|(_, &o)| !o)
            .map(|(&p, _)| p)
            .collect();
        prop_assume!(inlier_pts.len() >= 12);
        let mean = inlier_pts.iter().fold(Vec2::ZERO, |a, &b| a + b) / inlier_pts.len() as f64;
        let spread: f64 = inlier_pts.iter().map(|p| (*p - mean).norm_sq()).sum();
        prop_assume!(spread > 100.0);

        // Outliers get per-index incoherent displacements: a shared offset
        // would itself be a valid rigid model competing with the truth.
        let dst: Vec<Vec2> = pts
            .iter()
            .zip(&outlier_mask)
            .enumerate()
            .map(|(i, (&p, &o))| {
                if o {
                    p + Vec2::new(300.0 + 37.0 * i as f64, -200.0 + ((i * i * 53) % 97) as f64)
                } else {
                    t.apply(p)
                }
            })
            .collect();
        let cfg = RansacConfig { inlier_threshold: 0.5, min_inliers: 8, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let r = ransac_rigid(&pts, &dst, &cfg, &mut rng).unwrap();
        prop_assert!(r.transform.approx_eq(&t, 1e-5, 1e-5), "got {} want {}", r.transform, t);
        prop_assert_eq!(r.num_inliers, inlier_pts.len());
    }

    #[test]
    fn keypoints_never_exceed_cap_and_stay_in_bounds(
        cells in proptest::collection::vec(0.0..10.0f64, 32 * 32),
        cap in 1usize..50,
    ) {
        let img = Grid::from_vec(32, 32, cells);
        let cfg = KeypointConfig { max_keypoints: cap, ..Default::default() };
        let kps = detect_keypoints(&img, &cfg);
        prop_assert!(kps.len() <= cap);
        for kp in &kps {
            prop_assert!(kp.u >= cfg.border && kp.u < 32 - cfg.border);
            prop_assert!(kp.v >= cfg.border && kp.v < 32 - cfg.border);
            prop_assert!(kp.score > 0.0);
        }
    }

    #[test]
    fn matcher_respects_one_best_per_source(
        vecs in proptest::collection::vec(proptest::collection::vec(0.0f32..1.0, 8), 2..12),
    ) {
        let descs: Vec<Descriptor> = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                Descriptor {
                    keypoint: Keypoint { u: i, v: i, score: 1.0 },
                    vector: v.iter().map(|x| x / norm).collect(),
                }
            })
            .collect();
        let cfg = MatcherConfig { ratio: 1.0, mutual: false, max_distance: 10.0, keep_top_k: 1 };
        let matches = match_descriptors(&descs, &descs, &cfg);
        // k = 1: at most one match per source index.
        let mut seen = std::collections::HashSet::new();
        for m in &matches {
            prop_assert!(seen.insert(m.src), "duplicate source {}", m.src);
            prop_assert!(m.distance >= 0.0);
        }
    }

    #[test]
    fn top_k_is_superset_of_top_1(
        vecs in proptest::collection::vec(proptest::collection::vec(0.0f32..1.0, 6), 3..10),
    ) {
        let descs: Vec<Descriptor> = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                Descriptor {
                    keypoint: Keypoint { u: i, v: i, score: 1.0 },
                    vector: v.iter().map(|x| x / norm).collect(),
                }
            })
            .collect();
        let base = MatcherConfig { ratio: 1.0, mutual: false, max_distance: 10.0, keep_top_k: 1 };
        let wide = MatcherConfig { keep_top_k: 3, ..base.clone() };
        let m1 = match_descriptors(&descs, &descs, &base);
        let m3 = match_descriptors(&descs, &descs, &wide);
        for m in &m1 {
            prop_assert!(
                m3.iter().any(|x| x.src == m.src && x.dst == m.dst),
                "top-1 match lost at k=3"
            );
        }
    }

    /// Sample-once + re-bin descriptors are *bit-identical* to the naive
    /// per-angle `describe_keypoints_rotated` for random images, angles and
    /// descriptor configurations — the tentpole equivalence claim.
    #[test]
    fn sweep_rebin_equals_naive_describe(
        spikes in proptest::collection::vec((0usize..64, 0usize..64, 0.5..10.0f64), 5..50),
        kps_uv in proptest::collection::vec((0usize..64, 0usize..64), 1..8),
        angles in proptest::collection::vec(-7.0..7.0f64, 1..4),
        patch_size in prop_oneof![Just(12usize), Just(16usize), Just(24usize)],
        grid_size in 2usize..5,
        amplitude_gate in 0.0..0.3f64,
        weighting in weighting(),
    ) {
        let mut img = Grid::new(64, 64, 0.0);
        for &(u, v, z) in &spikes {
            img[(u, v)] = z;
        }
        let mim = MaxIndexMap::compute(&img, &LogGaborConfig::default());
        let cfg = DescriptorConfig {
            patch_size,
            grid_size,
            amplitude_gate,
            weighting,
            ..Default::default()
        };
        // Random keypoints — some will fail the border check, exercising
        // the drop paths — plus the centre, which always fits.
        let mut kps: Vec<Keypoint> =
            kps_uv.iter().map(|&(u, v)| Keypoint { u, v, score: 1.0 }).collect();
        kps.push(Keypoint { u: 32, v: 32, score: 1.0 });

        let sweep = RotationSweep::new(&cfg, mim.num_orientations, &angles);
        let mut samples = PatchSamples::new();
        samples.sample(&mim, &kps, &cfg);
        for (k, &angle) in angles.iter().enumerate() {
            let fast = samples.rebin(&sweep, k).to_descriptors();
            let naive = describe_keypoints_rotated(&mim, &kps, &cfg, angle);
            prop_assert_eq!(fast, naive, "hypothesis {} (angle {})", k, angle);
        }
    }

    /// The layered RANSAC fast path returns the exact `Result` of the naive
    /// reference scan — same pose bits, inlier set, iteration count and
    /// error variant — for random correspondence sets (outliers, exact
    /// duplicates, tiny inputs), random configurations, any quality
    /// schedule (absent, random, or wrong-length) and any thread width.
    #[test]
    fn ransac_fast_path_equals_naive_bit_for_bit(
        pts in prop::collection::vec((-60.0..60.0f64, -60.0..60.0f64, 0..5u8), 0..40),
        angle in -3.0..3.0f64,
        tx in -15.0..15.0f64,
        ty in -15.0..15.0f64,
        max_iterations in 1usize..400,
        inlier_threshold in 0.2..3.0f64,
        min_inliers in 2usize..10,
        early_exit_fraction in prop_oneof![0.3..1.0f64, Just(2.0)],
        seed in any::<u64>(),
        qmode in 0u8..3,
        qseed in any::<u64>(),
        threads in 2usize..9,
    ) {
        let truth = Iso2::new(angle, Vec2::new(tx, ty));
        let mut src: Vec<Vec2> = Vec::new();
        let mut dst: Vec<Vec2> = Vec::new();
        for &(x, y, flag) in &pts {
            match flag {
                // Exact duplicate of the previous correspondence: stresses
                // the degenerate 2-point fits and duplicate-sample memo.
                4 if !src.is_empty() => {
                    src.push(*src.last().unwrap());
                    dst.push(*dst.last().unwrap());
                }
                // Gross outlier with an index-incoherent displacement.
                0 => {
                    src.push(Vec2::new(x, y));
                    dst.push(truth.apply(Vec2::new(x, y)) + Vec2::new(120.0 + x, -90.0 + y));
                }
                _ => {
                    src.push(Vec2::new(x, y));
                    dst.push(truth.apply(Vec2::new(x, y)));
                }
            }
        }
        let n = src.len();
        let cfg = RansacConfig { max_iterations, inlier_threshold, min_inliers, early_exit_fraction };
        let quality: Option<Vec<f64>> = match qmode {
            0 => None,
            m => {
                let mut qrng = StdRng::seed_from_u64(qseed);
                // Wrong-length schedules must be ignored, not crash.
                let len = if m == 1 { n } else { n + 1 };
                Some((0..len).map(|_| qrng.random_range(0.0..10.0)).collect())
            }
        };
        let naive = bba_par::with_threads(1, || {
            let mut rng = StdRng::seed_from_u64(seed);
            ransac_rigid_naive(&src, &dst, &cfg, &mut rng)
        });
        for budget in [1usize, threads] {
            let fast = bba_par::with_threads(budget, || {
                let mut rng = StdRng::seed_from_u64(seed);
                ransac_rigid_guided(&src, &dst, quality.as_deref(), &cfg, &mut rng)
            });
            prop_assert_eq!(&naive, &fast, "diverged at {} threads (qmode {})", budget, qmode);
        }
    }

    /// The blocked dot-product kernel returns exactly the match set of the
    /// naive full-sort reference across random ratio / mutual /
    /// max_distance / keep_top_k configurations — and stays bit-identical
    /// at any thread count.
    #[test]
    fn kernel_matcher_equals_naive(
        src in descriptor_set(40),
        dst in descriptor_set(40),
        ratio in prop_oneof![Just(1.0f64), 0.5..1.0f64],
        mutual in any::<bool>(),
        max_distance in 0.5..2.5f64,
        keep_top_k in 1usize..4,
        threads in 2usize..9,
    ) {
        let cfg = MatcherConfig { ratio, mutual, max_distance, keep_top_k };
        let kernel = bba_par::with_threads(1, || match_sets(&src, &dst, &cfg));
        let naive = match_sets_naive(&src, &dst, &cfg);
        prop_assert_eq!(&kernel, &naive);
        let wide = bba_par::with_threads(threads, || match_sets(&src, &dst, &cfg));
        prop_assert_eq!(&kernel, &wide);
    }
}

//! Property-based tests for scenario generation and road geometry.

use bba_geometry::Vec2;
use bba_scene::road::RoadFrame;
use bba_scene::{Scenario, ScenarioConfig, ScenarioPreset, Trajectory};
use proptest::prelude::*;

fn any_preset() -> impl Strategy<Value = ScenarioPreset> {
    prop_oneof![
        Just(ScenarioPreset::Urban),
        Just(ScenarioPreset::Suburban),
        Just(ScenarioPreset::Highway),
        Just(ScenarioPreset::OpenRural),
        Just(ScenarioPreset::ParkingLot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scenarios_generate_without_panics(preset in any_preset(), seed in 0u64..500) {
        let s = Scenario::generate(&ScenarioConfig::preset(preset), seed);
        // Obstacle ids unique.
        let mut ids: Vec<u32> = s
            .world()
            .static_obstacles()
            .iter()
            .map(|o| o.id.0)
            .chain(s.world().dynamic_vehicles().iter().map(|d| d.id.0))
            .collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), before);
        // All shapes above ground and finite.
        for o in s.world().static_obstacles() {
            prop_assert!(o.shape.top_z() > 0.0);
            prop_assert!(o.shape.center_xy().is_finite());
        }
    }

    #[test]
    fn separation_sweep_controls_distance(sep in 10.0..90.0f64, seed in 0u64..50) {
        let cfg = ScenarioConfig::preset(ScenarioPreset::Suburban).with_separation(sep);
        let s = Scenario::generate(&cfg, seed);
        let d = s.agent_distance(0.0);
        prop_assert!((d - sep).abs() < 2.0, "requested {sep}, got {d}");
    }

    #[test]
    fn relative_pose_is_exact_inverse_pair(seed in 0u64..50, t in 0.0..10.0f64) {
        let s = Scenario::generate(&ScenarioConfig::default(), seed);
        let rel = s.true_relative_pose(t);
        let ego = s.ego_trajectory().pose_at(t);
        let other = s.other_trajectory().pose_at(t);
        let p = Vec2::new(3.0, -1.0);
        prop_assert!((ego.apply(rel.apply(p)) - other.apply(p)).norm() < 1e-9);
    }

    #[test]
    fn curvature_bends_trajectories(kappa in 0.003..0.02f64, seed in 0u64..30) {
        let cfg = ScenarioConfig::preset(ScenarioPreset::Suburban).with_curvature(kappa);
        let s = Scenario::generate(&cfg, seed);
        let h0 = s.ego_trajectory().pose_at(0.0).yaw();
        let h5 = s.ego_trajectory().pose_at(5.0).yaw();
        // Heading advances by roughly κ·v·t.
        let expect = kappa * cfg.ego_speed * 5.0;
        prop_assert!(((h5 - h0) - expect).abs() < 0.25 * expect + 0.02,
            "heading delta {} vs expected {}", h5 - h0, expect);
    }

    #[test]
    fn road_world_mapping_preserves_lateral_distance(
        kappa in -0.02..0.02f64, s in 0.0..200.0f64, d1 in -10.0..10.0f64, d2 in -10.0..10.0f64,
    ) {
        prop_assume!(kappa == 0.0 || kappa.abs() >= 1e-4);
        let road = RoadFrame::new(kappa);
        let a = road.to_world(s, d1);
        let b = road.to_world(s, d2);
        prop_assert!(((a - b).norm() - (d1 - d2).abs()).abs() < 1e-9);
    }

    #[test]
    fn trajectory_speed_is_constant(
        x in -50.0..50.0f64, y in -50.0..50.0f64, yaw in -3.0..3.0f64, v in 0.5..30.0f64,
        t in 0.0..20.0f64,
    ) {
        let traj = Trajectory::straight(Vec2::new(x, y), yaw, v);
        prop_assert!((traj.speed_at(t) - v).abs() < 1e-9);
        // Position advances linearly.
        let p0 = traj.pose_at(t).translation();
        let p1 = traj.pose_at(t + 1.0).translation();
        prop_assert!((p0.distance(p1) - v).abs() < 1e-9);
    }
}

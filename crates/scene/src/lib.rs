//! Procedural road-world generation for the BB-Align reproduction.
//!
//! The paper evaluates on **V2V4Real**, a real-world two-vehicle driving
//! dataset. That data is not redistributable, so this crate builds the
//! closest synthetic equivalent: a procedural world of roads, buildings,
//! trees, poles and vehicles, plus trajectories for the two cooperating
//! cars. The `bba-lidar` scanner ray-casts this world to produce scans with
//! the properties BB-Align depends on:
//!
//! * tall, stationary landmarks (building edges, tree tops) that stage 1
//!   matches through the Log-Gabor MIM;
//! * commonly observed vehicles that stage 2 aligns;
//! * occlusion, sparsity at range, and view-dependent coverage;
//! * scenario presets spanning dense urban traffic to open rural roads
//!   (where the paper reports recovery failures for lack of landmarks).
//!
//! # Example
//!
//! ```
//! use bba_scene::{Scenario, ScenarioConfig, ScenarioPreset};
//!
//! let cfg = ScenarioConfig::preset(ScenarioPreset::Suburban);
//! let scenario = Scenario::generate(&cfg, 42);
//! let world = scenario.world();
//! assert!(world.static_obstacles().len() > 10);
//! // Both cars drive forward along the road.
//! let p0 = scenario.ego_trajectory().pose_at(0.0);
//! let p1 = scenario.ego_trajectory().pose_at(5.0);
//! assert!(p1.translation().x > p0.translation().x);
//! ```

#![warn(missing_docs)]

pub mod fleet;
pub mod objects;
pub mod road;
pub mod sampling;
pub mod scenario;
pub mod trajectory;
pub mod world;

pub use fleet::{FleetConfig, FleetPlacement, FleetScenario};
pub use objects::{ObjectKind, Obstacle, ObstacleId, Shape};
pub use road::RoadFrame;
pub use sampling::GaussianSampler;
pub use scenario::{AgentHeading, Scenario, ScenarioConfig, ScenarioPreset};
pub use trajectory::Trajectory;
pub use world::World;

//! Small random-sampling helpers shared by the simulation crates.
//!
//! `rand` ships uniform sampling only; the Gaussian noise used throughout
//! the reproduction (pose corruption, sensor noise, detector noise) is a
//! hand-rolled Box–Muller transform to avoid pulling in `rand_distr`.

use rand::Rng;

/// A Box–Muller standard-normal sampler.
///
/// Generates pairs of independent N(0,1) samples and caches the spare one,
/// so consecutive draws cost one `sin`/`cos` pair every other call.
///
/// # Example
///
/// ```
/// use bba_scene::GaussianSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut gauss = GaussianSampler::new();
/// let samples: Vec<f64> = (0..1000).map(|_| gauss.sample(&mut rng)).collect();
/// let mean = samples.iter().sum::<f64>() / 1000.0;
/// assert!(mean.abs() < 0.2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        GaussianSampler { spare: None }
    }

    /// Draws one standard-normal sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller: u1 ∈ (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let (s, c) = theta.sin_cos();
        self.spare = Some(r * s);
        r * c
    }

    /// Draws a normal sample with the given standard deviation.
    pub fn sample_scaled<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64) -> f64 {
        self.sample(rng) * sigma
    }
}

/// Convenience free function: one N(0, σ²) draw without a cached sampler.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    GaussianSampler::new().sample_scaled(rng, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_close_to_standard_normal() {
        let mut rng = StdRng::seed_from_u64(1234);
        let mut g = GaussianSampler::new();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn scaled_sampling_scales_spread() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut g = GaussianSampler::new();
        let n = 10_000;
        let sigma = 2.5;
        let var = (0..n).map(|_| g.sample_scaled(&mut rng, sigma).powi(2)).sum::<f64>() / n as f64;
        assert!((var - sigma * sigma).abs() < 0.4, "variance {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = GaussianSampler::new();
            (0..5).map(|_| g.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn tails_are_plausible() {
        // ~0.27% of N(0,1) samples exceed |3σ|; with 50k draws expect ~135.
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = GaussianSampler::new();
        let n = 50_000;
        let extreme = (0..n).filter(|_| g.sample(&mut rng).abs() > 3.0).count();
        assert!(extreme > 30 && extreme < 400, "got {extreme} beyond 3σ");
    }
}

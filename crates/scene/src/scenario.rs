//! Scenario generation: seeded worlds plus the two cooperating cars.
//!
//! A scenario plays the role of one V2V4Real driving segment: a stretch of
//! road with landmarks and traffic, and two agent vehicles whose relative
//! pose is the ground truth that BB-Align must recover. Presets span the
//! traffic/landmark conditions the paper's evaluation sweeps:
//!
//! * [`ScenarioPreset::Urban`] — dense buildings and traffic (many common
//!   cars, Fig. 8/12 upper range).
//! * [`ScenarioPreset::Suburban`] — the default mixed condition.
//! * [`ScenarioPreset::Highway`] — barriers and poles, sparse buildings.
//! * [`ScenarioPreset::OpenRural`] — few landmarks; the regime where the
//!   paper reports unsuccessful recoveries (§V-A "vast open areas").

use crate::objects::{car_box, ObjectKind, Obstacle, ObstacleId, Shape, CAR_EXTENTS};
use crate::trajectory::Trajectory;
use crate::world::{DynamicVehicle, World};
use bba_geometry::{Box3, Vec2, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Built-in scenario families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioPreset {
    /// Dense downtown: many buildings, heavy traffic.
    Urban,
    /// Residential: moderate buildings, trees, light-to-medium traffic.
    Suburban,
    /// Highway: barriers, poles, no adjacent buildings.
    Highway,
    /// Open countryside: almost no landmarks (recovery-failure regime).
    OpenRural,
    /// A commercial strip with parking lots: rows of parked cars dominate —
    /// box-anchor-rich for stage 2, building-sparse for stage 1.
    ParkingLot,
}

/// Direction of the other agent car relative to the ego car.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AgentHeading {
    /// Both cars drive the same way (following scenario; V2V4Real's most
    /// common configuration).
    #[default]
    Same,
    /// The other car approaches in the opposite lane.
    Opposite,
}

/// Full parameter set for scenario generation.
///
/// Use [`ScenarioConfig::preset`] and tweak the fields that an experiment
/// sweeps (e.g. [`agent_separation`](Self::agent_separation) for the
/// distance study, [`traffic_count`](Self::traffic_count) for the common-car
/// study).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Length of the simulated road segment (m).
    pub road_length: f64,
    /// Buildings per 100 m of road, per side.
    pub building_density: f64,
    /// Trees per 100 m of road, per side.
    pub tree_density: f64,
    /// Poles per 100 m of road, per side.
    pub pole_density: f64,
    /// Highway-style barrier lines along both road edges.
    pub barriers: bool,
    /// Parked cars per 100 m of road, per side.
    pub parked_density: f64,
    /// Number of moving traffic vehicles.
    pub traffic_count: usize,
    /// Fraction of traffic placed inside the two agents' common viewing
    /// region (between the cars ±30 m) so both cars observe it.
    pub common_traffic_bias: f64,
    /// Along-road distance between the two agent cars (m).
    pub agent_separation: f64,
    /// Relative driving direction of the other car.
    pub agent_heading: AgentHeading,
    /// Ego speed (m/s).
    pub ego_speed: f64,
    /// Other-car speed (m/s); a speed *difference* drives self-motion
    /// distortion mismatch between the two scans.
    pub other_speed: f64,
    /// Signed road curvature κ (1/m); 0 = straight (the default). On a
    /// bend the relative yaw between the cars is nonzero and drifts with
    /// time, exercising the rotation estimation end to end.
    pub road_curvature: f64,
    /// Number of parking-lot areas (each a grid of parked cars beside the
    /// road).
    pub parking_lots: usize,
}

impl ScenarioConfig {
    /// The parameter set of a preset.
    pub fn preset(preset: ScenarioPreset) -> Self {
        match preset {
            ScenarioPreset::Urban => ScenarioConfig {
                road_length: 280.0,
                building_density: 7.0,
                tree_density: 2.0,
                pole_density: 3.0,
                barriers: false,
                parked_density: 3.0,
                traffic_count: 12,
                common_traffic_bias: 0.7,
                agent_separation: 35.0,
                agent_heading: AgentHeading::Same,
                ego_speed: 8.0,
                other_speed: 11.0,
                road_curvature: 0.0,
                parking_lots: 0,
            },
            ScenarioPreset::Suburban => ScenarioConfig {
                road_length: 280.0,
                building_density: 3.5,
                tree_density: 4.0,
                pole_density: 2.0,
                barriers: false,
                parked_density: 1.5,
                traffic_count: 6,
                common_traffic_bias: 0.6,
                agent_separation: 40.0,
                agent_heading: AgentHeading::Same,
                ego_speed: 10.0,
                other_speed: 13.0,
                road_curvature: 0.0,
                parking_lots: 0,
            },
            ScenarioPreset::Highway => ScenarioConfig {
                road_length: 400.0,
                building_density: 0.4,
                tree_density: 1.0,
                pole_density: 3.0,
                barriers: true,
                parked_density: 0.0,
                traffic_count: 8,
                common_traffic_bias: 0.5,
                agent_separation: 50.0,
                agent_heading: AgentHeading::Same,
                ego_speed: 24.0,
                other_speed: 27.0,
                road_curvature: 0.0,
                parking_lots: 0,
            },
            ScenarioPreset::OpenRural => ScenarioConfig {
                road_length: 300.0,
                building_density: 0.15,
                tree_density: 0.6,
                pole_density: 0.3,
                barriers: false,
                parked_density: 0.0,
                traffic_count: 2,
                common_traffic_bias: 0.5,
                agent_separation: 45.0,
                agent_heading: AgentHeading::Same,
                ego_speed: 15.0,
                other_speed: 17.0,
                road_curvature: 0.0,
                parking_lots: 0,
            },
            ScenarioPreset::ParkingLot => ScenarioConfig {
                road_length: 260.0,
                building_density: 1.2,
                tree_density: 1.0,
                pole_density: 2.0,
                barriers: false,
                parked_density: 1.0,
                traffic_count: 5,
                common_traffic_bias: 0.6,
                agent_separation: 30.0,
                agent_heading: AgentHeading::Same,
                ego_speed: 6.0,
                other_speed: 8.0,
                road_curvature: 0.0,
                parking_lots: 3,
            },
        }
    }

    /// Returns the config with a different agent separation (m).
    pub fn with_separation(mut self, separation: f64) -> Self {
        self.agent_separation = separation;
        self
    }

    /// Returns the config with a different traffic count.
    pub fn with_traffic(mut self, count: usize) -> Self {
        self.traffic_count = count;
        self
    }

    /// Returns the config with a road curvature (1/m; 0 = straight).
    pub fn with_curvature(mut self, curvature: f64) -> Self {
        self.road_curvature = curvature;
        self
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig::preset(ScenarioPreset::Suburban)
    }
}

/// A generated scenario: the world plus the two cooperating cars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    config: ScenarioConfig,
    world: World,
    ego_id: ObstacleId,
    other_id: ObstacleId,
    ego_trajectory: Trajectory,
    other_trajectory: Trajectory,
}

// Road geometry constants (metres).
// Lane centre distance from road centreline; shared with the fleet
// generator so platoon cars line up in the agents' lane.
pub(crate) const LANE_HALF_OFFSET: f64 = 1.75;
/// Fraction of the road length where the ego car starts its arc; shared
/// with the fleet generator so extra platoon cars are placed relative to
/// the same anchor.
pub(crate) const EGO_ARC_FRACTION: f64 = 0.35;
const CURB_OFFSET: f64 = 5.4; // parked-car row
const POLE_OFFSET: f64 = 6.5;
const TREE_OFFSET_MIN: f64 = 7.0;
const TREE_OFFSET_MAX: f64 = 14.0;
const BUILDING_OFFSET_MIN: f64 = 10.0;
const BUILDING_OFFSET_MAX: f64 = 24.0;
const BARRIER_OFFSET: f64 = 4.6;

impl Scenario {
    /// Generates a scenario deterministically from `seed`.
    pub fn generate(config: &ScenarioConfig, seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut world = World::default();
        let mut next_id = 0u32;
        let mut id = || {
            let i = ObstacleId(next_id);
            next_id += 1;
            i
        };
        let len = config.road_length;
        let road = crate::road::RoadFrame::new(config.road_curvature);

        // Buildings on both sides. Real streetscapes are *irregular* —
        // mixed orientations, L-shaped compounds, attached annexes — and
        // that irregularity is what makes BV images matchable (a perfectly
        // repetitive facade row aliases under translation). The generator
        // deliberately injects that variety.
        let per_side = |density: f64| (density * len / 100.0).round() as usize;
        // Block structure: density and building style vary along the road
        // in 30–60 m blocks. Without it the corridor is statistically
        // translation-invariant and BV matching aliases onto shifted
        // look-alike facades — real streets never are.
        let mut blocks: Vec<(f64, f64, f64)> = Vec::new(); // (start, end, density multiplier)
        {
            let mut x = 0.0;
            while x < len {
                let block_len = rng.random_range(30.0..60.0);
                let mult = match rng.random_range(0..4u32) {
                    0 => 0.0, // empty block (parking lot / park)
                    1 => 0.6,
                    2 => 1.2,
                    _ => 2.0, // dense block
                };
                blocks.push((x, (x + block_len).min(len), mult));
                x += block_len;
            }
        }
        let sample_block_x = |rng: &mut StdRng, blocks: &[(f64, f64, f64)]| -> Option<f64> {
            let total: f64 = blocks.iter().map(|b| (b.1 - b.0) * b.2).sum();
            if total <= 0.0 {
                return None;
            }
            let mut r = rng.random_range(0.0..total);
            for &(s, e, m) in blocks {
                let w = (e - s) * m;
                if r < w {
                    return Some(s + r / m.max(1e-9));
                }
                r -= w;
            }
            blocks.last().map(|b| b.1)
        };
        for side in [-1.0, 1.0] {
            for _ in 0..per_side(config.building_density) {
                let Some(x) = sample_block_x(&mut rng, &blocks) else { break };
                let depth = rng.random_range(5.0..20.0);
                let width = rng.random_range(6.0..28.0);
                let height = rng.random_range(3.0..28.0);
                let offset = rng.random_range(BUILDING_OFFSET_MIN..BUILDING_OFFSET_MAX);
                let d = side * (offset + depth / 2.0);
                let base = road.to_world(x, d);
                let yaw = road.heading_at(x) + rng.random_range(-0.35..0.35);
                world.push_static(Obstacle::new(
                    id(),
                    ObjectKind::Building,
                    Shape::Box(Box3::new(
                        Vec3::from_xy(base, height / 2.0),
                        Vec3::new(width, depth, height),
                        yaw,
                    )),
                ));
                // Facade detail: protrusions (bays, pillars, stair towers)
                // along the building perimeter. Two plain rectangles are
                // indistinguishable at BV resolution; real facades never
                // are, and this per-building "fingerprint" is what lets
                // descriptors tell look-alike buildings apart.
                let n_details = rng.random_range(2..7);
                for _ in 0..n_details {
                    let along = rng.random_range(-0.5..0.5) * width;
                    let front = if rng.random::<f64>() < 0.7 { -1.0 } else { 1.0 };
                    let local = Vec2::new(along, front * side * (depth / 2.0 + 0.6));
                    let wpos = base + local.rotated(yaw);
                    let d_size = rng.random_range(0.6..2.4);
                    let d_height = rng.random_range(1.5..(height + 2.0));
                    world.push_static(Obstacle::new(
                        id(),
                        ObjectKind::Building,
                        Shape::Box(Box3::new(
                            Vec3::from_xy(wpos, d_height / 2.0),
                            Vec3::new(d_size, d_size, d_height),
                            yaw + rng.random_range(-0.4..0.4),
                        )),
                    ));
                }
                // Roughly a third of buildings get an attached annex at a
                // different height/orientation (L-shaped compounds).
                if rng.random::<f64>() < 0.35 {
                    let a_depth = rng.random_range(4.0..10.0);
                    let a_width = rng.random_range(4.0..12.0);
                    let a_height = (height * rng.random_range(0.4..0.9)).max(2.5);
                    world.push_static(Obstacle::new(
                        id(),
                        ObjectKind::Building,
                        Shape::Box(Box3::new(
                            Vec3::from_xy(
                                base + Vec2::new(
                                    rng.random_range(-0.6..0.6) * width,
                                    side * rng.random_range(-4.0..4.0),
                                )
                                .rotated(road.heading_at(x)),
                                a_height / 2.0,
                            ),
                            Vec3::new(a_width, a_depth, a_height),
                            yaw + rng.random_range(-0.8..0.8),
                        )),
                    ));
                }
            }
            // Distinctive tall landmarks (water towers, masts): one per
            // ~120 m per side, unique enough to anchor the matcher.
            for _ in 0..((len / 120.0 * config.building_density.clamp(0.2, 2.0)).round() as usize) {
                let x = rng.random_range(0.0..len);
                let offset = rng.random_range(8.0..20.0);
                world.push_static(Obstacle::new(
                    id(),
                    ObjectKind::Pole,
                    Shape::Cylinder {
                        center: road.to_world(x, side * offset),
                        radius: rng.random_range(0.8..2.2),
                        z0: 0.0,
                        z1: rng.random_range(9.0..18.0),
                    },
                ));
            }
            // Trees: trunk + canopy, two obstacles sharing a position.
            for _ in 0..per_side(config.tree_density) {
                let x = rng.random_range(0.0..len);
                let offset = rng.random_range(TREE_OFFSET_MIN..TREE_OFFSET_MAX);
                let pos = road.to_world(x, side * offset);
                let trunk_h = rng.random_range(2.5..5.0);
                let canopy_r = rng.random_range(1.4..3.2);
                world.push_static(Obstacle::new(
                    id(),
                    ObjectKind::Tree,
                    Shape::Cylinder {
                        center: pos,
                        radius: rng.random_range(0.15..0.4),
                        z0: 0.0,
                        z1: trunk_h,
                    },
                ));
                world.push_static(Obstacle::new(
                    id(),
                    ObjectKind::Tree,
                    Shape::Sphere {
                        center: Vec3::from_xy(pos, trunk_h + canopy_r * 0.6),
                        radius: canopy_r,
                    },
                ));
            }
            // Poles.
            for _ in 0..per_side(config.pole_density) {
                let x = rng.random_range(0.0..len);
                world.push_static(Obstacle::new(
                    id(),
                    ObjectKind::Pole,
                    Shape::Cylinder {
                        center: road.to_world(x, side * POLE_OFFSET),
                        radius: 0.12,
                        z0: 0.0,
                        z1: rng.random_range(5.0..8.5),
                    },
                ));
            }
            // Parked cars along the curb.
            for _ in 0..per_side(config.parked_density) {
                let x = rng.random_range(0.0..len);
                let yaw = road.heading_at(x) + rng.random_range(-0.05..0.05);
                world.push_static(Obstacle::new(
                    id(),
                    ObjectKind::ParkedVehicle,
                    Shape::Box(car_box(road.to_world(x, side * CURB_OFFSET), yaw)),
                ));
            }
            // Parking lots: a grid of parked cars beside the road. Rows
            // run parallel to the road with realistic stall spacing.
            for _ in 0..config.parking_lots.div_ceil(2) {
                let lot_s = rng.random_range(0.2 * len..0.8 * len);
                let lot_d0 = side * rng.random_range(9.0..14.0);
                let rows = rng.random_range(2..4u32);
                let cols = rng.random_range(4..9u32);
                for r in 0..rows {
                    for c in 0..cols {
                        if rng.random::<f64>() < 0.25 {
                            continue; // empty stall
                        }
                        let s_pos = lot_s + c as f64 * 2.9 + rng.random_range(-0.2..0.2);
                        let d_pos = lot_d0 + side * r as f64 * 5.5;
                        // Cars park perpendicular to the road.
                        let yaw = road.heading_at(s_pos)
                            + std::f64::consts::FRAC_PI_2
                            + rng.random_range(-0.06..0.06);
                        world.push_static(Obstacle::new(
                            id(),
                            ObjectKind::ParkedVehicle,
                            Shape::Box(car_box(road.to_world(s_pos, d_pos), yaw)),
                        ));
                    }
                }
            }
            // Highway barriers: a row of low, long boxes.
            if config.barriers {
                let seg_len = 12.0;
                let mut x = 0.0;
                while x < len {
                    let mid = x + seg_len / 2.0;
                    world.push_static(Obstacle::new(
                        id(),
                        ObjectKind::Barrier,
                        Shape::Box(Box3::new(
                            Vec3::from_xy(road.to_world(mid, side * BARRIER_OFFSET), 0.5),
                            Vec3::new(seg_len - 0.5, 0.4, 1.0),
                            road.heading_at(mid),
                        )),
                    ));
                    x += seg_len;
                }
            }
        }

        // Agent trajectories: ego in the right lane along the road; the
        // other car `agent_separation` metres of arc ahead, same or
        // opposite direction.
        let ego_s = len * EGO_ARC_FRACTION;
        let other_s = ego_s + config.agent_separation;
        let ego_trajectory = road.trajectory(ego_s, -LANE_HALF_OFFSET, config.ego_speed, true);
        let other_trajectory = match config.agent_heading {
            AgentHeading::Same => {
                road.trajectory(other_s, -LANE_HALF_OFFSET, config.other_speed, true)
            }
            AgentHeading::Opposite => {
                road.trajectory(other_s, LANE_HALF_OFFSET, config.other_speed, false)
            }
        };

        let ego_id = id();
        world.push_dynamic(DynamicVehicle {
            id: ego_id,
            kind: ObjectKind::AgentVehicle,
            trajectory: ego_trajectory.clone(),
        });
        let other_id = id();
        world.push_dynamic(DynamicVehicle {
            id: other_id,
            kind: ObjectKind::AgentVehicle,
            trajectory: other_trajectory.clone(),
        });

        // Traffic: a biased fraction in the common viewing region so both
        // agents observe them; the rest anywhere on the road.
        let common_lo = ego_s.min(other_s) - 25.0;
        let common_hi = ego_s.max(other_s) + 25.0;
        for k in 0..config.traffic_count {
            let in_common = rng.random::<f64>() < config.common_traffic_bias;
            let x = if in_common {
                rng.random_range(common_lo..common_hi)
            } else {
                rng.random_range(0.0..len)
            };
            // Cycle four lanes (two per direction) so traffic is spread
            // laterally; collinear single-lane queues would occlude each
            // other and starve the common-observation experiments.
            let (lane_d, forward) = match k % 4 {
                0 => (-LANE_HALF_OFFSET, true),
                1 => (LANE_HALF_OFFSET, false),
                2 => (-LANE_HALF_OFFSET - 3.5, true),
                _ => (LANE_HALF_OFFSET + 3.5, false),
            };
            // Lateral jitter keeps cars from perfectly collinear layouts
            // (which would be degenerate for graph matching).
            let d = lane_d + rng.random_range(-0.8..0.8);
            let speed = rng.random_range(6.0..16.0);
            world.push_dynamic(DynamicVehicle {
                id: id(),
                kind: ObjectKind::TrafficVehicle,
                trajectory: road.trajectory(x, d, speed, forward),
            });
        }

        Scenario {
            config: config.clone(),
            world,
            ego_id,
            other_id,
            ego_trajectory,
            other_trajectory,
        }
    }

    /// The generation parameters.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Obstacle id of the ego agent car.
    pub fn ego_id(&self) -> ObstacleId {
        self.ego_id
    }

    /// Obstacle id of the other agent car.
    pub fn other_id(&self) -> ObstacleId {
        self.other_id
    }

    /// Trajectory of the ego car.
    pub fn ego_trajectory(&self) -> &Trajectory {
        &self.ego_trajectory
    }

    /// Trajectory of the other car.
    pub fn other_trajectory(&self) -> &Trajectory {
        &self.other_trajectory
    }

    /// Ground-truth relative transform mapping the other car's frame into
    /// the ego frame at time `t` — the quantity BB-Align estimates.
    pub fn true_relative_pose(&self, t: f64) -> bba_geometry::Iso2 {
        let ego = self.ego_trajectory.pose_at(t);
        let other = self.other_trajectory.pose_at(t);
        ego.relative_from(&other)
    }

    /// Inter-vehicle distance at time `t` (m).
    pub fn agent_distance(&self, t: f64) -> f64 {
        let e = self.ego_trajectory.pose_at(t).translation();
        let o = self.other_trajectory.pose_at(t).translation();
        e.distance(o)
    }

    /// Approximate car height for mounting sensors (m).
    pub fn sensor_mount_height() -> f64 {
        CAR_EXTENTS.z + 0.3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ScenarioConfig::preset(ScenarioPreset::Urban);
        let a = Scenario::generate(&cfg, 5);
        let b = Scenario::generate(&cfg, 5);
        assert_eq!(a, b);
        let c = Scenario::generate(&cfg, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn urban_is_denser_than_rural() {
        let urban = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::Urban), 1);
        let rural = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::OpenRural), 1);
        let landmark_count = |s: &Scenario| {
            s.world().static_obstacles().iter().filter(|o| o.kind.is_landmark()).count()
        };
        assert!(landmark_count(&urban) > 3 * landmark_count(&rural).max(1));
    }

    #[test]
    fn highway_has_barriers() {
        let hw = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::Highway), 2);
        assert!(hw.world().static_obstacles().iter().any(|o| o.kind == ObjectKind::Barrier));
    }

    #[test]
    fn agent_separation_respected() {
        for sep in [10.0, 40.0, 80.0] {
            let cfg = ScenarioConfig::default().with_separation(sep);
            let s = Scenario::generate(&cfg, 3);
            let d = s.agent_distance(0.0);
            // Same-lane following: distance ≈ separation.
            assert!((d - sep).abs() < 1.0, "sep {sep}: distance {d}");
        }
    }

    #[test]
    fn relative_pose_consistent_with_world_points() {
        let s = Scenario::generate(&ScenarioConfig::default(), 11);
        let t = 2.0;
        let rel = s.true_relative_pose(t);
        let ego = s.ego_trajectory().pose_at(t);
        let other = s.other_trajectory().pose_at(t);
        // A point 5 m ahead of the other car, via both paths.
        let p_other = Vec2::new(5.0, 0.0);
        let world_pt = other.apply(p_other);
        let ego_pt = rel.apply(p_other);
        assert!((ego.apply(ego_pt) - world_pt).norm() < 1e-9);
    }

    #[test]
    fn opposite_heading_flips_yaw() {
        let cfg =
            ScenarioConfig { agent_heading: AgentHeading::Opposite, ..ScenarioConfig::default() };
        let s = Scenario::generate(&cfg, 4);
        let rel = s.true_relative_pose(0.0);
        assert!((rel.yaw().abs() - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn traffic_count_matches_config() {
        let cfg = ScenarioConfig::default().with_traffic(9);
        let s = Scenario::generate(&cfg, 8);
        let traffic = s
            .world()
            .dynamic_vehicles()
            .iter()
            .filter(|d| d.kind == ObjectKind::TrafficVehicle)
            .count();
        assert_eq!(traffic, 9);
        // Plus the two agents.
        assert_eq!(s.world().dynamic_vehicles().len(), 11);
    }

    #[test]
    fn parking_lot_preset_is_rich_in_parked_cars() {
        let s = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::ParkingLot), 6);
        let parked = s
            .world()
            .static_obstacles()
            .iter()
            .filter(|o| o.kind == ObjectKind::ParkedVehicle)
            .count();
        assert!(parked >= 10, "parking lots should add many parked cars, got {parked}");
        // Perpendicular parking: most parked cars face roughly ±90°.
        let perpendicular = s
            .world()
            .static_obstacles()
            .iter()
            .filter(|o| o.kind == ObjectKind::ParkedVehicle)
            .filter(|o| match o.shape {
                Shape::Box(b) => {
                    let fold = bba_geometry::boxes::canonical_yaw(b.yaw).abs();
                    (fold - std::f64::consts::FRAC_PI_2).abs() < 0.2
                }
                _ => false,
            })
            .count();
        assert!(perpendicular * 2 > parked, "{perpendicular}/{parked} perpendicular");
    }

    #[test]
    fn agents_have_unique_ids() {
        let s = Scenario::generate(&ScenarioConfig::default(), 10);
        assert_ne!(s.ego_id(), s.other_id());
        let mut ids: Vec<u32> = s
            .world()
            .static_obstacles()
            .iter()
            .map(|o| o.id.0)
            .chain(s.world().dynamic_vehicles().iter().map(|d| d.id.0))
            .collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate obstacle ids");
    }
}

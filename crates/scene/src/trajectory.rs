//! Time-parameterised vehicle trajectories.
//!
//! Trajectories drive (a) the two cooperating cars, whose *relative* pose is
//! the quantity BB-Align recovers, and (b) traffic vehicles. They also feed
//! the self-motion-distortion model in `bba-lidar`: during one LiDAR sweep
//! the sensor pose is sampled from the trajectory at the per-ray timestamps.

use bba_geometry::{Iso2, Vec2};
use serde::{Deserialize, Serialize};

/// A piecewise-linear trajectory through timed waypoints.
///
/// Heading is derived from the direction of travel; between waypoints the
/// position is linearly interpolated and the heading follows the segment
/// direction. Before the first / after the last waypoint the trajectory
/// extrapolates at the boundary segment's velocity.
///
/// # Example
///
/// ```
/// use bba_scene::Trajectory;
/// use bba_geometry::Vec2;
///
/// // 10 m/s straight along +x.
/// let t = Trajectory::straight(Vec2::ZERO, 0.0, 10.0);
/// let pose = t.pose_at(2.0);
/// assert!((pose.translation().x - 20.0).abs() < 1e-9);
/// assert!(pose.yaw().abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// `(time, position)` waypoints, strictly increasing in time.
    waypoints: Vec<(f64, Vec2)>,
}

impl Trajectory {
    /// Builds a trajectory from timed waypoints.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two waypoints are given or times are not
    /// strictly increasing.
    pub fn new(waypoints: Vec<(f64, Vec2)>) -> Self {
        assert!(waypoints.len() >= 2, "a trajectory needs at least two waypoints");
        for pair in waypoints.windows(2) {
            assert!(
                pair[1].0 > pair[0].0,
                "waypoint times must be strictly increasing ({} then {})",
                pair[0].0,
                pair[1].0
            );
        }
        Trajectory { waypoints }
    }

    /// A straight constant-speed trajectory from `start` with heading
    /// `yaw` (radians) and `speed` (m/s), spanning a long time window.
    pub fn straight(start: Vec2, yaw: f64, speed: f64) -> Self {
        let dir = Vec2::from_angle(yaw);
        // Two waypoints 1000 s apart; interpolation/extrapolation covers the
        // rest.
        Trajectory::new(vec![(0.0, start), (1000.0, start + dir * (speed * 1000.0))])
    }

    /// A stationary "trajectory" (parked vehicle): constant pose.
    ///
    /// Implemented as an epsilon-length segment in the heading direction so
    /// heading remains well defined.
    pub fn stationary(position: Vec2, yaw: f64) -> Self {
        let dir = Vec2::from_angle(yaw);
        Trajectory::new(vec![(0.0, position), (1e6, position + dir * 1e-6)])
    }

    /// The timed waypoints.
    pub fn waypoints(&self) -> &[(f64, Vec2)] {
        &self.waypoints
    }

    /// Pose (position + heading) at time `t`, with linear inter/extrapolation.
    pub fn pose_at(&self, t: f64) -> Iso2 {
        let wps = &self.waypoints;
        // Find the segment containing t (or the boundary segment).
        let seg = match wps.iter().position(|&(wt, _)| wt > t) {
            Some(0) => 0,
            Some(i) => i - 1,
            None => wps.len() - 2,
        };
        let (t0, p0) = wps[seg];
        let (t1, p1) = wps[seg + 1];
        let dir = p1 - p0;
        let heading = if dir.norm() > 1e-9 { dir.angle() } else { 0.0 };
        let frac = (t - t0) / (t1 - t0);
        Iso2::from_pose(p0.lerp(p1, frac), heading)
    }

    /// Instantaneous velocity vector at time `t` (m/s).
    pub fn velocity_at(&self, t: f64) -> Vec2 {
        let wps = &self.waypoints;
        let seg = match wps.iter().position(|&(wt, _)| wt > t) {
            Some(0) => 0,
            Some(i) => i - 1,
            None => wps.len() - 2,
        };
        let (t0, p0) = wps[seg];
        let (t1, p1) = wps[seg + 1];
        (p1 - p0) / (t1 - t0)
    }

    /// Speed (m/s) at time `t`.
    pub fn speed_at(&self, t: f64) -> f64 {
        self.velocity_at(t).norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_motion() {
        let t = Trajectory::straight(Vec2::new(5.0, 0.0), 0.0, 12.0);
        let p = t.pose_at(3.0);
        assert!((p.translation() - Vec2::new(41.0, 0.0)).norm() < 1e-9);
        assert!((t.speed_at(3.0) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn heading_follows_direction() {
        let t = Trajectory::straight(Vec2::ZERO, std::f64::consts::FRAC_PI_2, 5.0);
        let p = t.pose_at(1.0);
        assert!((p.yaw() - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        assert!((p.translation() - Vec2::new(0.0, 5.0)).norm() < 1e-9);
    }

    #[test]
    fn waypoint_interpolation() {
        let t = Trajectory::new(vec![
            (0.0, Vec2::ZERO),
            (10.0, Vec2::new(100.0, 0.0)),
            (20.0, Vec2::new(100.0, 50.0)),
        ]);
        // Mid first segment.
        let a = t.pose_at(5.0);
        assert!((a.translation() - Vec2::new(50.0, 0.0)).norm() < 1e-9);
        assert!(a.yaw().abs() < 1e-9);
        // Mid second segment: heading turns to +y.
        let b = t.pose_at(15.0);
        assert!((b.translation() - Vec2::new(100.0, 25.0)).norm() < 1e-9);
        assert!((b.yaw() - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn extrapolates_beyond_ends() {
        let t = Trajectory::new(vec![(0.0, Vec2::ZERO), (1.0, Vec2::new(2.0, 0.0))]);
        assert!((t.pose_at(2.0).translation() - Vec2::new(4.0, 0.0)).norm() < 1e-9);
        assert!((t.pose_at(-1.0).translation() - Vec2::new(-2.0, 0.0)).norm() < 1e-9);
    }

    #[test]
    fn stationary_stays_put() {
        let t = Trajectory::stationary(Vec2::new(7.0, -2.0), 0.4);
        for k in 0..5 {
            let p = t.pose_at(k as f64 * 10.0);
            assert!((p.translation() - Vec2::new(7.0, -2.0)).norm() < 1e-3);
            assert!((p.yaw() - 0.4).abs() < 1e-6);
        }
        assert!(t.speed_at(0.0) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_waypoints_panic() {
        let _ = Trajectory::new(vec![(1.0, Vec2::ZERO), (0.5, Vec2::new(1.0, 0.0))]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_waypoint_panics() {
        let _ = Trajectory::new(vec![(0.0, Vec2::ZERO)]);
    }
}

//! World obstacles: what the LiDAR rays can hit.

use bba_geometry::{Box3, Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// Identifier of an obstacle within a [`crate::World`].
///
/// Ground-truth detection matching (who observed which car) is keyed on
/// these ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObstacleId(pub u32);

impl std::fmt::Display for ObstacleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obstacle#{}", self.0)
    }
}

/// Semantic class of an obstacle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// A building — the dominant tall landmark for BV image matching.
    Building,
    /// Tree: trunk + canopy; tree tops are salient MIM blobs.
    Tree,
    /// A pole / sign / lamp post.
    Pole,
    /// A road barrier segment (highway scenes).
    Barrier,
    /// A parked (static) vehicle.
    ParkedVehicle,
    /// A moving traffic vehicle (has a trajectory in the world).
    TrafficVehicle,
    /// One of the two cooperating agent cars.
    AgentVehicle,
}

impl ObjectKind {
    /// True for classes that the object detectors report (vehicles).
    pub fn is_vehicle(self) -> bool {
        matches!(
            self,
            ObjectKind::ParkedVehicle | ObjectKind::TrafficVehicle | ObjectKind::AgentVehicle
        )
    }

    /// True for the tall static landmarks stage 1 relies on.
    pub fn is_landmark(self) -> bool {
        matches!(self, ObjectKind::Building | ObjectKind::Tree | ObjectKind::Pole)
    }
}

/// Geometric shape of an obstacle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// An oriented 3-D box (buildings, vehicles, barriers).
    Box(Box3),
    /// A vertical cylinder (tree trunks, poles) from `z0` to `z1`.
    Cylinder {
        /// Axis position on the ground plane.
        center: Vec2,
        /// Cylinder radius (m).
        radius: f64,
        /// Bottom height (m).
        z0: f64,
        /// Top height (m).
        z1: f64,
    },
    /// A sphere (tree canopies).
    Sphere {
        /// Centre of the sphere.
        center: Vec3,
        /// Sphere radius (m).
        radius: f64,
    },
}

impl Shape {
    /// Ground-plane centre of the shape.
    pub fn center_xy(&self) -> Vec2 {
        match *self {
            Shape::Box(b) => b.center.xy(),
            Shape::Cylinder { center, .. } => center,
            Shape::Sphere { center, .. } => center.xy(),
        }
    }

    /// Radius of a circle on the ground plane that encloses the shape.
    pub fn bounding_radius_xy(&self) -> f64 {
        match *self {
            Shape::Box(b) => b.to_bev().circumradius(),
            Shape::Cylinder { radius, .. } => radius,
            Shape::Sphere { radius, .. } => radius,
        }
    }

    /// Maximum height (top z) of the shape.
    pub fn top_z(&self) -> f64 {
        match *self {
            Shape::Box(b) => b.z_range().1,
            Shape::Cylinder { z1, .. } => z1,
            Shape::Sphere { center, radius } => center.z + radius,
        }
    }
}

/// An obstacle instance: id + class + shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    /// Stable identifier within the world.
    pub id: ObstacleId,
    /// Semantic class.
    pub kind: ObjectKind,
    /// Geometry.
    pub shape: Shape,
}

impl Obstacle {
    /// Creates an obstacle.
    pub fn new(id: ObstacleId, kind: ObjectKind, shape: Shape) -> Self {
        Obstacle { id, kind, shape }
    }

    /// The vehicle box, if this obstacle is a vehicle with box geometry.
    pub fn vehicle_box(&self) -> Option<Box3> {
        if self.kind.is_vehicle() {
            match self.shape {
                Shape::Box(b) => Some(b),
                _ => None,
            }
        } else {
            None
        }
    }
}

/// Standard passenger-car dimensions used throughout the simulation
/// (length, width, height in metres).
pub const CAR_EXTENTS: Vec3 = Vec3 { x: 4.5, y: 1.9, z: 1.6 };

/// Builds a car-shaped box obstacle at a ground pose.
pub fn car_box(center_xy: Vec2, yaw: f64) -> Box3 {
    Box3::new(Vec3::from_xy(center_xy, CAR_EXTENTS.z / 2.0), CAR_EXTENTS, yaw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify() {
        assert!(ObjectKind::Building.is_landmark());
        assert!(!ObjectKind::Building.is_vehicle());
        assert!(ObjectKind::ParkedVehicle.is_vehicle());
        assert!(ObjectKind::AgentVehicle.is_vehicle());
        assert!(!ObjectKind::TrafficVehicle.is_landmark());
    }

    #[test]
    fn shape_metrics() {
        let b = Shape::Box(Box3::new(Vec3::new(1.0, 2.0, 5.0), Vec3::new(10.0, 8.0, 10.0), 0.0));
        assert_eq!(b.center_xy(), Vec2::new(1.0, 2.0));
        assert_eq!(b.top_z(), 10.0);
        assert!((b.bounding_radius_xy() - (25.0f64 + 16.0).sqrt()).abs() < 1e-12);

        let c = Shape::Cylinder { center: Vec2::new(3.0, 4.0), radius: 0.3, z0: 0.0, z1: 6.0 };
        assert_eq!(c.top_z(), 6.0);
        assert_eq!(c.bounding_radius_xy(), 0.3);

        let s = Shape::Sphere { center: Vec3::new(0.0, 0.0, 5.0), radius: 2.0 };
        assert_eq!(s.top_z(), 7.0);
    }

    #[test]
    fn car_box_sits_on_ground() {
        let b = car_box(Vec2::new(10.0, -3.0), 0.5);
        let (z0, z1) = b.z_range();
        assert!((z0 - 0.0).abs() < 1e-12);
        assert!((z1 - CAR_EXTENTS.z).abs() < 1e-12);
    }

    #[test]
    fn vehicle_box_only_for_vehicles() {
        let car = Obstacle::new(
            ObstacleId(1),
            ObjectKind::ParkedVehicle,
            Shape::Box(car_box(Vec2::ZERO, 0.0)),
        );
        assert!(car.vehicle_box().is_some());
        let bld = Obstacle::new(
            ObstacleId(2),
            ObjectKind::Building,
            Shape::Box(Box3::new(Vec3::new(0.0, 0.0, 5.0), Vec3::new(10.0, 10.0, 10.0), 0.0)),
        );
        assert!(bld.vehicle_box().is_none());
    }

    #[test]
    fn obstacle_id_display() {
        assert_eq!(ObstacleId(7).to_string(), "obstacle#7");
    }
}

//! Road-frame geometry: mapping (arc length, lateral offset) to world
//! coordinates for straight and constant-curvature roads.
//!
//! Curved roads matter for pose recovery: on a bend the two cars' headings
//! differ continuously, so the relative yaw is non-trivial and drifts over
//! time — exercising the rotation part of the estimators rather than the
//! pure-translation geometry of a straight corridor.

use crate::trajectory::Trajectory;
use bba_geometry::Vec2;
use serde::{Deserialize, Serialize};

/// A road centreline with constant curvature starting at the origin
/// heading +x.
///
/// `(s, d)` road coordinates map to world space: `s` is arc length along
/// the centreline, `d` the lateral offset (positive = left of travel).
///
/// # Example
///
/// ```
/// use bba_scene::road::RoadFrame;
/// use bba_geometry::Vec2;
///
/// let straight = RoadFrame::new(0.0);
/// assert!((straight.to_world(10.0, 2.0) - Vec2::new(10.0, 2.0)).norm() < 1e-12);
///
/// // A 200 m-radius left bend: after 100 m of arc the heading is 0.5 rad.
/// let bend = RoadFrame::new(1.0 / 200.0);
/// assert!((bend.heading_at(100.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadFrame {
    /// Signed curvature κ (1/m); positive bends left, 0 is straight.
    curvature: f64,
}

impl RoadFrame {
    /// Creates a road frame.
    ///
    /// # Panics
    ///
    /// Panics on non-finite curvature or a turn radius under 20 m
    /// (unrealistic for roads and numerically hostile).
    pub fn new(curvature: f64) -> Self {
        assert!(curvature.is_finite(), "curvature must be finite");
        assert!(
            curvature == 0.0 || curvature.abs() <= 1.0 / 20.0,
            "curvature {curvature} tighter than a 20 m radius"
        );
        RoadFrame { curvature }
    }

    /// The curvature κ (1/m).
    pub fn curvature(&self) -> f64 {
        self.curvature
    }

    /// Centreline heading at arc length `s`.
    pub fn heading_at(&self, s: f64) -> f64 {
        self.curvature * s
    }

    /// World position of road coordinates `(s, d)`.
    pub fn to_world(&self, s: f64, d: f64) -> Vec2 {
        let center = if self.curvature == 0.0 {
            Vec2::new(s, 0.0)
        } else {
            let k = self.curvature;
            Vec2::new((k * s).sin() / k, (1.0 - (k * s).cos()) / k)
        };
        // Left normal of the heading.
        let normal = Vec2::from_angle(self.heading_at(s) + std::f64::consts::FRAC_PI_2);
        center + normal * d
    }

    /// A constant-speed trajectory following the road at lateral offset
    /// `d`, starting from arc length `s0`. `forward` follows increasing
    /// `s`; `!forward` models oncoming traffic. Waypoints are sampled
    /// every ~4 m of arc so the piecewise-linear [`Trajectory`] tracks the
    /// curve closely.
    pub fn trajectory(&self, s0: f64, d: f64, speed: f64, forward: bool) -> Trajectory {
        if self.curvature == 0.0 {
            let heading = if forward { 0.0 } else { std::f64::consts::PI };
            return Trajectory::straight(self.to_world(s0, d), heading, speed);
        }
        let dir = if forward { 1.0 } else { -1.0 };
        let speed = speed.max(0.1);
        // Cover a generous horizon either way.
        let horizon = 600.0f64;
        let step = 4.0f64;
        let n = (horizon / step).ceil() as usize;
        let mut waypoints = Vec::with_capacity(n + 1);
        for k in 0..=n {
            let ds = k as f64 * step * dir;
            let t = (k as f64 * step) / speed;
            waypoints.push((t, self.to_world(s0 + ds, d)));
        }
        Trajectory::new(waypoints)
    }
}

impl Default for RoadFrame {
    fn default() -> Self {
        RoadFrame::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_road_is_identity() {
        let r = RoadFrame::new(0.0);
        assert_eq!(r.to_world(25.0, -3.0), Vec2::new(25.0, -3.0));
        assert_eq!(r.heading_at(100.0), 0.0);
    }

    #[test]
    fn arc_length_is_preserved_on_centerline() {
        let r = RoadFrame::new(1.0 / 100.0);
        // Walk the centreline in small steps; cumulative chord length ≈ s.
        let mut total = 0.0;
        let mut prev = r.to_world(0.0, 0.0);
        let steps = 200;
        for k in 1..=steps {
            let s = k as f64 * 0.5;
            let p = r.to_world(s, 0.0);
            total += (p - prev).norm();
            prev = p;
        }
        assert!((total - 100.0).abs() < 0.05, "arc length drifted: {total}");
    }

    #[test]
    fn lateral_offset_is_perpendicular() {
        let r = RoadFrame::new(1.0 / 150.0);
        for s in [0.0, 40.0, 120.0] {
            let c = r.to_world(s, 0.0);
            let left = r.to_world(s, 2.0);
            assert!(((left - c).norm() - 2.0).abs() < 1e-9);
            // Offset direction ⟂ heading.
            let heading = Vec2::from_angle(r.heading_at(s));
            assert!((left - c).dot(heading).abs() < 1e-9);
        }
    }

    #[test]
    fn left_curvature_bends_left() {
        let r = RoadFrame::new(1.0 / 80.0);
        let p = r.to_world(40.0, 0.0);
        assert!(p.y > 0.0, "positive curvature should bend toward +y, got {p:?}");
        let r2 = RoadFrame::new(-1.0 / 80.0);
        assert!(r2.to_world(40.0, 0.0).y < 0.0);
    }

    #[test]
    fn trajectory_follows_the_curve() {
        let r = RoadFrame::new(1.0 / 120.0);
        let traj = r.trajectory(50.0, -1.75, 10.0, true);
        // After 6 s at 10 m/s the car is ~60 m of arc further along.
        let pose = traj.pose_at(6.0);
        let expect = r.to_world(110.0, -1.75);
        assert!((pose.translation() - expect).norm() < 0.5, "{:?}", pose.translation());
        // Heading tracks the tangent.
        let expect_heading = r.heading_at(110.0);
        assert!((pose.yaw() - expect_heading).abs() < 0.06);
    }

    #[test]
    fn reverse_trajectory_heads_backwards() {
        let r = RoadFrame::new(1.0 / 100.0);
        let traj = r.trajectory(100.0, 1.75, 8.0, false);
        let p0 = traj.pose_at(0.0).translation();
        let p1 = traj.pose_at(2.0).translation();
        // Arc position decreased.
        let s_of = |p: Vec2| p.x.atan2(100.0 - p.y) * 100.0; // invert crude
        assert!(s_of(p1) < s_of(p0));
    }

    #[test]
    #[should_panic(expected = "tighter than")]
    fn absurd_curvature_panics() {
        let _ = RoadFrame::new(0.5);
    }
}

//! Fleet scenarios: N>2 cooperating agent vehicles on one road.
//!
//! A [`Scenario`] models the paper's two-car V2V4Real segment. Fleet-scale
//! serving needs more: a platoon of N agent cars whose pairwise relative
//! poses form a *graph* with cycles, so that chained pairwise recoveries
//! can be checked for cycle consistency. [`FleetScenario`] wraps the
//! two-car generator — the world, traffic and the first two agents are
//! byte-identical to [`Scenario::generate`] with the same config and seed,
//! which keeps every existing two-car pin untouched — and appends N−2
//! further agent cars behind the ego car in the same lane, each with a
//! small deterministic speed jitter so the platoon breathes instead of
//! moving as a rigid body.
//!
//! Vehicle indexing: `0` is the scenario's ego car, `1` the scenario's
//! other car, `2..N` the appended platoon cars ordered back-to-front
//! behind the ego.
//!
//! [`FleetPlacement`] selects the layout of the appended cars: a single
//! coherent [`FleetPlacement::Platoon`] (every consecutive pair
//! overlaps), or well-separated [`FleetPlacement::Clusters`] whose
//! cross-cluster pairs are guaranteed disjoint — the ground truth a
//! place-recognition ROC sweep needs, exposed via
//! [`FleetScenario::bev_overlap_fraction`].

use crate::objects::{ObjectKind, ObstacleId};
use crate::scenario::{Scenario, ScenarioConfig, EGO_ARC_FRACTION, LANE_HALF_OFFSET};
use crate::trajectory::Trajectory;
use crate::world::{DynamicVehicle, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the appended (index ≥ 2) agent cars are placed along the road.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FleetPlacement {
    /// One coherent column behind the ego at uniform spacing — every
    /// consecutive pair overlaps heavily. The original fleet layout.
    #[default]
    Platoon,
    /// Well-separated groups: cars within a cluster sit `spacing` apart
    /// (mutually overlapping BEVs), while cluster anchors sit
    /// `cluster_gap` apart — far beyond sensing range, so cross-cluster
    /// pairs share no BEV. Gives place-recognition benches ground truth
    /// with both overlapping *and* non-overlapping pairs.
    Clusters,
}

/// Parameters of a fleet (platoon) scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Base two-car scenario (world, traffic, agents 0 and 1).
    pub scenario: ScenarioConfig,
    /// Total number of agent vehicles (≥ 2). With exactly 2 the fleet
    /// degenerates to the base scenario.
    pub vehicles: usize,
    /// Along-road gap (m) between consecutive platoon cars appended
    /// behind the ego (within one cluster, for [`FleetPlacement::Clusters`]).
    pub spacing: f64,
    /// Half-width (m/s) of the uniform per-car speed perturbation around
    /// the base scenario's ego speed. Keep small relative to `spacing` so
    /// the platoon stays coherent over a simulated run.
    pub speed_jitter: f64,
    /// Layout of the appended cars.
    pub placement: FleetPlacement,
    /// Cars per cluster ([`FleetPlacement::Clusters`] only).
    pub cluster_size: usize,
    /// Arc distance (m) between consecutive cluster anchors
    /// ([`FleetPlacement::Clusters`] only). Choose beyond twice the BEV
    /// range so cross-cluster pairs are guaranteed non-overlapping.
    pub cluster_gap: f64,
}

impl FleetConfig {
    /// A platoon of `vehicles` cars on the given base scenario, with the
    /// base agent separation reused as the platoon spacing so consecutive
    /// gaps are uniform front to back.
    pub fn platoon(scenario: ScenarioConfig, vehicles: usize) -> Self {
        let spacing = scenario.agent_separation;
        FleetConfig {
            scenario,
            vehicles,
            spacing,
            speed_jitter: 0.5,
            placement: FleetPlacement::Platoon,
            cluster_size: 4,
            cluster_gap: 300.0,
        }
    }

    /// A clustered fleet: groups of `cluster_size` mutually overlapping
    /// cars, consecutive clusters `cluster_gap` metres apart.
    pub fn clusters(
        scenario: ScenarioConfig,
        vehicles: usize,
        cluster_size: usize,
        cluster_gap: f64,
    ) -> Self {
        let spacing = scenario.agent_separation;
        FleetConfig {
            scenario,
            vehicles,
            spacing,
            speed_jitter: 0.5,
            placement: FleetPlacement::Clusters,
            cluster_size,
            cluster_gap,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on fewer than two vehicles, a non-positive spacing, or (for
    /// [`FleetPlacement::Clusters`]) an empty cluster or non-positive gap.
    pub fn validate(&self) {
        assert!(self.vehicles >= 2, "a fleet needs at least two vehicles");
        assert!(self.spacing > 0.0, "platoon spacing must be positive");
        assert!(self.speed_jitter >= 0.0, "speed jitter cannot be negative");
        if self.placement == FleetPlacement::Clusters {
            assert!(self.cluster_size >= 1, "clusters need at least one car");
            assert!(self.cluster_gap > 0.0, "cluster gap must be positive");
        }
    }
}

/// A generated fleet: the base scenario's world plus N agent vehicles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScenario {
    config: FleetConfig,
    world: World,
    ids: Vec<ObstacleId>,
    trajectories: Vec<Trajectory>,
}

impl FleetScenario {
    /// Generates a fleet deterministically from `seed`.
    ///
    /// The base world and the first two agents come from
    /// [`Scenario::generate`] with the same config and seed; platoon cars
    /// are appended from an independent RNG stream, so adding vehicles
    /// never reshuffles the world.
    pub fn generate(config: &FleetConfig, seed: u64) -> FleetScenario {
        config.validate();
        let base = Scenario::generate(&config.scenario, seed);
        let mut world = base.world().clone();
        let mut ids = vec![base.ego_id(), base.other_id()];
        let mut trajectories = vec![base.ego_trajectory().clone(), base.other_trajectory().clone()];

        // Independent stream: mixing a distinct constant keeps platoon
        // jitter decoupled from the scenario's own generation RNG.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1EE_7A11_0000_0001);
        let road = crate::road::RoadFrame::new(config.scenario.road_curvature);
        let ego_s = config.scenario.road_length * EGO_ARC_FRACTION;
        for k in 2..config.vehicles {
            // Platoon: car k sits (k-1)·spacing behind the ego, same lane,
            // driving forward near the ego speed. Clusters: car k joins
            // cluster (k-2)/cluster_size, whose anchor trails the ego by a
            // multiple of cluster_gap, at spacing-sized slots within it.
            let s0 = match config.placement {
                FleetPlacement::Platoon => ego_s - (k as f64 - 1.0) * config.spacing,
                FleetPlacement::Clusters => {
                    let cluster = (k - 2) / config.cluster_size.max(1);
                    let slot = (k - 2) % config.cluster_size.max(1);
                    ego_s
                        - (cluster as f64 + 1.0) * config.cluster_gap
                        - (slot as f64 + 1.0) * config.spacing
                }
            };
            let jitter = if config.speed_jitter > 0.0 {
                rng.random_range(-config.speed_jitter..config.speed_jitter)
            } else {
                0.0
            };
            let speed = (config.scenario.ego_speed + jitter).max(0.5);
            let trajectory = road.trajectory(s0, -LANE_HALF_OFFSET, speed, true);
            let id = world.next_id();
            world.push_dynamic(DynamicVehicle {
                id,
                kind: ObjectKind::AgentVehicle,
                trajectory: trajectory.clone(),
            });
            ids.push(id);
            trajectories.push(trajectory);
        }

        FleetScenario { config: config.clone(), world, ids, trajectories }
    }

    /// The generation parameters.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The world (base scenario plus platoon cars).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Number of agent vehicles.
    pub fn vehicle_count(&self) -> usize {
        self.ids.len()
    }

    /// Obstacle id of agent vehicle `i`.
    pub fn vehicle_id(&self, i: usize) -> ObstacleId {
        self.ids[i]
    }

    /// Trajectory of agent vehicle `i`.
    pub fn trajectory(&self, i: usize) -> &Trajectory {
        &self.trajectories[i]
    }

    /// Ground-truth transform mapping vehicle `j`'s frame into vehicle
    /// `i`'s frame at time `t` — the recovery target for the pair `(i, j)`.
    pub fn relative_pose(&self, i: usize, j: usize, t: f64) -> bba_geometry::Iso2 {
        self.trajectories[i].pose_at(t).relative_from(&self.trajectories[j].pose_at(t))
    }

    /// Distance (m) between vehicles `i` and `j` at time `t`.
    pub fn distance(&self, i: usize, j: usize, t: f64) -> f64 {
        let a = self.trajectories[i].pose_at(t).translation();
        let b = self.trajectories[j].pose_at(t).translation();
        a.distance(b)
    }

    /// Ground-truth BEV overlap between vehicles `i` and `j` at time `t`:
    /// the intersection area of their two sensing discs of radius
    /// `range`, as a fraction of one disc's area (`1.0` when co-located,
    /// `0.0` once they are more than `2·range` apart).
    ///
    /// Rotation-invariant by construction — exactly the "do these two
    /// cars see the same scene" label place-recognition ROC sweeps need.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive `range`.
    pub fn bev_overlap_fraction(&self, i: usize, j: usize, t: f64, range: f64) -> f64 {
        assert!(range > 0.0, "sensing range must be positive");
        let d = self.distance(i, j, t);
        let r = range;
        if d >= 2.0 * r {
            return 0.0;
        }
        if d <= 0.0 {
            return 1.0;
        }
        // Lens area of two equal circles radius r at centre distance d.
        let lens =
            2.0 * r * r * (d / (2.0 * r)).acos() - 0.5 * d * (4.0 * r * r - d * d).max(0.0).sqrt();
        (lens / (std::f64::consts::PI * r * r)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioPreset;

    fn cfg(vehicles: usize) -> FleetConfig {
        FleetConfig::platoon(ScenarioConfig::preset(ScenarioPreset::Urban), vehicles)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FleetScenario::generate(&cfg(5), 7);
        let b = FleetScenario::generate(&cfg(5), 7);
        assert_eq!(a, b);
        assert_ne!(a, FleetScenario::generate(&cfg(5), 8));
    }

    #[test]
    fn two_vehicle_fleet_matches_base_scenario() {
        let fleet_cfg = cfg(2);
        let fleet = FleetScenario::generate(&fleet_cfg, 3);
        let base = Scenario::generate(&fleet_cfg.scenario, 3);
        assert_eq!(fleet.world(), base.world());
        assert_eq!(fleet.vehicle_id(0), base.ego_id());
        assert_eq!(fleet.vehicle_id(1), base.other_id());
    }

    #[test]
    fn extra_vehicles_extend_without_reshuffling_the_base_world() {
        let fleet_cfg = cfg(6);
        let fleet = FleetScenario::generate(&fleet_cfg, 3);
        let base = Scenario::generate(&fleet_cfg.scenario, 3);
        assert_eq!(fleet.vehicle_count(), 6);
        // The base world is a strict prefix: statics identical, dynamics
        // extended by exactly the platoon cars.
        assert_eq!(fleet.world().static_obstacles(), base.world().static_obstacles());
        let base_dyn = base.world().dynamic_vehicles();
        let fleet_dyn = fleet.world().dynamic_vehicles();
        assert_eq!(&fleet_dyn[..base_dyn.len()], base_dyn);
        assert_eq!(fleet_dyn.len(), base_dyn.len() + 4);
    }

    #[test]
    fn platoon_cars_follow_behind_the_ego_at_spacing() {
        let fleet = FleetScenario::generate(&cfg(5), 11);
        let spacing = fleet.config().spacing;
        for k in 2..5 {
            let d = fleet.distance(0, k, 0.0);
            let expect = (k as f64 - 1.0) * spacing;
            assert!((d - expect).abs() < 1.0, "car {k}: distance {d} vs expected {expect}");
            // Behind the ego: the relative position in the ego frame
            // points backwards (negative x for a forward-driving ego).
            let rel = fleet.relative_pose(0, k, 0.0);
            assert!(rel.apply(bba_geometry::Vec2::ZERO).x < 0.0, "car {k} should trail the ego");
        }
    }

    #[test]
    fn relative_poses_compose_around_cycles() {
        let fleet = FleetScenario::generate(&cfg(5), 4);
        let t = 1.5;
        for (i, j, k) in [(0usize, 1usize, 2usize), (1, 2, 3), (2, 3, 4)] {
            let ij = fleet.relative_pose(i, j, t);
            let jk = fleet.relative_pose(j, k, t);
            let ik = fleet.relative_pose(i, k, t);
            // T_ij ∘ T_jk = T_ik exactly (same ground-truth trajectories).
            let composed = ij.compose(&jk);
            assert!(composed.approx_eq(&ik, 1e-9, 1e-9), "cycle {i}-{j}-{k} inconsistent");
        }
    }

    #[test]
    fn vehicle_ids_are_unique_in_the_world() {
        let fleet = FleetScenario::generate(&cfg(7), 9);
        let mut ids: Vec<u32> = fleet
            .world()
            .static_obstacles()
            .iter()
            .map(|o| o.id.0)
            .chain(fleet.world().dynamic_vehicles().iter().map(|d| d.id.0))
            .collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate obstacle ids in fleet world");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_vehicle_fleet_panics() {
        FleetScenario::generate(&cfg(1), 0);
    }

    #[test]
    fn overlap_fraction_is_bounded_symmetric_and_distance_monotone() {
        let fleet = FleetScenario::generate(&cfg(6), 13);
        let range = 102.4;
        for i in 0..6 {
            for j in 0..6 {
                let f = fleet.bev_overlap_fraction(i, j, 0.0, range);
                assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
                let g = fleet.bev_overlap_fraction(j, i, 0.0, range);
                assert!((f - g).abs() < 1e-12, "overlap must be symmetric");
            }
            assert!((fleet.bev_overlap_fraction(i, i, 0.0, range) - 1.0).abs() < 1e-12);
        }
        // Platoon cars trail the ego at increasing distance, so the
        // overlap with the ego must be non-increasing back down the line.
        for k in 2..5 {
            let near = fleet.bev_overlap_fraction(0, k, 0.0, range);
            let far = fleet.bev_overlap_fraction(0, k + 1, 0.0, range);
            assert!(near >= far, "overlap should shrink with distance ({near} < {far})");
        }
    }

    #[test]
    fn clusters_separate_overlapping_and_disjoint_pairs() {
        // Two clusters of three, anchors 300 m apart: within a cluster
        // every pair overlaps heavily; across clusters nothing overlaps
        // at a 102.4 m sensing radius.
        let config =
            FleetConfig::clusters(ScenarioConfig::preset(ScenarioPreset::Suburban), 8, 3, 300.0);
        let fleet = FleetScenario::generate(&config, 21);
        let range = 102.4;
        // Cluster 0 = vehicles 2..5, cluster 1 = vehicles 5..8.
        for a in 2..5 {
            for b in 2..5 {
                if a == b {
                    continue;
                }
                let f = fleet.bev_overlap_fraction(a, b, 0.0, range);
                assert!(f > 0.5, "same-cluster pair ({a},{b}) overlap {f} too low");
            }
        }
        for a in 2..5 {
            for b in 5..8 {
                let f = fleet.bev_overlap_fraction(a, b, 0.0, range);
                assert_eq!(f, 0.0, "cross-cluster pair ({a},{b}) overlap {f} should be zero");
            }
        }
    }

    #[test]
    fn cluster_placement_keeps_the_base_scenario_byte_identical() {
        let scen = ScenarioConfig::preset(ScenarioPreset::Urban);
        let platoon = FleetScenario::generate(&FleetConfig::platoon(scen.clone(), 6), 5);
        let clusters = FleetScenario::generate(&FleetConfig::clusters(scen, 6, 2, 250.0), 5);
        // Placement only moves the appended cars; the base world prefix
        // and the first two agents are unchanged.
        assert_eq!(platoon.vehicle_id(0), clusters.vehicle_id(0));
        assert_eq!(platoon.vehicle_id(1), clusters.vehicle_id(1));
        assert_eq!(platoon.trajectory(0), clusters.trajectory(0));
        assert_eq!(platoon.trajectory(1), clusters.trajectory(1));
        assert_eq!(platoon.world().static_obstacles(), clusters.world().static_obstacles());
    }
}

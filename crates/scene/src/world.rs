//! The simulated world: static landmarks plus dynamic vehicles.

use crate::objects::{car_box, ObjectKind, Obstacle, ObstacleId, Shape};
use crate::trajectory::Trajectory;
use bba_geometry::Box3;
use serde::{Deserialize, Serialize};

/// A vehicle that moves through the world along a trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicVehicle {
    /// Stable identifier (shared namespace with static obstacles).
    pub id: ObstacleId,
    /// [`ObjectKind::TrafficVehicle`] or [`ObjectKind::AgentVehicle`].
    pub kind: ObjectKind,
    /// Motion through the world.
    pub trajectory: Trajectory,
}

impl DynamicVehicle {
    /// The vehicle's 3-D box at time `t`.
    pub fn box_at(&self, t: f64) -> Box3 {
        let pose = self.trajectory.pose_at(t);
        car_box(pose.translation(), pose.yaw())
    }

    /// The vehicle as an [`Obstacle`] at time `t`.
    pub fn obstacle_at(&self, t: f64) -> Obstacle {
        Obstacle::new(self.id, self.kind, Shape::Box(self.box_at(t)))
    }
}

/// The full simulated world.
///
/// # Example
///
/// ```
/// use bba_scene::{Scenario, ScenarioConfig, ScenarioPreset};
/// let scenario = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::Urban), 1);
/// let world = scenario.world();
/// // A snapshot resolves moving vehicles to their boxes at that instant.
/// let snap = world.snapshot_at(3.0);
/// assert_eq!(snap.len(), world.static_obstacles().len() + world.dynamic_vehicles().len());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct World {
    statics: Vec<Obstacle>,
    dynamics: Vec<DynamicVehicle>,
}

impl World {
    /// Creates a world from parts.
    pub fn new(statics: Vec<Obstacle>, dynamics: Vec<DynamicVehicle>) -> Self {
        World { statics, dynamics }
    }

    /// Static obstacles (buildings, trees, poles, barriers, parked cars).
    pub fn static_obstacles(&self) -> &[Obstacle] {
        &self.statics
    }

    /// Moving vehicles (traffic and the two agent cars).
    pub fn dynamic_vehicles(&self) -> &[DynamicVehicle] {
        &self.dynamics
    }

    /// Adds a static obstacle.
    pub fn push_static(&mut self, o: Obstacle) {
        self.statics.push(o);
    }

    /// Adds a dynamic vehicle.
    pub fn push_dynamic(&mut self, v: DynamicVehicle) {
        self.dynamics.push(v);
    }

    /// All obstacles at time `t` (dynamic vehicles resolved to boxes).
    pub fn snapshot_at(&self, t: f64) -> Vec<Obstacle> {
        let mut out = self.statics.clone();
        out.extend(self.dynamics.iter().map(|d| d.obstacle_at(t)));
        out
    }

    /// All obstacles at time `t` except the one with `exclude` id — used to
    /// build the scan geometry for an agent car, which must not see itself.
    pub fn snapshot_at_excluding(&self, t: f64, exclude: ObstacleId) -> Vec<Obstacle> {
        let mut out: Vec<Obstacle> =
            self.statics.iter().filter(|o| o.id != exclude).cloned().collect();
        out.extend(self.dynamics.iter().filter(|d| d.id != exclude).map(|d| d.obstacle_at(t)));
        out
    }

    /// Ground-truth vehicle boxes at time `t` (id + box), the detector
    /// targets. `exclude` drops the observing car itself.
    pub fn vehicles_at(&self, t: f64, exclude: Option<ObstacleId>) -> Vec<(ObstacleId, Box3)> {
        let mut out = Vec::new();
        for o in &self.statics {
            if Some(o.id) == exclude {
                continue;
            }
            if let Some(b) = o.vehicle_box() {
                out.push((o.id, b));
            }
        }
        for d in &self.dynamics {
            if Some(d.id) == exclude {
                continue;
            }
            out.push((d.id, d.box_at(t)));
        }
        out
    }

    /// Next unused obstacle id.
    pub fn next_id(&self) -> ObstacleId {
        let max = self
            .statics
            .iter()
            .map(|o| o.id.0)
            .chain(self.dynamics.iter().map(|d| d.id.0))
            .max()
            .map_or(0, |m| m + 1);
        ObstacleId(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_geometry::{Vec2, Vec3};

    fn building(id: u32) -> Obstacle {
        Obstacle::new(
            ObstacleId(id),
            ObjectKind::Building,
            Shape::Box(Box3::new(Vec3::new(20.0, 20.0, 5.0), Vec3::new(10.0, 10.0, 10.0), 0.0)),
        )
    }

    fn traffic(id: u32, speed: f64) -> DynamicVehicle {
        DynamicVehicle {
            id: ObstacleId(id),
            kind: ObjectKind::TrafficVehicle,
            trajectory: Trajectory::straight(Vec2::ZERO, 0.0, speed),
        }
    }

    #[test]
    fn snapshot_resolves_dynamics() {
        let mut w = World::default();
        w.push_static(building(0));
        w.push_dynamic(traffic(1, 10.0));
        let snap = w.snapshot_at(2.0);
        assert_eq!(snap.len(), 2);
        let car = snap.iter().find(|o| o.id == ObstacleId(1)).unwrap();
        match car.shape {
            Shape::Box(b) => assert!((b.center.x - 20.0).abs() < 1e-9),
            _ => panic!("vehicle should be a box"),
        }
    }

    #[test]
    fn snapshot_excluding_drops_self() {
        let mut w = World::default();
        w.push_static(building(0));
        w.push_dynamic(traffic(1, 10.0));
        w.push_dynamic(traffic(2, 5.0));
        let snap = w.snapshot_at_excluding(0.0, ObstacleId(1));
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().all(|o| o.id != ObstacleId(1)));
    }

    #[test]
    fn vehicles_at_lists_all_vehicle_classes() {
        let mut w = World::default();
        w.push_static(building(0));
        w.push_static(Obstacle::new(
            ObstacleId(1),
            ObjectKind::ParkedVehicle,
            Shape::Box(car_box(Vec2::new(5.0, 5.0), 0.0)),
        ));
        w.push_dynamic(traffic(2, 8.0));
        let vehicles = w.vehicles_at(1.0, None);
        assert_eq!(vehicles.len(), 2);
        // Excluding the parked one:
        let rest = w.vehicles_at(1.0, Some(ObstacleId(1)));
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].0, ObstacleId(2));
    }

    #[test]
    fn next_id_is_fresh() {
        let mut w = World::default();
        assert_eq!(w.next_id(), ObstacleId(0));
        w.push_static(building(4));
        w.push_dynamic(traffic(9, 1.0));
        assert_eq!(w.next_id(), ObstacleId(10));
    }
}

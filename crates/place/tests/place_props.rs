//! Property tests for the place descriptor and index: rotation
//! tolerance, scene separation, and thread-width determinism.

use bba_place::{PlaceConfig, PlaceDescriptor, PlaceIndex};
use bba_signal::{Grid, LogGaborConfig, MaxIndexMap};
use proptest::prelude::*;

const SIZE: usize = 64;

/// A deterministic synthetic scene: scattered line segments of bright
/// structure, the same shape of content a BV image carries.
fn scene(seed: u64) -> Grid<f64> {
    let mut img = Grid::new(SIZE, SIZE, 0.0);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    for _ in 0..50 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let u = (state as usize >> 3) % SIZE;
        let v = (state as usize >> 23) % SIZE;
        let horizontal = state & 1 == 0;
        for d in 0..8 {
            let (uu, vv) = if horizontal { (u + d, v) } else { (u, v + d) };
            if uu < SIZE && vv < SIZE {
                img[(uu, vv)] = 4.0 + (state >> 40 & 0x3) as f64;
            }
        }
    }
    img
}

/// Rotate the image 90° counter-clockwise about the pixel-centre axis —
/// exactly the transform the descriptor is designed to absorb.
fn rot90(img: &Grid<f64>) -> Grid<f64> {
    let mut out = Grid::new(SIZE, SIZE, 0.0);
    for u in 0..SIZE {
        for v in 0..SIZE {
            out[(SIZE - 1 - v, u)] = img[(u, v)];
        }
    }
    out
}

fn descriptor_of(img: &Grid<f64>) -> PlaceDescriptor {
    let mim = MaxIndexMap::compute(img, &LogGaborConfig::default());
    PlaceDescriptor::from_mim(&mim, &PlaceConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A rotated view of the same scene must stay close in descriptor
    /// space: pair distances, orientation differences, and baseline-
    /// relative orientations are all preserved by rotation, so only the
    /// non-rotating NMS tiling (which may swap a few block winners)
    /// perturbs the constellation.
    #[test]
    fn rotation_changes_the_descriptor_only_slightly(seed in 1u64..5_000) {
        let img = scene(seed);
        let base = descriptor_of(&img);
        prop_assume!(!base.is_empty());
        let mut rotated = img;
        for _ in 0..3 {
            rotated = rot90(&rotated);
            let turned = descriptor_of(&rotated);
            let sim = base.similarity(&turned);
            prop_assert!(
                sim > 0.7,
                "rotated view of the same scene scored {sim}, expected > 0.7"
            );
        }
    }

    /// Two views of the same scene (rotated) must score higher than two
    /// different scenes: the separation the serve gate relies on.
    #[test]
    fn same_scene_beats_different_scene(seed in 1u64..5_000) {
        let img = scene(seed);
        let base = descriptor_of(&img);
        let rotated = descriptor_of(&rot90(&img));
        let other = descriptor_of(&scene(seed ^ 0xDEAD_BEEF));
        prop_assume!(!base.is_empty() && !other.is_empty());
        let same = base.similarity(&rotated);
        let cross = base.similarity(&other);
        prop_assert!(
            same > cross,
            "same-scene similarity {same} should exceed cross-scene {cross}"
        );
    }
}

/// Top-k ranking must be bit-identical at every thread width: scores are
/// independent dot products and the sort is a total order.
#[test]
fn top_k_is_identical_across_thread_widths() {
    let mut index = PlaceIndex::new();
    for id in 0..24u32 {
        index.update(id, descriptor_of(&scene(id as u64 + 1)));
    }
    let query = descriptor_of(&scene(7));
    let baseline = bba_par::with_threads(1, || index.top_k(&query, 10, Some(6)));
    assert_eq!(baseline.len(), 10);
    for width in 2..=8usize {
        let ranked = bba_par::with_threads(width, || index.top_k(&query, 10, Some(6)));
        assert_eq!(ranked, baseline, "ranking diverged at {width} threads");
    }
}

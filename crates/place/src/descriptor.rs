//! The global place descriptor: a compact, rotation-tolerant signature
//! of one BV frame.
//!
//! Construction follows BVMatch's insight that the Log-Gabor machinery
//! stage 1 already runs contains everything a *global* scene signature
//! needs — but aggregates it as a **keypoint constellation** rather than
//! a pooled statistic. Pooled orientation/ring histograms turn out to be
//! nearly identical for every scan of the same world class (every
//! suburban corridor has the same mix of edges), so they rank overlapping
//! pairs barely better than chance. What distinguishes *this* place from
//! one 150 m down the road is the specific spatial arrangement of its
//! strongest structure. Starting from the [`MaxIndexMap`] (per-pixel
//! winning orientation + amplitude):
//!
//! 1. **Keypoints** — the image is tiled into `nms_cell × nms_cell`
//!    blocks; each block keeps its strongest significant pixel (see
//!    [`MaxIndexMap::significance_threshold`]), and the `keypoints`
//!    strongest block winners survive. This non-maximum suppression
//!    spreads the constellation over the scene instead of letting one
//!    bright building soak up the budget.
//! 2. **Pair geometry histogram** — every keypoint pair votes into a
//!    histogram over `(distance, orientation difference, baseline-
//!    relative orientations)`: the pair's pixel distance (linearly
//!    splatted over `distance_bins` to tolerate rasterisation jitter),
//!    the circular difference of the two winning orientations, and the
//!    two orientations expressed *relative to the pair's baseline
//!    direction* (a symmetric `relative_bins × relative_bins` pair).
//!    Every one of these features is invariant to rigid motion of the
//!    scene: distances and relative angles survive rotation and
//!    translation exactly, so the descriptor is rotation-tolerant by
//!    construction — exactly so for 90° grid rotations, approximately
//!    for arbitrary angles (keypoint re-rasterisation moves votes to
//!    neighbouring bins, which the distance splat absorbs).
//! 3. The histogram is L2-normalised, making the dot product a cosine
//!    similarity.
//!
//! The logical histogram is `distance_bins × (N_o/2 + 1) ×
//! relative_bins²`-dimensional (24 192 with defaults) but only a few
//! thousand bins are ever hit by `keypoints·(keypoints−1)/2` pairs, so
//! it is stored sparsely — a few tens of kilobytes per frame, cheap
//! enough to ship alongside every pose submission and to compare
//! against an entire fleet (similarity is a sorted merge over the
//! non-zeros, cheaper than a dense dot product).

use bba_signal::MaxIndexMap;
use serde::{Deserialize, Serialize};

/// Tuning for descriptor extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaceConfig {
    /// Strongest block winners kept as the constellation. More keypoints
    /// dilute the signature with unstable weak structure; fewer starve
    /// the pair histogram.
    pub keypoints: usize,
    /// Non-maximum-suppression block size in pixels: each
    /// `nms_cell × nms_cell` tile contributes at most one keypoint.
    pub nms_cell: usize,
    /// Pixels below this fraction of the maximum amplitude are treated
    /// as empty (see [`MaxIndexMap::significance_threshold`]).
    pub significance_fraction: f64,
    /// Bins the pair-distance axis is split into (the range is the
    /// larger image dimension, so bins scale with resolution).
    pub distance_bins: usize,
    /// Bins for each baseline-relative orientation (the aux axis is the
    /// symmetric `relative_bins × relative_bins` pair).
    pub relative_bins: usize,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        PlaceConfig {
            keypoints: 56,
            nms_cell: 6,
            significance_fraction: 0.05,
            distance_bins: 96,
            relative_bins: 6,
        }
    }
}

/// A fixed-length global place descriptor (see the [module docs](self)).
///
/// The vector lives in a `dims`-dimensional space fixed by the config
/// and the filter bank; only the non-zero entries are stored, sorted by
/// bin index and L2-normalised.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaceDescriptor {
    /// Logical dimensionality: `distance_bins × (N_o/2 + 1) × relative_bins²`.
    dims: usize,
    /// Bin indices of the non-zero entries, strictly increasing.
    indices: Vec<u32>,
    /// Values of the non-zero entries (unit L2 norm overall).
    values: Vec<f64>,
}

/// One selected constellation keypoint.
struct Keypoint {
    u: f64,
    v: f64,
    orient: u8,
}

impl PlaceDescriptor {
    /// Extracts the descriptor from a computed [`MaxIndexMap`].
    ///
    /// This is the no-recomputation path: a frame that already ran
    /// stage 1 (or any caller holding a MIM) reuses it directly instead
    /// of re-filtering the BV image.
    pub fn from_mim(mim: &MaxIndexMap, config: &PlaceConfig) -> PlaceDescriptor {
        let n_o = mim.num_orientations.max(1);
        let diff_bins = n_o / 2 + 1;
        let rel_bins = config.relative_bins.max(1);
        let dist_bins = config.distance_bins.max(1);
        let aux = diff_bins * rel_bins * rel_bins;
        let dims = dist_bins * aux;

        let kps = select_keypoints(mim, config);
        let max_dist = mim.width().max(mim.height()) as f64;
        let mut hist = vec![0.0f64; dims];
        for (i, a) in kps.iter().enumerate() {
            for b in kps.iter().skip(i + 1) {
                let (du, dv) = (b.u - a.u, b.v - a.v);
                let d = (du * du + dv * dv).sqrt();
                if d <= 0.0 || d >= max_dist {
                    continue;
                }
                // Baseline direction in orientation-index units
                // (orientations are π-periodic, index width π/N_o).
                let theta = dv.atan2(du).rem_euclid(std::f64::consts::PI);
                let tbin = theta / std::f64::consts::PI * n_o as f64;
                let rel = |o: u8| -> usize {
                    let r = (o as f64 - tbin).rem_euclid(n_o as f64);
                    ((r / (n_o as f64 / rel_bins as f64)) as usize).min(rel_bins - 1)
                };
                // Symmetric pair of baseline-relative orientations: the
                // pair is unordered, so sort the two bins.
                let (r1, r2) = (rel(a.orient), rel(b.orient));
                let (lo, hi) = (r1.min(r2), r1.max(r2));
                // Circular orientation difference, 0..=N_o/2.
                let diff = (a.orient as i32 - b.orient as i32).rem_euclid(n_o as i32);
                let od = diff.min(n_o as i32 - diff) as usize;
                let aux_idx = (od * rel_bins + lo) * rel_bins + hi;
                // Linear splat over distance to tolerate ±1 px jitter.
                let df = d / max_dist * dist_bins as f64 - 0.5;
                let b0 = df.floor();
                let frac = df - b0;
                let b0 = b0 as isize;
                for (bin, w) in [(b0, 1.0 - frac), (b0 + 1, frac)] {
                    if bin >= 0 && (bin as usize) < dist_bins && w > 0.0 {
                        hist[bin as usize * aux + aux_idx] += w;
                    }
                }
            }
        }

        let norm = hist.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut indices = Vec::new();
        let mut values = Vec::new();
        if norm > 0.0 {
            for (i, &v) in hist.iter().enumerate() {
                if v > 0.0 {
                    indices.push(i as u32);
                    values.push(v / norm);
                }
            }
        }
        PlaceDescriptor { dims, indices, values }
    }

    /// Logical dimensionality of the descriptor space.
    pub fn len(&self) -> usize {
        self.dims
    }

    /// Stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zero entries as `(bin index, value)`, sorted by index.
    pub fn entries(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// True when the frame had no significant energy (no entries).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Cosine similarity in `[0, 1]` (both vectors are non-negative and
    /// unit-length); a sorted merge over the non-zeros. Zero when either
    /// descriptor is empty or the dimensionalities disagree.
    pub fn similarity(&self, other: &PlaceDescriptor) -> f64 {
        if self.dims != other.dims {
            return 0.0;
        }
        let mut dot = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        dot.clamp(0.0, 1.0)
    }

    /// Euclidean distance between the unit vectors: `√(2 − 2·similarity)`,
    /// in `[0, √2]`. Dimension-mismatched or empty descriptors are
    /// maximally distant.
    pub fn distance(&self, other: &PlaceDescriptor) -> f64 {
        (2.0 - 2.0 * self.similarity(other)).max(0.0).sqrt()
    }
}

/// Non-maximum-suppressed constellation selection: one winner per
/// `nms_cell × nms_cell` block, strongest `keypoints` winners kept.
/// Fully deterministic: block winners favour the first pixel in row
/// order on amplitude ties, and the global cut sorts by `(amplitude,
/// row, column)`.
fn select_keypoints(mim: &MaxIndexMap, config: &PlaceConfig) -> Vec<Keypoint> {
    let (w, h) = (mim.width(), mim.height());
    let cell = config.nms_cell.max(1);
    let thr = mim.significance_threshold(config.significance_fraction);
    let (cw, ch) = (w.div_ceil(cell), h.div_ceil(cell));
    // (amp, v, u) per block, amp < 0 meaning empty.
    let mut best = vec![(-1.0f64, 0usize, 0usize); cw * ch];
    for v in 0..h {
        for u in 0..w {
            let a = mim.amplitude[(u, v)];
            if a <= 0.0 || a < thr {
                continue;
            }
            let slot = &mut best[(v / cell) * cw + u / cell];
            if a > slot.0 {
                *slot = (a, v, u);
            }
        }
    }
    let mut winners: Vec<(f64, usize, usize)> = best.into_iter().filter(|s| s.0 > 0.0).collect();
    winners.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    winners.truncate(config.keypoints.max(1));
    winners
        .into_iter()
        .map(|(_, v, u)| Keypoint { u: u as f64, v: v as f64, orient: mim.index[(u, v)] })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_signal::{Grid, LogGaborConfig};

    fn scene(seed: u64, size: usize) -> Grid<f64> {
        // A deterministic scatter of bright structure.
        let mut img = Grid::new(size, size, 0.0);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for _ in 0..40 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state as usize >> 3) % size;
            let v = (state as usize >> 23) % size;
            for d in 0..6usize.min(size - u.max(v)) {
                img[(u + d, v)] = 5.0;
            }
        }
        img
    }

    #[test]
    fn descriptor_shape_and_normalisation() {
        let mim = MaxIndexMap::compute(&scene(3, 64), &LogGaborConfig::default());
        let d = PlaceDescriptor::from_mim(&mim, &PlaceConfig::default());
        // 96 distance bins × (12/2 + 1) orientation diffs × 6² relative pairs.
        assert_eq!(d.len(), 96 * 7 * 36);
        assert!(!d.is_empty());
        assert!(d.nnz() > 0 && d.nnz() < d.len());
        let norm: f64 = d.entries().map(|(_, v)| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9, "descriptor must be unit-length, got {norm}");
        assert!((d.similarity(&d) - 1.0).abs() < 1e-9);
        assert!(d.distance(&d) < 1e-6);
    }

    #[test]
    fn entries_are_sorted_and_positive() {
        let mim = MaxIndexMap::compute(&scene(9, 64), &LogGaborConfig::default());
        let d = PlaceDescriptor::from_mim(&mim, &PlaceConfig::default());
        let entries: Vec<(u32, f64)> = d.entries().collect();
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "indices must strictly increase");
        assert!(entries.iter().all(|&(i, v)| v > 0.0 && (i as usize) < d.len()));
    }

    #[test]
    fn empty_frame_yields_empty_descriptor() {
        let mim = MaxIndexMap::compute(&Grid::new(32, 32, 0.0), &LogGaborConfig::default());
        let d = PlaceDescriptor::from_mim(&mim, &PlaceConfig::default());
        assert!(d.is_empty());
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.similarity(&d), 0.0);
        assert!((d.distance(&d) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mismatched_dimensions_are_maximally_distant() {
        let mim = MaxIndexMap::compute(&scene(7, 32), &LogGaborConfig::default());
        let a = PlaceDescriptor::from_mim(&mim, &PlaceConfig::default());
        let b = PlaceDescriptor::from_mim(
            &mim,
            &PlaceConfig { distance_bins: 48, ..PlaceConfig::default() },
        );
        assert_eq!(a.similarity(&b), 0.0);
        assert!((a.distance(&b) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn keypoint_cap_and_nms_are_respected() {
        let mim = MaxIndexMap::compute(&scene(11, 64), &LogGaborConfig::default());
        let cfg = PlaceConfig { keypoints: 8, ..PlaceConfig::default() };
        let kps = select_keypoints(&mim, &cfg);
        assert!(kps.len() <= 8);
        for (i, a) in kps.iter().enumerate() {
            for b in kps.iter().skip(i + 1) {
                let same_cell = (a.u as usize / cfg.nms_cell) == (b.u as usize / cfg.nms_cell)
                    && (a.v as usize / cfg.nms_cell) == (b.v as usize / cfg.nms_cell);
                assert!(!same_cell, "two keypoints share an NMS block");
            }
        }
    }
}

//! **bba-place**: BVMatch-style global place recognition for the
//! BB-Align fleet.
//!
//! At fleet scale, attempting full stage-1 pose recovery against every
//! nearby vehicle is quadratic waste — most pairs do not see the same
//! scene. This crate provides the cheap pre-filter: a compact,
//! rotation-tolerant **global descriptor** per frame
//! ([`PlaceDescriptor`]): a keypoint-constellation signature built from
//! the same Log-Gabor [`MaxIndexMap`](bba_signal::MaxIndexMap) stage 1
//! already computes (so a frame that already ran stage 1 never
//! re-filters), and a
//! fleet-wide [`PlaceIndex`] that ranks candidate partners by descriptor
//! similarity before any pair is admitted to full recovery.
//!
//! The same machinery doubles as map-free rendezvous / loop closure: two
//! cars with no GPS discover they overlap purely from descriptor
//! similarity.
//!
//! # Example
//!
//! ```
//! use bba_place::{PlaceConfig, PlaceDescriptor, PlaceIndex};
//! use bba_signal::{Grid, LogGaborConfig, MaxIndexMap};
//!
//! let mut img = Grid::new(64, 64, 0.0);
//! for v in 10..50 {
//!     img[(32, v)] = 5.0;
//! }
//! let mim = MaxIndexMap::compute(&img, &LogGaborConfig::default());
//! let desc = PlaceDescriptor::from_mim(&mim, &PlaceConfig::default());
//!
//! let mut index = PlaceIndex::new();
//! index.update(7, desc.clone());
//! let ranked = index.top_k(&desc, 1, None);
//! assert_eq!(ranked[0].vehicle, 7);
//! ```

#![warn(missing_docs)]

pub mod descriptor;
pub mod index;

pub use descriptor::{PlaceConfig, PlaceDescriptor};
pub use index::{PlaceIndex, PlaceMatch};

//! The fleet-wide place index: latest descriptor per vehicle, ranked
//! candidate retrieval.
//!
//! The index holds one [`PlaceDescriptor`] per vehicle (upserted as new
//! frames arrive) and answers "which vehicles plausibly see the same
//! scene as this one?" with a deterministic top-k ranking. Scoring is
//! embarrassingly parallel — each candidate's cosine similarity is an
//! independent dot product — so the scan runs on the `bba-par` pool and
//! is bit-identical at every thread width; ties break on vehicle id so
//! the ranking is a total order.

use crate::descriptor::PlaceDescriptor;
use bba_obs::Recorder;

/// One ranked candidate from [`PlaceIndex::top_k`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceMatch {
    /// Candidate vehicle id.
    pub vehicle: u32,
    /// Cosine similarity to the query descriptor, in `[0, 1]`.
    pub similarity: f64,
}

/// Latest-descriptor-per-vehicle index (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct PlaceIndex {
    /// `(vehicle, descriptor)` sorted by vehicle id, so rankings and
    /// iteration order are independent of insertion order.
    entries: Vec<(u32, PlaceDescriptor)>,
    obs: Recorder,
}

impl PlaceIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        PlaceIndex { entries: Vec::new(), obs: Recorder::disabled() }
    }

    /// Installs an observability recorder: `place.query` spans and the
    /// `place.queries` / `place.updates` counters are recorded from then
    /// on.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
    }

    /// Inserts or replaces the descriptor for `vehicle`.
    pub fn update(&mut self, vehicle: u32, descriptor: PlaceDescriptor) {
        self.obs.incr("place.updates");
        match self.entries.binary_search_by_key(&vehicle, |(id, _)| *id) {
            Ok(i) => self.entries[i].1 = descriptor,
            Err(i) => self.entries.insert(i, (vehicle, descriptor)),
        }
    }

    /// The latest descriptor for `vehicle`, if one was ever inserted.
    pub fn get(&self, vehicle: u32) -> Option<&PlaceDescriptor> {
        self.entries.binary_search_by_key(&vehicle, |(id, _)| *id).ok().map(|i| &self.entries[i].1)
    }

    /// Number of vehicles currently indexed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no vehicle is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `k` most similar vehicles to `query`, excluding `exclude`
    /// (the querying vehicle itself), ranked by descending similarity
    /// with vehicle id as the deterministic tiebreak.
    ///
    /// Scoring runs on the `bba-par` pool; results are bit-identical at
    /// every thread width because each score is computed independently
    /// and the final sort is a total order.
    pub fn top_k(
        &self,
        query: &PlaceDescriptor,
        k: usize,
        exclude: Option<u32>,
    ) -> Vec<PlaceMatch> {
        let _span = self.obs.span("place.query");
        self.obs.incr("place.queries");
        let mut scored: Vec<PlaceMatch> = bba_par::par_map(&self.entries, |(id, d)| PlaceMatch {
            vehicle: *id,
            similarity: query.similarity(d),
        });
        if let Some(x) = exclude {
            scored.retain(|m| m.vehicle != x);
        }
        scored.sort_by(|a, b| {
            b.similarity.total_cmp(&a.similarity).then_with(|| a.vehicle.cmp(&b.vehicle))
        });
        scored.truncate(k);
        scored
    }

    /// Similarity between two indexed vehicles, when both have
    /// descriptors.
    pub fn pair_similarity(&self, a: u32, b: u32) -> Option<f64> {
        Some(self.get(a)?.similarity(self.get(b)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::PlaceConfig;
    use bba_signal::{Grid, LogGaborConfig, MaxIndexMap};

    fn descriptor(seed: u64) -> PlaceDescriptor {
        let mut img = Grid::new(32, 32, 0.0);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for _ in 0..25 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state as usize >> 3) % 32;
            let v = (state as usize >> 23) % 32;
            img[(u, v)] = 4.0;
        }
        let mim = MaxIndexMap::compute(&img, &LogGaborConfig::default());
        PlaceDescriptor::from_mim(&mim, &PlaceConfig::default())
    }

    #[test]
    fn update_replaces_and_get_retrieves() {
        let mut index = PlaceIndex::new();
        assert!(index.is_empty());
        index.update(3, descriptor(1));
        index.update(1, descriptor(2));
        index.update(3, descriptor(3));
        assert_eq!(index.len(), 2);
        assert_eq!(index.get(3), Some(&descriptor(3)));
        assert_eq!(index.get(9), None);
    }

    #[test]
    fn top_k_ranks_self_first_when_not_excluded() {
        let mut index = PlaceIndex::new();
        for id in 0..6u32 {
            index.update(id, descriptor(id as u64));
        }
        let q = descriptor(2);
        let ranked = index.top_k(&q, 3, None);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].vehicle, 2, "identical descriptor must rank first");
        assert!((ranked[0].similarity - 1.0).abs() < 1e-9);
        let excluded = index.top_k(&q, 10, Some(2));
        assert_eq!(excluded.len(), 5);
        assert!(excluded.iter().all(|m| m.vehicle != 2));
        // Descending similarity throughout.
        for w in excluded.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
    }

    #[test]
    fn ranking_is_insertion_order_independent() {
        let mut fwd = PlaceIndex::new();
        let mut rev = PlaceIndex::new();
        for id in 0..8u32 {
            fwd.update(id, descriptor(id as u64));
            rev.update(7 - id, descriptor((7 - id) as u64));
        }
        let q = descriptor(100);
        assert_eq!(fwd.top_k(&q, 8, None), rev.top_k(&q, 8, None));
    }
}

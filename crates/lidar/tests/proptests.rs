//! Property-based tests for the ray caster and scan invariants.

use bba_geometry::{Box3, Vec2, Vec3};
use bba_lidar::{ray_box, ray_cylinder, ray_ground, ray_sphere, LidarConfig, Ray, Scanner};
use bba_scene::{ObjectKind, Obstacle, ObstacleId, Shape, Trajectory, World};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_dir() -> impl Strategy<Value = Vec3> {
    (-1.0..1.0f64, -1.0..1.0f64, -1.0..1.0f64)
        .prop_filter_map("nonzero", |(x, y, z)| Vec3::new(x, y, z).normalized())
}

fn any_origin() -> impl Strategy<Value = Vec3> {
    (-30.0..30.0f64, -30.0..30.0f64, 0.5..10.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn box_hits_lie_on_the_surface(origin in any_origin(), dir in any_dir(),
                                   cx in -20.0..20.0f64, cy in -20.0..20.0f64,
                                   yaw in -3.0..3.0f64) {
        let b = Box3::new(Vec3::new(cx, cy, 2.0), Vec3::new(6.0, 3.0, 4.0), yaw);
        let ray = Ray { origin, dir };
        if let Some(t) = ray_box(&ray, &b) {
            prop_assert!(t > 0.0);
            let p = ray.at(t);
            // The hit point is on (or within ε of) the box boundary.
            prop_assert!(b.contains(p) || {
                // Allow boundary tolerance.
                let eps = Vec3::new(1e-6, 1e-6, 1e-6);
                b.contains(p + eps) || b.contains(p - eps)
            }, "hit {p:?} not on box");
        }
    }

    #[test]
    fn sphere_hits_lie_on_the_surface(origin in any_origin(), dir in any_dir(),
                                      cx in -20.0..20.0f64, cz in 1.0..10.0f64,
                                      r in 0.5..4.0f64) {
        let c = Vec3::new(cx, 5.0, cz);
        let ray = Ray { origin, dir };
        if let Some(t) = ray_sphere(&ray, c, r) {
            let p = ray.at(t);
            prop_assert!(((p - c).norm() - r).abs() < 1e-6);
        }
    }

    #[test]
    fn cylinder_hits_respect_radius_and_slab(origin in any_origin(), dir in any_dir(),
                                             cx in -20.0..20.0f64, r in 0.2..2.0f64,
                                             z1 in 1.0..8.0f64) {
        let c = Vec2::new(cx, -4.0);
        let ray = Ray { origin, dir };
        if let Some(t) = ray_cylinder(&ray, c, r, 0.0, z1) {
            let p = ray.at(t);
            prop_assert!(p.z >= -1e-6 && p.z <= z1 + 1e-6, "z out of slab: {}", p.z);
            prop_assert!((p.xy().distance(c) - r).abs() < 1e-5 || p.xy().distance(c) <= r + 1e-5);
        }
    }

    #[test]
    fn ground_hits_have_zero_height(origin in any_origin(), dir in any_dir()) {
        let ray = Ray { origin, dir };
        if let Some(t) = ray_ground(&ray) {
            prop_assert!(ray.at(t).z.abs() < 1e-6);
        }
    }

    #[test]
    fn scan_respects_range_and_attribution(seed in 0u64..50) {
        // A small random world: the scan must only attribute hits to
        // existing obstacle ids and stay within range.
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut obstacles = Vec::new();
        for i in 0..6u32 {
            let x: f64 = rng.random_range(-40.0..40.0);
            let y: f64 = rng.random_range(-40.0..40.0);
            obstacles.push(Obstacle::new(
                ObstacleId(i),
                ObjectKind::Building,
                Shape::Box(Box3::new(Vec3::new(x, y, 3.0), Vec3::new(5.0, 5.0, 6.0), 0.0)),
            ));
        }
        let world = World::new(obstacles, Vec::new());
        let scanner = Scanner::new(LidarConfig::test_coarse());
        let traj = Trajectory::stationary(Vec2::ZERO, 0.0);
        let scan = scanner.scan(&world, &traj, 0.0, ObstacleId(999), &mut rng);
        for p in scan.points() {
            prop_assert!(p.position.norm() <= scanner.config().max_range + 1.0);
            if let Some(id) = p.target {
                prop_assert!(id.0 < 6, "hit attributed to unknown obstacle {id}");
            }
        }
    }
}

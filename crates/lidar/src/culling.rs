//! Azimuth-bucket culling: a cheap spatial index for the ray caster.
//!
//! A naive caster tests every ray against every obstacle
//! (`O(rays × obstacles)`). Since all rays of one firing share an azimuth,
//! we precompute, per obstacle, the interval of azimuths under which it is
//! visible from the sensor position (centre bearing ± angular radius) and
//! bucket obstacle indices by azimuth. Each firing then only tests the
//! obstacles in its bucket — typically a 10–30× reduction for road scenes.

use bba_geometry::Vec2;
use bba_scene::Obstacle;
use std::f64::consts::TAU;

/// Per-azimuth-bucket lists of obstacle indices visible from a sensor
/// position.
#[derive(Debug, Clone)]
pub struct AzimuthIndex {
    buckets: Vec<Vec<u32>>,
}

impl AzimuthIndex {
    /// Builds the index for a sensor at `sensor_xy` with `bucket_count`
    /// azimuth bins, considering obstacles within `max_range`.
    ///
    /// `inflate_radius` is added to every obstacle's bounding radius; the
    /// scanner uses it to absorb the sensor's own movement during the sweep
    /// (self-motion), so late-sweep firings still find their obstacles.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is zero.
    pub fn build(
        sensor_xy: Vec2,
        obstacles: &[Obstacle],
        bucket_count: usize,
        max_range: f64,
        inflate_radius: f64,
    ) -> Self {
        assert!(bucket_count > 0, "need at least one azimuth bucket");
        let mut buckets = vec![Vec::new(); bucket_count];
        let bucket_width = TAU / bucket_count as f64;
        for (idx, obs) in obstacles.iter().enumerate() {
            let rel = obs.shape.center_xy() - sensor_xy;
            let dist = rel.norm();
            let radius = obs.shape.bounding_radius_xy() + inflate_radius.max(0.0);
            if dist - radius > max_range {
                continue; // entirely out of range
            }
            if dist <= radius + 1e-9 {
                // Sensor inside the footprint: visible at every azimuth.
                for b in &mut buckets {
                    b.push(idx as u32);
                }
                continue;
            }
            let center = rel.angle();
            // Angular half-width subtended by the bounding circle, plus one
            // bucket of safety margin.
            let half = (radius / dist).min(1.0).asin() + bucket_width;
            let lo = ((center - half).rem_euclid(TAU) / bucket_width) as usize % bucket_count;
            let span = (2.0 * half / bucket_width).ceil() as usize + 1;
            for k in 0..span.min(bucket_count) {
                buckets[(lo + k) % bucket_count].push(idx as u32);
            }
        }
        AzimuthIndex { buckets }
    }

    /// Obstacle indices possibly visible at world-frame azimuth `angle`.
    pub fn candidates(&self, angle: f64) -> &[u32] {
        let n = self.buckets.len();
        let b = (angle.rem_euclid(TAU) / (TAU / n as f64)) as usize % n;
        &self.buckets[b]
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Mean bucket occupancy — a measure of culling effectiveness.
    pub fn mean_candidates(&self) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        self.buckets.iter().map(|b| b.len()).sum::<usize>() as f64 / self.buckets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_geometry::{Box3, Vec3};
    use bba_scene::{ObjectKind, ObstacleId, Shape};

    fn box_at(id: u32, x: f64, y: f64) -> Obstacle {
        Obstacle::new(
            ObstacleId(id),
            ObjectKind::Building,
            Shape::Box(Box3::new(Vec3::new(x, y, 2.0), Vec3::new(4.0, 4.0, 4.0), 0.0)),
        )
    }

    #[test]
    fn candidate_contains_obstacle_on_its_bearing() {
        let obstacles = vec![box_at(0, 20.0, 0.0), box_at(1, 0.0, 20.0), box_at(2, -20.0, 0.0)];
        let idx = AzimuthIndex::build(Vec2::ZERO, &obstacles, 360, 100.0, 0.0);
        assert!(idx.candidates(0.0).contains(&0));
        assert!(idx.candidates(std::f64::consts::FRAC_PI_2).contains(&1));
        assert!(idx.candidates(std::f64::consts::PI).contains(&2));
        // And not on the opposite bearing.
        assert!(!idx.candidates(std::f64::consts::PI).contains(&0));
    }

    #[test]
    fn out_of_range_obstacles_are_dropped() {
        let obstacles = vec![box_at(0, 500.0, 0.0)];
        let idx = AzimuthIndex::build(Vec2::ZERO, &obstacles, 90, 100.0, 0.0);
        for b in 0..90 {
            assert!(idx.candidates(b as f64 * TAU / 90.0).is_empty());
        }
    }

    #[test]
    fn sensor_inside_footprint_visible_everywhere() {
        let obstacles = vec![box_at(0, 0.5, 0.5)];
        let idx = AzimuthIndex::build(Vec2::ZERO, &obstacles, 36, 100.0, 0.0);
        for b in 0..36 {
            assert!(idx.candidates(b as f64 * TAU / 36.0).contains(&0));
        }
    }

    #[test]
    fn culling_reduces_candidates() {
        // A ring of obstacles: each azimuth should only see a few.
        let obstacles: Vec<Obstacle> = (0..36)
            .map(|k| {
                let a = k as f64 * TAU / 36.0;
                box_at(k, 50.0 * a.cos(), 50.0 * a.sin())
            })
            .collect();
        let idx = AzimuthIndex::build(Vec2::ZERO, &obstacles, 360, 100.0, 0.0);
        assert!(idx.mean_candidates() < 5.0, "mean {}", idx.mean_candidates());
    }

    #[test]
    fn wraparound_interval_covers_seam() {
        // Obstacle exactly on the ±π seam.
        let obstacles = vec![box_at(0, -30.0, 0.1)];
        let idx = AzimuthIndex::build(Vec2::ZERO, &obstacles, 720, 100.0, 0.0);
        assert!(idx.candidates(std::f64::consts::PI - 0.001).contains(&0));
        assert!(idx.candidates(-std::f64::consts::PI + 0.001).contains(&0));
    }
}

//! A spinning-LiDAR simulator: the sensing substrate for the BB-Align
//! reproduction.
//!
//! The paper's data source (V2V4Real) consists of real scans from two
//! differently-equipped vehicles. This crate reproduces the *properties* of
//! such scans by ray-casting the procedural world of `bba-scene`:
//!
//! * a multi-channel spinning sensor ([`LidarConfig`]) with per-channel
//!   elevation angles, azimuth resolution, maximum range, range noise and
//!   dropouts — presets model heterogeneous sensor pairs
//!   ([`LidarConfig::high_res_64`] vs [`LidarConfig::low_res_16`]);
//! * occlusion via nearest-hit ray casting against boxes, cylinders,
//!   spheres and the ground plane ([`ray`]);
//! * **self-motion distortion** ([`scanner`]): a sweep takes
//!   [`LidarConfig::scan_duration`] seconds, during which the sensor pose
//!   advances along its trajectory; returns are expressed in the
//!   instantaneous sensor frame and naively accumulated into the scan-start
//!   frame, exactly the artefact that motivates BB-Align's stage 2.
//!
//! # Example
//!
//! ```
//! use bba_lidar::{LidarConfig, Scanner};
//! use bba_scene::{Scenario, ScenarioConfig, ScenarioPreset};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let scenario = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::Suburban), 7);
//! let scanner = Scanner::new(LidarConfig::mid_res_32());
//! let mut rng = StdRng::seed_from_u64(1);
//! let scan = scanner.scan(
//!     scenario.world(),
//!     scenario.ego_trajectory(),
//!     0.0,
//!     scenario.ego_id(),
//!     &mut rng,
//! );
//! assert!(scan.points().len() > 1000);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod culling;
pub mod ray;
pub mod scan;
pub mod scanner;

pub use config::LidarConfig;
pub use culling::AzimuthIndex;
pub use ray::{ray_box, ray_cylinder, ray_ground, ray_sphere, Ray};
pub use scan::{Scan, ScanPoint};
pub use scanner::Scanner;

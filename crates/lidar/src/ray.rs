//! Ray–primitive intersections for the LiDAR ray caster.
//!
//! All functions return the ray parameter `t ≥ 0` of the *nearest* hit (the
//! hit point is `origin + dir · t`), or `None`. Directions are expected to
//! be unit length so `t` is metric range.

use bba_geometry::{Box3, Vec2, Vec3};

/// A ray with unit direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Start point.
    pub origin: Vec3,
    /// Unit direction.
    pub dir: Vec3,
}

impl Ray {
    /// Creates a ray, normalising the direction.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is (near-)zero.
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        let dir = dir.normalized().expect("ray direction must be nonzero");
        Ray { origin, dir }
    }

    /// The point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }
}

/// Intersection with the ground plane `z = 0`, for downward rays only.
pub fn ray_ground(ray: &Ray) -> Option<f64> {
    if ray.dir.z >= -1e-12 {
        return None; // parallel or upward
    }
    let t = -ray.origin.z / ray.dir.z;
    (t > 1e-9).then_some(t)
}

/// Intersection with an oriented 3-D box (slab method in the box frame).
pub fn ray_box(ray: &Ray, b: &Box3) -> Option<f64> {
    // Transform the ray into the box frame (box centre at origin, box axes
    // aligned with x/y; z is unrotated).
    let rel = ray.origin - b.center;
    let (s, c) = b.yaw.sin_cos();
    let rot_xy = |v: Vec3| Vec3::new(c * v.x + s * v.y, -s * v.x + c * v.y, v.z);
    let o = rot_xy(rel);
    let d = rot_xy(ray.dir);
    let half = b.extents * 0.5;

    let mut t_near = f64::NEG_INFINITY;
    let mut t_far = f64::INFINITY;
    for (oi, di, hi) in [(o.x, d.x, half.x), (o.y, d.y, half.y), (o.z, d.z, half.z)] {
        if di.abs() < 1e-12 {
            if oi.abs() > hi {
                return None; // parallel and outside the slab
            }
            continue;
        }
        let inv = 1.0 / di;
        let mut t0 = (-hi - oi) * inv;
        let mut t1 = (hi - oi) * inv;
        if t0 > t1 {
            std::mem::swap(&mut t0, &mut t1);
        }
        t_near = t_near.max(t0);
        t_far = t_far.min(t1);
        if t_near > t_far {
            return None;
        }
    }
    if t_far < 1e-9 {
        return None; // box behind the ray
    }
    Some(if t_near > 1e-9 { t_near } else { t_far })
}

/// Intersection with a vertical cylinder (`z0..z1`, circular cross-section).
pub fn ray_cylinder(ray: &Ray, center: Vec2, radius: f64, z0: f64, z1: f64) -> Option<f64> {
    // 2-D circle intersection in the xy plane.
    let o = ray.origin.xy() - center;
    let d = ray.dir.xy();
    let a = d.norm_sq();
    let half_b = o.dot(d);
    let c = o.norm_sq() - radius * radius;
    let mut candidates: [Option<f64>; 2] = [None, None];
    if a > 1e-18 {
        let disc = half_b * half_b - a * c;
        if disc < 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        candidates[0] = Some((-half_b - sq) / a);
        candidates[1] = Some((-half_b + sq) / a);
    } else if c > 0.0 {
        return None; // vertical ray outside the circle
    } else {
        // Vertical ray inside the circle: hits caps only; treat the nearer
        // z-boundary crossing as the hit.
        if ray.dir.z.abs() < 1e-12 {
            return None;
        }
        let tz0 = (z0 - ray.origin.z) / ray.dir.z;
        let tz1 = (z1 - ray.origin.z) / ray.dir.z;
        let t = tz0.min(tz1).max(1e-9);
        return (ray.at(t).z >= z0 - 1e-9 && ray.at(t).z <= z1 + 1e-9 && t > 1e-9).then_some(t);
    }
    // Nearest circle hit whose z lies in the slab.
    let mut best: Option<f64> = None;
    for t in candidates.into_iter().flatten() {
        if t <= 1e-9 {
            continue;
        }
        let z = ray.origin.z + ray.dir.z * t;
        if z >= z0 - 1e-9 && z <= z1 + 1e-9 {
            best = Some(best.map_or(t, |b: f64| b.min(t)));
        }
    }
    best
}

/// Intersection with a sphere.
pub fn ray_sphere(ray: &Ray, center: Vec3, radius: f64) -> Option<f64> {
    let o = ray.origin - center;
    let half_b = o.dot(ray.dir);
    let c = o.norm_sq() - radius * radius;
    let disc = half_b * half_b - c;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let t0 = -half_b - sq;
    if t0 > 1e-9 {
        return Some(t0);
    }
    let t1 = -half_b + sq;
    (t1 > 1e-9).then_some(t1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ray(ox: f64, oy: f64, oz: f64, dx: f64, dy: f64, dz: f64) -> Ray {
        Ray::new(Vec3::new(ox, oy, oz), Vec3::new(dx, dy, dz))
    }

    #[test]
    fn ground_hit_from_above() {
        let r = ray(0.0, 0.0, 2.0, 1.0, 0.0, -1.0);
        let t = ray_ground(&r).unwrap();
        let p = r.at(t);
        assert!(p.z.abs() < 1e-9);
        assert!((p.x - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ground_miss_upward_and_parallel() {
        assert!(ray_ground(&ray(0.0, 0.0, 2.0, 0.0, 1.0, 0.5)).is_none());
        assert!(ray_ground(&ray(0.0, 0.0, 2.0, 1.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn box_frontal_hit() {
        let b = Box3::new(Vec3::new(10.0, 0.0, 1.0), Vec3::new(2.0, 2.0, 2.0), 0.0);
        let r = ray(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        let t = ray_box(&r, &b).unwrap();
        assert!((t - 9.0).abs() < 1e-9);
    }

    #[test]
    fn box_miss_above() {
        let b = Box3::new(Vec3::new(10.0, 0.0, 1.0), Vec3::new(2.0, 2.0, 2.0), 0.0);
        let r = ray(0.0, 0.0, 5.0, 1.0, 0.0, 0.0);
        assert!(ray_box(&r, &b).is_none());
    }

    #[test]
    fn rotated_box_hit() {
        // 45°-rotated box: the near corner points at the origin.
        let b = Box3::new(
            Vec3::new(10.0, 0.0, 1.0),
            Vec3::new(2.0, 2.0, 2.0),
            std::f64::consts::FRAC_PI_4,
        );
        let r = ray(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        let t = ray_box(&r, &b).unwrap();
        // Corner at distance 10 − √2.
        assert!((t - (10.0 - 2f64.sqrt())).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn ray_from_inside_box_hits_far_wall() {
        let b = Box3::new(Vec3::new(0.0, 0.0, 1.0), Vec3::new(4.0, 4.0, 2.0), 0.0);
        let r = ray(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        let t = ray_box(&r, &b).unwrap();
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cylinder_side_hit() {
        let r = ray(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        let t = ray_cylinder(&r, Vec2::new(5.0, 0.0), 0.5, 0.0, 3.0).unwrap();
        assert!((t - 4.5).abs() < 1e-9);
    }

    #[test]
    fn cylinder_respects_height_slab() {
        let r = ray(0.0, 0.0, 5.0, 1.0, 0.0, 0.0);
        assert!(ray_cylinder(&r, Vec2::new(5.0, 0.0), 0.5, 0.0, 3.0).is_none());
        // Downward slanted ray clips the top region.
        let r2 = ray(0.0, 0.0, 5.0, 1.0, 0.0, -0.45);
        assert!(ray_cylinder(&r2, Vec2::new(5.0, 0.0), 0.5, 0.0, 3.0).is_some());
    }

    #[test]
    fn cylinder_tangent_and_miss() {
        let r = ray(0.0, 1.0, 1.0, 1.0, 0.0, 0.0);
        // Radius 0.5 centred at y=0: ray at y=1 misses.
        assert!(ray_cylinder(&r, Vec2::new(5.0, 0.0), 0.5, 0.0, 3.0).is_none());
    }

    #[test]
    fn sphere_hit_and_miss() {
        let r = ray(0.0, 0.0, 5.0, 1.0, 0.0, 0.0);
        let t = ray_sphere(&r, Vec3::new(8.0, 0.0, 5.0), 2.0).unwrap();
        assert!((t - 6.0).abs() < 1e-9);
        assert!(ray_sphere(&r, Vec3::new(8.0, 5.0, 5.0), 2.0).is_none());
    }

    #[test]
    fn sphere_from_inside() {
        let r = ray(8.0, 0.0, 5.0, 1.0, 0.0, 0.0);
        let t = ray_sphere(&r, Vec3::new(8.0, 0.0, 5.0), 2.0).unwrap();
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hits_behind_are_ignored() {
        let b = Box3::new(Vec3::new(-10.0, 0.0, 1.0), Vec3::new(2.0, 2.0, 2.0), 0.0);
        let r = ray(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        assert!(ray_box(&r, &b).is_none());
        assert!(ray_sphere(&r, Vec3::new(-5.0, 0.0, 1.0), 1.0).is_none());
        assert!(ray_cylinder(&r, Vec2::new(-5.0, 0.0), 1.0, 0.0, 3.0).is_none());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_direction_panics() {
        let _ = Ray::new(Vec3::ZERO, Vec3::ZERO);
    }
}

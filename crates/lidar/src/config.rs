//! Sensor models: channel layout, resolution, range, noise.

use serde::{Deserialize, Serialize};

/// Parameters of a spinning LiDAR.
///
/// The presets model the heterogeneous sensor pairs of real V2V fleets (the
/// paper stresses that "vehicles may be equipped with different Lidar
/// systems", which defeats point-based registration but not BV image
/// matching).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LidarConfig {
    /// Number of vertical channels (beams).
    pub channels: usize,
    /// Lowest beam elevation (radians, negative = downward).
    pub elevation_min: f64,
    /// Highest beam elevation (radians).
    pub elevation_max: f64,
    /// Azimuth step between firings (radians).
    pub azimuth_step: f64,
    /// Maximum measurable range (m).
    pub max_range: f64,
    /// Gaussian range noise σ (m).
    pub range_noise_sigma: f64,
    /// Probability that an otherwise valid return is dropped.
    pub dropout_prob: f64,
    /// Duration of one full 360° sweep (s); drives self-motion distortion.
    pub scan_duration: f64,
    /// Sensor height above the vehicle reference point (m).
    pub mount_height: f64,
}

impl LidarConfig {
    /// A 64-channel high-resolution sensor (HDL-64-like).
    pub fn high_res_64() -> Self {
        LidarConfig {
            channels: 64,
            elevation_min: (-24.8f64).to_radians(),
            elevation_max: 2.0f64.to_radians(),
            azimuth_step: 0.4f64.to_radians(),
            max_range: 100.0,
            range_noise_sigma: 0.02,
            dropout_prob: 0.05,
            scan_duration: 0.1,
            mount_height: 1.9,
        }
    }

    /// A 32-channel mid-range sensor (VLP-32C-like; the real sensor fires
    /// every 0.2–0.33° of azimuth at 10 Hz). Default for the experiments:
    /// dense enough that mid-range structure stays matchable, which sets
    /// the method's effective operating range.
    pub fn mid_res_32() -> Self {
        LidarConfig {
            channels: 32,
            elevation_min: (-25.0f64).to_radians(),
            elevation_max: 15.0f64.to_radians(),
            azimuth_step: 0.36f64.to_radians(),
            max_range: 100.0,
            range_noise_sigma: 0.03,
            dropout_prob: 0.07,
            scan_duration: 0.1,
            mount_height: 1.9,
        }
    }

    /// A 16-channel budget sensor (VLP-16-like) — the "different Lidar
    /// system" partner in heterogeneous-pair experiments.
    pub fn low_res_16() -> Self {
        LidarConfig {
            channels: 16,
            elevation_min: (-15.0f64).to_radians(),
            elevation_max: 15.0f64.to_radians(),
            azimuth_step: 0.9f64.to_radians(),
            max_range: 80.0,
            range_noise_sigma: 0.05,
            dropout_prob: 0.1,
            scan_duration: 0.1,
            mount_height: 1.8,
        }
    }

    /// A coarse, fast configuration for unit tests.
    pub fn test_coarse() -> Self {
        LidarConfig {
            channels: 12,
            elevation_min: (-20.0f64).to_radians(),
            elevation_max: 12.0f64.to_radians(),
            azimuth_step: 2.0f64.to_radians(),
            max_range: 70.0,
            range_noise_sigma: 0.0,
            dropout_prob: 0.0,
            scan_duration: 0.1,
            mount_height: 1.9,
        }
    }

    /// Number of azimuth firings per sweep.
    pub fn azimuth_count(&self) -> usize {
        (std::f64::consts::TAU / self.azimuth_step).round() as usize
    }

    /// Elevation (radians) of channel `c`, linearly spaced.
    ///
    /// # Panics
    ///
    /// Panics if `c >= channels`.
    pub fn elevation(&self, c: usize) -> f64 {
        assert!(c < self.channels, "channel {c} out of range");
        if self.channels == 1 {
            return 0.5 * (self.elevation_min + self.elevation_max);
        }
        let frac = c as f64 / (self.channels - 1) as f64;
        self.elevation_min + frac * (self.elevation_max - self.elevation_min)
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values (zero channels, inverted FOV,
    /// non-positive range or step).
    pub fn validate(&self) {
        assert!(self.channels > 0, "at least one channel required");
        assert!(self.elevation_max > self.elevation_min, "inverted vertical FOV");
        assert!(self.azimuth_step > 0.0, "azimuth step must be positive");
        assert!(self.max_range > 0.0, "max range must be positive");
        assert!(self.range_noise_sigma >= 0.0, "noise sigma must be non-negative");
        assert!((0.0..=1.0).contains(&self.dropout_prob), "dropout must be a probability");
        assert!(self.scan_duration >= 0.0, "scan duration must be non-negative");
    }
}

impl Default for LidarConfig {
    fn default() -> Self {
        LidarConfig::mid_res_32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            LidarConfig::high_res_64(),
            LidarConfig::mid_res_32(),
            LidarConfig::low_res_16(),
            LidarConfig::test_coarse(),
        ] {
            cfg.validate();
        }
    }

    #[test]
    fn azimuth_count_covers_circle() {
        let cfg = LidarConfig::mid_res_32();
        assert_eq!(cfg.azimuth_count(), 1000);
    }

    #[test]
    fn elevations_span_fov() {
        let cfg = LidarConfig::test_coarse();
        assert!((cfg.elevation(0) - cfg.elevation_min).abs() < 1e-12);
        assert!((cfg.elevation(cfg.channels - 1) - cfg.elevation_max).abs() < 1e-12);
        // Monotone increasing.
        for c in 1..cfg.channels {
            assert!(cfg.elevation(c) > cfg.elevation(c - 1));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn elevation_out_of_range_panics() {
        let _ = LidarConfig::test_coarse().elevation(100);
    }

    #[test]
    fn heterogeneous_presets_differ() {
        assert_ne!(LidarConfig::high_res_64(), LidarConfig::low_res_16());
        assert!(LidarConfig::high_res_64().channels > LidarConfig::low_res_16().channels);
    }
}

//! The ray-casting scanner, including self-motion distortion.
//!
//! One sweep fires `azimuth_count × channels` rays. Firings are ordered by
//! azimuth; azimuth `a` is fired at time `t0 + (a / azimuth_count) ·
//! scan_duration`, from the sensor's *instantaneous* pose at that time. The
//! resulting hit is stored in the instantaneous sensor frame but accumulated
//! into one cloud nominally referenced to the scan-start pose — which is
//! precisely the **self-motion distortion** the paper's stage 2 exists to
//! correct (§IV-B: "the points captured at different moments during the
//! scan correspond to slightly different viewpoints").
//!
//! World obstacles are frozen at the scan-start snapshot during the sweep;
//! the dominant distortion in road scenes is the sensor's own motion, and
//! freezing targets keeps the caster simple and deterministic.

use crate::config::LidarConfig;
use crate::culling::AzimuthIndex;
use crate::ray::{ray_box, ray_cylinder, ray_ground, ray_sphere, Ray};
use crate::scan::{Scan, ScanPoint};
use bba_geometry::Vec3;
use bba_scene::{GaussianSampler, Obstacle, ObstacleId, Shape, Trajectory, World};
use rand::Rng;

/// A LiDAR scanner bound to a sensor configuration.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Scanner {
    config: LidarConfig,
}

impl Scanner {
    /// Creates a scanner.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`LidarConfig::validate`]).
    pub fn new(config: LidarConfig) -> Self {
        config.validate();
        Scanner { config }
    }

    /// The sensor configuration.
    pub fn config(&self) -> &LidarConfig {
        &self.config
    }

    /// Performs one sweep from the vehicle `self_id` moving along
    /// `trajectory`, starting at time `t0`.
    ///
    /// The vehicle itself is excluded from the scene (a sensor does not see
    /// its own roof). Returns a [`Scan`] whose points are expressed in the
    /// nominal sensor frame: origin at the vehicle's ground position at
    /// `t0`, x forward along the heading at `t0`, z measured from the
    /// ground.
    pub fn scan<R: Rng + ?Sized>(
        &self,
        world: &World,
        trajectory: &Trajectory,
        t0: f64,
        self_id: ObstacleId,
        rng: &mut R,
    ) -> Scan {
        let obstacles = world.snapshot_at_excluding(t0, self_id);
        self.scan_obstacles(&obstacles, trajectory, t0, rng)
    }

    /// Sweep over an explicit obstacle snapshot (already excluding the
    /// scanning vehicle). Lower-level variant of [`Scanner::scan`].
    pub fn scan_obstacles<R: Rng + ?Sized>(
        &self,
        obstacles: &[Obstacle],
        trajectory: &Trajectory,
        t0: f64,
        rng: &mut R,
    ) -> Scan {
        let cfg = &self.config;
        let pose0 = trajectory.pose_at(t0);
        let n_az = cfg.azimuth_count();

        // Culling index: inflate obstacle radii by the distance the sensor
        // travels during the sweep so late firings still find their targets.
        let sweep_travel = trajectory.speed_at(t0) * cfg.scan_duration + 1.0;
        let index =
            AzimuthIndex::build(pose0.translation(), obstacles, n_az, cfg.max_range, sweep_travel);

        let mut gauss = GaussianSampler::new();
        let mut points = Vec::with_capacity(n_az * cfg.channels / 2);

        for a in 0..n_az {
            let frac = a as f64 / n_az as f64;
            let t = t0 + frac * cfg.scan_duration;
            let pose = trajectory.pose_at(t);
            let origin2 = pose.translation();
            let origin = Vec3::from_xy(origin2, cfg.mount_height);
            let world_az = pose.yaw() + a as f64 * cfg.azimuth_step;
            let (saz, caz) = world_az.sin_cos();
            let candidates = index.candidates(world_az);

            for ch in 0..cfg.channels {
                let el = cfg.elevation(ch);
                let (sel, cel) = el.sin_cos();
                let dir = Vec3::new(cel * caz, cel * saz, sel);
                let ray = Ray { origin, dir };

                // Nearest obstacle hit among azimuth-bucket candidates.
                let mut best_t = f64::INFINITY;
                let mut best_id: Option<ObstacleId> = None;
                for &ci in candidates {
                    let obs = &obstacles[ci as usize];
                    let hit = match obs.shape {
                        Shape::Box(b) => ray_box(&ray, &b),
                        Shape::Cylinder { center, radius, z0, z1 } => {
                            ray_cylinder(&ray, center, radius, z0, z1)
                        }
                        Shape::Sphere { center, radius } => ray_sphere(&ray, center, radius),
                    };
                    if let Some(t_hit) = hit {
                        if t_hit < best_t {
                            best_t = t_hit;
                            best_id = Some(obs.id);
                        }
                    }
                }
                // Ground return if nearer than any obstacle.
                if let Some(t_ground) = ray_ground(&ray) {
                    if t_ground < best_t {
                        best_t = t_ground;
                        best_id = None;
                    }
                }
                if !best_t.is_finite() || best_t > cfg.max_range {
                    continue;
                }
                if cfg.dropout_prob > 0.0 && rng.random::<f64>() < cfg.dropout_prob {
                    continue;
                }
                let measured_t = if cfg.range_noise_sigma > 0.0 {
                    (best_t + gauss.sample_scaled(rng, cfg.range_noise_sigma)).max(0.0)
                } else {
                    best_t
                };
                let hit_world = ray.at(measured_t);
                // Express in the *instantaneous* vehicle frame (self-motion
                // distortion: this local point is later interpreted in the
                // scan-start frame).
                let local_xy = (hit_world.xy() - origin2).rotated(-pose.yaw());
                points.push(ScanPoint {
                    position: Vec3::from_xy(local_xy, hit_world.z),
                    target: best_id,
                    sweep_frac: frac,
                });
            }
        }
        Scan::new(points, pose0, cfg.clone(), t0)
    }
}

/// Convenience: how far apart two point clouds of the same static scene are
/// expected to drift purely from self-motion (metres): `speed × duration`.
pub fn expected_self_motion_drift(speed: f64, cfg: &LidarConfig) -> f64 {
    speed * cfg.scan_duration
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_geometry::{Box3, Vec2};
    use bba_scene::{ObjectKind, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn static_world_with(obstacles: Vec<Obstacle>) -> World {
        World::new(obstacles, Vec::new())
    }

    fn building(id: u32, x: f64, y: f64) -> Obstacle {
        Obstacle::new(
            ObstacleId(id),
            ObjectKind::Building,
            Shape::Box(Box3::new(Vec3::new(x, y, 5.0), Vec3::new(8.0, 8.0, 10.0), 0.0)),
        )
    }

    fn coarse_scanner() -> Scanner {
        Scanner::new(LidarConfig::test_coarse())
    }

    #[test]
    fn stationary_scan_sees_building_at_true_range() {
        let world = static_world_with(vec![building(0, 30.0, 0.0)]);
        let traj = Trajectory::stationary(Vec2::ZERO, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let scan = coarse_scanner().scan(&world, &traj, 0.0, ObstacleId(99), &mut rng);
        let hits: Vec<&ScanPoint> =
            scan.points().iter().filter(|p| p.target == Some(ObstacleId(0))).collect();
        assert!(!hits.is_empty(), "building not seen");
        // The building front wall is at x = 26.
        for p in &hits {
            assert!(p.position.x >= 25.5 && p.position.x <= 34.5, "{:?}", p.position);
        }
    }

    #[test]
    fn ground_points_have_zero_height() {
        let world = static_world_with(vec![]);
        let traj = Trajectory::stationary(Vec2::ZERO, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let scan = coarse_scanner().scan(&world, &traj, 0.0, ObstacleId(99), &mut rng);
        assert!(!scan.is_empty(), "flat ground should return points");
        for p in scan.points() {
            assert!(p.target.is_none());
            assert!(p.position.z.abs() < 1e-6);
            assert!(p.position.xy().norm() <= scan.config().max_range + 1e-6);
        }
    }

    #[test]
    fn occlusion_nearer_object_wins() {
        // A small box directly in front of a big building.
        let near = Obstacle::new(
            ObstacleId(1),
            ObjectKind::ParkedVehicle,
            Shape::Box(Box3::new(Vec3::new(15.0, 0.0, 0.8), Vec3::new(4.5, 1.9, 1.6), 0.0)),
        );
        let world = static_world_with(vec![building(0, 30.0, 0.0), near]);
        let traj = Trajectory::stationary(Vec2::ZERO, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let scan = coarse_scanner().scan(&world, &traj, 0.0, ObstacleId(99), &mut rng);
        // Forward rays that hit the car at ~13 m must not pass through it:
        // no building hit should exist between 13 m and the car's far side
        // at low height along the centreline.
        for p in scan.points() {
            if p.target == Some(ObstacleId(0)) {
                assert!(
                    p.position.z > 1.2 || p.position.y.abs() > 0.8,
                    "building seen through the car at {:?}",
                    p.position
                );
            }
        }
        assert!(scan.hits_on(ObstacleId(1)) > 0);
    }

    #[test]
    fn excluded_vehicle_is_invisible() {
        let car = Obstacle::new(
            ObstacleId(7),
            ObjectKind::AgentVehicle,
            Shape::Box(Box3::new(Vec3::new(0.0, 0.0, 0.8), Vec3::new(4.5, 1.9, 1.6), 0.0)),
        );
        let world = static_world_with(vec![car]);
        let traj = Trajectory::stationary(Vec2::ZERO, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let scan = coarse_scanner().scan(&world, &traj, 0.0, ObstacleId(7), &mut rng);
        assert_eq!(scan.hits_on(ObstacleId(7)), 0);
    }

    #[test]
    fn max_range_is_respected() {
        let world = static_world_with(vec![building(0, 200.0, 0.0)]);
        let traj = Trajectory::stationary(Vec2::ZERO, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let scan = coarse_scanner().scan(&world, &traj, 0.0, ObstacleId(99), &mut rng);
        assert_eq!(scan.hits_on(ObstacleId(0)), 0, "beyond max range");
    }

    #[test]
    fn moving_sensor_distorts_static_landmark() {
        // Scan the same building twice: once stationary, once at speed.
        // With distortion, the building's apparent position in the scan
        // frame shifts for returns fired late in the sweep.
        let world = static_world_with(vec![building(0, 25.0, 10.0)]);
        let mut rng = StdRng::seed_from_u64(0);
        let scanner = coarse_scanner();

        let still = scanner.scan(
            &world,
            &Trajectory::stationary(Vec2::ZERO, 0.0),
            0.0,
            ObstacleId(99),
            &mut rng,
        );
        let moving = scanner.scan(
            &world,
            &Trajectory::straight(Vec2::ZERO, 0.0, 20.0),
            0.0,
            ObstacleId(99),
            &mut rng,
        );
        let centroid = |scan: &Scan| {
            let pts: Vec<Vec3> = scan
                .points()
                .iter()
                .filter(|p| p.target == Some(ObstacleId(0)))
                .map(|p| p.position)
                .collect();
            assert!(!pts.is_empty());
            pts.iter().fold(Vec3::ZERO, |a, &b| a + b) / pts.len() as f64
        };
        let drift = (centroid(&still) - centroid(&moving)).norm();
        let max_drift = expected_self_motion_drift(20.0, scanner.config());
        assert!(drift > 0.05, "expected visible distortion, got {drift}");
        assert!(drift <= max_drift + 0.5, "drift {drift} exceeds physical bound {max_drift}");
    }

    #[test]
    fn dropout_thins_the_cloud() {
        let mut cfg = LidarConfig::test_coarse();
        let world = static_world_with(vec![building(0, 20.0, 0.0)]);
        let traj = Trajectory::stationary(Vec2::ZERO, 0.0);

        let mut rng = StdRng::seed_from_u64(3);
        let full = Scanner::new(cfg.clone()).scan(&world, &traj, 0.0, ObstacleId(99), &mut rng);
        cfg.dropout_prob = 0.5;
        let mut rng = StdRng::seed_from_u64(3);
        let thin = Scanner::new(cfg).scan(&world, &traj, 0.0, ObstacleId(99), &mut rng);
        let ratio = thin.len() as f64 / full.len() as f64;
        assert!((0.35..0.65).contains(&ratio), "dropout ratio {ratio}");
    }

    #[test]
    fn range_noise_perturbs_measurements() {
        let mut cfg = LidarConfig::test_coarse();
        cfg.range_noise_sigma = 0.1;
        let world = static_world_with(vec![building(0, 30.0, 0.0)]);
        let traj = Trajectory::stationary(Vec2::ZERO, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let scan = Scanner::new(cfg).scan(&world, &traj, 0.0, ObstacleId(99), &mut rng);
        // Front-wall x coordinates now scatter around 26.
        let xs: Vec<f64> = scan
            .points()
            .iter()
            .filter(|p| p.target == Some(ObstacleId(0)) && p.position.x < 27.0)
            .map(|p| p.position.x)
            .collect();
        assert!(xs.len() > 3);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(var > 1e-4, "expected measurable noise, var={var}");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let world = static_world_with(vec![building(0, 25.0, 5.0)]);
        let traj = Trajectory::straight(Vec2::ZERO, 0.0, 10.0);
        let scanner = Scanner::new(LidarConfig::mid_res_32());
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let s1 = scanner.scan(&world, &traj, 1.0, ObstacleId(99), &mut r1);
        let s2 = scanner.scan(&world, &traj, 1.0, ObstacleId(99), &mut r2);
        assert_eq!(s1, s2);
    }
}

//! The output of one LiDAR sweep.

use crate::config::LidarConfig;
use bba_geometry::{Iso2, Iso3, Vec3};
use bba_scene::ObstacleId;
use serde::{Deserialize, Serialize};

/// One LiDAR return.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanPoint {
    /// Position in the scan's nominal sensor frame (sensor at origin,
    /// x forward at scan start, z up; metres).
    pub position: Vec3,
    /// Identity of the obstacle that produced the return (`None` = ground).
    pub target: Option<ObstacleId>,
    /// When within the sweep this return was fired, as a fraction of
    /// [`LidarConfig::scan_duration`] in `[0, 1)`. Downstream consumers use
    /// it to reason about self-motion distortion.
    pub sweep_frac: f64,
}

/// A complete sweep: points in the sensor frame plus the sensor's
/// ground-truth pose at scan start.
///
/// Because of self-motion distortion, the points are *not* exactly
/// consistent with a single rigid pose — points fired late in the sweep are
/// expressed in the instantaneous frame at their firing time but merged
/// into this one cloud, exactly as a real (un-deskewed) LiDAR driver does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scan {
    points: Vec<ScanPoint>,
    sensor_pose: Iso2,
    config: LidarConfig,
    timestamp: f64,
}

impl Scan {
    /// Assembles a scan from parts (used by [`crate::Scanner`]).
    pub fn new(
        points: Vec<ScanPoint>,
        sensor_pose: Iso2,
        config: LidarConfig,
        timestamp: f64,
    ) -> Self {
        Scan { points, sensor_pose, config, timestamp }
    }

    /// The returns, in the sensor frame.
    pub fn points(&self) -> &[ScanPoint] {
        &self.points
    }

    /// Ground-truth sensor pose (ground plane) at scan start — what a
    /// perfect GPS/IMU would report.
    pub fn sensor_pose(&self) -> Iso2 {
        self.sensor_pose
    }

    /// The sensor model that produced this scan.
    pub fn config(&self) -> &LidarConfig {
        &self.config
    }

    /// Scan-start time (s).
    pub fn timestamp(&self) -> f64 {
        self.timestamp
    }

    /// Number of returns.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the sweep produced no returns.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of returns attributed to a given obstacle.
    pub fn hits_on(&self, id: ObstacleId) -> usize {
        self.points.iter().filter(|p| p.target == Some(id)).count()
    }

    /// Mean sweep fraction of the returns on a given obstacle, or `None`
    /// when the obstacle was not hit. Approximates *when* during the sweep
    /// the object was observed (for distortion-aware consumers).
    pub fn mean_sweep_frac(&self, id: ObstacleId) -> Option<f64> {
        let fracs: Vec<f64> =
            self.points.iter().filter(|p| p.target == Some(id)).map(|p| p.sweep_frac).collect();
        if fracs.is_empty() {
            None
        } else {
            Some(fracs.iter().sum::<f64>() / fracs.len() as f64)
        }
    }

    /// Non-ground returns only.
    pub fn object_points(&self) -> impl Iterator<Item = &ScanPoint> {
        self.points.iter().filter(|p| p.target.is_some())
    }

    /// The points transformed into the world frame using the ground-truth
    /// sensor pose (sensor height is part of the stored z already).
    pub fn to_world_points(&self) -> Vec<Vec3> {
        let t = Iso3::from_iso2(&self.sensor_pose, 0.0);
        self.points.iter().map(|p| t.apply(p.position)).collect()
    }

    /// The points transformed by an arbitrary ground-plane transform —
    /// e.g. a (possibly corrupted or recovered) relative pose during fusion.
    pub fn transformed_points(&self, t: &Iso2) -> Vec<Vec3> {
        let t3 = Iso3::from_iso2(t, 0.0);
        self.points.iter().map(|p| t3.apply(p.position)).collect()
    }

    /// Approximate serialized size of the raw cloud in bytes
    /// (3 × f32 per point, the usual wire format) — used by the bandwidth
    /// experiment.
    pub fn wire_size_bytes(&self) -> usize {
        self.points.len() * 3 * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_geometry::Vec2;

    fn sample_scan() -> Scan {
        let points = vec![
            ScanPoint {
                position: Vec3::new(1.0, 0.0, 0.5),
                target: Some(ObstacleId(3)),
                sweep_frac: 0.0,
            },
            ScanPoint { position: Vec3::new(2.0, 1.0, 0.0), target: None, sweep_frac: 0.25 },
            ScanPoint {
                position: Vec3::new(-1.0, 2.0, 1.5),
                target: Some(ObstacleId(3)),
                sweep_frac: 0.5,
            },
            ScanPoint {
                position: Vec3::new(0.0, -2.0, 1.0),
                target: Some(ObstacleId(9)),
                sweep_frac: 0.75,
            },
        ];
        Scan::new(
            points,
            Iso2::from_pose(Vec2::new(100.0, 50.0), 0.0),
            LidarConfig::test_coarse(),
            1.5,
        )
    }

    #[test]
    fn accessors() {
        let s = sample_scan();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.timestamp(), 1.5);
        assert_eq!(s.hits_on(ObstacleId(3)), 2);
        assert_eq!(s.hits_on(ObstacleId(1)), 0);
        assert_eq!(s.object_points().count(), 3);
    }

    #[test]
    fn world_transform_offsets_by_pose() {
        let s = sample_scan();
        let world = s.to_world_points();
        assert!((world[0] - Vec3::new(101.0, 50.0, 0.5)).norm() < 1e-12);
    }

    #[test]
    fn wire_size_counts_f32_triplets() {
        let s = sample_scan();
        assert_eq!(s.wire_size_bytes(), 4 * 12);
    }

    #[test]
    fn transformed_points_rotate() {
        let s = sample_scan();
        let t = Iso2::new(std::f64::consts::FRAC_PI_2, Vec2::ZERO);
        let pts = s.transformed_points(&t);
        assert!((pts[0] - Vec3::new(0.0, 1.0, 0.5)).norm() < 1e-12);
    }
}

//! Bird's-eye-view rasterisation (the paper's Eq. (4)).
//!
//! A LiDAR scan is partitioned into ground-plane cells of size `c` within
//! `[-R, R]²`; the **height map** uses the maximum point height per cell as
//! pixel intensity. Per the paper (§IV-A), this "enables the use of
//! stationary high objects as reliable landmarks" and "inherently filters
//! out ground-hitting points" (ground hits rasterise to ≈0 intensity). The
//! **density map** alternative (points per cell) is provided as the
//! ablation baseline.
//!
//! # Example
//!
//! ```
//! use bba_bev::{BevConfig, BevImage};
//! use bba_geometry::Vec3;
//!
//! let cfg = BevConfig::test_small();
//! let points = vec![Vec3::new(5.0, 5.0, 7.5), Vec3::new(5.1, 5.0, 3.0)];
//! let bev = BevImage::height_map(points.iter().copied(), &cfg);
//! let (u, v) = cfg.world_to_pixel(bba_geometry::Vec2::new(5.0, 5.0)).unwrap();
//! assert_eq!(bev.grid()[(u, v)], 7.5); // max height wins
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod image;

pub use config::BevConfig;
pub use image::{BevImage, BevMode};

//! BEV rasterisation geometry: range, cell size, pixel↔world mapping.

use bba_geometry::Vec2;
use serde::{Deserialize, Serialize};

/// Geometry of a BEV raster: cells of size `resolution` covering
/// `[-range, range]²` around the sensor.
///
/// The image side length is `H = 2·range / resolution` (the paper's
/// `H = 2R/c`); configurations are chosen so `H` is a power of two, which
/// the FFT-based Log-Gabor filtering requires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BevConfig {
    /// Half-extent `R` of the rasterised square (m).
    pub range: f64,
    /// Cell size `c` (m/pixel).
    pub resolution: f64,
}

impl BevConfig {
    /// Default evaluation configuration: 51.2 m range at 0.4 m/px → 256².
    pub fn standard() -> Self {
        BevConfig { range: 51.2, resolution: 0.4 }
    }

    /// High-resolution configuration: 51.2 m at 0.2 m/px → 512².
    pub fn fine() -> Self {
        BevConfig { range: 51.2, resolution: 0.2 }
    }

    /// Wide-coverage configuration: 102.4 m at 0.8 m/px → 256². The
    /// BB-Align default: with V2V separations of 30–90 m, only a raster
    /// covering the sensor's full reach gives the two cars enough *shared*
    /// content to register; at half the radius the corridor's repetitive
    /// facades alias onto translated look-alikes.
    pub fn wide() -> Self {
        BevConfig { range: 102.4, resolution: 0.8 }
    }

    /// Small, fast configuration for unit tests: 25.6 m at 0.4 m/px → 128².
    pub fn test_small() -> Self {
        BevConfig { range: 25.6, resolution: 0.4 }
    }

    /// Image side length in pixels (`H = 2R/c`, rounded).
    pub fn image_size(&self) -> usize {
        (2.0 * self.range / self.resolution).round() as usize
    }

    /// True when the image side is a power of two (required by the FFT
    /// pipeline).
    pub fn is_pow2(&self) -> bool {
        let h = self.image_size();
        h > 0 && h.is_power_of_two()
    }

    /// Maps a ground-plane point (sensor frame) to its pixel, or `None`
    /// outside the raster.
    pub fn world_to_pixel(&self, p: Vec2) -> Option<(usize, usize)> {
        let h = self.image_size() as f64;
        let u = (p.x + self.range) / self.resolution;
        let v = (p.y + self.range) / self.resolution;
        if u >= 0.0 && u < h && v >= 0.0 && v < h {
            Some((u as usize, v as usize))
        } else {
            None
        }
    }

    /// Continuous (sub-pixel) image coordinates of a ground-plane point.
    /// Unlike [`BevConfig::world_to_pixel`] this does not bound-check; use
    /// it for keypoint positions that RANSAC converts back to metres.
    pub fn world_to_pixel_f(&self, p: Vec2) -> Vec2 {
        Vec2::new((p.x + self.range) / self.resolution, (p.y + self.range) / self.resolution)
    }

    /// Ground-plane centre of pixel `(u, v)` in the sensor frame.
    pub fn pixel_center(&self, u: usize, v: usize) -> Vec2 {
        Vec2::new(
            (u as f64 + 0.5) * self.resolution - self.range,
            (v as f64 + 0.5) * self.resolution - self.range,
        )
    }

    /// Converts continuous pixel coordinates back to metres.
    pub fn pixel_to_world_f(&self, p: Vec2) -> Vec2 {
        Vec2::new(p.x * self.resolution - self.range, p.y * self.resolution - self.range)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if range/resolution are non-positive or the image side is not
    /// a power of two.
    pub fn validate(&self) {
        assert!(self.range > 0.0, "range must be positive");
        assert!(self.resolution > 0.0, "resolution must be positive");
        assert!(
            self.is_pow2(),
            "image side {} must be a power of two for the FFT pipeline",
            self.image_size()
        );
    }
}

impl Default for BevConfig {
    fn default() -> Self {
        BevConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_sizes_are_pow2() {
        assert_eq!(BevConfig::standard().image_size(), 256);
        assert_eq!(BevConfig::fine().image_size(), 512);
        assert_eq!(BevConfig::test_small().image_size(), 128);
        for cfg in [BevConfig::standard(), BevConfig::fine(), BevConfig::test_small()] {
            cfg.validate();
        }
    }

    #[test]
    fn world_pixel_roundtrip() {
        let cfg = BevConfig::test_small();
        let p = Vec2::new(3.7, -10.2);
        let (u, v) = cfg.world_to_pixel(p).unwrap();
        let back = cfg.pixel_center(u, v);
        assert!((back - p).norm() < cfg.resolution);
    }

    #[test]
    fn continuous_roundtrip_is_exact() {
        let cfg = BevConfig::standard();
        let p = Vec2::new(-17.3, 42.0);
        let back = cfg.pixel_to_world_f(cfg.world_to_pixel_f(p));
        assert!((back - p).norm() < 1e-9);
    }

    #[test]
    fn out_of_range_is_none() {
        let cfg = BevConfig::test_small();
        assert!(cfg.world_to_pixel(Vec2::new(30.0, 0.0)).is_none());
        assert!(cfg.world_to_pixel(Vec2::new(0.0, -30.0)).is_none());
        assert!(cfg.world_to_pixel(Vec2::new(0.0, 0.0)).is_some());
    }

    #[test]
    fn origin_maps_to_center() {
        let cfg = BevConfig::test_small();
        let (u, v) = cfg.world_to_pixel(Vec2::ZERO).unwrap();
        assert_eq!((u, v), (64, 64));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        BevConfig { range: 50.0, resolution: 0.4 }.validate();
    }
}

//! BEV images: height-map (Eq. (4)) and density-map rasterisation.

use crate::config::BevConfig;
use bba_geometry::Vec3;
use bba_signal::Grid;
use serde::{Deserialize, Serialize};

/// Rasterisation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BevMode {
    /// Pixel = maximum point height in the cell (the paper's choice;
    /// Eq. (4)).
    #[default]
    Height,
    /// Pixel = log-scaled point count (the MV3D-style baseline the paper
    /// compares against in §IV-A).
    Density,
}

/// A rasterised BEV image plus its geometry.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BevImage {
    grid: Grid<f64>,
    config: BevConfig,
    mode: BevMode,
}

impl BevImage {
    /// Rasterises a height map: `B_uv = max z` over the points in each cell.
    pub fn height_map(points: impl IntoIterator<Item = Vec3>, config: &BevConfig) -> BevImage {
        config.validate();
        let h = config.image_size();
        let mut grid = Grid::new(h, h, 0.0f64);
        for p in points {
            if let Some((u, v)) = config.world_to_pixel(p.xy()) {
                let cell = &mut grid[(u, v)];
                if p.z > *cell {
                    *cell = p.z;
                }
            }
        }
        BevImage { grid, config: *config, mode: BevMode::Height }
    }

    /// Rasterises a density map: `B_uv = ln(1 + count)`.
    pub fn density_map(points: impl IntoIterator<Item = Vec3>, config: &BevConfig) -> BevImage {
        config.validate();
        let h = config.image_size();
        let mut counts = Grid::new(h, h, 0u32);
        for p in points {
            if let Some((u, v)) = config.world_to_pixel(p.xy()) {
                counts[(u, v)] += 1;
            }
        }
        let grid = counts.map(|&c| (1.0 + c as f64).ln());
        BevImage { grid, config: *config, mode: BevMode::Density }
    }

    /// Reassembles an image from an existing pixel grid (e.g. decoded from
    /// a wire payload).
    ///
    /// # Panics
    ///
    /// Panics if the grid shape does not match `config.image_size()`.
    pub fn from_grid(grid: Grid<f64>, config: BevConfig, mode: BevMode) -> BevImage {
        config.validate();
        let h = config.image_size();
        assert_eq!(
            (grid.width(), grid.height()),
            (h, h),
            "grid shape must match the raster geometry"
        );
        BevImage { grid, config, mode }
    }

    /// Rasterises with the given mode.
    pub fn rasterize(
        points: impl IntoIterator<Item = Vec3>,
        config: &BevConfig,
        mode: BevMode,
    ) -> BevImage {
        match mode {
            BevMode::Height => BevImage::height_map(points, config),
            BevMode::Density => BevImage::density_map(points, config),
        }
    }

    /// The pixel grid.
    pub fn grid(&self) -> &Grid<f64> {
        &self.grid
    }

    /// The raster geometry.
    pub fn config(&self) -> &BevConfig {
        &self.config
    }

    /// The rasterisation mode this image was built with.
    pub fn mode(&self) -> BevMode {
        self.mode
    }

    /// Image side length in pixels.
    pub fn size(&self) -> usize {
        self.grid.width()
    }

    /// Fraction of non-empty pixels — BV images are extremely sparse
    /// (typically < 10 %), the property that defeats SIFT/ORB.
    pub fn occupancy(&self) -> f64 {
        self.grid.occupancy(1e-9)
    }

    /// Approximate wire size in bytes when transmitted sparsely
    /// (u16 cell index pair + u8 quantised intensity per occupied cell).
    ///
    /// This is the quantity behind the paper's bandwidth argument: a sparse
    /// BV image is orders of magnitude smaller than the raw cloud.
    pub fn wire_size_bytes(&self) -> usize {
        let occupied = self.grid.as_slice().iter().filter(|&&x| x > 1e-9).count();
        occupied * 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_geometry::Vec2;

    fn cfg() -> BevConfig {
        BevConfig::test_small()
    }

    #[test]
    fn height_map_takes_max() {
        let pts =
            vec![Vec3::new(1.0, 1.0, 2.0), Vec3::new(1.05, 1.0, 9.0), Vec3::new(1.1, 1.05, 4.0)];
        let img = BevImage::height_map(pts, &cfg());
        let (u, v) = cfg().world_to_pixel(Vec2::new(1.0, 1.0)).unwrap();
        assert_eq!(img.grid()[(u, v)], 9.0);
    }

    #[test]
    fn ground_points_rasterise_to_zero() {
        let pts = vec![Vec3::new(5.0, 5.0, 0.0), Vec3::new(-3.0, 2.0, 0.0)];
        let img = BevImage::height_map(pts, &cfg());
        assert!(img.grid().max_value() < 1e-12);
        assert_eq!(img.occupancy(), 0.0);
    }

    #[test]
    fn out_of_range_points_ignored() {
        let pts = vec![Vec3::new(100.0, 0.0, 5.0)];
        let img = BevImage::height_map(pts, &cfg());
        assert_eq!(img.grid().max_value(), 0.0);
    }

    #[test]
    fn density_map_counts_logarithmically() {
        let mut pts = vec![Vec3::new(1.0, 1.0, 0.0)];
        for _ in 0..9 {
            pts.push(Vec3::new(1.01, 1.01, 0.5));
        }
        let img = BevImage::density_map(pts.clone(), &cfg());
        let (u, v) = cfg().world_to_pixel(Vec2::new(1.0, 1.0)).unwrap();
        assert!((img.grid()[(u, v)] - (11.0f64).ln()).abs() < 1e-12);
        assert_eq!(img.mode(), BevMode::Density);
        // Unlike the height map, density sees ground points.
        assert!(img.occupancy() > 0.0);
    }

    #[test]
    fn rasterize_dispatches_on_mode() {
        let pts = vec![Vec3::new(0.0, 0.0, 3.0)];
        let h = BevImage::rasterize(pts.clone(), &cfg(), BevMode::Height);
        let d = BevImage::rasterize(pts, &cfg(), BevMode::Density);
        assert_eq!(h.mode(), BevMode::Height);
        assert_eq!(d.mode(), BevMode::Density);
        assert_ne!(h.grid(), d.grid());
    }

    #[test]
    fn wire_size_tracks_occupancy() {
        let pts =
            vec![Vec3::new(0.0, 0.0, 3.0), Vec3::new(5.0, 5.0, 2.0), Vec3::new(-5.0, 5.0, 1.0)];
        let img = BevImage::height_map(pts, &cfg());
        assert_eq!(img.wire_size_bytes(), 3 * 5);
    }

    #[test]
    fn empty_cloud_is_empty_image() {
        let img = BevImage::height_map(std::iter::empty(), &cfg());
        assert_eq!(img.size(), 128);
        assert_eq!(img.wire_size_bytes(), 0);
    }
}

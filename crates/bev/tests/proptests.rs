//! Property-based tests for BEV rasterisation geometry.

use bba_bev::{BevConfig, BevImage};
use bba_geometry::{Vec2, Vec3};
use proptest::prelude::*;

fn cfg() -> BevConfig {
    BevConfig::test_small()
}

fn in_range_point() -> impl Strategy<Value = Vec3> {
    (-25.0..25.0f64, -25.0..25.0f64, 0.0..20.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn pixel_world_roundtrip_is_within_a_cell(x in -25.0..25.0f64, y in -25.0..25.0f64) {
        let c = cfg();
        let p = Vec2::new(x, y);
        let (u, v) = c.world_to_pixel(p).unwrap();
        let back = c.pixel_center(u, v);
        prop_assert!((back - p).norm() <= c.resolution * std::f64::consts::SQRT_2);
    }

    #[test]
    fn continuous_mapping_is_exact_inverse(x in -100.0..100.0f64, y in -100.0..100.0f64) {
        let c = cfg();
        let p = Vec2::new(x, y);
        let back = c.pixel_to_world_f(c.world_to_pixel_f(p));
        prop_assert!((back - p).norm() < 1e-9);
    }

    #[test]
    fn height_map_pixel_equals_max_point_height(
        pts in proptest::collection::vec(in_range_point(), 1..80),
    ) {
        let c = cfg();
        let img = BevImage::height_map(pts.iter().copied(), &c);
        // For every input point, its pixel is at least its height.
        for p in &pts {
            if let Some((u, v)) = c.world_to_pixel(p.xy()) {
                prop_assert!(img.grid()[(u, v)] >= p.z - 1e-12);
            }
        }
        // Global max equals the tallest in-range point.
        let tallest = pts
            .iter()
            .filter(|p| c.world_to_pixel(p.xy()).is_some())
            .map(|p| p.z)
            .fold(0.0f64, f64::max);
        prop_assert!((img.grid().max_value() - tallest).abs() < 1e-12);
    }

    #[test]
    fn occupancy_bounded_by_point_count(
        pts in proptest::collection::vec(in_range_point(), 0..60),
    ) {
        let c = cfg();
        let img = BevImage::height_map(pts.iter().copied().map(|p| Vec3::new(p.x, p.y, p.z + 0.1)), &c);
        let occupied = (img.occupancy() * img.grid().len() as f64).round() as usize;
        prop_assert!(occupied <= pts.len());
    }

    #[test]
    fn density_map_monotone_in_points(
        pts in proptest::collection::vec(in_range_point(), 1..40),
    ) {
        let c = cfg();
        let one = BevImage::density_map(pts.iter().copied(), &c);
        let double = BevImage::density_map(pts.iter().chain(pts.iter()).copied(), &c);
        for (a, b) in one.grid().as_slice().iter().zip(double.grid().as_slice()) {
            prop_assert!(b >= a);
        }
    }
}

//! **bba-serve**: a fleet-scale pose service multiplexing many concurrent
//! pairwise BB-Align sessions.
//!
//! BB-Align's pitch is pose recovery cheap enough to run *continuously*
//! between many V2V pairs. This crate supplies the serving half of that
//! claim:
//!
//! * **Sharded sessions** ([`ShardMap`]) — per-pair state hashed to a
//!   fixed set of independently locked shards; no global lock anywhere on
//!   the submission path.
//! * **Load-shedding ingress** ([`PairSession`]) — bounded queues that
//!   drop stale, duplicate, superseded, or overflowing frames instead of
//!   ever blocking the link, with every shed frame counted exactly once
//!   (`submitted == processed + shed + queued`).
//! * **Batched recovery** ([`PoseService::process_batch`]) — drained
//!   frames fan out over `bba_par::par_map` against one shared
//!   [`bb_align::BbAlign`] engine, whose bounded workspace pools thereby
//!   become service-wide. Per-item RNGs derive from `(seed, pair, seq)`,
//!   so results are bit-identical at any thread count.
//! * **Fleet pose graph** ([`FleetPoseGraph`]) — pairwise recoveries
//!   chained into an N-vehicle graph with 3-cycle consistency checking
//!   and reconciliation that detects and excludes corrupted edges.
//! * **Candidate-pair gating** ([`GateConfig`]) — a service-owned
//!   [`bba_place::PlaceIndex`] of global place descriptors refuses pairs
//!   that cannot see the same scene before any recovery work is queued
//!   (`serve.shed_gated`), and ranks plausible partners via
//!   [`PoseService::candidate_pairs`]. The gate fails open and leaves
//!   admitted pairs bit-identical to an ungated service.
//! * **Observability** — `serve.*` counters/gauges plus a per-recovery
//!   latency histogram through `bba-obs`, quantile-queryable via
//!   [`bba_obs::HistSummary::p99`].
//!
//! # Example
//!
//! ```
//! use bba_serve::{FrameSubmission, PairId, PoseService, ServiceConfig};
//! use bb_align::{BbAlign, BbAlignConfig};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(BbAlign::new(BbAlignConfig::test_small()));
//! let service = PoseService::new(Arc::clone(&engine), ServiceConfig::default())
//!     .with_recorder(bba_obs::Recorder::enabled());
//! let frame = Arc::new(engine.frame_from_parts(std::iter::empty(), std::iter::empty()));
//! service.submit(
//!     PairId::new(0, 1),
//!     FrameSubmission { seq: 0, timestamp: 0.0, ego: frame.clone(), other: frame },
//!     0.0,
//! );
//! let outcomes = service.process_batch(0.1);
//! assert_eq!(outcomes.len(), 1);
//! assert!(service.stats().is_conserved());
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod service;
pub mod session;
pub mod shard;

pub use graph::{CycleError, FleetPoseGraph, PoseEdge, ReconcileReport};
pub use service::{GateConfig, PoseService, RecoveryOutcome, ServiceConfig, ServiceStats};
pub use session::{
    AdmitOutcome, FrameSubmission, PairId, PairSession, SessionConfig, SessionStats,
};
pub use shard::ShardMap;

//! The fleet pose graph: chaining pairwise recoveries into a consistent
//! fleet-wide frame.
//!
//! Each successful pairwise recovery is an edge `T_{i←j}` mapping vehicle
//! `j`'s frame into vehicle `i`'s. With N>2 vehicles the edges form a
//! graph whose cycles give a *self-check no single pair has*: composing
//! the transforms around any 3-cycle `i→j→k→i` must return the identity,
//!
//! ```text
//! T_{i←j} ∘ T_{j←k} ∘ T_{k←i} ≈ I
//! ```
//!
//! up to recovery noise. A corrupted edge (an alias lock-on that passed
//! the inlier thresholds) breaks every cycle through it, which is exactly
//! how [`FleetPoseGraph::reconcile`] finds it: repeatedly exclude the
//! edge participating in the most over-threshold cycles (ties broken by
//! lowest weight) until no inconsistent complete cycle remains. The
//! motivation follows the spatial-calibration line of work in PAPERS.md —
//! multi-vehicle consistency as the arbiter of pairwise estimates.

use crate::session::PairId;
use bba_geometry::Iso2;

/// One pairwise recovery in the graph.
#[derive(Debug, Clone)]
pub struct PoseEdge {
    /// Receiver-side vehicle index.
    pub from: usize,
    /// Sender-side vehicle index.
    pub to: usize,
    /// `T_{from←to}`: maps `to`'s frame into `from`'s frame.
    pub pose: Iso2,
    /// Confidence weight (e.g. stage-1 + stage-2 inlier count). Used to
    /// break ties when excluding inconsistent edges.
    pub weight: f64,
    /// Set by [`FleetPoseGraph::reconcile`] when the edge is deemed
    /// inconsistent; excluded edges drop out of cycle checks and
    /// absolute-pose propagation.
    pub excluded: bool,
}

/// One 3-cycle's composition error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleError {
    /// The three vehicle indices, ascending.
    pub cycle: (usize, usize, usize),
    /// Translation magnitude (m) of the composed transform.
    pub translation: f64,
    /// Rotation magnitude (rad) of the composed transform.
    pub rotation: f64,
}

/// Report of one reconciliation pass.
#[derive(Debug, Clone, Default)]
pub struct ReconcileReport {
    /// Edges excluded, in exclusion order, as `(from, to)`.
    pub excluded: Vec<(usize, usize)>,
    /// Cycle errors remaining after exclusion.
    pub remaining: Vec<CycleError>,
}

/// A pose graph over `vehicles` indexed vehicles.
#[derive(Debug, Clone, Default)]
pub struct FleetPoseGraph {
    vehicles: usize,
    edges: Vec<PoseEdge>,
}

impl FleetPoseGraph {
    /// An empty graph over `vehicles` vehicles.
    pub fn new(vehicles: usize) -> Self {
        FleetPoseGraph { vehicles, edges: Vec::new() }
    }

    /// Number of vehicles.
    pub fn vehicle_count(&self) -> usize {
        self.vehicles
    }

    /// The edges, in insertion order.
    pub fn edges(&self) -> &[PoseEdge] {
        &self.edges
    }

    /// Adds the recovery `T_{from←to}` with confidence `weight`. A second
    /// edge for the same ordered pair replaces the first (sessions
    /// re-recover continuously; the newest estimate wins).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range or `from == to`.
    pub fn add_edge(&mut self, from: usize, to: usize, pose: Iso2, weight: f64) {
        assert!(from < self.vehicles && to < self.vehicles, "vehicle index out of range");
        assert_ne!(from, to, "self-edges are meaningless");
        let edge = PoseEdge { from, to, pose, weight, excluded: false };
        if let Some(existing) = self.edges.iter_mut().find(|e| e.from == from && e.to == to) {
            *existing = edge;
        } else {
            self.edges.push(edge);
        }
    }

    /// Convenience for service output: adds an edge keyed by a
    /// [`PairId`] whose vehicle ids are the graph indices.
    pub fn add_recovery(&mut self, pair: PairId, pose: Iso2, weight: f64) {
        self.add_edge(pair.receiver as usize, pair.sender as usize, pose, weight);
    }

    /// The transform `T_{from←to}` if a non-excluded edge connects the
    /// two vehicles in either orientation.
    fn directed(&self, from: usize, to: usize) -> Option<Iso2> {
        for e in &self.edges {
            if e.excluded {
                continue;
            }
            if e.from == from && e.to == to {
                return Some(e.pose);
            }
            if e.from == to && e.to == from {
                return Some(e.pose.inverse());
            }
        }
        None
    }

    /// Composition errors of every complete (all three edges present and
    /// non-excluded) 3-cycle, ascending by vehicle triple.
    pub fn cycle_errors(&self) -> Vec<CycleError> {
        let mut out = Vec::new();
        for a in 0..self.vehicles {
            for b in (a + 1)..self.vehicles {
                let Some(t_ab) = self.directed(a, b) else { continue };
                for c in (b + 1)..self.vehicles {
                    let (Some(t_bc), Some(t_ca)) = (self.directed(b, c), self.directed(c, a))
                    else {
                        continue;
                    };
                    // p in a's frame: T_ca → c, T_bc → … composing
                    // left-to-right: T_ab ∘ T_bc ∘ T_ca = T_{a←a}.
                    let composed = t_ab.compose(&t_bc).compose(&t_ca);
                    let (translation, rotation) = composed.error_to(&Iso2::IDENTITY);
                    out.push(CycleError { cycle: (a, b, c), translation, rotation });
                }
            }
        }
        out
    }

    /// The largest 3-cycle composition error, as `(translation m,
    /// rotation rad)` maxima taken independently. `None` when the graph
    /// has no complete cycle.
    pub fn max_cycle_error(&self) -> Option<(f64, f64)> {
        let errors = self.cycle_errors();
        if errors.is_empty() {
            return None;
        }
        Some((
            errors.iter().map(|e| e.translation).fold(0.0, f64::max),
            errors.iter().map(|e| e.rotation).fold(0.0, f64::max),
        ))
    }

    /// Detects and excludes inconsistent edges.
    ///
    /// A cycle is *bad* when its composition error exceeds either
    /// tolerance. Iteratively, the edge participating in the most bad
    /// cycles is excluded (ties: lowest weight, then lowest `(from, to)`
    /// for determinism) until no bad complete cycle remains. Exclusion
    /// only ever removes edges, so the loop terminates.
    pub fn reconcile(&mut self, trans_tol: f64, rot_tol: f64) -> ReconcileReport {
        let mut report = ReconcileReport::default();
        loop {
            let bad: Vec<CycleError> = self
                .cycle_errors()
                .into_iter()
                .filter(|e| e.translation > trans_tol || e.rotation > rot_tol)
                .collect();
            if bad.is_empty() {
                report.remaining = self.cycle_errors();
                return report;
            }
            // Count bad-cycle membership per non-excluded edge.
            let mut worst: Option<(usize, f64, usize)> = None; // (bad count, weight, index)
            for (idx, edge) in self.edges.iter().enumerate() {
                if edge.excluded {
                    continue;
                }
                let count = bad
                    .iter()
                    .filter(|e| {
                        let (a, b, c) = e.cycle;
                        let touches = |x: usize, y: usize| {
                            (edge.from == x && edge.to == y) || (edge.from == y && edge.to == x)
                        };
                        touches(a, b) || touches(b, c) || touches(c, a)
                    })
                    .count();
                if count == 0 {
                    continue;
                }
                let better = match worst {
                    None => true,
                    Some((best_count, best_weight, best_idx)) => {
                        count > best_count
                            || (count == best_count
                                && (edge.weight < best_weight
                                    || (edge.weight == best_weight && idx < best_idx)))
                    }
                };
                if better {
                    worst = Some((count, edge.weight, idx));
                }
            }
            let Some((_, _, idx)) = worst else {
                // Bad cycles but no countable edge — cannot happen, but
                // never loop forever.
                report.remaining = bad;
                return report;
            };
            self.edges[idx].excluded = true;
            report.excluded.push((self.edges[idx].from, self.edges[idx].to));
        }
    }

    /// Propagates absolute poses from `anchor` over non-excluded edges
    /// (breadth-first, edge insertion order): entry `v` is `T_{anchor←v}`,
    /// or `None` when `v` is unreachable.
    pub fn absolute_poses(&self, anchor: usize) -> Vec<Option<Iso2>> {
        let mut poses: Vec<Option<Iso2>> = vec![None; self.vehicles];
        if anchor >= self.vehicles {
            return poses;
        }
        poses[anchor] = Some(Iso2::IDENTITY);
        let mut frontier = vec![anchor];
        while let Some(v) = frontier.pop() {
            let t_anchor_v = poses[v].expect("frontier nodes are resolved");
            for e in &self.edges {
                if e.excluded {
                    continue;
                }
                if e.from == v && poses[e.to].is_none() {
                    poses[e.to] = Some(t_anchor_v.compose(&e.pose));
                    frontier.push(e.to);
                } else if e.to == v && poses[e.from].is_none() {
                    poses[e.from] = Some(t_anchor_v.compose(&e.pose.inverse()));
                    frontier.push(e.from);
                }
            }
        }
        poses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_geometry::Vec2;

    /// A rigid fleet layout: vehicle k at (10k, k) with yaw 0.05k; edges
    /// derived exactly from the layout, so every cycle is identity.
    fn exact_graph(n: usize) -> (FleetPoseGraph, Vec<Iso2>) {
        let world: Vec<Iso2> = (0..n)
            .map(|k| Iso2::new(0.05 * k as f64, Vec2::new(10.0 * k as f64, k as f64)))
            .collect();
        let mut g = FleetPoseGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                // T_{i←j} = world_i⁻¹ ∘ world_j.
                g.add_edge(i, j, world[i].relative_from(&world[j]), 30.0);
            }
        }
        (g, world)
    }

    #[test]
    fn exact_three_cycle_composes_to_identity() {
        let (g, _) = exact_graph(3);
        let errors = g.cycle_errors();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].translation < 1e-9, "translation {}", errors[0].translation);
        assert!(errors[0].rotation < 1e-9, "rotation {}", errors[0].rotation);
        let (t, r) = g.max_cycle_error().unwrap();
        assert!(t < 1e-9 && r < 1e-9);
    }

    #[test]
    fn all_cycles_enumerate_in_a_complete_graph() {
        let (g, _) = exact_graph(5);
        // C(5,3) = 10 triangles.
        assert_eq!(g.cycle_errors().len(), 10);
    }

    #[test]
    fn corrupted_edge_in_a_five_vehicle_platoon_is_detected_and_excluded() {
        let (mut g, world) = exact_graph(5);
        // Corrupt edge 1→3 with a gross alias (offset + rotation) but give
        // it a plausible weight.
        let corrupt =
            world[1].relative_from(&world[3]).compose(&Iso2::new(0.3, Vec2::new(4.0, -2.0)));
        g.add_edge(1, 3, corrupt, 20.0);
        let report = g.reconcile(0.5, 0.05);
        assert_eq!(report.excluded, vec![(1, 3)], "exactly the corrupted edge goes");
        assert!(report.remaining.iter().all(|e| e.translation < 1e-9));
        // The fleet is still fully connected without it.
        let poses = g.absolute_poses(0);
        assert!(poses.iter().all(Option::is_some));
        for (k, pose) in poses.iter().enumerate() {
            let expect = world[0].relative_from(&world[k]);
            assert!(pose.unwrap().approx_eq(&expect, 1e-9, 1e-9), "vehicle {k}");
        }
    }

    #[test]
    fn consistent_graph_reconciles_without_exclusions() {
        let (mut g, _) = exact_graph(4);
        let report = g.reconcile(0.5, 0.05);
        assert!(report.excluded.is_empty());
        assert_eq!(report.remaining.len(), 4); // C(4,3)
    }

    #[test]
    fn newest_edge_replaces_the_old_estimate() {
        let mut g = FleetPoseGraph::new(2);
        g.add_edge(0, 1, Iso2::new(0.0, Vec2::new(1.0, 0.0)), 10.0);
        g.add_edge(0, 1, Iso2::new(0.0, Vec2::new(2.0, 0.0)), 12.0);
        assert_eq!(g.edges().len(), 1);
        assert!((g.edges()[0].pose.translation().x - 2.0).abs() < 1e-12);
    }

    #[test]
    fn absolute_poses_mark_unreachable_vehicles() {
        let mut g = FleetPoseGraph::new(4);
        g.add_edge(0, 1, Iso2::new(0.0, Vec2::new(5.0, 0.0)), 10.0);
        // Vehicles 2 and 3 are disconnected.
        let poses = g.absolute_poses(0);
        assert!(poses[0].is_some() && poses[1].is_some());
        assert!(poses[2].is_none() && poses[3].is_none());
    }

    #[test]
    fn chained_absolute_poses_match_direct_composition() {
        // A path graph only: 0-1, 1-2, 2-3 (no shortcuts).
        let world: Vec<Iso2> =
            (0..4).map(|k| Iso2::new(0.1 * k as f64, Vec2::new(8.0 * k as f64, 0.0))).collect();
        let mut g = FleetPoseGraph::new(4);
        for k in 0..3 {
            g.add_edge(k, k + 1, world[k].relative_from(&world[k + 1]), 25.0);
        }
        let poses = g.absolute_poses(0);
        for k in 0..4 {
            let expect = world[0].relative_from(&world[k]);
            assert!(poses[k].unwrap().approx_eq(&expect, 1e-9, 1e-9), "vehicle {k}");
        }
    }
}

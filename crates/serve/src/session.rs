//! Per-pair session state: a bounded ingress queue with load shedding.
//!
//! One [`PairSession`] exists per directed vehicle pair (receiver,
//! sender). Its job is to absorb whatever the link delivers — stale,
//! out-of-order, duplicated, or simply too much — without ever blocking
//! the link thread, and to hand the compute pool only frames still worth
//! recovering. Everything it refuses is *counted*, never silently lost:
//! the conservation invariant
//!
//! ```text
//! submitted == processed + shed_total + queued
//! ```
//!
//! holds after every operation, and the load-shedding proptest pins it
//! under arbitrary interleavings.
//!
//! # Shedding policy
//!
//! At admission ([`PairSession::admit`]), in order:
//!
//! 1. **stale** — the frame's timestamp is older than `now − staleness`;
//! 2. **duplicate** — its sequence number equals the newest admitted one;
//! 3. **superseded** — its sequence number is below the newest admitted
//!    one (a late reordering the pipeline has already moved past);
//! 4. **overflow** — the queue is at capacity: the *oldest queued* frame
//!    is shed to make room, because the freshest pose estimate is always
//!    the most valuable one.
//!
//! At drain ([`PairSession::drain_due`]), staleness is re-checked against
//! the drain-time clock: frames that aged out while queued are shed as
//! stale rather than processed.

use bb_align::{PerceptionFrame, PoseTracker, Recovery, TrackerConfig};
use bba_geometry::Iso2;
use std::collections::VecDeque;
use std::sync::Arc;

/// Identifies one directed pairwise session: `receiver` recovers the pose
/// of `sender` from the frames `sender` transmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairId {
    /// The vehicle doing the recovering (the ego side).
    pub receiver: u32,
    /// The vehicle whose frames arrive over the link.
    pub sender: u32,
}

impl PairId {
    /// Creates a pair id.
    pub fn new(receiver: u32, sender: u32) -> Self {
        PairId { receiver, sender }
    }
}

/// One frame submission: the sender's perception frame plus the
/// receiver's own frame at the matching instant, ready for pairwise
/// recovery. Payloads are `Arc`-shared so a fleet fanning one frame out
/// to many sessions does not copy point clouds.
#[derive(Debug, Clone)]
pub struct FrameSubmission {
    /// Sender-side sequence number (monotonic per session on a healthy
    /// link; arbitrary under reordering/duplication).
    pub seq: u64,
    /// Capture timestamp (s, service clock).
    pub timestamp: f64,
    /// The receiver's own perception frame.
    pub ego: Arc<PerceptionFrame>,
    /// The sender's transmitted perception frame.
    pub other: Arc<PerceptionFrame>,
}

/// Session tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Maximum frames queued per session; an admission beyond this sheds
    /// the oldest queued frame (overflow).
    pub queue_capacity: usize,
    /// Maximum age (s) of a frame worth recovering; older frames are shed
    /// at admission and again at drain.
    pub staleness: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { queue_capacity: 4, staleness: 1.0 }
    }
}

impl SessionConfig {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on a zero queue capacity or non-positive staleness bound.
    pub fn validate(&self) {
        assert!(self.queue_capacity > 0, "queue capacity must be at least 1");
        assert!(self.staleness > 0.0, "staleness bound must be positive");
    }
}

/// Why (or that) an admission was accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Queued for the next batch.
    Admitted,
    /// Older than the staleness bound at arrival.
    ShedStale,
    /// Same sequence number as the newest admitted frame.
    ShedDuplicate,
    /// Sequence number below the newest admitted frame.
    ShedSuperseded,
    /// Place-descriptor similarity for the pair fell below the service
    /// gate: the vehicles almost certainly do not see the same scene, so
    /// the frame was refused before it reached the session queue.
    ShedGated,
}

/// Per-session accounting. All counters are cumulative over the session's
/// lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Frames offered to [`PairSession::admit`].
    pub submitted: u64,
    /// Frames handed to the compute pool by [`PairSession::drain_due`].
    pub processed: u64,
    /// Frames shed for age (at admission or at drain).
    pub shed_stale: u64,
    /// Frames shed as exact sequence duplicates.
    pub shed_duplicate: u64,
    /// Frames shed because a newer sequence number was already admitted.
    pub shed_superseded: u64,
    /// Frames shed to make room when the queue was full.
    pub shed_overflow: u64,
}

impl SessionStats {
    /// Total shed frames across all shed classes.
    pub fn shed_total(&self) -> u64 {
        self.shed_stale + self.shed_duplicate + self.shed_superseded + self.shed_overflow
    }
}

/// Mutable state of one pairwise session.
#[derive(Debug)]
pub struct PairSession {
    config: SessionConfig,
    queue: VecDeque<FrameSubmission>,
    /// Newest sequence number ever admitted (duplicate/superseded gate).
    newest_seq: Option<u64>,
    stats: SessionStats,
    /// Temporal warm-start tracker, fed by successful recoveries for this
    /// pair; `None` when warm starts are disabled service-wide.
    tracker: Option<PoseTracker>,
}

impl PairSession {
    /// An empty session without a warm-start tracker.
    pub fn new(config: SessionConfig) -> Self {
        config.validate();
        PairSession {
            config,
            queue: VecDeque::new(),
            newest_seq: None,
            stats: SessionStats::default(),
            tracker: None,
        }
    }

    /// An empty session carrying a per-pair warm-start tracker.
    pub fn with_tracker(config: SessionConfig, tracker: TrackerConfig) -> Self {
        PairSession { tracker: Some(PoseTracker::new(tracker)), ..Self::new(config) }
    }

    /// The tracker's confidence-gated pose prediction at `time`, if the
    /// session tracks poses and the track is still trustworthy.
    pub fn warm_prediction(&self, time: f64) -> Option<Iso2> {
        self.tracker.as_ref().and_then(|t| t.warm_prediction(time))
    }

    /// Feeds a completed recovery into the session's tracker. Only
    /// recoveries clearing the paper's success criterion train the track:
    /// a failed recovery must never teach the warm path a pose it would
    /// then re-verify against itself.
    pub fn observe_recovery(&mut self, time: f64, recovery: &Recovery) {
        if let Some(tracker) = &mut self.tracker {
            if recovery.is_success() {
                tracker.update(time, recovery);
            }
        }
    }

    /// Offers a frame. Never blocks: the frame is queued or shed in O(1)
    /// plus at most one overflow eviction.
    pub fn admit(&mut self, frame: FrameSubmission, now: f64) -> AdmitOutcome {
        self.stats.submitted += 1;
        if now - frame.timestamp > self.config.staleness {
            self.stats.shed_stale += 1;
            return AdmitOutcome::ShedStale;
        }
        if let Some(newest) = self.newest_seq {
            if frame.seq == newest {
                self.stats.shed_duplicate += 1;
                return AdmitOutcome::ShedDuplicate;
            }
            if frame.seq < newest {
                self.stats.shed_superseded += 1;
                return AdmitOutcome::ShedSuperseded;
            }
        }
        self.newest_seq = Some(frame.seq);
        if self.queue.len() >= self.config.queue_capacity {
            // Shed the oldest queued frame: the new one is fresher.
            self.queue.pop_front();
            self.stats.shed_overflow += 1;
        }
        self.queue.push_back(frame);
        AdmitOutcome::Admitted
    }

    /// Pops up to `max` frames still fresh at `now`, oldest first (so
    /// downstream consumers see sequence order). Frames that aged past
    /// the staleness bound while queued are shed, not returned. The
    /// returned frames count as processed.
    pub fn drain_due(&mut self, now: f64, max: usize) -> Vec<FrameSubmission> {
        let mut out = Vec::new();
        while out.len() < max {
            let Some(front) = self.queue.front() else { break };
            if now - front.timestamp > self.config.staleness {
                self.queue.pop_front();
                self.stats.shed_stale += 1;
                continue;
            }
            out.push(self.queue.pop_front().expect("front checked above"));
        }
        self.stats.processed += out.len() as u64;
        out
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Cumulative accounting.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The conservation invariant every operation preserves; exposed so
    /// tests (and debug assertions) can pin it.
    pub fn is_conserved(&self) -> bool {
        let s = &self.stats;
        s.submitted == s.processed + s.shed_total() + self.queue.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_align::{BbAlign, BbAlignConfig};

    fn empty_frame() -> Arc<PerceptionFrame> {
        let engine = BbAlign::new(BbAlignConfig::test_small());
        Arc::new(engine.frame_from_parts(std::iter::empty(), std::iter::empty()))
    }

    fn submission(frame: &Arc<PerceptionFrame>, seq: u64, timestamp: f64) -> FrameSubmission {
        FrameSubmission { seq, timestamp, ego: Arc::clone(frame), other: Arc::clone(frame) }
    }

    fn session(capacity: usize, staleness: f64) -> PairSession {
        PairSession::new(SessionConfig { queue_capacity: capacity, staleness })
    }

    #[test]
    fn fresh_frames_are_admitted_in_order() {
        let f = empty_frame();
        let mut s = session(4, 1.0);
        for seq in 0..3 {
            assert_eq!(s.admit(submission(&f, seq, 0.0), 0.1), AdmitOutcome::Admitted);
        }
        assert_eq!(s.queue_len(), 3);
        let drained = s.drain_due(0.2, 10);
        assert_eq!(drained.iter().map(|d| d.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(s.is_conserved());
    }

    #[test]
    fn stale_frames_are_shed_at_admission() {
        let f = empty_frame();
        let mut s = session(4, 1.0);
        assert_eq!(s.admit(submission(&f, 0, 0.0), 2.0), AdmitOutcome::ShedStale);
        assert_eq!(s.stats().shed_stale, 1);
        assert_eq!(s.queue_len(), 0);
        assert!(s.is_conserved());
    }

    #[test]
    fn duplicates_and_reordered_frames_are_shed() {
        let f = empty_frame();
        let mut s = session(4, 10.0);
        assert_eq!(s.admit(submission(&f, 5, 0.0), 0.0), AdmitOutcome::Admitted);
        assert_eq!(s.admit(submission(&f, 5, 0.0), 0.0), AdmitOutcome::ShedDuplicate);
        assert_eq!(s.admit(submission(&f, 3, 0.0), 0.0), AdmitOutcome::ShedSuperseded);
        assert_eq!(s.admit(submission(&f, 6, 0.0), 0.0), AdmitOutcome::Admitted);
        let st = s.stats();
        assert_eq!((st.shed_duplicate, st.shed_superseded), (1, 1));
        assert!(s.is_conserved());
    }

    #[test]
    fn overflow_sheds_the_oldest_queued_frame() {
        let f = empty_frame();
        let mut s = session(2, 10.0);
        for seq in 0..4 {
            assert_eq!(s.admit(submission(&f, seq, 0.0), 0.0), AdmitOutcome::Admitted);
        }
        assert_eq!(s.queue_len(), 2);
        assert_eq!(s.stats().shed_overflow, 2);
        // The freshest two survive.
        let seqs: Vec<u64> = s.drain_due(0.0, 10).iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![2, 3]);
        assert!(s.is_conserved());
    }

    #[test]
    fn frames_aging_out_in_the_queue_are_shed_at_drain() {
        let f = empty_frame();
        let mut s = session(4, 1.0);
        s.admit(submission(&f, 0, 0.0), 0.1);
        s.admit(submission(&f, 1, 2.0), 2.1);
        // At t=2.1 the seq-0 frame (stamped 0.0) is 2.1 s old — stale.
        let drained = s.drain_due(2.1, 10);
        assert_eq!(drained.iter().map(|d| d.seq).collect::<Vec<_>>(), vec![1]);
        assert_eq!(s.stats().shed_stale, 1);
        assert_eq!(s.stats().processed, 1);
        assert!(s.is_conserved());
    }

    #[test]
    fn drain_respects_the_batch_bound() {
        let f = empty_frame();
        let mut s = session(8, 10.0);
        for seq in 0..6 {
            s.admit(submission(&f, seq, 0.0), 0.0);
        }
        assert_eq!(s.drain_due(0.0, 2).len(), 2);
        assert_eq!(s.queue_len(), 4);
        assert!(s.is_conserved());
    }
}

//! Sharded session ownership: pair-id → shard, no global lock.
//!
//! A service multiplexing hundreds of pairs must not serialise every
//! admission behind one mutex. [`ShardMap`] hashes each [`PairId`] to one
//! of a fixed set of shards, each an independently locked map of
//! sessions; two submissions for different pairs contend only when they
//! collide on a shard (1/shards probability), and a batch drain locks one
//! shard at a time.
//!
//! Shard assignment uses FNV-1a over the pair's two vehicle ids — cheap,
//! deterministic across runs (unlike `RandomState`), and well-mixed for
//! the small dense id spaces fleets produce.

use crate::session::{FrameSubmission, PairId, PairSession, SessionConfig};
use bb_align::TrackerConfig;
use std::collections::HashMap;
use std::sync::Mutex;

/// A fixed array of independently locked session maps.
#[derive(Debug)]
pub struct ShardMap {
    shards: Vec<Mutex<HashMap<PairId, PairSession>>>,
    session_config: SessionConfig,
    tracker_config: Option<TrackerConfig>,
}

/// FNV-1a over the pair's id bytes; stable across runs and platforms.
fn shard_hash(pair: PairId) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in pair.receiver.to_le_bytes().into_iter().chain(pair.sender.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardMap {
    /// Creates `shards` empty shards (at least 1) sharing one session
    /// config — and, when `tracker_config` is set, one warm-start tracker
    /// config — for newly created sessions.
    pub fn new(
        shards: usize,
        session_config: SessionConfig,
        tracker_config: Option<TrackerConfig>,
    ) -> Self {
        session_config.validate();
        if let Some(t) = &tracker_config {
            t.validate().expect("tracker config");
        }
        let shards = shards.max(1);
        ShardMap {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            session_config,
            tracker_config,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `pair`.
    pub fn shard_of(&self, pair: PairId) -> usize {
        (shard_hash(pair) % self.shards.len() as u64) as usize
    }

    /// Runs `f` on `pair`'s session (created on first touch), holding
    /// only that shard's lock.
    pub fn with_session<R>(&self, pair: PairId, f: impl FnOnce(&mut PairSession) -> R) -> R {
        let shard = &self.shards[self.shard_of(pair)];
        let mut map = shard.lock().expect("shard lock");
        let session = map.entry(pair).or_insert_with(|| match self.tracker_config {
            Some(tracker) => PairSession::with_tracker(self.session_config, tracker),
            None => PairSession::new(self.session_config),
        });
        f(session)
    }

    /// Drains up to `max_per_session` due frames from every session,
    /// returning `(pair, frame)` work items. Shards are locked one at a
    /// time; the result is sorted by `(pair, seq)` so downstream batch
    /// processing is deterministic regardless of hash-map iteration
    /// order.
    pub fn drain_all(&self, now: f64, max_per_session: usize) -> Vec<(PairId, FrameSubmission)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut map = shard.lock().expect("shard lock");
            for (&pair, session) in map.iter_mut() {
                for frame in session.drain_due(now, max_per_session) {
                    out.push((pair, frame));
                }
            }
        }
        out.sort_by_key(|(pair, frame)| (*pair, frame.seq));
        out
    }

    /// Number of live sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("shard lock").len()).sum()
    }

    /// Total queued frames across all sessions.
    pub fn queue_depth(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock().expect("shard lock").values().map(PairSession::queue_len).sum::<usize>()
            })
            .sum()
    }

    /// Folds every session's stats into one accumulator (shards locked
    /// one at a time).
    pub fn fold_stats<A>(&self, init: A, mut f: impl FnMut(A, PairId, &PairSession) -> A) -> A {
        let mut acc = init;
        for shard in &self.shards {
            let map = shard.lock().expect("shard lock");
            for (&pair, session) in map.iter() {
                acc = f(acc, pair, session);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_spread_over_shards() {
        let shards = ShardMap::new(8, SessionConfig::default(), None);
        let mut seen = std::collections::HashSet::new();
        for receiver in 0..8u32 {
            for sender in 0..8u32 {
                if receiver != sender {
                    seen.insert(shards.shard_of(PairId::new(receiver, sender)));
                }
            }
        }
        assert!(seen.len() >= 4, "56 pairs should touch most of 8 shards, got {}", seen.len());
    }

    #[test]
    fn shard_assignment_is_stable() {
        let a = ShardMap::new(16, SessionConfig::default(), None);
        let b = ShardMap::new(16, SessionConfig::default(), None);
        for receiver in 0..10u32 {
            for sender in 0..10u32 {
                let pair = PairId::new(receiver, sender);
                assert_eq!(a.shard_of(pair), b.shard_of(pair));
            }
        }
    }

    #[test]
    fn sessions_are_created_on_first_touch() {
        let shards = ShardMap::new(4, SessionConfig::default(), None);
        assert_eq!(shards.session_count(), 0);
        shards.with_session(PairId::new(0, 1), |_| ());
        shards.with_session(PairId::new(0, 1), |_| ());
        shards.with_session(PairId::new(1, 0), |_| ());
        assert_eq!(shards.session_count(), 2);
    }

    #[test]
    fn at_least_one_shard_even_when_asked_for_zero() {
        let shards = ShardMap::new(0, SessionConfig::default(), None);
        assert_eq!(shards.shard_count(), 1);
        shards.with_session(PairId::new(3, 4), |_| ());
        assert_eq!(shards.session_count(), 1);
    }
}

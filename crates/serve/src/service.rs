//! The pose service: batched admission, parallel recovery, full
//! observability.
//!
//! [`PoseService`] owns a [`ShardMap`] of sessions and one shared
//! [`BbAlign`] engine. The engine is `&self` throughout, so its bounded
//! `FftWorkspace` / stage-1 scratch pools (and the process-wide FFT plan
//! cache beneath them) are automatically *service-wide*: a thousand
//! sessions share one fixed set of scratch buffers instead of allocating
//! per pair.
//!
//! The service splits work into two non-blocking halves:
//!
//! * [`PoseService::submit`] — called from link threads; sheds or queues
//!   in O(1) under one shard lock and returns immediately;
//! * [`PoseService::process_batch`] — called from the compute loop;
//!   drains every session, sorts the batch by `(pair, seq)` and fans it
//!   out over `bba_par::par_map`. Each work item derives its RNG from
//!   `(service seed, pair, seq)`, so results are bit-identical at any
//!   thread count and independent of arrival interleaving — the same
//!   determinism contract the rest of the workspace pins.

use crate::session::{AdmitOutcome, FrameSubmission, PairId, SessionConfig, SessionStats};
use crate::shard::ShardMap;
use bb_align::{BbAlign, RecoverError, Recovery, RecoveryPath, TrackerConfig};
use bba_obs::Recorder;
use bba_place::{PlaceDescriptor, PlaceIndex, PlaceMatch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Candidate-pair gating policy: refuse pairwise recovery when the place
/// descriptors say the two vehicles do not see the same scene.
///
/// The gate **fails open**: a pair where either side has no descriptor
/// yet (no frame seen, or descriptors simply not published) is admitted
/// normally, so enabling gating can only *remove* hopeless work, never
/// starve a legitimate pair of its first recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Minimum descriptor cosine similarity (in `[0, 1]`) for a pair to
    /// be admitted. Pairs strictly below are shed as
    /// [`AdmitOutcome::ShedGated`].
    pub min_similarity: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { min_similarity: 0.5 }
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Per-session queue/staleness policy.
    pub session: SessionConfig,
    /// Number of session shards (locks).
    pub shards: usize,
    /// Maximum frames drained from one session per batch; 1 keeps every
    /// session's latency bounded under overload (fairness), larger values
    /// let backlogged sessions catch up faster.
    pub max_batch_per_session: usize,
    /// Seed mixed into every work item's RNG.
    pub seed: u64,
    /// Maintain a per-pair pose tracker and try the temporal warm start
    /// ([`BbAlign::recover_warm`]) before the cold pipeline. Predictions
    /// are read before the batch fans out and tracker updates are applied
    /// after it completes, in `(pair, seq)` order, so batches stay
    /// bit-identical at any thread count.
    pub warm_start: bool,
    /// Tracker tuning for the per-pair warm-start trackers (ignored when
    /// `warm_start` is off).
    pub tracker: TrackerConfig,
    /// Place-descriptor gating at admission; `None` (the default) admits
    /// every pair exactly as before gating existed.
    pub gate: Option<GateConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            session: SessionConfig::default(),
            shards: 16,
            max_batch_per_session: 1,
            seed: 0,
            warm_start: true,
            tracker: TrackerConfig::default(),
            gate: None,
        }
    }
}

/// The result of one batched recovery.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Which session produced it.
    pub pair: PairId,
    /// The frame's sequence number.
    pub seq: u64,
    /// The frame's capture timestamp (s).
    pub timestamp: f64,
    /// Wall-clock recovery latency (ms) — diagnostics only, never fed
    /// back into results.
    pub latency_ms: f64,
    /// Which route produced the result: verified warm start, cold
    /// fallback seeded by a losing prediction, or plain cold recovery.
    pub path: RecoveryPath,
    /// The recovery, or why it failed.
    pub result: Result<Recovery, RecoverError>,
}

/// Service-wide accounting, folded over every live session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Live sessions.
    pub sessions: u64,
    /// Frames offered across all sessions.
    pub submitted: u64,
    /// Frames handed to the compute pool.
    pub processed: u64,
    /// Frames shed for age.
    pub shed_stale: u64,
    /// Frames shed as duplicates.
    pub shed_duplicate: u64,
    /// Frames shed as superseded reorderings.
    pub shed_superseded: u64,
    /// Frames shed by queue overflow.
    pub shed_overflow: u64,
    /// Frames refused by the place-descriptor gate before reaching any
    /// session.
    pub shed_gated: u64,
    /// Frames currently queued.
    pub queued: u64,
}

impl ServiceStats {
    /// Total shed frames.
    pub fn shed_total(&self) -> u64 {
        self.shed_stale
            + self.shed_duplicate
            + self.shed_superseded
            + self.shed_overflow
            + self.shed_gated
    }

    /// The service-wide conservation invariant: every submitted frame is
    /// processed, shed (counted once), or still queued.
    pub fn is_conserved(&self) -> bool {
        self.submitted == self.processed + self.shed_total() + self.queued
    }
}

/// A fleet-scale pose service multiplexing pairwise recovery sessions.
#[derive(Debug)]
pub struct PoseService {
    engine: Arc<BbAlign>,
    shards: ShardMap,
    config: ServiceConfig,
    obs: Recorder,
    /// Latest place descriptor per vehicle, shared across every session.
    /// RwLock because `submit` only reads (similarity lookups) while
    /// descriptor publication writes; contention is one dot product long.
    place: RwLock<PlaceIndex>,
    /// Frames refused by the gate. Counted at the service level because
    /// gated frames never reach a session, so the per-session fold in
    /// [`PoseService::stats`] cannot see them.
    gated: AtomicU64,
}

/// Deterministic per-work-item RNG seed from (service seed, pair, seq):
/// splitmix64-style finalizer over the mixed words, so adjacent pairs and
/// sequence numbers land in unrelated streams.
fn item_seed(seed: u64, pair: PairId, seq: u64) -> u64 {
    let mut z = seed
        ^ ((pair.receiver as u64) << 32 | pair.sender as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ seq.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PoseService {
    /// Creates a service around a shared engine.
    pub fn new(engine: Arc<BbAlign>, config: ServiceConfig) -> Self {
        PoseService {
            shards: ShardMap::new(
                config.shards,
                config.session,
                config.warm_start.then_some(config.tracker),
            ),
            engine,
            config,
            obs: Recorder::disabled(),
            place: RwLock::new(PlaceIndex::new()),
            gated: AtomicU64::new(0),
        }
    }

    /// Installs an observability recorder (builder style). The service
    /// records admission/shed counters, queue-depth and session gauges,
    /// and a per-recovery latency histogram; none of it influences
    /// results. The place index shares the recorder, adding
    /// `place.query` spans and `place.queries` / `place.updates`
    /// counters.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.place.get_mut().expect("place index lock poisoned").set_recorder(recorder.clone());
        self.obs = recorder;
        self
    }

    /// The shared recovery engine.
    pub fn engine(&self) -> &Arc<BbAlign> {
        &self.engine
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Publishes `vehicle`'s latest place descriptor, making it visible
    /// to the admission gate and to [`PoseService::candidate_pairs`].
    /// Callers that already ran stage 1 should extract it from the
    /// existing MIM (see `BbAlign::place_descriptor`) — publication here
    /// is a write-locked upsert, no signal processing.
    pub fn update_descriptor(&self, vehicle: u32, descriptor: PlaceDescriptor) {
        self.place.write().expect("place index lock poisoned").update(vehicle, descriptor);
    }

    /// The `k` most plausible recovery partners for `receiver`, ranked by
    /// place-descriptor similarity. Empty when `receiver` has not
    /// published a descriptor yet.
    pub fn candidate_pairs(&self, receiver: u32, k: usize) -> Vec<PlaceMatch> {
        let place = self.place.read().expect("place index lock poisoned");
        match place.get(receiver) {
            Some(query) => place.top_k(query, k, Some(receiver)),
            None => Vec::new(),
        }
    }

    /// Offers a frame to `pair`'s session. Never blocks the caller: the
    /// frame is queued or shed in O(1) under one shard lock, and the
    /// outcome (including any overflow eviction it triggered) is counted
    /// in the metrics.
    ///
    /// With [`ServiceConfig::gate`] set, pairs whose published place
    /// descriptors fall below the similarity floor are refused here —
    /// before any session state is touched — as
    /// [`AdmitOutcome::ShedGated`]. Pairs the gate admits flow through
    /// the exact same session path as an ungated service, so admitted
    /// results are bit-identical with gating on or off.
    pub fn submit(&self, pair: PairId, frame: FrameSubmission, now: f64) -> AdmitOutcome {
        if let Some(gate) = &self.config.gate {
            let similarity = self
                .place
                .read()
                .expect("place index lock poisoned")
                .pair_similarity(pair.receiver, pair.sender);
            // Fail open: gate only when BOTH sides have descriptors.
            if let Some(s) = similarity {
                if s < gate.min_similarity {
                    self.gated.fetch_add(1, Ordering::Relaxed);
                    self.obs.incr("serve.submitted");
                    self.obs.incr("serve.shed_gated");
                    return AdmitOutcome::ShedGated;
                }
            }
        }
        let (outcome, overflowed) = self.shards.with_session(pair, |session| {
            let before = session.stats().shed_overflow;
            let outcome = session.admit(frame, now);
            (outcome, session.stats().shed_overflow - before)
        });
        self.obs.incr("serve.submitted");
        match outcome {
            AdmitOutcome::Admitted => self.obs.incr("serve.admitted"),
            AdmitOutcome::ShedStale => self.obs.incr("serve.shed_stale"),
            AdmitOutcome::ShedDuplicate => self.obs.incr("serve.shed_duplicate"),
            AdmitOutcome::ShedSuperseded => self.obs.incr("serve.shed_superseded"),
            // Sessions never gate; the gate returned above.
            AdmitOutcome::ShedGated => unreachable!("gating happens before session admission"),
        }
        if overflowed > 0 {
            self.obs.add("serve.shed_overflow", overflowed);
        }
        outcome
    }

    /// Drains every session and recovers the batch on the parallel pool.
    /// Returns outcomes sorted by `(pair, seq)`; results are
    /// deterministic for a given `(service seed, pair, seq)` regardless
    /// of thread count or arrival order.
    ///
    /// With [`ServiceConfig::warm_start`] on, each work item first tries
    /// its session tracker's prediction via [`BbAlign::recover_warm`].
    /// Predictions are snapshotted *before* the parallel fan-out (they are
    /// a function of previous batches only) and tracker updates are
    /// applied *after* it, serially in `(pair, seq)` order, so the warm
    /// path preserves the thread-count determinism contract.
    pub fn process_batch(&self, now: f64) -> Vec<RecoveryOutcome> {
        let batch = self.shards.drain_all(now, self.config.max_batch_per_session);
        let predictions: Vec<_> = if self.config.warm_start {
            batch
                .iter()
                .map(|(pair, frame)| {
                    self.shards.with_session(*pair, |s| s.warm_prediction(frame.timestamp))
                })
                .collect()
        } else {
            vec![None; batch.len()]
        };
        let seed = self.config.seed;
        let engine = &self.engine;
        let warm = self.config.warm_start;
        let items: Vec<_> = batch.iter().zip(&predictions).collect();
        let outcomes: Vec<RecoveryOutcome> = bba_par::par_map(&items, |((pair, frame), hint)| {
            let mut rng = StdRng::seed_from_u64(item_seed(seed, *pair, frame.seq));
            let start = Instant::now();
            let (path, result) = if warm {
                match engine.recover_warm(&frame.ego, &frame.other, hint.as_ref(), &mut rng) {
                    Ok(w) => (w.path, Ok(w.recovery)),
                    Err(e) => (
                        if hint.is_some() {
                            RecoveryPath::ColdFallback
                        } else {
                            RecoveryPath::Cold
                        },
                        Err(e),
                    ),
                }
            } else {
                (RecoveryPath::Cold, engine.recover(&frame.ego, &frame.other, &mut rng))
            };
            RecoveryOutcome {
                pair: *pair,
                seq: frame.seq,
                timestamp: frame.timestamp,
                latency_ms: start.elapsed().as_secs_f64() * 1e3,
                path,
                result,
            }
        });
        // Tracker updates happen on the coordinating thread, in batch
        // (pair, seq) order: a deterministic function of deterministic
        // outcomes, whatever the thread count was above.
        if warm {
            for outcome in &outcomes {
                if let Ok(recovery) = &outcome.result {
                    self.shards.with_session(outcome.pair, |s| {
                        s.observe_recovery(outcome.timestamp, recovery)
                    });
                }
            }
        }
        // Metrics are recorded from the coordinating thread, in batch
        // order, so snapshots are reproducible modulo the timings
        // themselves.
        self.obs.add("serve.processed", outcomes.len() as u64);
        for outcome in &outcomes {
            self.obs.observe("serve.recovery_ms", outcome.latency_ms);
            match outcome.path {
                RecoveryPath::WarmStart => {
                    self.obs.observe("serve.recovery_warm_ms", outcome.latency_ms)
                }
                _ => self.obs.observe("serve.recovery_cold_ms", outcome.latency_ms),
            }
            match &outcome.result {
                Ok(_) => self.obs.incr("serve.recovered"),
                Err(_) => self.obs.incr("serve.failed"),
            }
        }
        self.obs.gauge("serve.sessions", self.shards.session_count() as f64);
        self.obs.gauge("serve.queue_depth", self.shards.queue_depth() as f64);
        outcomes
    }

    /// Folds every session into service-wide accounting.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.shards.fold_stats(ServiceStats::default(), |mut acc, _, session| {
            let s: SessionStats = session.stats();
            acc.sessions += 1;
            acc.submitted += s.submitted;
            acc.processed += s.processed;
            acc.shed_stale += s.shed_stale;
            acc.shed_duplicate += s.shed_duplicate;
            acc.shed_superseded += s.shed_superseded;
            acc.shed_overflow += s.shed_overflow;
            acc.queued += session.queue_len() as u64;
            acc
        });
        // Gated frames were refused before any session saw them: account
        // for both the submission and the shed at the service level so
        // conservation still balances.
        let gated = self.gated.load(Ordering::Relaxed);
        stats.submitted += gated;
        stats.shed_gated = gated;
        // Gauges published here too, so callers that only snapshot after
        // a stats() call still see current depth.
        self.obs.gauge("serve.sessions", stats.sessions as f64);
        self.obs.gauge("serve.queue_depth", stats.queued as f64);
        stats.sessions = self.shards.session_count() as u64;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_align::{BbAlignConfig, PerceptionFrame};

    fn service(session: SessionConfig) -> PoseService {
        let engine = Arc::new(BbAlign::new(BbAlignConfig::test_small()));
        PoseService::new(
            engine,
            ServiceConfig {
                session,
                shards: 4,
                max_batch_per_session: 2,
                seed: 7,
                ..Default::default()
            },
        )
        .with_recorder(Recorder::enabled())
    }

    fn empty_frame(service: &PoseService) -> Arc<PerceptionFrame> {
        Arc::new(service.engine().frame_from_parts(std::iter::empty(), std::iter::empty()))
    }

    fn submission(frame: &Arc<PerceptionFrame>, seq: u64, timestamp: f64) -> FrameSubmission {
        FrameSubmission { seq, timestamp, ego: Arc::clone(frame), other: Arc::clone(frame) }
    }

    #[test]
    fn submissions_flow_through_to_batch_outcomes() {
        let svc = service(SessionConfig::default());
        let frame = empty_frame(&svc);
        for receiver in 0..3u32 {
            let pair = PairId::new(receiver, 9);
            assert_eq!(svc.submit(pair, submission(&frame, 0, 0.0), 0.0), AdmitOutcome::Admitted);
        }
        let outcomes = svc.process_batch(0.1);
        assert_eq!(outcomes.len(), 3);
        // Empty frames cannot recover, but orchestration still completes
        // and accounts for every frame.
        assert!(outcomes.iter().all(|o| o.result.is_err()));
        let stats = svc.stats();
        assert_eq!(stats.processed, 3);
        assert!(stats.is_conserved());
    }

    #[test]
    fn outcomes_are_sorted_and_deterministic_across_thread_counts() {
        let run = |threads: usize| {
            let svc = service(SessionConfig::default());
            let frame = empty_frame(&svc);
            // Submit in scrambled pair order.
            for &receiver in &[5u32, 1, 3, 2, 4] {
                svc.submit(PairId::new(receiver, 0), submission(&frame, 0, 0.0), 0.0);
            }
            let outcomes = bba_par::with_threads(threads, || svc.process_batch(0.0));
            outcomes.iter().map(|o| (o.pair, o.seq, o.result.clone())).collect::<Vec<_>>()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
        let pairs: Vec<u32> = serial.iter().map(|(p, _, _)| p.receiver).collect();
        assert_eq!(pairs, vec![1, 2, 3, 4, 5], "outcomes sorted by pair");
    }

    #[test]
    fn shed_frames_are_counted_in_the_snapshot() {
        let svc = service(SessionConfig { queue_capacity: 1, staleness: 1.0 });
        let frame = empty_frame(&svc);
        let pair = PairId::new(0, 1);
        svc.submit(pair, submission(&frame, 0, 0.0), 0.0); // admitted
        svc.submit(pair, submission(&frame, 0, 0.0), 0.0); // duplicate
        svc.submit(pair, submission(&frame, 1, 0.0), 0.0); // admitted, evicts seq 0
        svc.submit(pair, submission(&frame, 2, -5.0), 0.0); // stale
        let snap = svc.stats();
        assert_eq!(snap.shed_duplicate, 1);
        assert_eq!(snap.shed_overflow, 1);
        assert_eq!(snap.shed_stale, 1);
        assert!(snap.is_conserved());
        let metrics = svc.obs.snapshot();
        assert_eq!(metrics.counter("serve.submitted"), Some(4));
        assert_eq!(metrics.counter("serve.shed_duplicate"), Some(1));
        assert_eq!(metrics.counter("serve.shed_overflow"), Some(1));
        assert_eq!(metrics.counter("serve.shed_stale"), Some(1));
        assert_eq!(metrics.gauge("serve.queue_depth"), Some(1.0));
    }

    #[test]
    fn batch_records_latency_histogram_and_gauges() {
        let svc = service(SessionConfig::default());
        let frame = empty_frame(&svc);
        svc.submit(PairId::new(0, 1), submission(&frame, 0, 0.0), 0.0);
        svc.process_batch(0.0);
        let metrics = svc.obs.snapshot();
        let hist = metrics.value("serve.recovery_ms").expect("latency histogram");
        assert_eq!(hist.count, 1);
        assert!(hist.p99().is_some());
        assert_eq!(metrics.counter("serve.processed"), Some(1));
        assert_eq!(metrics.gauge("serve.sessions"), Some(1.0));
    }

    #[test]
    fn untrained_sessions_take_the_plain_cold_path() {
        // warm_start defaults on, but a session whose tracker never saw a
        // successful recovery has no prediction: every item must be plain
        // Cold (not ColdFallback) and the cold histogram must carry it.
        let svc = service(SessionConfig::default());
        let frame = empty_frame(&svc);
        svc.submit(PairId::new(0, 1), submission(&frame, 0, 0.0), 0.0);
        let outcomes = svc.process_batch(0.0);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].path, bb_align::RecoveryPath::Cold);
        let metrics = svc.obs.snapshot();
        assert_eq!(metrics.value("serve.recovery_cold_ms").map(|h| h.count), Some(1));
        assert!(metrics.value("serve.recovery_warm_ms").is_none());
    }

    fn descriptor(seed: u64) -> PlaceDescriptor {
        use bba_signal::{Grid, LogGaborConfig, MaxIndexMap};
        let mut img = Grid::new(32, 32, 0.0);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for _ in 0..30 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state as usize >> 3) % 32;
            let v = (state as usize >> 23) % 32;
            for d in 0..6usize.min(32 - u.max(v)) {
                img[(u + d, v)] = 5.0;
            }
        }
        let mim = MaxIndexMap::compute(&img, &LogGaborConfig::default());
        PlaceDescriptor::from_mim(&mim, &bba_place::PlaceConfig::default())
    }

    fn gated_service(min_similarity: f64) -> PoseService {
        let engine = Arc::new(BbAlign::new(BbAlignConfig::test_small()));
        PoseService::new(
            engine,
            ServiceConfig {
                shards: 4,
                seed: 7,
                gate: Some(GateConfig { min_similarity }),
                ..Default::default()
            },
        )
        .with_recorder(Recorder::enabled())
    }

    #[test]
    fn gate_fails_open_without_descriptors() {
        let svc = gated_service(1.1); // impossible floor: everything with descriptors gates
        let frame = empty_frame(&svc);
        // Neither side published: admitted.
        assert_eq!(
            svc.submit(PairId::new(0, 1), submission(&frame, 0, 0.0), 0.0),
            AdmitOutcome::Admitted
        );
        // Only one side published: still admitted.
        svc.update_descriptor(0, descriptor(1));
        assert_eq!(
            svc.submit(PairId::new(0, 1), submission(&frame, 1, 0.0), 0.0),
            AdmitOutcome::Admitted
        );
        // Both sides published, similarity < 1.1: gated.
        svc.update_descriptor(1, descriptor(2));
        assert_eq!(
            svc.submit(PairId::new(0, 1), submission(&frame, 2, 0.0), 0.0),
            AdmitOutcome::ShedGated
        );
        let stats = svc.stats();
        assert_eq!(stats.shed_gated, 1);
        assert!(stats.is_conserved(), "gated frames must stay in the conservation balance");
    }

    #[test]
    fn gating_conserves_across_mixed_traffic() {
        // submitted == processed + shed (incl. gated) + queued, with the
        // gate refusing dissimilar pairs and admitting identical ones.
        let svc = gated_service(0.99);
        let frame = empty_frame(&svc);
        let same = descriptor(3);
        svc.update_descriptor(0, same.clone());
        svc.update_descriptor(1, same); // pair (0,1): similarity 1.0, admitted
        svc.update_descriptor(2, descriptor(4));
        svc.update_descriptor(3, descriptor(5)); // pair (2,3): dissimilar, gated
        let mut admitted = 0u64;
        let mut gated = 0u64;
        for seq in 0..5u64 {
            for &(r, s) in &[(0u32, 1u32), (2, 3)] {
                match svc.submit(PairId::new(r, s), submission(&frame, seq, 0.0), 0.0) {
                    AdmitOutcome::Admitted => admitted += 1,
                    AdmitOutcome::ShedGated => gated += 1,
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }
        assert_eq!(gated, 5, "every (2,3) submission should gate");
        let processed = svc.process_batch(0.0).len() as u64;
        let stats = svc.stats();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.shed_gated, 5);
        assert_eq!(
            stats.submitted,
            processed + stats.shed_total() + stats.queued,
            "conservation: submitted == processed + shed + queued"
        );
        assert_eq!(admitted, 5, "every (0,1) submission should be admitted");
        let metrics = svc.obs.snapshot();
        assert_eq!(metrics.counter("serve.submitted"), Some(10));
        assert_eq!(metrics.counter("serve.shed_gated"), Some(5));
    }

    #[test]
    fn admitted_results_are_bit_identical_with_gating_on() {
        // The gate must only filter; anything admitted takes the exact
        // ungated path. Compare outcome-for-outcome against a gate-free
        // service.
        let run = |gate: Option<GateConfig>| {
            let engine = Arc::new(BbAlign::new(BbAlignConfig::test_small()));
            let svc = PoseService::new(
                engine,
                ServiceConfig { shards: 4, seed: 7, gate, ..Default::default() },
            );
            let d = descriptor(9);
            svc.update_descriptor(0, d.clone());
            svc.update_descriptor(1, d);
            let frame = empty_frame(&svc);
            svc.submit(PairId::new(0, 1), submission(&frame, 0, 0.25), 0.25);
            svc.process_batch(0.25)
                .into_iter()
                .map(|o| (o.pair, o.seq, o.path, o.result))
                .collect::<Vec<_>>()
        };
        let ungated = run(None);
        let gated = run(Some(GateConfig { min_similarity: 0.5 }));
        assert_eq!(ungated.len(), 1);
        assert_eq!(ungated, gated);
    }

    #[test]
    fn candidate_pairs_rank_by_descriptor_similarity() {
        let svc = gated_service(0.0);
        assert!(svc.candidate_pairs(0, 4).is_empty(), "no descriptor for the receiver yet");
        let d = descriptor(11);
        svc.update_descriptor(0, d.clone());
        svc.update_descriptor(1, d); // identical to receiver
        svc.update_descriptor(2, descriptor(12)); // different scene
        let ranked = svc.candidate_pairs(0, 4);
        assert_eq!(ranked.len(), 2, "the receiver itself is excluded");
        assert_eq!(ranked[0].vehicle, 1);
        assert!((ranked[0].similarity - 1.0).abs() < 1e-9);
        assert!(ranked[1].similarity <= ranked[0].similarity);
        assert!(ranked.iter().all(|m| m.vehicle != 0));
    }

    #[test]
    fn item_seeds_differ_across_pairs_and_seqs() {
        let a = item_seed(1, PairId::new(0, 1), 0);
        let b = item_seed(1, PairId::new(1, 0), 0);
        let c = item_seed(1, PairId::new(0, 1), 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}

//! Property-based tests for the session load-shedding policy.
//!
//! The service's contract with the link is: *never block, never lie about
//! what was dropped*. Under arbitrary interleavings of stale,
//! out-of-order, and duplicate frames a session must (1) resolve every
//! admission immediately (queue or shed — bounded queue, no waiting), (2)
//! never hand the compute pool a frame older than the staleness bound,
//! and (3) account for every shed frame exactly once, so that
//! `submitted == processed + shed + queued` at every instant.

use bb_align::{BbAlign, BbAlignConfig, PerceptionFrame};
use bba_serve::{AdmitOutcome, FrameSubmission, PairSession, SessionConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// One step of an adversarial link schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Offer a frame with this sequence number, captured `age` seconds
    /// before the current clock (stale when `age > staleness`).
    Submit { seq: u64, age: f64 },
    /// Advance the clock (frames age in the queue).
    Advance(f64),
    /// Drain up to `max` frames for processing.
    Drain { max: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Small seq range forces duplicates and reorderings; ages up to
        // 2 s straddle every staleness bound we generate.
        (0u64..12, 0.0..2.0f64).prop_map(|(seq, age)| Op::Submit { seq, age }),
        (0.0..0.6f64).prop_map(Op::Advance),
        (0usize..4).prop_map(|max| Op::Drain { max }),
    ]
}

fn shared_frame() -> Arc<PerceptionFrame> {
    let engine = BbAlign::new(BbAlignConfig::test_small());
    Arc::new(engine.frame_from_parts(std::iter::empty(), std::iter::empty()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn session_sheds_exactly_and_never_processes_stale_frames(
        ops in prop::collection::vec(op_strategy(), 1..80),
        queue_capacity in 1usize..5,
        staleness in 0.2..1.5f64,
    ) {
        let frame = shared_frame();
        let mut session = PairSession::new(SessionConfig { queue_capacity, staleness });
        let mut now = 0.0f64;
        let mut drained_seqs: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                Op::Submit { seq, age } => {
                    let outcome = session.admit(
                        FrameSubmission {
                            seq,
                            timestamp: now - age,
                            ego: Arc::clone(&frame),
                            other: Arc::clone(&frame),
                        },
                        now,
                    );
                    // An admission always resolves to exactly one of the
                    // four outcomes; a stale frame is never admitted.
                    if age > staleness {
                        prop_assert_eq!(outcome, AdmitOutcome::ShedStale);
                    }
                }
                Op::Advance(dt) => now += dt,
                Op::Drain { max } => {
                    let frames = session.drain_due(now, max);
                    prop_assert!(frames.len() <= max);
                    for f in &frames {
                        // (2) Nothing older than the staleness bound is
                        // ever processed.
                        prop_assert!(
                            now - f.timestamp <= staleness,
                            "processed a frame {:.3}s old with bound {:.3}s",
                            now - f.timestamp, staleness
                        );
                        drained_seqs.push(f.seq);
                    }
                }
            }
            // (1) The queue is bounded — an admission can never grow it
            // past capacity, i.e. nothing ever waits.
            prop_assert!(session.queue_len() <= queue_capacity);
            // (3) Conservation after *every* step: each submitted frame
            // is processed, counted in exactly one shed class, or queued.
            prop_assert!(
                session.is_conserved(),
                "conservation violated: {:?} with queue depth {}",
                session.stats(), session.queue_len()
            );
        }

        // Processed frames leave in strictly increasing sequence order:
        // admission rejects non-monotonic seqs and the queue is FIFO.
        for w in drained_seqs.windows(2) {
            prop_assert!(w[0] < w[1], "drained seqs out of order: {:?}", drained_seqs);
        }

        // Final accounting: the four shed classes partition the
        // non-processed, non-queued frames.
        let stats = session.stats();
        prop_assert_eq!(
            stats.submitted,
            stats.processed + stats.shed_total() + session.queue_len() as u64
        );
    }
}

//! Object detection substrate: a geometric pseudo-detector and the
//! AP@IoU evaluator behind the paper's Table I.
//!
//! The paper uses GPU neural detectors (PointPillars-based **F-Cooper** and
//! the attention-based **coBEVT**) as single-car detectors feeding stage 2.
//! Per the reproduction rules those are replaced by a *geometric* detector
//! ([`Detector`]) whose error statistics are the only thing stage 2
//! consumes: an object is detected when enough LiDAR returns hit it; the
//! reported box is the ground-truth box expressed in the sensor frame at
//! the moment the object was actually swept (so detections inherit the
//! scan's self-motion distortion), perturbed with model-profile-dependent
//! noise, plus false positives and confidence scores.
//!
//! [`DetectorModel::CoBevt`] and [`DetectorModel::FCooper`] differ in noise
//! and recall exactly as the paper's Fig. 13 requires ("the choice of model
//! plays a minor role").
//!
//! # Example
//!
//! ```
//! use bba_detect::{Detector, DetectorModel};
//! use bba_lidar::{LidarConfig, Scanner};
//! use bba_scene::{Scenario, ScenarioConfig, ScenarioPreset};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let scenario = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::Urban), 3);
//! let scanner = Scanner::new(LidarConfig::mid_res_32());
//! let mut rng = StdRng::seed_from_u64(5);
//! let scan = scanner.scan(scenario.world(), scenario.ego_trajectory(), 0.0,
//!                         scenario.ego_id(), &mut rng);
//! let detector = Detector::new(DetectorModel::CoBevt);
//! let detections = detector.detect(&scan, scenario.world(), scenario.ego_trajectory(),
//!                                  scenario.ego_id(), &mut rng);
//! assert!(!detections.is_empty());
//! ```

#![warn(missing_docs)]

pub mod ap;
pub mod detector;

pub use ap::{average_precision, evaluate_detections, ApResult, GroundTruthBox, RangeBand};
pub use detector::{Detection, Detector, DetectorModel};

//! The geometric pseudo-detector.

use bba_geometry::{Box3, Vec2, Vec3};
use bba_lidar::Scan;
use bba_scene::{GaussianSampler, ObstacleId, Trajectory, World};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Detection-model profiles mirroring the paper's two detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DetectorModel {
    /// coBEVT-like: higher recall, lower box noise (the paper's default).
    #[default]
    CoBevt,
    /// F-Cooper-like: earlier-generation profile with more box noise.
    FCooper,
}

/// Noise/recall constants of a profile.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Profile {
    /// Minimum LiDAR hits for a detection to be possible.
    min_hits: usize,
    /// Hits at which detection probability saturates.
    saturate_hits: f64,
    /// Peak detection probability.
    max_recall: f64,
    /// Base centre noise σ (m).
    center_sigma: f64,
    /// Extra centre noise per metre of range (m/m).
    center_sigma_per_m: f64,
    /// Yaw noise σ (rad).
    yaw_sigma: f64,
    /// Extent noise σ (fractional).
    extent_sigma: f64,
    /// Expected false positives per scan.
    false_positives: f64,
}

impl DetectorModel {
    fn profile(self) -> Profile {
        match self {
            DetectorModel::CoBevt => Profile {
                min_hits: 3,
                saturate_hits: 40.0,
                max_recall: 0.97,
                center_sigma: 0.12,
                center_sigma_per_m: 0.004,
                yaw_sigma: 0.03,
                extent_sigma: 0.04,
                false_positives: 0.5,
            },
            DetectorModel::FCooper => Profile {
                min_hits: 5,
                saturate_hits: 55.0,
                max_recall: 0.93,
                center_sigma: 0.2,
                center_sigma_per_m: 0.006,
                yaw_sigma: 0.05,
                extent_sigma: 0.07,
                false_positives: 1.0,
            },
        }
    }
}

/// A detected object: a 3-D box in the scan's sensor frame plus a
/// confidence score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Detected box in the sensor frame.
    pub box3: Box3,
    /// Confidence in `[0, 1]`.
    pub confidence: f64,
    /// Ground-truth identity (diagnostics only — `None` for false
    /// positives). A real detector does not output this; nothing in the
    /// BB-Align pipeline reads it.
    pub truth: Option<ObstacleId>,
}

/// The pseudo object detector.
///
/// See the [crate-level docs](crate) for the modelling rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detector {
    model: DetectorModel,
}

impl Detector {
    /// Creates a detector with the given model profile.
    pub fn new(model: DetectorModel) -> Self {
        Detector { model }
    }

    /// The model profile.
    pub fn model(&self) -> DetectorModel {
        self.model
    }

    /// Runs detection on a scan taken by `self_id` while moving along
    /// `trajectory` (both needed to reconstruct the instantaneous sensor
    /// frames that give detections their distortion-consistent positions).
    ///
    /// Returns boxes in the scan's nominal sensor frame.
    pub fn detect<R: Rng + ?Sized>(
        &self,
        scan: &Scan,
        world: &World,
        trajectory: &Trajectory,
        self_id: ObstacleId,
        rng: &mut R,
    ) -> Vec<Detection> {
        let p = self.model.profile();
        let mut gauss = GaussianSampler::new();
        let t0 = scan.timestamp();
        let pose0 = trajectory.pose_at(t0);
        let mut out = Vec::new();

        for (id, world_box) in world.vehicles_at(t0, Some(self_id)) {
            let hits = scan.hits_on(id);
            if hits < p.min_hits {
                continue;
            }
            // Detection probability rises with evidence and saturates.
            let evid = (hits as f64 / p.saturate_hits).min(1.0);
            let p_det = p.max_recall * evid.powf(0.25);
            if rng.random::<f64>() > p_det {
                continue;
            }
            // Express the box in the sensor frame *at the sweep time the
            // object was observed* — this bakes self-motion distortion into
            // the detection, as a real point-based detector would.
            let frac = scan.mean_sweep_frac(id).unwrap_or(0.0);
            let t_obs = t0 + frac * scan.config().scan_duration;
            let pose_obs = trajectory.pose_at(t_obs);
            let sensor_box = world_box.transformed(&pose_obs.inverse());

            let range = sensor_box.center.xy().norm();
            let sigma_c = p.center_sigma + p.center_sigma_per_m * range;
            let noisy = Box3::new(
                Vec3::new(
                    sensor_box.center.x + gauss.sample_scaled(rng, sigma_c),
                    sensor_box.center.y + gauss.sample_scaled(rng, sigma_c),
                    sensor_box.center.z,
                ),
                Vec3::new(
                    (sensor_box.extents.x * (1.0 + gauss.sample_scaled(rng, p.extent_sigma)))
                        .max(0.5),
                    (sensor_box.extents.y * (1.0 + gauss.sample_scaled(rng, p.extent_sigma)))
                        .max(0.5),
                    sensor_box.extents.z,
                ),
                sensor_box.yaw + gauss.sample_scaled(rng, p.yaw_sigma),
            );
            let confidence = (p_det * (0.85 + 0.15 * rng.random::<f64>())).clamp(0.05, 0.999);
            out.push(Detection { box3: noisy, confidence, truth: Some(id) });
        }

        // False positives: clutter boxes at random in-range positions.
        let n_fp = poisson_small(p.false_positives, rng);
        for _ in 0..n_fp {
            let range = rng.random_range(5.0..scan.config().max_range * 0.7);
            let bearing = rng.random_range(-std::f64::consts::PI..std::f64::consts::PI);
            let center = Vec2::from_angle(bearing) * range;
            let yaw = rng.random_range(-std::f64::consts::PI..std::f64::consts::PI);
            out.push(Detection {
                box3: Box3::new(Vec3::from_xy(center, 0.8), Vec3::new(4.2, 1.8, 1.6), yaw),
                confidence: rng.random_range(0.05..0.45),
                truth: None,
            });
        }
        let _ = pose0; // nominal frame is implicit: boxes relative to pose0
        out
    }
}

/// Small-λ Poisson sampler (inversion by sequential search).
fn poisson_small<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l || k > 50 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_lidar::{LidarConfig, Scanner};
    use bba_scene::{Scenario, ScenarioConfig, ScenarioPreset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scan_setup(seed: u64) -> (Scenario, Scan) {
        let scenario = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::Urban), seed);
        let scanner = Scanner::new(LidarConfig::test_coarse());
        let mut rng = StdRng::seed_from_u64(seed);
        let scan = scanner.scan(
            scenario.world(),
            scenario.ego_trajectory(),
            0.0,
            scenario.ego_id(),
            &mut rng,
        );
        (scenario, scan)
    }

    #[test]
    fn detects_nearby_vehicles() {
        let (scenario, scan) = scan_setup(1);
        let mut rng = StdRng::seed_from_u64(2);
        let dets = Detector::new(DetectorModel::CoBevt).detect(
            &scan,
            scenario.world(),
            scenario.ego_trajectory(),
            scenario.ego_id(),
            &mut rng,
        );
        let true_dets: Vec<_> = dets.iter().filter(|d| d.truth.is_some()).collect();
        assert!(!true_dets.is_empty(), "urban scene should yield detections");
        // The other agent car at 35 m should usually be detected.
        for d in &dets {
            assert!((0.0..=1.0).contains(&d.confidence));
        }
    }

    #[test]
    fn detection_positions_are_close_to_truth() {
        let (scenario, scan) = scan_setup(3);
        let mut rng = StdRng::seed_from_u64(4);
        let dets = Detector::new(DetectorModel::CoBevt).detect(
            &scan,
            scenario.world(),
            scenario.ego_trajectory(),
            scenario.ego_id(),
            &mut rng,
        );
        let ego_pose = scenario.ego_trajectory().pose_at(0.0);
        for d in dets.iter().filter(|d| d.truth.is_some()) {
            let id = d.truth.unwrap();
            let world_truth = scenario
                .world()
                .vehicles_at(0.0, None)
                .into_iter()
                .find(|(vid, _)| *vid == id)
                .unwrap()
                .1;
            let det_world = d.box3.transformed(&ego_pose);
            let err = det_world.center.xy().distance(world_truth.center.xy());
            // Noise + distortion stays bounded (ego at 8 m/s → ≤ ~0.8 m
            // distortion plus ≤ ~1 m of detector noise).
            assert!(err < 3.0, "detection {err} m from truth");
        }
    }

    #[test]
    fn fcooper_is_noisier_than_cobevt() {
        // Aggregate centre error across many seeds.
        let mut errs = std::collections::HashMap::new();
        for model in [DetectorModel::CoBevt, DetectorModel::FCooper] {
            let mut total = 0.0;
            let mut count = 0usize;
            for seed in 0..8 {
                let (scenario, scan) = scan_setup(seed);
                let mut rng = StdRng::seed_from_u64(100 + seed);
                let dets = Detector::new(model).detect(
                    &scan,
                    scenario.world(),
                    scenario.ego_trajectory(),
                    scenario.ego_id(),
                    &mut rng,
                );
                let ego_pose = scenario.ego_trajectory().pose_at(0.0);
                for d in dets.iter().filter(|d| d.truth.is_some()) {
                    let id = d.truth.unwrap();
                    if let Some((_, world_truth)) = scenario
                        .world()
                        .vehicles_at(0.0, None)
                        .into_iter()
                        .find(|(vid, _)| *vid == id)
                    {
                        let det_world = d.box3.transformed(&ego_pose);
                        total += det_world.center.xy().distance(world_truth.center.xy());
                        count += 1;
                    }
                }
            }
            errs.insert(format!("{model:?}"), total / count.max(1) as f64);
        }
        assert!(
            errs["FCooper"] > errs["CoBevt"] * 0.9,
            "expected FCooper ≥ CoBevt noise: {errs:?}"
        );
    }

    #[test]
    fn far_unhit_vehicles_are_missed() {
        let (scenario, scan) = scan_setup(5);
        let mut rng = StdRng::seed_from_u64(6);
        let dets = Detector::new(DetectorModel::CoBevt).detect(
            &scan,
            scenario.world(),
            scenario.ego_trajectory(),
            scenario.ego_id(),
            &mut rng,
        );
        for d in dets.iter().filter(|d| d.truth.is_some()) {
            let hits = scan.hits_on(d.truth.unwrap());
            // CoBevt's profile floors detection at min_hits = 3; anything
            // below that must be missed regardless of the recall draw.
            assert!(hits >= 3, "detected object with only {hits} hits");
        }
    }

    #[test]
    fn poisson_sampler_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| poisson_small(1.5, &mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 1.5).abs() < 0.1, "mean {mean}");
        assert_eq!(poisson_small(0.0, &mut rng), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (scenario, scan) = scan_setup(9);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            Detector::new(DetectorModel::CoBevt).detect(
                &scan,
                scenario.world(),
                scenario.ego_trajectory(),
                scenario.ego_id(),
                &mut rng,
            )
        };
        assert_eq!(run(42), run(42));
    }
}

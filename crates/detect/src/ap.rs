//! Average Precision (AP@IoU) evaluation for BEV object detection.
//!
//! This is the metric of the paper's Table I: detections are greedily
//! matched to ground truth in descending confidence order; a detection is a
//! true positive when its BEV IoU with an unmatched ground-truth box
//! reaches the threshold (0.5 / 0.7). AP is the area under the
//! interpolated precision-recall curve (all-point interpolation).
//! Range bands (`0–30`, `30–50`, `50–100` m) restrict both ground truth and
//! detections by distance from the ego sensor.

use crate::detector::Detection;
use bba_geometry::Box3;
use serde::{Deserialize, Serialize};

/// A ground-truth object for evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthBox {
    /// The true box, in the same frame as the detections being evaluated.
    pub box3: Box3,
}

/// A distance band `[min, max)` from the ego sensor, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeBand {
    /// Inclusive lower bound (m).
    pub min: f64,
    /// Exclusive upper bound (m).
    pub max: f64,
}

impl RangeBand {
    /// The paper's Table I bands plus "Overall".
    pub fn table1_bands() -> [(&'static str, RangeBand); 4] {
        [
            ("Overall", RangeBand { min: 0.0, max: 100.0 }),
            ("0-30m", RangeBand { min: 0.0, max: 30.0 }),
            ("30-50m", RangeBand { min: 30.0, max: 50.0 }),
            ("50-100m", RangeBand { min: 50.0, max: 100.0 }),
        ]
    }

    /// True when a box centre falls inside the band.
    pub fn contains(&self, b: &Box3) -> bool {
        let r = b.center.xy().norm();
        r >= self.min && r < self.max
    }
}

/// Result of an AP evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApResult {
    /// Average precision in `[0, 1]`.
    pub ap: f64,
    /// Number of true positives at the end of the sweep.
    pub true_positives: usize,
    /// Number of false positives.
    pub false_positives: usize,
    /// Number of ground-truth boxes considered.
    pub ground_truth: usize,
}

/// Accumulates detections/ground truth over many frames, then computes AP.
///
/// # Example
///
/// ```
/// use bba_detect::{average_precision, Detection, GroundTruthBox};
/// use bba_geometry::{Box3, Vec3};
///
/// let gt_box = Box3::new(Vec3::new(10.0, 0.0, 0.8), Vec3::new(4.5, 1.9, 1.6), 0.0);
/// let gt = vec![GroundTruthBox { box3: gt_box }];
/// let dets = vec![Detection { box3: gt_box, confidence: 0.9, truth: None }];
/// let r = average_precision(&[(dets, gt)], 0.5);
/// assert_eq!(r.ap, 1.0);
/// ```
pub fn average_precision(
    frames: &[(Vec<Detection>, Vec<GroundTruthBox>)],
    iou_threshold: f64,
) -> ApResult {
    // Collect per-detection (confidence, is_tp) over all frames.
    let mut scored: Vec<(f64, bool)> = Vec::new();
    let mut total_gt = 0usize;

    for (dets, gts) in frames {
        total_gt += gts.len();
        let mut taken = vec![false; gts.len()];
        // Descending confidence within the frame.
        let mut order: Vec<usize> = (0..dets.len()).collect();
        order.sort_by(|&a, &b| dets[b].confidence.total_cmp(&dets[a].confidence));
        for &di in &order {
            let det = &dets[di];
            let mut best_iou = 0.0;
            let mut best_j = None;
            for (j, gt) in gts.iter().enumerate() {
                if taken[j] {
                    continue;
                }
                let iou = det.box3.bev_iou(&gt.box3);
                if iou > best_iou {
                    best_iou = iou;
                    best_j = Some(j);
                }
            }
            if best_iou >= iou_threshold {
                taken[best_j.unwrap()] = true;
                scored.push((det.confidence, true));
            } else {
                scored.push((det.confidence, false));
            }
        }
    }

    if total_gt == 0 {
        return ApResult {
            ap: 0.0,
            true_positives: 0,
            false_positives: scored.len(),
            ground_truth: 0,
        };
    }

    // Global descending-confidence sweep.
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut recalls = Vec::with_capacity(scored.len());
    let mut precisions = Vec::with_capacity(scored.len());
    for &(_, is_tp) in &scored {
        if is_tp {
            tp += 1;
        } else {
            fp += 1;
        }
        recalls.push(tp as f64 / total_gt as f64);
        precisions.push(tp as f64 / (tp + fp) as f64);
    }

    // All-point interpolation: make precision monotone non-increasing from
    // the right, then integrate over recall steps.
    for i in (0..precisions.len().saturating_sub(1)).rev() {
        if precisions[i] < precisions[i + 1] {
            precisions[i] = precisions[i + 1];
        }
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for i in 0..recalls.len() {
        ap += (recalls[i] - prev_recall) * precisions[i];
        prev_recall = recalls[i];
    }

    ApResult { ap, true_positives: tp, false_positives: fp, ground_truth: total_gt }
}

/// Band-filtered AP: keeps only detections and ground truth whose centres
/// fall in `band`, then evaluates.
pub fn evaluate_detections(
    frames: &[(Vec<Detection>, Vec<GroundTruthBox>)],
    iou_threshold: f64,
    band: RangeBand,
) -> ApResult {
    let filtered: Vec<(Vec<Detection>, Vec<GroundTruthBox>)> = frames
        .iter()
        .map(|(dets, gts)| {
            (
                dets.iter().filter(|d| band.contains(&d.box3)).copied().collect(),
                gts.iter().filter(|g| band.contains(&g.box3)).copied().collect(),
            )
        })
        .collect();
    average_precision(&filtered, iou_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_geometry::Vec3;

    fn car_at(x: f64, y: f64) -> Box3 {
        Box3::new(Vec3::new(x, y, 0.8), Vec3::new(4.5, 1.9, 1.6), 0.0)
    }

    fn det(b: Box3, conf: f64) -> Detection {
        Detection { box3: b, confidence: conf, truth: None }
    }

    #[test]
    fn perfect_detections_have_unit_ap() {
        let gts = vec![
            GroundTruthBox { box3: car_at(10.0, 0.0) },
            GroundTruthBox { box3: car_at(20.0, 5.0) },
        ];
        let dets = vec![det(car_at(10.0, 0.0), 0.9), det(car_at(20.0, 5.0), 0.8)];
        let r = average_precision(&[(dets, gts)], 0.7);
        assert!((r.ap - 1.0).abs() < 1e-12);
        assert_eq!(r.true_positives, 2);
        assert_eq!(r.false_positives, 0);
    }

    #[test]
    fn missed_objects_cap_recall() {
        let gts = vec![
            GroundTruthBox { box3: car_at(10.0, 0.0) },
            GroundTruthBox { box3: car_at(50.0, 0.0) },
        ];
        let dets = vec![det(car_at(10.0, 0.0), 0.9)];
        let r = average_precision(&[(dets, gts)], 0.5);
        assert!((r.ap - 0.5).abs() < 1e-12);
    }

    #[test]
    fn false_positives_reduce_precision() {
        let gts = vec![GroundTruthBox { box3: car_at(10.0, 0.0) }];
        // FP ranked above the TP: precision at the TP is 1/2.
        let dets = vec![det(car_at(40.0, 20.0), 0.95), det(car_at(10.0, 0.0), 0.9)];
        let r = average_precision(&[(dets, gts)], 0.5);
        assert!((r.ap - 0.5).abs() < 1e-12);
        // FP ranked below the TP: AP stays 1.0.
        let gts = vec![GroundTruthBox { box3: car_at(10.0, 0.0) }];
        let dets = vec![det(car_at(40.0, 20.0), 0.3), det(car_at(10.0, 0.0), 0.9)];
        let r = average_precision(&[(dets, gts)], 0.5);
        assert!((r.ap - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_box_fails_high_iou_threshold() {
        let gts = vec![GroundTruthBox { box3: car_at(10.0, 0.0) }];
        // 1 m lateral shift: IoU ≈ 0.31 — TP at 0.3 threshold, FP at 0.5.
        let dets = vec![det(car_at(10.0, 1.0), 0.9)];
        let r_lo = average_precision(&[(dets.clone(), gts.clone())], 0.3);
        let r_hi = average_precision(&[(dets, gts)], 0.5);
        assert_eq!(r_lo.true_positives, 1);
        assert_eq!(r_hi.true_positives, 0);
    }

    #[test]
    fn duplicate_detections_count_once() {
        let gts = vec![GroundTruthBox { box3: car_at(10.0, 0.0) }];
        let dets = vec![det(car_at(10.0, 0.0), 0.9), det(car_at(10.0, 0.05), 0.85)];
        let r = average_precision(&[(dets, gts)], 0.5);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 1);
    }

    #[test]
    fn multi_frame_accumulation() {
        let f1 =
            (vec![det(car_at(10.0, 0.0), 0.9)], vec![GroundTruthBox { box3: car_at(10.0, 0.0) }]);
        let f2 = (Vec::new(), vec![GroundTruthBox { box3: car_at(15.0, 0.0) }]);
        let r = average_precision(&[f1, f2], 0.5);
        assert_eq!(r.ground_truth, 2);
        assert!((r.ap - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ground_truth_gives_zero_ap() {
        let r = average_precision(&[(vec![det(car_at(1.0, 0.0), 0.5)], Vec::new())], 0.5);
        assert_eq!(r.ap, 0.0);
        assert_eq!(r.ground_truth, 0);
    }

    #[test]
    fn range_bands_partition() {
        let bands = RangeBand::table1_bands();
        let near = car_at(10.0, 0.0);
        let mid = car_at(40.0, 0.0);
        let far = car_at(70.0, 0.0);
        assert!(bands[1].1.contains(&near) && !bands[1].1.contains(&mid));
        assert!(bands[2].1.contains(&mid) && !bands[2].1.contains(&far));
        assert!(bands[3].1.contains(&far));
        for b in [near, mid, far] {
            assert!(bands[0].1.contains(&b));
        }
    }

    #[test]
    fn band_filtering_restricts_evaluation() {
        let gts = vec![
            GroundTruthBox { box3: car_at(10.0, 0.0) },
            GroundTruthBox { box3: car_at(60.0, 0.0) },
        ];
        let dets = vec![det(car_at(10.0, 0.0), 0.9)];
        let near = evaluate_detections(
            &[(dets.clone(), gts.clone())],
            0.5,
            RangeBand { min: 0.0, max: 30.0 },
        );
        assert!((near.ap - 1.0).abs() < 1e-12);
        let far = evaluate_detections(&[(dets, gts)], 0.5, RangeBand { min: 50.0, max: 100.0 });
        assert_eq!(far.ap, 0.0);
        assert_eq!(far.ground_truth, 1);
    }
}

//! Property-based tests for the AP evaluator.

use bba_detect::{average_precision, Detection, GroundTruthBox};
use bba_geometry::{Box3, Vec3};
use proptest::prelude::*;

fn car_at(x: f64, y: f64, yaw: f64) -> Box3 {
    Box3::new(Vec3::new(x, y, 0.8), Vec3::new(4.5, 1.9, 1.6), yaw)
}

fn any_cars(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Box3>> {
    proptest::collection::vec(
        (-60.0..60.0f64, -60.0..60.0f64, -3.0..3.0f64).prop_map(|(x, y, yaw)| car_at(x, y, yaw)),
        n,
    )
}

proptest! {
    #[test]
    fn ap_is_bounded(gt in any_cars(0..8), extra in any_cars(0..5),
                     confs in proptest::collection::vec(0.01..1.0f64, 13)) {
        // Detections: all GT boxes plus noise boxes, arbitrary confidences.
        let mut dets = Vec::new();
        for (i, b) in gt.iter().chain(extra.iter()).enumerate() {
            dets.push(Detection { box3: *b, confidence: confs[i % confs.len()], truth: None });
        }
        let gts: Vec<GroundTruthBox> = gt.iter().map(|&b| GroundTruthBox { box3: b }).collect();
        let r = average_precision(&[(dets, gts)], 0.5);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r.ap));
        prop_assert!(r.true_positives <= gt.len());
    }

    #[test]
    fn perfect_detection_of_disjoint_gt_is_ap_one(gt in any_cars(1..8)) {
        // Keep only mutually disjoint ground-truth boxes.
        let mut disjoint: Vec<Box3> = Vec::new();
        for b in gt {
            if disjoint.iter().all(|d| d.bev_iou(&b) < 1e-9) {
                disjoint.push(b);
            }
        }
        let dets: Vec<Detection> = disjoint
            .iter()
            .map(|&b| Detection { box3: b, confidence: 0.9, truth: None })
            .collect();
        let gts: Vec<GroundTruthBox> =
            disjoint.iter().map(|&b| GroundTruthBox { box3: b }).collect();
        let r = average_precision(&[(dets, gts)], 0.7);
        prop_assert!((r.ap - 1.0).abs() < 1e-9);
        prop_assert_eq!(r.false_positives, 0);
    }

    #[test]
    fn stricter_iou_never_raises_ap(gt in any_cars(1..6), jitter in -1.0..1.0f64) {
        let dets: Vec<Detection> = gt
            .iter()
            .map(|b| Detection {
                box3: car_at(b.center.x + jitter, b.center.y, b.yaw),
                confidence: 0.8,
                truth: None,
            })
            .collect();
        let gts: Vec<GroundTruthBox> = gt.iter().map(|&b| GroundTruthBox { box3: b }).collect();
        let lo = average_precision(&[(dets.clone(), gts.clone())], 0.3).ap;
        let hi = average_precision(&[(dets, gts)], 0.7).ap;
        prop_assert!(hi <= lo + 1e-12, "AP@0.7 ({hi}) exceeded AP@0.3 ({lo})");
    }

    #[test]
    fn adding_false_positives_never_raises_ap(gt in any_cars(1..6), fp in any_cars(1..6)) {
        let base: Vec<Detection> = gt
            .iter()
            .map(|&b| Detection { box3: b, confidence: 0.9, truth: None })
            .collect();
        let gts: Vec<GroundTruthBox> = gt.iter().map(|&b| GroundTruthBox { box3: b }).collect();
        // Only count fp boxes that don't overlap any gt (true clutter), and
        // rank them above everything so they must hurt.
        let clutter: Vec<Detection> = fp
            .iter()
            .filter(|f| gt.iter().all(|g| g.bev_iou(f) < 0.05))
            .map(|&b| Detection { box3: b, confidence: 0.95, truth: None })
            .collect();
        prop_assume!(!clutter.is_empty());
        let clean = average_precision(&[(base.clone(), gts.clone())], 0.5).ap;
        let mut noisy_dets = base;
        noisy_dets.extend(clutter);
        let noisy = average_precision(&[(noisy_dets, gts)], 0.5).ap;
        prop_assert!(noisy <= clean + 1e-12);
    }
}

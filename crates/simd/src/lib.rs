//! Runtime-dispatched SIMD kernels for BB-Align's stage-1 hot path.
//!
//! Every kernel exists twice: a **portable** scalar implementation
//! ([`portable`]) that is the bit-exact reference, and an **AVX2**
//! implementation ([`avx2`], `x86_64` only) selected at runtime behind
//! `is_x86_feature_detected!`. The public free functions dispatch once per
//! call on a cached [`Dispatch`] value, so callers never need `cfg` or
//! `unsafe`.
//!
//! # Bit-identity contract
//!
//! The repo-wide discipline (see DESIGN.md) is that serial, parallel and
//! vectorised runs produce **bit-identical** results. The AVX2 kernels
//! uphold it by construction:
//!
//! * **No FMA.** A fused multiply-add rounds once where the scalar code
//!   rounds twice; every vector multiply and add here is a separate,
//!   individually rounded instruction, exactly like the scalar source.
//! * **Elementwise ops are order-preserving.** Complex multiply, `|x|`,
//!   compare-and-blend max and the butterfly update touch each element
//!   independently, so lane width cannot change any intermediate value.
//! * **Reductions keep the scalar association.** [`dot_f32`] reuses the
//!   matcher's fixed 4-lane blocking: a 128-bit `f32x4` accumulator
//!   performs *the same* four running sums as the scalar `acc[0..4]`
//!   pattern, combined in the same `(acc0+acc1)+(acc2+acc3)` order.
//!   (A 256-bit 8-lane accumulator would *not* be bit-identical, which is
//!   why the dot kernel deliberately stays at 128 bits.)
//!
//! The `equivalence` proptests compare every AVX2 kernel against its
//! portable twin at the `to_bits` level on randomised inputs.
//!
//! # Dispatch override
//!
//! Set `BBA_SIMD=portable` to force the scalar path (useful to measure
//! vector speedup or to reproduce portable behaviour on an AVX2 host), or
//! `BBA_SIMD=avx2` to insist on AVX2 (falls back to portable with no error
//! if the CPU lacks it). The choice is made once per process and surfaced
//! via [`active`] / [`name`] so benches and metrics can record it.

#![warn(missing_docs)]

pub mod portable;

#[cfg(target_arch = "x86_64")]
pub mod avx2;

use std::sync::OnceLock;

/// Which kernel family the process is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// 256-bit AVX2 kernels (x86_64, detected at runtime).
    Avx2,
    /// Portable scalar kernels — the bit-exact reference.
    Portable,
}

impl Dispatch {
    /// Stable lowercase label (`"avx2"` / `"portable"`) for logs, bench
    /// headers and metrics.
    pub const fn name(self) -> &'static str {
        match self {
            Dispatch::Avx2 => "avx2",
            Dispatch::Portable => "portable",
        }
    }
}

/// Whether the CPU supports AVX2 (independent of any `BBA_SIMD` override).
pub fn avx2_detected() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The dispatch decision for this process: AVX2 when detected, unless
/// overridden via the `BBA_SIMD` environment variable (read once).
pub fn active() -> Dispatch {
    static ACTIVE: OnceLock<Dispatch> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let detected = avx2_detected();
        match std::env::var("BBA_SIMD").as_deref() {
            Ok("portable") => Dispatch::Portable,
            Ok("avx2") if detected => Dispatch::Avx2,
            Ok("avx2") => Dispatch::Portable, // requested but unavailable
            _ if detected => Dispatch::Avx2,
            _ => Dispatch::Portable,
        }
    })
}

/// Label of the active dispatch (`"avx2"` / `"portable"`).
pub fn name() -> &'static str {
    active().name()
}

#[cfg(target_arch = "x86_64")]
macro_rules! dispatch {
    ($name:ident($($arg:expr),*)) => {
        match active() {
            // SAFETY: `active()` returns `Avx2` only when
            // `is_x86_feature_detected!("avx2")` reported support.
            Dispatch::Avx2 => unsafe { avx2::$name($($arg),*) },
            Dispatch::Portable => portable::$name($($arg),*),
        }
    };
}

#[cfg(not(target_arch = "x86_64"))]
macro_rules! dispatch {
    ($name:ident($($arg:expr),*)) => {{
        let _ = active();
        portable::$name($($arg),*)
    }};
}

/// Elementwise complex multiply over interleaved `[re, im, re, im, …]`
/// buffers: `dst[k] = a[k] * b[k]` with the textbook
/// `(ar·br − ai·bi, ai·br + ar·bi)` rounding (no FMA).
///
/// # Panics
///
/// Panics if the three slices differ in length or the length is odd.
pub fn cmul(dst: &mut [f64], a: &[f64], b: &[f64]) {
    assert!(dst.len() == a.len() && dst.len() == b.len(), "cmul length mismatch");
    assert_eq!(dst.len() % 2, 0, "cmul needs interleaved complex data");
    dispatch!(cmul(dst, a, b))
}

/// One radix-2 butterfly pass over a split block: for `k` in
/// `0..lo.len()/2` (complex elements), with `w = twiddles[k·stride]`,
///
/// ```text
/// b     = hi[k] · w
/// lo[k] = lo[k] + b
/// hi[k] = lo[k] − b      (original lo[k])
/// ```
///
/// All slices are interleaved complex; `stride` counts complex elements in
/// `twiddles`.
///
/// # Panics
///
/// Panics if `lo`/`hi` differ in length, the length is odd, or `twiddles`
/// is too short for the strided accesses.
pub fn butterfly(lo: &mut [f64], hi: &mut [f64], twiddles: &[f64], stride: usize) {
    assert_eq!(lo.len(), hi.len(), "butterfly half length mismatch");
    assert_eq!(lo.len() % 2, 0, "butterfly needs interleaved complex data");
    let half = lo.len() / 2;
    assert!(half == 0 || (half - 1) * stride * 2 + 1 < twiddles.len(), "twiddle table too short");
    dispatch!(butterfly(lo, hi, twiddles, stride))
}

/// [`butterfly`] over a *pair* of interleaved streams: element `k` is two
/// adjacent complexes `[c0, c1]` (4 `f64`s) sharing one twiddle — the
/// layout of the paired-column 2-D FFT pass. The portable path applies the
/// scalar butterfly to `c0` then `c1`, so per stream the arithmetic is
/// identical to transforming each column alone.
///
/// # Panics
///
/// Panics if `lo`/`hi` differ in length, the length is not a multiple of
/// 4, or `twiddles` is too short.
pub fn butterfly_x2(lo: &mut [f64], hi: &mut [f64], twiddles: &[f64], stride: usize) {
    assert_eq!(lo.len(), hi.len(), "butterfly_x2 half length mismatch");
    assert_eq!(lo.len() % 4, 0, "butterfly_x2 needs paired complex data");
    let half = lo.len() / 4;
    assert!(half == 0 || (half - 1) * stride * 2 + 1 < twiddles.len(), "twiddle table too short");
    dispatch!(butterfly_x2(lo, hi, twiddles, stride))
}

/// One whole radix-2 butterfly level over contiguous transform blocks:
/// `x` (interleaved complex) tiles into blocks of `2·half` complexes, and
/// each block's halves get the [`butterfly`] update with the same twiddle
/// table. Hoisting the block loop into the kernel makes one 1-D transform
/// cost `log₂ N` dispatched calls instead of one per block — at the early
/// levels (hundreds of one-complex blocks) the per-call overhead would
/// otherwise dominate the arithmetic. Since blocks tile any multiple of the
/// transform length, a batch of same-length transforms over a contiguous
/// buffer (e.g. every row of a 2-D pass) is also one call per level.
///
/// # Panics
///
/// Panics if `half == 0`, `x.len()` is not a multiple of `4·half`, or
/// `twiddles` is too short for the strided accesses.
pub fn fft_pass(x: &mut [f64], twiddles: &[f64], half: usize, stride: usize) {
    assert!(half >= 1, "fft_pass needs half >= 1");
    assert_eq!(x.len() % (4 * half), 0, "fft_pass buffer must tile into blocks");
    assert!((half - 1) * stride * 2 + 1 < twiddles.len(), "twiddle table too short");
    dispatch!(fft_pass(x, twiddles, half, stride))
}

/// [`fft_pass`] over paired interleaved streams: blocks of `2·half`
/// stream-pairs (`8·half` `f64`s), each through the [`butterfly_x2`]
/// update — one call per level of a paired-column transform.
///
/// # Panics
///
/// Panics if `half == 0`, `x.len()` is not a multiple of `8·half`, or
/// `twiddles` is too short for the strided accesses.
pub fn fft_pass_x2(x: &mut [f64], twiddles: &[f64], half: usize, stride: usize) {
    assert!(half >= 1, "fft_pass_x2 needs half >= 1");
    assert_eq!(x.len() % (8 * half), 0, "fft_pass_x2 buffer must tile into blocks");
    assert!((half - 1) * stride * 2 + 1 < twiddles.len(), "twiddle table too short");
    dispatch!(fft_pass_x2(x, twiddles, half, stride))
}

/// Scale-pair amplitude accumulation, the Log-Gabor per-orientation inner
/// loop: per pixel `i` with packed response `z[i]` (interleaved complex),
///
/// * `init && both` → `acc[i] = |re·scale| + |im·scale|`
/// * `init && !both` → `acc[i] = |re·scale|`
/// * `!init && both` → `acc[i] = (acc[i] + |re·scale|) + |im·scale|`
/// * `!init && !both` → `acc[i] = acc[i] + |re·scale|`
///
/// exactly the four arms (and add order) of the scalar accumulation in
/// `bba-signal`.
///
/// # Panics
///
/// Panics if `z.len() != 2 * acc.len()`.
pub fn amp_accumulate(acc: &mut [f64], z: &[f64], scale: f64, both: bool, init: bool) {
    assert_eq!(z.len(), 2 * acc.len(), "amp_accumulate length mismatch");
    dispatch!(amp_accumulate(acc, z, scale, both, init))
}

/// Fused final-scale amplitude + running argmax update (the fused-MIM
/// kernel): per pixel `i`, the orientation amplitude `a` is completed from
/// the packed response `z[i]` (plus the `partial` accumulator when the
/// orientation had earlier scale pairs, same add order as
/// [`amp_accumulate`]), then folded into the running maximum with strict
/// `>`, so earlier orientations win ties:
///
/// ```text
/// if a > max_amp[i] { max_amp[i] = a; max_idx[i] = o; }
/// ```
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn amp_max_fold(
    max_amp: &mut [f64],
    max_idx: &mut [u8],
    z: &[f64],
    scale: f64,
    both: bool,
    partial: Option<&[f64]>,
    o: u8,
) {
    assert_eq!(z.len(), 2 * max_amp.len(), "amp_max_fold length mismatch");
    assert_eq!(max_amp.len(), max_idx.len(), "amp_max_fold index length mismatch");
    if let Some(p) = partial {
        assert_eq!(p.len(), max_amp.len(), "amp_max_fold partial length mismatch");
    }
    dispatch!(amp_max_fold(max_amp, max_idx, z, scale, both, partial, o))
}

/// Merges a candidate (amplitude, index) map into the running one with
/// strict `>` — the serial cross-lane step of the fused MIM. Candidate
/// lanes must be merged in ascending orientation order for first-index-wins
/// tie-breaking to match the serial argmax scan.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn max_merge(amp: &mut [f64], idx: &mut [u8], cand_amp: &[f64], cand_idx: &[u8]) {
    assert!(
        amp.len() == idx.len() && amp.len() == cand_amp.len() && amp.len() == cand_idx.len(),
        "max_merge length mismatch"
    );
    dispatch!(max_merge(amp, idx, cand_amp, cand_idx))
}

/// Dot product of two `f32` descriptor rows with the matcher's fixed
/// 4-lane blocking: four running sums over strided elements, combined as
/// `(acc0 + acc1) + (acc2 + acc3)`, then a scalar tail. The AVX2 path uses
/// a single 128-bit `f32x4` accumulator, which performs the identical
/// per-lane sums.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_f32 length mismatch");
    dispatch!(dot_f32(a, b))
}

/// Per-hypothesis soft-bin lookup table: for every raw MIM orientation
/// index `r` in `0..n_o`, the precomputed split of the shifted continuous
/// index into neighbouring bins `lo`/`hi` with blend weights
/// `omf = 1 − frac` and `frac`.
///
/// The *caller* fills the table with the same arithmetic as its scalar
/// soft-bin helper (one evaluation per raw index instead of one per
/// sample), so table-driven binning is bit-identical to the scalar path.
#[derive(Debug, Clone, Default)]
pub struct SoftBinLut {
    /// Lower bin per raw index.
    pub lo: Vec<u16>,
    /// Upper (wrapped) bin per raw index.
    pub hi: Vec<u16>,
    /// `1 − frac` per raw index.
    pub omf: Vec<f64>,
    /// Fractional blend weight per raw index.
    pub frac: Vec<f64>,
}

impl SoftBinLut {
    /// An empty table; push one entry per raw orientation index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the split of one raw index.
    pub fn push(&mut self, lo: usize, hi: usize, frac: f64) {
        self.lo.push(lo as u16);
        self.hi.push(hi as u16);
        self.omf.push(1.0 - frac);
        self.frac.push(frac);
    }

    /// Number of raw-index entries.
    pub fn len(&self) -> usize {
        self.lo.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }
}

/// Re-bins one descriptor row (the per-hypothesis describe inner loop):
/// for each cached sample `(weight, offset, index)`, looks the window
/// offset up in `cell_table` (skipping `out_sentinel` hits), splits the
/// orientation via `lut`, and accumulates
/// `row[cell·n_o + lo] += (weight · omf) as f32` /
/// `row[cell·n_o + hi] += (weight · frac) as f32` in sample order
/// (scatters stay scalar and in order — colliding bins make the sum order
/// observable in `f32`).
///
/// # Panics
///
/// Panics if the sample slices differ in length, `lut` has fewer entries
/// than some `indices[i]`, or a table cell points past `row`.
#[allow(clippy::too_many_arguments)]
pub fn rebin_row(
    row: &mut [f32],
    weights: &[f64],
    offsets: &[u32],
    indices: &[u8],
    cell_table: &[u8],
    out_sentinel: u8,
    n_o: usize,
    lut: &SoftBinLut,
) {
    assert!(
        weights.len() == offsets.len() && weights.len() == indices.len(),
        "rebin_row sample slices length mismatch"
    );
    dispatch!(rebin_row(row, weights, offsets, indices, cell_table, out_sentinel, n_o, lut))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_name_is_stable() {
        assert_eq!(Dispatch::Avx2.name(), "avx2");
        assert_eq!(Dispatch::Portable.name(), "portable");
        assert!(matches!(active(), Dispatch::Avx2 | Dispatch::Portable));
        assert_eq!(name(), active().name());
    }

    #[test]
    fn cmul_matches_hand_computation() {
        // (1+2i)(3+4i) = -5+10i ; (0.5-1i)(-2+0.25i) = -0.75+2.125i
        let a = [1.0, 2.0, 0.5, -1.0];
        let b = [3.0, 4.0, -2.0, 0.25];
        let mut dst = [0.0; 4];
        cmul(&mut dst, &a, &b);
        assert_eq!(dst, [-5.0, 10.0, -0.75, 2.125]);
    }

    #[test]
    fn dot_matches_scalar_blocking() {
        let a: Vec<f32> = (0..11).map(|i| (i as f32) * 0.25 - 1.0).collect();
        let b: Vec<f32> = (0..11).map(|i| 0.5 - (i as f32) * 0.125).collect();
        assert_eq!(dot_f32(&a, &b).to_bits(), portable::dot_f32(&a, &b).to_bits());
    }

    #[test]
    fn amp_max_fold_ties_keep_first_orientation() {
        let mut max_amp = vec![f64::NEG_INFINITY; 2];
        let mut max_idx = vec![0u8; 2];
        let z = [2.0, 0.0, -1.0, 0.0];
        amp_max_fold(&mut max_amp, &mut max_idx, &z, 1.0, false, None, 3);
        amp_max_fold(&mut max_amp, &mut max_idx, &z, 1.0, false, None, 5); // tie
        assert_eq!(max_amp, vec![2.0, 1.0]);
        assert_eq!(max_idx, vec![3, 3], "strict > must keep the earlier orientation");
    }
}

//! Portable scalar kernels — the bit-exact reference implementations.
//!
//! Each function here is the plain scalar loop the AVX2 kernels must
//! reproduce bit-for-bit; the bodies mirror the original call-site loops in
//! `bba-signal` / `bba-features` verbatim (same expressions, same add
//! order). They are `pub` so the equivalence proptests (and any non-x86_64
//! host) can run them directly.

use crate::SoftBinLut;

/// Scalar [`cmul`](crate::cmul).
pub fn cmul(dst: &mut [f64], a: &[f64], b: &[f64]) {
    for i in 0..dst.len() / 2 {
        let (ar, ai) = (a[2 * i], a[2 * i + 1]);
        let (br, bi) = (b[2 * i], b[2 * i + 1]);
        dst[2 * i] = ar * br - ai * bi;
        dst[2 * i + 1] = ar * bi + ai * br;
    }
}

/// Scalar [`butterfly`](crate::butterfly).
pub fn butterfly(lo: &mut [f64], hi: &mut [f64], twiddles: &[f64], stride: usize) {
    for k in 0..lo.len() / 2 {
        let wr = twiddles[2 * k * stride];
        let wi = twiddles[2 * k * stride + 1];
        butterfly_one(lo, hi, 2 * k, wr, wi);
    }
}

/// Scalar [`butterfly_x2`](crate::butterfly_x2): per twiddle, stream 0 then
/// stream 1 — each stream sees exactly the single-stream op sequence.
pub fn butterfly_x2(lo: &mut [f64], hi: &mut [f64], twiddles: &[f64], stride: usize) {
    for k in 0..lo.len() / 4 {
        let wr = twiddles[2 * k * stride];
        let wi = twiddles[2 * k * stride + 1];
        butterfly_one(lo, hi, 4 * k, wr, wi);
        butterfly_one(lo, hi, 4 * k + 2, wr, wi);
    }
}

/// One scalar butterfly at interleaved offset `at`, matching the planned
/// FFT's `b = hi·w; lo' = lo + b; hi' = lo − b` with `Complex::mul`
/// rounding.
#[inline]
fn butterfly_one(lo: &mut [f64], hi: &mut [f64], at: usize, wr: f64, wi: f64) {
    let (hr, hi_) = (hi[at], hi[at + 1]);
    let br = hr * wr - hi_ * wi;
    let bi = hr * wi + hi_ * wr;
    let (ar, ai) = (lo[at], lo[at + 1]);
    lo[at] = ar + br;
    lo[at + 1] = ai + bi;
    hi[at] = ar - br;
    hi[at + 1] = ai - bi;
}

/// Scalar [`fft_pass`](crate::fft_pass): the per-block loop of one whole
/// butterfly level, each block through the scalar [`butterfly`].
pub fn fft_pass(x: &mut [f64], twiddles: &[f64], half: usize, stride: usize) {
    for block in x.chunks_exact_mut(4 * half) {
        let (lo, hi) = block.split_at_mut(2 * half);
        butterfly(lo, hi, twiddles, stride);
    }
}

/// Scalar [`fft_pass_x2`](crate::fft_pass_x2): one whole butterfly level of
/// a paired-stream transform, each block through [`butterfly_x2`].
pub fn fft_pass_x2(x: &mut [f64], twiddles: &[f64], half: usize, stride: usize) {
    for block in x.chunks_exact_mut(8 * half) {
        let (lo, hi) = block.split_at_mut(4 * half);
        butterfly_x2(lo, hi, twiddles, stride);
    }
}

/// Scalar [`amp_accumulate`](crate::amp_accumulate).
pub fn amp_accumulate(acc: &mut [f64], z: &[f64], scale: f64, both: bool, init: bool) {
    match (init, both) {
        (true, true) => {
            for (i, a) in acc.iter_mut().enumerate() {
                *a = (z[2 * i] * scale).abs() + (z[2 * i + 1] * scale).abs();
            }
        }
        (true, false) => {
            for (i, a) in acc.iter_mut().enumerate() {
                *a = (z[2 * i] * scale).abs();
            }
        }
        (false, true) => {
            for (i, a) in acc.iter_mut().enumerate() {
                *a = (*a + (z[2 * i] * scale).abs()) + (z[2 * i + 1] * scale).abs();
            }
        }
        (false, false) => {
            for (i, a) in acc.iter_mut().enumerate() {
                *a += (z[2 * i] * scale).abs();
            }
        }
    }
}

/// Scalar [`amp_max_fold`](crate::amp_max_fold).
pub fn amp_max_fold(
    max_amp: &mut [f64],
    max_idx: &mut [u8],
    z: &[f64],
    scale: f64,
    both: bool,
    partial: Option<&[f64]>,
    o: u8,
) {
    for i in 0..max_amp.len() {
        let re = (z[2 * i] * scale).abs();
        let a = match (partial, both) {
            (None, true) => re + (z[2 * i + 1] * scale).abs(),
            (None, false) => re,
            (Some(p), true) => (p[i] + re) + (z[2 * i + 1] * scale).abs(),
            (Some(p), false) => p[i] + re,
        };
        if a > max_amp[i] {
            max_amp[i] = a;
            max_idx[i] = o;
        }
    }
}

/// Scalar [`max_merge`](crate::max_merge).
pub fn max_merge(amp: &mut [f64], idx: &mut [u8], cand_amp: &[f64], cand_idx: &[u8]) {
    for i in 0..amp.len() {
        if cand_amp[i] > amp[i] {
            amp[i] = cand_amp[i];
            idx[i] = cand_idx[i];
        }
    }
}

/// Scalar [`dot_f32`](crate::dot_f32) — the matcher's original 4-lane
/// blocked kernel, verbatim.
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    let n4 = a.len() & !3;
    let (a4, ar) = a.split_at(n4);
    let (b4, br) = b.split_at(n4);
    let mut acc = [0.0f32; 4];
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in ar.iter().zip(br) {
        s += x * y;
    }
    s
}

/// Scalar [`rebin_row`](crate::rebin_row): table-driven soft binning with
/// in-order scalar scatter.
#[allow(clippy::too_many_arguments)]
pub fn rebin_row(
    row: &mut [f32],
    weights: &[f64],
    offsets: &[u32],
    indices: &[u8],
    cell_table: &[u8],
    out_sentinel: u8,
    n_o: usize,
    lut: &SoftBinLut,
) {
    for ((&w, &off), &r) in weights.iter().zip(offsets).zip(indices) {
        let cell = cell_table[off as usize];
        if cell == out_sentinel {
            continue;
        }
        let r = r as usize;
        let base = cell as usize * n_o;
        row[base + lut.lo[r] as usize] += (w * lut.omf[r]) as f32;
        row[base + lut.hi[r] as usize] += (w * lut.frac[r]) as f32;
    }
}

//! AVX2 kernels (x86_64). Bit-identical to [`crate::portable`] by
//! construction: every multiply and add is a separate, individually
//! rounded instruction (no FMA), elementwise ops preserve per-element
//! order, and the one reduction ([`dot_f32`]) keeps the scalar 4-lane
//! association by staying on a 128-bit accumulator.
//!
//! All functions are `unsafe` because they require AVX2; the dispatcher in
//! the crate root only calls them after `is_x86_feature_detected!("avx2")`.
//!
//! Complex data is interleaved `[re, im, re, im, …]`, so one 256-bit lane
//! holds two complexes. The complex product `a·b` is computed as
//!
//! ```text
//! t1 = a         · dup_even(b)   = [ar·br, ai·br]
//! t2 = swap(a)   · dup_odd(b)    = [ai·bi, ar·bi]
//! a·b = addsub(t1, t2)           = [ar·br − ai·bi, ai·br + ar·bi]
//! ```
//!
//! which rounds each of the four products and the final add/sub exactly
//! like the scalar `Complex::mul` (the imaginary part's two addends are
//! the same rounded values, added in commuted order — IEEE addition is
//! commutative, so the bits agree).

#![allow(clippy::missing_safety_doc)] // one shared contract, documented below
#![allow(clippy::too_many_arguments)]

use crate::SoftBinLut;
use core::arch::x86_64::*;

// Shared safety contract for every function in this module:
// the caller must ensure the CPU supports AVX2 (the crate-root dispatcher
// checks `is_x86_feature_detected!("avx2")`). Slice-length preconditions
// are asserted by the crate-root wrappers before dispatch.

/// Clears the sign bit of all four lanes (`|x|`, bitwise like `f64::abs`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn abs_pd(x: __m256d) -> __m256d {
    _mm256_and_pd(x, _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFF)))
}

/// Complex product of two interleaved-pair vectors (see module docs).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cmul_pd(a: __m256d, b: __m256d) -> __m256d {
    let t1 = _mm256_mul_pd(a, _mm256_movedup_pd(b));
    let t2 = _mm256_mul_pd(_mm256_permute_pd(a, 0x5), _mm256_permute_pd(b, 0xF));
    _mm256_addsub_pd(t1, t2)
}

/// AVX2 [`cmul`](crate::cmul): two complexes per vector, scalar tail.
#[target_feature(enable = "avx2")]
pub unsafe fn cmul(dst: &mut [f64], a: &[f64], b: &[f64]) {
    let n = dst.len();
    let mut i = 0;
    while i + 4 <= n {
        let va = _mm256_loadu_pd(a.as_ptr().add(i));
        let vb = _mm256_loadu_pd(b.as_ptr().add(i));
        _mm256_storeu_pd(dst.as_mut_ptr().add(i), cmul_pd(va, vb));
        i += 4;
    }
    crate::portable::cmul(&mut dst[i..], &a[i..], &b[i..]);
}

/// AVX2 [`butterfly`](crate::butterfly): two butterflies per vector.
/// Strided twiddles are gathered with `set_pd`; the contiguous `stride == 1`
/// case (the final, dominant FFT pass) uses a straight load.
#[inline]
#[target_feature(enable = "avx2")]
pub unsafe fn butterfly(lo: &mut [f64], hi: &mut [f64], twiddles: &[f64], stride: usize) {
    let half = lo.len() / 2;
    let mut k = 0;
    while k + 2 <= half {
        let w = if stride == 1 {
            _mm256_loadu_pd(twiddles.as_ptr().add(2 * k))
        } else {
            _mm256_set_pd(
                twiddles[2 * (k + 1) * stride + 1],
                twiddles[2 * (k + 1) * stride],
                twiddles[2 * k * stride + 1],
                twiddles[2 * k * stride],
            )
        };
        let h = _mm256_loadu_pd(hi.as_ptr().add(2 * k));
        let l = _mm256_loadu_pd(lo.as_ptr().add(2 * k));
        let b = cmul_pd(h, w);
        _mm256_storeu_pd(lo.as_mut_ptr().add(2 * k), _mm256_add_pd(l, b));
        _mm256_storeu_pd(hi.as_mut_ptr().add(2 * k), _mm256_sub_pd(l, b));
        k += 2;
    }
    // Odd remainder: only the half == 1 pass (power-of-two halves).
    if k < half {
        crate::portable::butterfly(
            &mut lo[2 * k..],
            &mut hi[2 * k..],
            &twiddles[2 * k * stride..],
            stride,
        );
    }
}

/// AVX2 [`butterfly_x2`](crate::butterfly_x2): one paired butterfly (two
/// streams × one complex) per vector, twiddle broadcast to both streams —
/// every pass fully vectorises, including `half == 1`.
#[inline]
#[target_feature(enable = "avx2")]
pub unsafe fn butterfly_x2(lo: &mut [f64], hi: &mut [f64], twiddles: &[f64], stride: usize) {
    let half = lo.len() / 4;
    for k in 0..half {
        let w = _mm256_broadcast_pd(&*(twiddles.as_ptr().add(2 * k * stride) as *const __m128d));
        let h = _mm256_loadu_pd(hi.as_ptr().add(4 * k));
        let l = _mm256_loadu_pd(lo.as_ptr().add(4 * k));
        let b = cmul_pd(h, w);
        _mm256_storeu_pd(lo.as_mut_ptr().add(4 * k), _mm256_add_pd(l, b));
        _mm256_storeu_pd(hi.as_mut_ptr().add(4 * k), _mm256_sub_pd(l, b));
    }
}

/// AVX2 [`fft_pass`](crate::fft_pass): one whole butterfly level per call,
/// block loop inside the kernel. The `half == 1` level — whose one-complex
/// halves the generic two-butterfly kernel would leave entirely to its
/// scalar remainder — gets a dedicated path: two adjacent `[lo, hi]` blocks
/// are shuffled into one `[lo0, lo1]` / `[hi0, hi1]` vector butterfly
/// sharing the level's single twiddle (per element, exactly the scalar op
/// sequence).
#[target_feature(enable = "avx2")]
pub unsafe fn fft_pass(x: &mut [f64], twiddles: &[f64], half: usize, stride: usize) {
    if half == 1 {
        let w = _mm256_broadcast_pd(&*(twiddles.as_ptr() as *const __m128d));
        let n = x.len();
        let mut i = 0;
        while i + 8 <= n {
            let v0 = _mm256_loadu_pd(x.as_ptr().add(i)); // [lo0, hi0]
            let v1 = _mm256_loadu_pd(x.as_ptr().add(i + 4)); // [lo1, hi1]
            let lo = _mm256_permute2f128_pd::<0x20>(v0, v1);
            let hi = _mm256_permute2f128_pd::<0x31>(v0, v1);
            let b = cmul_pd(hi, w);
            let nlo = _mm256_add_pd(lo, b);
            let nhi = _mm256_sub_pd(lo, b);
            _mm256_storeu_pd(x.as_mut_ptr().add(i), _mm256_permute2f128_pd::<0x20>(nlo, nhi));
            _mm256_storeu_pd(x.as_mut_ptr().add(i + 4), _mm256_permute2f128_pd::<0x31>(nlo, nhi));
            i += 8;
        }
        if i < n {
            let (lo, hi) = x[i..].split_at_mut(2);
            crate::portable::butterfly(lo, hi, twiddles, stride);
        }
        return;
    }
    for block in x.chunks_exact_mut(4 * half) {
        let (lo, hi) = block.split_at_mut(2 * half);
        butterfly(lo, hi, twiddles, stride);
    }
}

/// AVX2 [`fft_pass_x2`](crate::fft_pass_x2): one whole paired-stream
/// butterfly level per call ([`butterfly_x2`] already fully vectorises
/// every `half`, including 1).
#[target_feature(enable = "avx2")]
pub unsafe fn fft_pass_x2(x: &mut [f64], twiddles: &[f64], half: usize, stride: usize) {
    for block in x.chunks_exact_mut(8 * half) {
        let (lo, hi) = block.split_at_mut(4 * half);
        butterfly_x2(lo, hi, twiddles, stride);
    }
}

/// Deinterleaves two packed-complex vectors (pixels 0..4) into natural-order
/// `(|re·scale|, |im·scale|)` vectors.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn amp_parts(z: *const f64, scale: __m256d) -> (__m256d, __m256d) {
    let t01 = abs_pd(_mm256_mul_pd(_mm256_loadu_pd(z), scale));
    let t23 = abs_pd(_mm256_mul_pd(_mm256_loadu_pd(z.add(4)), scale));
    // unpacklo → [p0, p2, p1, p3]; permute4x64(0xD8) restores [p0, p1, p2, p3].
    let re = _mm256_permute4x64_pd(_mm256_unpacklo_pd(t01, t23), 0xD8);
    let im = _mm256_permute4x64_pd(_mm256_unpackhi_pd(t01, t23), 0xD8);
    (re, im)
}

/// AVX2 [`amp_accumulate`](crate::amp_accumulate): four pixels per
/// iteration, same add order per pixel as the scalar arms.
#[target_feature(enable = "avx2")]
pub unsafe fn amp_accumulate(acc: &mut [f64], z: &[f64], scale: f64, both: bool, init: bool) {
    let n = acc.len();
    let s = _mm256_set1_pd(scale);
    let mut i = 0;
    while i + 4 <= n {
        let (re, im) = amp_parts(z.as_ptr().add(2 * i), s);
        let out = match (init, both) {
            (true, true) => _mm256_add_pd(re, im),
            (true, false) => re,
            (false, true) => {
                _mm256_add_pd(_mm256_add_pd(_mm256_loadu_pd(acc.as_ptr().add(i)), re), im)
            }
            (false, false) => _mm256_add_pd(_mm256_loadu_pd(acc.as_ptr().add(i)), re),
        };
        _mm256_storeu_pd(acc.as_mut_ptr().add(i), out);
        i += 4;
    }
    crate::portable::amp_accumulate(&mut acc[i..], &z[2 * i..], scale, both, init);
}

/// AVX2 [`amp_max_fold`](crate::amp_max_fold): four pixels per iteration;
/// the strict-`>` compare mask updates amplitudes by blend and indices by
/// per-bit scalar stores (indices are `u8`, too narrow to blend usefully).
#[target_feature(enable = "avx2")]
pub unsafe fn amp_max_fold(
    max_amp: &mut [f64],
    max_idx: &mut [u8],
    z: &[f64],
    scale: f64,
    both: bool,
    partial: Option<&[f64]>,
    o: u8,
) {
    let n = max_amp.len();
    let s = _mm256_set1_pd(scale);
    let mut i = 0;
    while i + 4 <= n {
        let (re, im) = amp_parts(z.as_ptr().add(2 * i), s);
        let a = match (partial, both) {
            (None, true) => _mm256_add_pd(re, im),
            (None, false) => re,
            (Some(p), true) => {
                _mm256_add_pd(_mm256_add_pd(_mm256_loadu_pd(p.as_ptr().add(i)), re), im)
            }
            (Some(p), false) => _mm256_add_pd(_mm256_loadu_pd(p.as_ptr().add(i)), re),
        };
        let m = _mm256_loadu_pd(max_amp.as_ptr().add(i));
        let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(a, m);
        _mm256_storeu_pd(max_amp.as_mut_ptr().add(i), _mm256_blendv_pd(m, a, gt));
        let mask = _mm256_movemask_pd(gt);
        if mask != 0 {
            for j in 0..4 {
                if mask & (1 << j) != 0 {
                    max_idx[i + j] = o;
                }
            }
        }
        i += 4;
    }
    crate::portable::amp_max_fold(
        &mut max_amp[i..],
        &mut max_idx[i..],
        &z[2 * i..],
        scale,
        both,
        partial.map(|p| &p[i..]),
        o,
    );
}

/// AVX2 [`max_merge`](crate::max_merge).
#[target_feature(enable = "avx2")]
pub unsafe fn max_merge(amp: &mut [f64], idx: &mut [u8], cand_amp: &[f64], cand_idx: &[u8]) {
    let n = amp.len();
    let mut i = 0;
    while i + 4 <= n {
        let a = _mm256_loadu_pd(amp.as_ptr().add(i));
        let c = _mm256_loadu_pd(cand_amp.as_ptr().add(i));
        let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(c, a);
        _mm256_storeu_pd(amp.as_mut_ptr().add(i), _mm256_blendv_pd(a, c, gt));
        let mask = _mm256_movemask_pd(gt);
        if mask != 0 {
            for j in 0..4 {
                if mask & (1 << j) != 0 {
                    idx[i + j] = cand_idx[i + j];
                }
            }
        }
        i += 4;
    }
    crate::portable::max_merge(&mut amp[i..], &mut idx[i..], &cand_amp[i..], &cand_idx[i..]);
}

/// SIMD [`dot_f32`](crate::dot_f32): a single 128-bit `f32x4` accumulator
/// performs the scalar kernel's four per-lane running sums (`acc[j] +=
/// a·b`, one rounded multiply + one rounded add each), combined in the same
/// `(acc0 + acc1) + (acc2 + acc3)` order — wider accumulators would change
/// the association and the bits.
#[target_feature(enable = "avx2")]
pub unsafe fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    let n4 = a.len() & !3;
    let mut acc = _mm_setzero_ps();
    let mut i = 0;
    while i < n4 {
        let va = _mm_loadu_ps(a.as_ptr().add(i));
        let vb = _mm_loadu_ps(b.as_ptr().add(i));
        acc = _mm_add_ps(acc, _mm_mul_ps(va, vb));
        i += 4;
    }
    let mut lanes = [0.0f32; 4];
    _mm_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for j in n4..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// AVX2 [`rebin_row`](crate::rebin_row): the `weight·omf` / `weight·frac`
/// products and `f64 → f32` conversions are vectorised four samples at a
/// time (multiply and convert round exactly like the scalar expressions);
/// the histogram scatter stays scalar and in sample order because colliding
/// bins make the `f32` accumulation order observable.
#[target_feature(enable = "avx2")]
pub unsafe fn rebin_row(
    row: &mut [f32],
    weights: &[f64],
    offsets: &[u32],
    indices: &[u8],
    cell_table: &[u8],
    out_sentinel: u8,
    n_o: usize,
    lut: &SoftBinLut,
) {
    let n = weights.len();
    let mut i = 0;
    while i + 4 <= n {
        let r = [
            indices[i] as usize,
            indices[i + 1] as usize,
            indices[i + 2] as usize,
            indices[i + 3] as usize,
        ];
        let w = _mm256_loadu_pd(weights.as_ptr().add(i));
        let omf = _mm256_set_pd(lut.omf[r[3]], lut.omf[r[2]], lut.omf[r[1]], lut.omf[r[0]]);
        let frac = _mm256_set_pd(lut.frac[r[3]], lut.frac[r[2]], lut.frac[r[1]], lut.frac[r[0]]);
        let mut w1 = [0.0f32; 4];
        let mut w2 = [0.0f32; 4];
        _mm_storeu_ps(w1.as_mut_ptr(), _mm256_cvtpd_ps(_mm256_mul_pd(w, omf)));
        _mm_storeu_ps(w2.as_mut_ptr(), _mm256_cvtpd_ps(_mm256_mul_pd(w, frac)));
        for j in 0..4 {
            let cell = cell_table[offsets[i + j] as usize];
            if cell == out_sentinel {
                continue;
            }
            let base = cell as usize * n_o;
            row[base + lut.lo[r[j]] as usize] += w1[j];
            row[base + lut.hi[r[j]] as usize] += w2[j];
        }
        i += 4;
    }
    crate::portable::rebin_row(
        row,
        &weights[i..],
        &offsets[i..],
        &indices[i..],
        cell_table,
        out_sentinel,
        n_o,
        lut,
    );
}
